//! Regression pin for the serving hot path: frozen-model inference must
//! take **zero** `Storage::Shared` lock acquisitions — the freeze step
//! copies every parameter into lock-free `Storage::Hot` buffers exactly
//! once, and from then on classification never touches an `RwLock`.
//!
//! The probe is the debug-build lock-order checker's cumulative
//! acquisition counter (`aimts_tensor::lockorder::acquired_total`), which
//! counts every tracked `Shared` acquisition on this thread. It compiles
//! to a constant 0 in release builds, so the whole suite is gated on
//! `debug_assertions`.
#![cfg(debug_assertions)]

use aimts::{Executor, FineTuned, HealthReport, TsEncoder};
use aimts_data::{MultiSeries, Sample, Split};
use aimts_nn::{Activation, Mlp};
use aimts_tensor::lockorder;

fn make_model() -> FineTuned {
    let repr = 16;
    FineTuned {
        encoder: TsEncoder::new(8, repr, &[1, 2], 21),
        head: Mlp::new(&[repr, 8, 3], Activation::Gelu, 22),
        n_classes: 3,
        train_losses: Vec::new(),
        best_train_accuracy: None,
        health: HealthReport::default(),
    }
}

fn samples(n: usize, t: usize) -> Vec<MultiSeries> {
    (0..n)
        .map(|s| {
            vec![(0..t)
                .map(|i| (s as f32 * 0.7 + i as f32 * 0.2).sin())
                .collect()]
        })
        .collect()
}

#[test]
fn frozen_inference_acquires_zero_shared_locks() {
    let tuned = make_model();

    // Freezing itself reads the Shared training parameters (one final
    // tracked acquisition per tensor). This both builds the fixture and
    // proves the counter is live in this build — guarding against the
    // main assertion passing vacuously.
    let before_freeze = lockorder::acquired_total();
    let eager = tuned.freeze(Executor::Eager);
    let after_freeze = lockorder::acquired_total();
    assert!(
        after_freeze > before_freeze,
        "freeze() reads Shared params; a flat counter means the probe is dead"
    );

    let inputs = samples(12, 20);
    let refs: Vec<&MultiSeries> = inputs.iter().collect();

    for (label, model) in [
        ("eager", eager),
        ("compiled", tuned.freeze(Executor::Compiled)),
    ] {
        let start = lockorder::acquired_total();
        let first = model.classify(&refs);
        // Twice: the compiled path traces on the first call and replays
        // the cached plan on the second — both must stay lock-free.
        let second = model.classify(&refs);
        let taken = lockorder::acquired_total() - start;
        assert_eq!(
            taken, 0,
            "{label} frozen inference acquired {taken} Shared lock(s); the serving hot path regressed"
        );
        assert_eq!(first.len(), refs.len());
        assert_eq!(first, second);
    }
}

#[test]
fn offline_predict_routes_through_the_lock_free_path() {
    // `FineTuned::predict` freezes then classifies: after the one-time
    // freeze cost, the per-sample work is Shared-free. Measure a second
    // predict-sized workload through an explicit frozen model and check
    // it stays at zero while `predict` itself only pays the freeze.
    let tuned = make_model();
    let split = Split {
        samples: samples(6, 16)
            .into_iter()
            .map(|vars| Sample { vars, label: 0 })
            .collect(),
    };

    let frozen = tuned.freeze(Executor::Eager);
    let start = lockorder::acquired_total();
    let via_frozen = frozen.predict_split(&split);
    assert_eq!(
        lockorder::acquired_total() - start,
        0,
        "predict_split on a frozen model must be lock-free"
    );
    // And the public API agrees bitwise with the lock-free route.
    assert_eq!(tuned.predict(&split), via_frozen);
}
