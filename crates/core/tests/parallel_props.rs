//! Property-based guarantees for the guarded gradient all-reduce: when at
//! most one worker buffer is poisoned with a non-finite value, the mean
//! over the surviving buffers is always all-finite — a poisoned replica
//! can never leak `NaN`/`inf` into the optimizer step.

use aimts::all_reduce_mean_guarded;
use proptest::prelude::*;

/// Non-finite bit patterns used to poison a buffer cell.
const POISON_BITS: [u32; 3] = [
    0x7FC0_0000, // quiet NaN
    0x7F80_0000, // +inf
    0xFF80_0000, // -inf
];

/// Strategy: `(buffers, poison_buffer, poison_kind)` — 2–5 equal-length
/// buffers of finite f32s spanning the full magnitude range (so an f32
/// accumulator would overflow, but the guarded f64 path must not), plus
/// which buffer to poison (`== n` means none) and with which pattern.
fn workload() -> impl Strategy<Value = (Vec<Vec<f32>>, usize, usize)> {
    (1usize..24, 2usize..=5).prop_flat_map(|(len, n)| {
        (
            prop::collection::vec(prop::collection::vec(-3.0e38f32..3.0e38, len..=len), n..=n),
            0usize..=n,
            0usize..3,
        )
    })
}

proptest! {
    /// With <= 1 poisoned buffer excluded, the output is always finite and
    /// the exclusion count is exact.
    #[test]
    fn guarded_all_reduce_never_emits_nonfinite((mut buffers, poison, kind) in workload()) {
        let n = buffers.len();
        let len = buffers[0].len();
        if poison < n {
            buffers[poison][kind % len] = f32::from_bits(POISON_BITS[kind]);
        }
        let (mean, excluded) = all_reduce_mean_guarded(&buffers)
            .expect("at most one poisoned buffer out of >= 2 leaves survivors");
        prop_assert_eq!(excluded, usize::from(poison < n));
        prop_assert_eq!(mean.len(), len);
        for (i, v) in mean.iter().enumerate() {
            prop_assert!(v.is_finite(), "non-finite mean at {} : {}", i, v);
        }
    }

    /// A round where every buffer is poisoned yields `None`, never a
    /// non-finite "mean of nothing".
    #[test]
    fn fully_poisoned_round_is_rejected(
        len in 1usize..16,
        n in 1usize..5,
        kind in 0usize..3,
    ) {
        let buffers: Vec<Vec<f32>> =
            (0..n).map(|_| vec![f32::from_bits(POISON_BITS[kind]); len]).collect();
        prop_assert!(all_reduce_mean_guarded(&buffers).is_none());
    }
}
