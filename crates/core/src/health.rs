//! Self-healing training supervisor: numerical-anomaly detection, the
//! guard → clip → skip → rollback → abort escalation ladder, and the
//! structured [`HealthReport`] attached to training results.
//!
//! Multi-source pre-training mixes heterogeneous datasets under aggressive
//! augmentations, so a single extreme series or warped view can poison a
//! step with `NaN`/`inf` and silently destroy a multi-hour run. The
//! [`HealthMonitor`] wraps every optimizer step of
//! [`AimTs::pretrain`](crate::AimTs::pretrain) and
//! [`FineTuned::fit`](crate::FineTuned::fit):
//!
//! 1. **guard** — the micro-batch loss and the flat gradient must be
//!    all-finite (cheap bit-mask scans, [`aimts_tensor::all_finite`] /
//!    [`aimts_nn::grad_norm`]);
//! 2. **clip** — optional global-norm gradient clipping
//!    ([`HealthPolicy::clip_norm`], via [`aimts_nn::clip_grad_norm`]);
//! 3. **skip** — an anomalous step is skipped (gradients zeroed, optimizer
//!    untouched) and counted;
//! 4. **rollback** — after [`HealthPolicy::max_bad_steps`] *consecutive*
//!    bad steps, or a non-finite parameter detected post-step, pre-training
//!    restores the last good epoch-boundary checkpoint (parameters, Adam
//!    moments, scheduler, RNG stream) and re-shuffles forward;
//! 5. **abort** — only after [`HealthPolicy::max_rollbacks`] rollbacks have
//!    failed to restore progress does training abort, with a typed
//!    [`TrainError`] carrying the final report.
//!
//! The clean path is bit-for-bit unchanged: guards only *read* values, and
//! clipping is disabled by default.

use std::fmt;

use aimts_nn::{clip_grad_norm, grad_norm, CheckpointError};
use aimts_tensor::Tensor;

/// Knobs of the self-healing training loop.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthPolicy {
    /// Global L2 gradient-norm clipping threshold; `None` disables
    /// clipping (the default — clipping perturbs the update stream, so it
    /// is strictly opt-in).
    pub clip_norm: Option<f32>,
    /// `K`: consecutive anomalous (skipped) steps that trigger an
    /// automatic rollback to the last good checkpoint.
    pub max_bad_steps: usize,
    /// `R`: rollbacks tolerated before training aborts with
    /// [`TrainError::Diverged`]. Every rollback restores the last good
    /// state first, so even the aborting run ends on usable weights.
    pub max_rollbacks: usize,
    /// Deterministic fault-injection hooks (test seam, inert by default).
    pub fault: FaultPlan,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            clip_norm: None,
            max_bad_steps: 5,
            max_rollbacks: 2,
            fault: FaultPlan::default(),
        }
    }
}

/// Deterministic fault injection for the self-healing test suite (see
/// `tests/training_faults.rs`). Inert by default; not intended for
/// production configs — the same role `atomic_write_failing_after` plays
/// for the checkpoint fault suite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Treat every step *attempt* with index `>= this` as numerically
    /// anomalous, as if the loss were non-finite. Attempt indices are
    /// monotone across rollbacks (they are never restored), so a plan that
    /// forces everything bad from some point exercises the full
    /// skip → rollback → abort ladder.
    pub bad_steps_from: Option<u64>,
    /// Panic inside the worker computing this micro-batch index on the
    /// data-parallel path (exercises worker-panic containment).
    pub panic_on_micro: Option<u64>,
}

impl FaultPlan {
    /// Whether step attempt `attempt` is forced anomalous.
    pub fn forces_bad(&self, attempt: u64) -> bool {
        self.bad_steps_from.is_some_and(|from| attempt >= from)
    }

    /// Whether the worker handling micro-batch `micro` must panic.
    pub fn forces_panic(&self, micro: u64) -> bool {
        self.panic_on_micro == Some(micro)
    }
}

/// Per-epoch summary of pre-clip gradient norms (successful steps only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradNormStats {
    pub mean: f32,
    pub min: f32,
    pub max: f32,
    /// Optimizer steps that contributed (skipped steps do not).
    pub steps: usize,
}

/// Structured account of everything the supervisor did during a run,
/// attached to [`PretrainReport`](crate::PretrainReport) and
/// [`FineTuned`](crate::FineTuned), and printed by the CLI.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthReport {
    /// Steps skipped because the loss or gradient was non-finite (or a
    /// fault plan forced the anomaly).
    pub skipped_steps: usize,
    /// Steps whose gradient was rescaled by global-norm clipping.
    pub clip_events: usize,
    /// Automatic rollbacks to the last good checkpoint.
    pub rollbacks: usize,
    /// Worker threads that panicked mid-step (data-parallel path).
    pub worker_panics: usize,
    /// Data-parallel steps completed on a strict subset of their
    /// micro-batches (surviving replicas re-averaged after a panic or a
    /// poisoned gradient). Degraded steps break bit-exactness with the
    /// serial schedule and are therefore surfaced here.
    pub degraded_steps: usize,
    /// Pre-clip gradient-norm summary per completed epoch.
    pub epoch_grad_norms: Vec<GradNormStats>,
}

impl HealthReport {
    /// Fold another report into this one: counts add, per-epoch stats
    /// append. Used when one model accumulates over repeated `fit` calls.
    pub fn absorb(&mut self, other: HealthReport) {
        self.skipped_steps += other.skipped_steps;
        self.clip_events += other.clip_events;
        self.rollbacks += other.rollbacks;
        self.worker_panics += other.worker_panics;
        self.degraded_steps += other.degraded_steps;
        self.epoch_grad_norms.extend(other.epoch_grad_norms);
    }

    /// True when the run needed no intervention at all.
    pub fn is_clean(&self) -> bool {
        self.skipped_steps == 0
            && self.clip_events == 0
            && self.rollbacks == 0
            && self.worker_panics == 0
            && self.degraded_steps == 0
    }
}

impl fmt::Display for HealthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "health: {} skipped, {} clipped, {} rollbacks, {} worker panics, {} degraded steps",
            self.skipped_steps,
            self.clip_events,
            self.rollbacks,
            self.worker_panics,
            self.degraded_steps
        )?;
        if let Some(last) = self.epoch_grad_norms.last() {
            write!(
                f,
                "; last-epoch grad norm mean {:.4} (min {:.4}, max {:.4})",
                last.mean, last.min, last.max
            )?;
        }
        Ok(())
    }
}

/// Typed failure of a training run.
#[derive(Debug)]
pub enum TrainError {
    /// Writing or restoring a checkpoint failed.
    Checkpoint(CheckpointError),
    /// The run kept producing anomalous steps after exhausting the
    /// rollback budget. The model is left restored to the last good
    /// checkpointed state.
    Diverged {
        /// Consecutive bad steps at the final trigger.
        consecutive_bad: usize,
        /// Rollbacks performed before giving up.
        rollbacks: usize,
        /// Supervisor account of the whole run.
        report: HealthReport,
        /// Human-readable cause of the final trigger.
        detail: String,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            TrainError::Diverged {
                consecutive_bad,
                rollbacks,
                report,
                detail,
            } => write!(
                f,
                "training diverged after {rollbacks} rollback(s) \
                 ({consecutive_bad} consecutive bad steps; {detail}); \
                 model restored to the last good checkpoint ({report})"
            ),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Checkpoint(e) => Some(e),
            TrainError::Diverged { .. } => None,
        }
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

impl From<std::io::Error> for TrainError {
    fn from(e: std::io::Error) -> Self {
        TrainError::Checkpoint(CheckpointError::from(e))
    }
}

/// Gradient guard + optional clip, called between `backward()` and
/// `step()`. Returns the pre-clip global L2 norm — the caller must skip
/// the step when it is non-finite — and whether clipping rescaled the
/// gradients.
pub fn guard_and_clip(params: &[Tensor], clip: Option<f32>) -> (f32, bool) {
    match clip {
        Some(max) => {
            let pre = clip_grad_norm(params, max);
            (pre, pre.is_finite() && pre > max)
        }
        None => (grad_norm(params), false),
    }
}

/// Post-step parameter guard: every parameter buffer must be all-finite.
pub fn params_all_finite(params: &[Tensor]) -> bool {
    params.iter().all(|p| p.all_finite())
}

/// What the supervisor decided about one step attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepVerdict {
    /// The step went through (possibly clipped, possibly degraded).
    Stepped,
    /// The step was anomalous and skipped; no rollback needed yet.
    Skipped,
    /// The step pushed the run over the consecutive-bad budget (or left a
    /// non-finite parameter behind): restore the last good checkpoint.
    RollBack,
}

/// Tracks anomalies across a training run and decides the escalation.
///
/// Owned by the training loop; the loop feeds it per-step observations and
/// obeys the returned [`StepVerdict`]s.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    policy: HealthPolicy,
    report: HealthReport,
    consecutive_bad: usize,
    /// Monotone count of step *attempts*. Unlike the optimizer-step
    /// counter this is never restored by a rollback, so fault plans (and
    /// diagnostics) see forward progress even while the run replays an
    /// epoch.
    attempts: u64,
    epoch_norms: Vec<f64>,
}

impl HealthMonitor {
    pub fn new(policy: HealthPolicy) -> Self {
        HealthMonitor {
            policy,
            report: HealthReport::default(),
            consecutive_bad: 0,
            attempts: 0,
            epoch_norms: Vec::new(),
        }
    }

    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// Begin a step attempt; returns its monotone index.
    pub fn begin_attempt(&mut self) -> u64 {
        let a = self.attempts;
        self.attempts += 1;
        a
    }

    /// Whether this attempt is anomalous before any gradient work: the
    /// loss is non-finite, or a fault plan forces it.
    pub fn loss_is_bad(&self, loss: f32, attempt: u64) -> bool {
        !loss.is_finite() || self.policy.fault.forces_bad(attempt)
    }

    /// Record a successful optimizer step with its pre-clip gradient norm.
    pub fn record_step(&mut self, pre_clip_norm: f32, clipped: bool) {
        debug_assert!(
            pre_clip_norm.is_finite(),
            "record_step called with a non-finite gradient norm — the guard must skip instead"
        );
        self.consecutive_bad = 0;
        self.epoch_norms.push(pre_clip_norm as f64);
        if clipped {
            self.report.clip_events += 1;
        }
    }

    /// Record an anomalous step that was skipped. Returns `RollBack` when
    /// the consecutive-bad budget is exhausted.
    pub fn record_skip(&mut self) -> StepVerdict {
        self.report.skipped_steps += 1;
        self.consecutive_bad += 1;
        if self.consecutive_bad >= self.policy.max_bad_steps.max(1) {
            StepVerdict::RollBack
        } else {
            StepVerdict::Skipped
        }
    }

    /// Record a data-parallel step that completed on a strict subset of
    /// its micro-batches, with `panics` of the drops caused by worker
    /// panics (the rest were poisoned gradients).
    pub fn record_degraded(&mut self, panics: usize, poisoned: usize) {
        self.report.worker_panics += panics;
        if panics + poisoned > 0 {
            self.report.degraded_steps += 1;
        }
    }

    /// Record worker panics in a round that produced *no* usable gradient
    /// (the whole step is skipped, so it does not count as degraded).
    pub fn record_lost_round(&mut self, panics: usize) {
        self.report.worker_panics += panics;
    }

    /// Account for one rollback. `Err` when the budget was already spent —
    /// the caller restores the last good state in both cases, so an
    /// aborting run still ends on usable weights.
    pub fn record_rollback(&mut self, detail: &str) -> Result<(), TrainError> {
        if self.report.rollbacks >= self.policy.max_rollbacks {
            return Err(TrainError::Diverged {
                consecutive_bad: self.consecutive_bad,
                rollbacks: self.report.rollbacks,
                report: self.report.clone(),
                detail: detail.to_string(),
            });
        }
        self.report.rollbacks += 1;
        self.consecutive_bad = 0;
        self.epoch_norms.clear();
        Ok(())
    }

    /// Close out a completed epoch: fold the collected gradient norms into
    /// the report.
    pub fn end_epoch(&mut self) {
        if self.epoch_norms.is_empty() {
            self.report.epoch_grad_norms.push(GradNormStats {
                mean: f32::NAN,
                min: f32::NAN,
                max: f32::NAN,
                steps: 0,
            });
        } else {
            let n = self.epoch_norms.len();
            let mean = self.epoch_norms.iter().sum::<f64>() / n as f64;
            let min = self
                .epoch_norms
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            let max = self
                .epoch_norms
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            self.report.epoch_grad_norms.push(GradNormStats {
                mean: mean as f32,
                min: min as f32,
                max: max as f32,
                steps: n,
            });
        }
        self.epoch_norms.clear();
    }

    /// Consume the monitor, yielding the final report.
    pub fn into_report(self) -> HealthReport {
        self.report
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &HealthReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_conservative() {
        let p = HealthPolicy::default();
        assert_eq!(p.clip_norm, None);
        assert_eq!(p.max_bad_steps, 5);
        assert_eq!(p.max_rollbacks, 2);
        assert_eq!(p.fault, FaultPlan::default());
        assert!(!p.fault.forces_bad(0));
        assert!(!p.fault.forces_panic(0));
    }

    #[test]
    fn consecutive_bad_steps_escalate_to_rollback() {
        let mut mon = HealthMonitor::new(HealthPolicy {
            max_bad_steps: 3,
            ..Default::default()
        });
        assert_eq!(mon.record_skip(), StepVerdict::Skipped);
        assert_eq!(mon.record_skip(), StepVerdict::Skipped);
        assert_eq!(mon.record_skip(), StepVerdict::RollBack);
        // A good step resets the streak.
        mon.record_rollback("test").unwrap();
        mon.record_skip();
        mon.record_step(1.0, false);
        assert_eq!(mon.record_skip(), StepVerdict::Skipped);
        assert_eq!(mon.report().skipped_steps, 5);
    }

    #[test]
    fn rollback_budget_aborts_with_diverged() {
        let mut mon = HealthMonitor::new(HealthPolicy {
            max_rollbacks: 1,
            ..Default::default()
        });
        mon.record_rollback("first").unwrap();
        let err = mon.record_rollback("second").unwrap_err();
        match err {
            TrainError::Diverged {
                rollbacks, report, ..
            } => {
                assert_eq!(rollbacks, 1);
                assert_eq!(report.rollbacks, 1);
            }
            other => panic!("expected Diverged, got {other}"),
        }
    }

    #[test]
    fn loss_guard_flags_nonfinite_and_fault_plans() {
        let mut mon = HealthMonitor::new(HealthPolicy {
            fault: FaultPlan {
                bad_steps_from: Some(2),
                panic_on_micro: None,
            },
            ..Default::default()
        });
        let a0 = mon.begin_attempt();
        assert!(!mon.loss_is_bad(1.25, a0));
        assert!(mon.loss_is_bad(f32::NAN, a0));
        assert!(mon.loss_is_bad(f32::INFINITY, a0));
        let a1 = mon.begin_attempt();
        assert!(!mon.loss_is_bad(1.25, a1));
        let a2 = mon.begin_attempt();
        assert!(mon.loss_is_bad(1.25, a2), "fault plan forces attempt 2 bad");
    }

    #[test]
    fn epoch_grad_norm_stats() {
        let mut mon = HealthMonitor::new(HealthPolicy::default());
        mon.record_step(1.0, false);
        mon.record_step(3.0, true);
        mon.end_epoch();
        mon.end_epoch(); // empty epoch -> NaN stats, 0 steps
        let r = mon.report();
        assert_eq!(r.clip_events, 1);
        assert_eq!(r.epoch_grad_norms.len(), 2);
        assert_eq!(r.epoch_grad_norms[0].steps, 2);
        assert!((r.epoch_grad_norms[0].mean - 2.0).abs() < 1e-6);
        assert_eq!(r.epoch_grad_norms[0].min, 1.0);
        assert_eq!(r.epoch_grad_norms[0].max, 3.0);
        assert_eq!(r.epoch_grad_norms[1].steps, 0);
        assert!(r.epoch_grad_norms[1].mean.is_nan());
    }

    #[test]
    fn report_display_and_cleanliness() {
        let mut r = HealthReport::default();
        assert!(r.is_clean());
        assert!(r.to_string().contains("0 skipped"));
        r.skipped_steps = 2;
        r.worker_panics = 1;
        assert!(!r.is_clean());
        let s = r.to_string();
        assert!(
            s.contains("2 skipped") && s.contains("1 worker panics"),
            "{s}"
        );
    }

    #[test]
    fn train_error_display_is_readable() {
        let e = TrainError::Diverged {
            consecutive_bad: 5,
            rollbacks: 2,
            report: HealthReport::default(),
            detail: "loss stayed NaN".into(),
        };
        let s = e.to_string();
        assert!(
            s.contains("2 rollback") && s.contains("loss stayed NaN"),
            "{s}"
        );
    }
}
