//! Data-parallel training utilities: worker-count resolution (the
//! `AIMTS_THREADS` knob), an ordered scoped-thread map, and the gradient
//! all-reduce used by [`crate::AimTs::pretrain`].
//!
//! The scheme is replica-per-worker: each worker owns a deep copy of the
//! model, loads the master weights, computes the gradient of one
//! micro-batch (augmentation, image rasterization, forward, backward all
//! happen on the worker thread), and the master averages the flat
//! gradients and steps its optimizer once.

use std::env;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "AIMTS_THREADS";

/// Resolve the data-parallel worker count.
///
/// Priority: an explicit `requested > 0`, then a positive integer in
/// `AIMTS_THREADS`, then the machine's available parallelism. A result of
/// `1` selects the serial training path.
pub fn worker_count(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
        eprintln!("warning: ignoring invalid {THREADS_ENV}={v:?} (want a positive integer)");
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Element-wise mean of equally-sized gradient buffers (the all-reduce).
/// Panics on an empty slice or mismatched lengths.
pub fn all_reduce_mean(buffers: &[Vec<f32>]) -> Vec<f32> {
    assert!(!buffers.is_empty(), "all_reduce_mean of zero buffers");
    let n = buffers[0].len();
    let mut out = vec![0f32; n];
    for b in buffers {
        assert_eq!(b.len(), n, "all_reduce_mean buffer length mismatch");
        for (o, x) in out.iter_mut().zip(b) {
            *o += x;
        }
    }
    let scale = 1.0 / buffers.len() as f32;
    for o in &mut out {
        *o *= scale;
    }
    out
}

/// Run `f(slot, item)` for every item on up to `workers` scoped threads,
/// returning results in item order. `slot` is the item's position within
/// this call (`0..items.len()`), so with `items.len() <= workers` each
/// invocation gets a dedicated slot — callers use it to index per-worker
/// replicas. With one worker (or one item) everything runs inline on the
/// calling thread.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let w = workers.max(1).min(items.len().max(1));
    if w <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(w);
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        for (ci, (islice, oslice)) in items.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (j, (item, slot)) in islice.iter().zip(oslice.iter_mut()).enumerate() {
                    *slot = Some(f(ci * chunk + j, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("parallel_map worker produced no result"))
        .collect()
}

/// Deterministic per-micro-batch RNG seed (SplitMix64 finalizer), so the
/// augmentations a micro-batch draws depend only on `(base, epoch, index)`
/// — never on thread scheduling or worker count.
pub fn microbatch_seed(base: u64, epoch: u64, index: u64) -> u64 {
    let mut z = base
        ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ index.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_explicit_wins() {
        assert_eq!(worker_count(3), 3);
        assert_eq!(worker_count(1), 1);
    }

    #[test]
    fn worker_count_auto_is_positive() {
        assert!(worker_count(0) >= 1);
    }

    #[test]
    fn all_reduce_mean_averages() {
        let avg = all_reduce_mean(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        assert_eq!(avg, vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn all_reduce_mean_rejects_ragged() {
        let _ = all_reduce_mean(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..37).collect();
        for w in [1, 2, 4, 8] {
            let out = parallel_map(&items, w, |slot, &x| {
                assert!(slot < items.len());
                x * 2
            });
            assert_eq!(
                out,
                items.iter().map(|x| x * 2).collect::<Vec<_>>(),
                "w={w}"
            );
        }
    }

    #[test]
    fn parallel_map_slots_unique_when_items_fit() {
        use std::sync::Mutex;
        let items = [0u8; 4];
        let seen = Mutex::new(Vec::new());
        parallel_map(&items, 4, |slot, _| seen.lock().unwrap().push(slot));
        let mut slots = seen.into_inner().unwrap();
        slots.sort_unstable();
        assert_eq!(slots, vec![0, 1, 2, 3]);
    }

    #[test]
    fn microbatch_seed_is_deterministic_and_spread() {
        assert_eq!(microbatch_seed(7, 1, 2), microbatch_seed(7, 1, 2));
        assert_ne!(microbatch_seed(7, 1, 2), microbatch_seed(7, 1, 3));
        assert_ne!(microbatch_seed(7, 1, 2), microbatch_seed(7, 2, 2));
        assert_ne!(microbatch_seed(8, 1, 2), microbatch_seed(7, 1, 2));
    }
}
