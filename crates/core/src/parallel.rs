//! Data-parallel training utilities: worker-count resolution (the
//! `AIMTS_THREADS` knob), a persistent worker pool, an ordered
//! scoped-thread map, and the gradient all-reduce used by
//! [`crate::AimTs::pretrain`].
//!
//! The scheme is replica-per-worker: each worker owns a deep copy of the
//! model, loads the master weights, computes the gradient of one
//! micro-batch (augmentation, image rasterization, forward, backward all
//! happen on the worker thread), and the master averages the flat
//! gradients and steps its optimizer once.
//!
//! [`with_worker_pool`] is the training loop's engine: it spawns the
//! worker threads **once** per pre-training run (each with its buffer
//! arena enabled — see [`aimts_tensor::arena`]), and every round ships
//! tasks over per-slot channels. Slot `i` always runs on the same thread,
//! so replica `i`'s tensors, arena pool, and caches stay thread-local for
//! the whole run — the property the lock-free hot storage relies on.

use std::env;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "AIMTS_THREADS";

/// Resolve the data-parallel worker count.
///
/// Priority: an explicit `requested > 0`, then a positive integer in
/// `AIMTS_THREADS`, then the machine's available parallelism. A result of
/// `1` selects the serial training path.
pub fn worker_count(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
        eprintln!("warning: ignoring invalid {THREADS_ENV}={v:?} (want a positive integer)");
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Element-wise mean of equally-sized gradient buffers (the all-reduce).
/// Panics on an empty slice or mismatched lengths.
///
/// Accumulation and scaling run through the SIMD kernels
/// ([`aimts_tensor::simd`]), which are bit-identical to the scalar loops
/// they replaced, and the output buffer is arena-backed when the calling
/// thread has a pool enabled.
pub fn all_reduce_mean(buffers: &[Vec<f32>]) -> Vec<f32> {
    assert!(!buffers.is_empty(), "all_reduce_mean of zero buffers");
    let n = buffers[0].len();
    let mut out = aimts_tensor::arena::zeroed(n);
    for b in buffers {
        assert_eq!(b.len(), n, "all_reduce_mean buffer length mismatch");
        aimts_tensor::simd::add_assign(&mut out, b);
    }
    aimts_tensor::simd::scale_assign(&mut out, 1.0 / buffers.len() as f32);
    out
}

/// Finite-guarded all-reduce: the element-wise mean over only the buffers
/// that are entirely finite, with poisoned (any-`NaN`/`inf`) buffers
/// excluded from the average. Returns `None` when every buffer is
/// poisoned (the caller must skip the step), otherwise the mean and the
/// number of buffers excluded.
///
/// Accumulation runs in `f64`, so the sum of finite `f32` values can never
/// overflow and the mean of the survivors — which is bounded by their
/// maximum — is always finite. Panics on an empty slice or mismatched
/// lengths, like [`all_reduce_mean`].
pub fn all_reduce_mean_guarded(buffers: &[Vec<f32>]) -> Option<(Vec<f32>, usize)> {
    assert!(
        !buffers.is_empty(),
        "all_reduce_mean_guarded of zero buffers"
    );
    let n = buffers[0].len();
    for b in buffers {
        assert_eq!(b.len(), n, "all_reduce_mean_guarded buffer length mismatch");
    }
    let finite: Vec<&Vec<f32>> = buffers
        .iter()
        .filter(|b| aimts_tensor::all_finite(b))
        .collect();
    let excluded = buffers.len() - finite.len();
    if finite.is_empty() {
        return None;
    }
    let mut acc = vec![0f64; n];
    for b in &finite {
        for (a, x) in acc.iter_mut().zip(b.iter()) {
            *a += *x as f64;
        }
    }
    let scale = 1.0 / finite.len() as f64;
    let out: Vec<f32> = acc.into_iter().map(|a| (a * scale) as f32).collect();
    debug_assert!(
        aimts_tensor::all_finite(&out),
        "guarded all-reduce emitted a non-finite mean from all-finite inputs"
    );
    Some((out, excluded))
}

/// Render a caught panic payload as a short message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Handle to a live worker pool, usable only inside the `body` closure of
/// [`with_worker_pool`]. Each call to [`PoolHandle::run_round`] dispatches
/// one task per slot and blocks until every dispatched task reports back.
pub struct PoolHandle<T, R> {
    txs: Vec<mpsc::Sender<T>>,
    res_rx: mpsc::Receiver<(usize, Result<R, String>)>,
}

impl<T, R> PoolHandle<T, R> {
    /// Number of worker slots in the pool.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Run one round: task `i` goes to slot `i` (so with stable rounds each
    /// slot always sees the same replica index), and results come back in
    /// slot order. A panicking task is contained on its worker thread and
    /// surfaced as `Err(message)` in that slot; the worker itself survives
    /// and serves later rounds. Panics if the round is larger than the pool.
    pub fn run_round(&mut self, tasks: Vec<T>) -> Vec<Result<R, String>> {
        let n = tasks.len();
        assert!(
            n <= self.txs.len(),
            "round of {n} tasks exceeds {} pool workers",
            self.txs.len()
        );
        let mut out: Vec<Option<Result<R, String>>> = (0..n).map(|_| None).collect();
        let mut pending = 0usize;
        for (slot, task) in tasks.into_iter().enumerate() {
            if self.txs[slot].send(task).is_ok() {
                pending += 1;
            } else {
                // Unreachable in practice (workers catch panics and never
                // exit while the handle lives), kept as a defensive guard.
                out[slot] = Some(Err("worker thread terminated".to_string()));
            }
        }
        while pending > 0 {
            match self.res_rx.recv() {
                Ok((slot, r)) => {
                    out[slot] = Some(r);
                    pending -= 1;
                }
                Err(_) => break,
            }
        }
        out.into_iter()
            .map(|r| r.unwrap_or_else(|| Err("worker thread terminated".to_string())))
            .collect()
    }
}

/// Spawn `workers` persistent worker threads, hand `body` a
/// [`PoolHandle`] for dispatching rounds of tasks to them, and join the
/// pool when `body` returns. `f(slot, task)` runs every task of slot
/// `slot` on that slot's dedicated thread — created once, reused across
/// all rounds — with the thread's buffer arena enabled for its lifetime,
/// so the steady-state training step allocates nothing.
///
/// This replaces the spawn-per-round scheme ([`try_parallel_map`], which
/// survives for one-shot maps): spawning cost is paid once per run instead
/// of once per optimizer step, and each replica's buffers stay on one
/// thread forever.
pub fn with_worker_pool<T, R, F, G, Out>(workers: usize, f: F, body: G) -> Out
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
    G: FnOnce(&mut PoolHandle<T, R>) -> Out,
{
    let workers = workers.max(1);
    std::thread::scope(|s| {
        let (res_tx, res_rx) = mpsc::channel();
        let mut txs = Vec::with_capacity(workers);
        for slot in 0..workers {
            let (tx, task_rx) = mpsc::channel::<T>();
            txs.push(tx);
            let res_tx = res_tx.clone();
            let f = &f;
            s.spawn(move || {
                let _arena = aimts_tensor::arena::enable();
                while let Ok(task) = task_rx.recv() {
                    let r = catch_unwind(AssertUnwindSafe(|| f(slot, task))).map_err(panic_message);
                    if res_tx.send((slot, r)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);
        let mut pool = PoolHandle { txs, res_rx };
        body(&mut pool)
        // `pool` (with the task senders) drops here; workers see the
        // channel close, exit their loop, and the scope joins them.
    })
}

/// [`parallel_map`] with per-item panic containment: a panic inside
/// `f(slot, item)` is caught on the worker thread and surfaced as
/// `Err(message)` in that item's slot, while every other item — including
/// later items of the same worker's chunk — still runs to completion.
///
/// This is what lets one crashed data-parallel replica degrade a training
/// step to the surviving replicas' gradients instead of aborting the
/// process. Lock poisoning cannot leak out of the failure path: tensor
/// storage locks already shrug off poisoning (their writers only overwrite
/// whole buffers, never leaving torn state), and the unwind is stopped at
/// the item boundary before it can cross `std::thread::scope`'s join.
pub fn try_parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let run_one = |slot: usize, item: &T| -> Result<R, String> {
        catch_unwind(AssertUnwindSafe(|| f(slot, item))).map_err(panic_message)
    };
    let w = workers.max(1).min(items.len().max(1));
    if w <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| run_one(i, t))
            .collect();
    }
    let chunk = items.len().div_ceil(w);
    let mut out: Vec<Option<Result<R, String>>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        for (ci, (islice, oslice)) in items.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate() {
            let run_one = &run_one;
            s.spawn(move || {
                for (j, (item, slot)) in islice.iter().zip(oslice.iter_mut()).enumerate() {
                    *slot = Some(run_one(ci * chunk + j, item));
                }
            });
        }
    });
    out.into_iter()
        // aimts-lint: allow(A001, every slot is written exactly once by the scoped worker that owns it)
        .map(|r| r.expect("parallel_map worker produced no result"))
        .collect()
}

/// Run `f(slot, item)` for every item on up to `workers` scoped threads,
/// returning results in item order. `slot` is the item's position within
/// this call (`0..items.len()`), so with `items.len() <= workers` each
/// invocation gets a dedicated slot — callers use it to index per-worker
/// replicas. With one worker (or one item) everything runs inline on the
/// calling thread.
///
/// A panicking item re-raises the panic on the *calling* thread (after all
/// other items have completed); callers that must survive worker crashes
/// use [`try_parallel_map`] instead.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    try_parallel_map(items, workers, f)
        .into_iter()
        // aimts-lint: allow(A001, documented contract: parallel_map re-raises worker panics on the caller)
        .map(|r| r.unwrap_or_else(|msg| panic!("parallel_map worker panicked: {msg}")))
        .collect()
}

/// Deterministic per-micro-batch RNG seed (SplitMix64 finalizer), so the
/// augmentations a micro-batch draws depend only on `(base, epoch, index)`
/// — never on thread scheduling or worker count.
pub fn microbatch_seed(base: u64, epoch: u64, index: u64) -> u64 {
    let mut z = base
        ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ index.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_explicit_wins() {
        assert_eq!(worker_count(3), 3);
        assert_eq!(worker_count(1), 1);
    }

    #[test]
    fn worker_count_auto_is_positive() {
        assert!(worker_count(0) >= 1);
    }

    #[test]
    fn all_reduce_mean_averages() {
        let avg = all_reduce_mean(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        assert_eq!(avg, vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn all_reduce_mean_rejects_ragged() {
        let _ = all_reduce_mean(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..37).collect();
        for w in [1, 2, 4, 8] {
            let out = parallel_map(&items, w, |slot, &x| {
                assert!(slot < items.len());
                x * 2
            });
            assert_eq!(
                out,
                items.iter().map(|x| x * 2).collect::<Vec<_>>(),
                "w={w}"
            );
        }
    }

    #[test]
    fn parallel_map_slots_unique_when_items_fit() {
        use std::sync::Mutex;
        let items = [0u8; 4];
        let seen = Mutex::new(Vec::new());
        parallel_map(&items, 4, |slot, _| seen.lock().unwrap().push(slot));
        let mut slots = seen.into_inner().unwrap();
        slots.sort_unstable();
        assert_eq!(slots, vec![0, 1, 2, 3]);
    }

    #[test]
    fn guarded_all_reduce_excludes_poisoned_buffers() {
        let clean = vec![vec![1.0, 2.0], vec![3.0, 6.0]];
        let (mean, excluded) = all_reduce_mean_guarded(&clean).unwrap();
        assert_eq!(mean, vec![2.0, 4.0]);
        assert_eq!(excluded, 0);

        let poisoned = vec![vec![1.0, 2.0], vec![f32::NAN, 6.0], vec![3.0, 10.0]];
        let (mean, excluded) = all_reduce_mean_guarded(&poisoned).unwrap();
        assert_eq!(mean, vec![2.0, 6.0]);
        assert_eq!(excluded, 1);

        let all_bad = vec![vec![f32::INFINITY], vec![f32::NAN]];
        assert!(all_reduce_mean_guarded(&all_bad).is_none());
    }

    #[test]
    fn guarded_all_reduce_survives_extreme_finite_values() {
        // Two MAX buffers overflow an f32 accumulator; the f64 path must
        // still return the finite mean (== f32::MAX).
        let buffers = vec![vec![f32::MAX], vec![f32::MAX]];
        let (mean, excluded) = all_reduce_mean_guarded(&buffers).unwrap();
        assert_eq!(excluded, 0);
        assert_eq!(mean, vec![f32::MAX]);
    }

    #[test]
    fn try_parallel_map_contains_panics() {
        let items: Vec<usize> = (0..9).collect();
        for w in [1, 2, 4] {
            let out = try_parallel_map(&items, w, |_slot, &x| {
                if x == 4 {
                    panic!("injected panic on item {x}");
                }
                x * 10
            });
            assert_eq!(out.len(), items.len(), "w={w}");
            for (i, r) in out.iter().enumerate() {
                if i == 4 {
                    let msg = r.as_ref().unwrap_err();
                    assert!(msg.contains("injected panic"), "w={w}: {msg}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 10, "w={w}");
                }
            }
        }
    }

    #[test]
    fn parallel_map_repanics_on_caller_thread() {
        let items = [0usize, 1];
        let caught = std::panic::catch_unwind(|| {
            parallel_map(&items, 2, |_slot, &x| {
                if x == 1 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn worker_pool_runs_rounds_in_slot_order() {
        let (r1, r2) = with_worker_pool(
            4,
            |slot, x: usize| slot * 100 + x,
            |pool| {
                assert_eq!(pool.workers(), 4);
                (pool.run_round(vec![1, 2, 3, 4]), pool.run_round(vec![5, 6]))
            },
        );
        let vals = |rs: Vec<Result<usize, String>>| -> Vec<usize> {
            rs.into_iter().map(|r| r.unwrap()).collect()
        };
        assert_eq!(vals(r1), vec![1, 102, 203, 304]);
        assert_eq!(vals(r2), vec![5, 106]);
    }

    #[test]
    fn worker_pool_contains_panics_and_workers_survive() {
        let (r1, r2) = with_worker_pool(
            2,
            |_slot, x: i32| {
                if x < 0 {
                    panic!("bad task {x}");
                }
                x * 2
            },
            |pool| (pool.run_round(vec![-1, 3]), pool.run_round(vec![4, 5])),
        );
        assert!(r1[0].as_ref().unwrap_err().contains("bad task -1"));
        assert_eq!(*r1[1].as_ref().unwrap(), 6);
        // Slot 0's thread survived the contained panic and served round 2.
        assert_eq!(*r2[0].as_ref().unwrap(), 8);
        assert_eq!(*r2[1].as_ref().unwrap(), 10);
    }

    #[test]
    fn worker_pool_reuses_threads_across_rounds() {
        let (a, b) = with_worker_pool(
            3,
            |_slot, _x: ()| std::thread::current().id(),
            |pool| {
                (
                    pool.run_round(vec![(), (), ()]),
                    pool.run_round(vec![(), (), ()]),
                )
            },
        );
        let ids_a: Vec<_> = a.into_iter().map(|r| r.unwrap()).collect();
        let ids_b: Vec<_> = b.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(ids_a, ids_b, "slot i must stay pinned to one thread");
        assert_ne!(ids_a[0], ids_a[1], "slots must be distinct threads");
        assert_ne!(ids_a[1], ids_a[2]);
    }

    #[test]
    fn worker_pool_threads_have_arena_enabled() {
        let on = with_worker_pool(
            1,
            |_slot, _x: ()| aimts_tensor::arena::is_enabled(),
            |pool| pool.run_round(vec![()]),
        );
        assert!(*on[0].as_ref().unwrap());
        // ...and it is per-thread: the caller's arena state is untouched.
        assert!(!aimts_tensor::arena::is_enabled());
    }

    #[test]
    fn microbatch_seed_is_deterministic_and_spread() {
        assert_eq!(microbatch_seed(7, 1, 2), microbatch_seed(7, 1, 2));
        assert_ne!(microbatch_seed(7, 1, 2), microbatch_seed(7, 1, 3));
        assert_ne!(microbatch_seed(7, 1, 2), microbatch_seed(7, 2, 2));
        assert_ne!(microbatch_seed(8, 1, 2), microbatch_seed(7, 1, 2));
    }
}
