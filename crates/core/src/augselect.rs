//! Adaptive augmentation selection (extension).
//!
//! The paper's related work (§II-B: InfoTS, AutoTCL) selects augmentations
//! per dataset by information criteria, but notes those methods cannot
//! handle *multi-source* pre-training — which is why AimTS aggregates all
//! augmentations into prototypes instead. This module provides the
//! complementary tool: an InfoTS-flavored scorer that rates each candidate
//! augmentation on a pool by
//!
//! * **fidelity** — mean cosine similarity between the encoder
//!   representation of a sample and its augmented view (semantics
//!   preserved ⇒ high), and
//! * **diversity** — mean normalized input-space distance between two
//!   independent draws of the augmentation on the same sample
//!   (varied views ⇒ high),
//!
//! combining them as `score = fidelity + λ · diversity`. Useful for
//! auditing a bank before pre-training or for building dataset-specific
//! banks in the case-by-case regime.

use aimts_augment::Augmentation;
use aimts_data::preprocess::{resample_sample, z_normalize_sample};
use aimts_data::MultiSeries;
use aimts_tensor::no_grad;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::model::AimTs;

/// Per-augmentation scores from [`score_augmentations`].
#[derive(Debug, Clone, PartialEq)]
pub struct AugmentationScore {
    pub name: &'static str,
    /// Mean cosine similarity between original and augmented
    /// representations, in [-1, 1]; higher = more semantics-preserving.
    pub fidelity: f32,
    /// Mean normalized input distance between two independent draws,
    /// >= 0; higher = more varied views.
    pub diversity: f32,
    /// `fidelity + lambda * diversity`.
    pub score: f32,
}

/// Score every augmentation of `bank` on (up to 64 samples of) `pool`
/// using `model`'s TS encoder. Deterministic per seed.
pub fn score_augmentations(
    model: &AimTs,
    pool: &[MultiSeries],
    bank: &[Augmentation],
    lambda: f32,
    seed: u64,
) -> Vec<AugmentationScore> {
    assert!(!pool.is_empty(), "empty pool");
    assert!(!bank.is_empty(), "empty bank");
    let mut rng = StdRng::seed_from_u64(seed);
    let prepared: Vec<MultiSeries> = pool
        .iter()
        .take(64)
        .map(|s| {
            let mut v = resample_sample(s, model.cfg.pretrain_len);
            z_normalize_sample(&mut v);
            v
        })
        .collect();

    bank.iter()
        .map(|aug| {
            let mut fid = 0f64;
            let mut div = 0f64;
            for s in &prepared {
                let v1 = aug.apply_multivariate(s, &mut rng);
                let v2 = aug.apply_multivariate(s, &mut rng);
                // Fidelity in representation space.
                let (r_orig, r_aug) =
                    no_grad(|| (model.encode(&[s]).to_vec(), model.encode(&[&v1]).to_vec()));
                fid += cosine(&r_orig, &r_aug) as f64;
                // Diversity in (normalized) input space.
                let flat1 = v1.concat();
                let flat2 = v2.concat();
                let d = aimts_augment::euclidean(&flat1, &flat2) / (flat1.len() as f32).sqrt();
                div += d as f64;
            }
            let n = prepared.len() as f64;
            let fidelity = (fid / n) as f32;
            let diversity = (div / n) as f32;
            AugmentationScore {
                name: aug.name(),
                fidelity,
                diversity,
                score: fidelity + lambda * diversity,
            }
        })
        .collect()
}

/// Select the `g` highest-scoring augmentations from `bank`.
pub fn select_bank(
    model: &AimTs,
    pool: &[MultiSeries],
    bank: &[Augmentation],
    g: usize,
    lambda: f32,
    seed: u64,
) -> Vec<Augmentation> {
    let scores = score_augmentations(model, pool, bank, lambda, seed);
    let mut idx: Vec<usize> = (0..bank.len()).collect();
    idx.sort_by(|&a, &b| scores[b].score.total_cmp(&scores[a].score));
    idx.into_iter()
        .take(g.min(bank.len()))
        .map(|i| bank[i].clone())
        .collect()
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    dot / (na * nb).max(1e-8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AimTsConfig;
    use aimts_data::archives::monash_like_pool;

    fn setup() -> (AimTs, Vec<MultiSeries>) {
        let model = AimTs::new(AimTsConfig::tiny(), 0);
        let pool: Vec<MultiSeries> = monash_like_pool(2, 0).into_iter().take(8).collect();
        (model, pool)
    }

    #[test]
    fn identity_like_augmentation_has_top_fidelity() {
        let (model, pool) = setup();
        let bank = vec![
            Augmentation::Jitter { sigma: 0.0 }, // identity
            Augmentation::Jitter { sigma: 2.0 }, // destroys the signal
        ];
        let scores = score_augmentations(&model, &pool, &bank, 0.0, 1);
        assert!(scores[0].fidelity > scores[1].fidelity);
        assert!(
            (scores[0].fidelity - 1.0).abs() < 1e-4,
            "identity fidelity ~1"
        );
        assert_eq!(scores[0].diversity, 0.0, "identity has no diversity");
    }

    #[test]
    fn stronger_noise_is_more_diverse() {
        let (model, pool) = setup();
        let bank = vec![
            Augmentation::Jitter { sigma: 0.05 },
            Augmentation::Jitter { sigma: 0.5 },
        ];
        let scores = score_augmentations(&model, &pool, &bank, 0.0, 2);
        assert!(scores[1].diversity > scores[0].diversity);
    }

    #[test]
    fn select_bank_returns_g_unique_augmentations() {
        let (model, pool) = setup();
        let bank = aimts_augment::extended_bank();
        let picked = select_bank(&model, &pool, &bank, 3, 0.5, 3);
        assert_eq!(picked.len(), 3);
        // Lambda = 0 must prefer the most semantics-preserving ones.
        let conservative = select_bank(&model, &pool, &bank, 1, 0.0, 3);
        let scores = score_augmentations(&model, &pool, &bank, 0.0, 3);
        let best = scores
            .iter()
            .max_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
            .unwrap();
        assert_eq!(conservative[0].name(), best.name);
    }

    #[test]
    fn deterministic_per_seed() {
        let (model, pool) = setup();
        let bank = aimts_augment::default_bank();
        let a = score_augmentations(&model, &pool, &bank, 0.5, 7);
        let b = score_augmentations(&model, &pool, &bank, 0.5, 7);
        assert_eq!(a, b);
    }
}
