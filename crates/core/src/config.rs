//! Configuration for the AimTS model and its two training stages.

use std::path::PathBuf;

use aimts_augment::{default_bank, Augmentation};
use aimts_imaging::ImageConfig;

use crate::health::HealthPolicy;

/// Architecture + loss hyper-parameters (paper §IV, §V-A.3).
#[derive(Debug, Clone)]
pub struct AimTsConfig {
    /// Hidden width of the TS encoder's convolution stack.
    pub hidden: usize,
    /// Representation dimension `J` produced by both encoders.
    pub repr_dim: usize,
    /// Projection dimension of `P^TS` / `P^I` used in the contrastive space.
    pub proj_dim: usize,
    /// Dilations of the TS encoder's residual blocks.
    pub dilations: Vec<usize>,
    /// Augmentation bank (`G` = `bank.len()`); defaults to the paper's 5.
    pub bank: Vec<Augmentation>,
    /// Base temperature `τ0` of the adaptive intra-prototype temperature
    /// (Eq. 3).
    pub tau0: f32,
    /// Temperature of the inter-prototype loss (Eq. 5).
    pub tau_inter: f32,
    /// Temperature of the series-image losses (Eq. 7/10).
    pub tau_si: f32,
    /// Weight `α` on the inter-prototype term of `L_proto` (Eq. 6).
    pub alpha: f32,
    /// Weight `β` on the naive term of `L_SI` (Eq. 12).
    pub beta: f32,
    /// Beta-distribution parameter `γ` of the mixup coefficient
    /// `λ ~ Beta(γ, γ)` (Eq. 9).
    pub gamma: f32,
    /// Common length every pre-training series is resampled to.
    pub pretrain_len: usize,
    /// Image rendering settings.
    pub image: ImageConfig,
    /// Toggles for the ablation study (Table VI).
    pub ablation: Ablation,
}

/// Which loss components are active (Table VI rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ablation {
    /// Inter-prototype contrastive loss (Eq. 5).
    pub inter: bool,
    /// Intra-prototype adaptive-temperature loss (Eq. 4).
    pub intra: bool,
    /// Naive series-image loss (Eq. 8).
    pub si_naive: bool,
    /// Geodesic-mixup series-image loss (Eq. 11).
    pub si_mixup: bool,
}

impl Default for Ablation {
    fn default() -> Self {
        Ablation {
            inter: true,
            intra: true,
            si_naive: true,
            si_mixup: true,
        }
    }
}

impl Ablation {
    /// Table VI row: inter-prototype contrastive learning only.
    pub fn inter_only() -> Self {
        Ablation {
            inter: true,
            intra: false,
            si_naive: false,
            si_mixup: false,
        }
    }

    /// Table VI row: full prototype-based contrastive learning only.
    pub fn proto_only() -> Self {
        Ablation {
            inter: true,
            intra: true,
            si_naive: false,
            si_mixup: false,
        }
    }

    /// Table VI row: naive series-image contrastive learning only.
    pub fn si_naive_only() -> Self {
        Ablation {
            inter: false,
            intra: false,
            si_naive: true,
            si_mixup: false,
        }
    }

    /// Table VI row: full series-image contrastive learning only.
    pub fn si_only() -> Self {
        Ablation {
            inter: false,
            intra: false,
            si_naive: true,
            si_mixup: true,
        }
    }
}

impl Default for AimTsConfig {
    fn default() -> Self {
        AimTsConfig {
            hidden: 32,
            repr_dim: 64,
            proj_dim: 32,
            dilations: vec![1, 2, 4],
            bank: default_bank(),
            tau0: 0.2,
            tau_inter: 0.2,
            tau_si: 0.2,
            alpha: 0.7,
            beta: 0.9,
            gamma: 0.1,
            pretrain_len: 64,
            image: ImageConfig::default(),
            ablation: Ablation::default(),
        }
    }
}

impl AimTsConfig {
    /// Minimal configuration for fast tests and doc-tests.
    pub fn tiny() -> Self {
        AimTsConfig {
            hidden: 8,
            repr_dim: 16,
            proj_dim: 8,
            dilations: vec![1, 2],
            pretrain_len: 32,
            image: ImageConfig::small(),
            ..Default::default()
        }
    }

    /// Number of augmentations `G`.
    pub fn g(&self) -> usize {
        self.bank.len()
    }
}

/// Fault-tolerant checkpointing policy for pre-training.
///
/// With `dir` set, [`crate::AimTs::pretrain`] writes a full training
/// checkpoint (`ckpt-NNNNNN.aimts`) after every `every` completed epochs
/// (and always after the final one), retaining the newest `keep_last`.
/// With `resume_from` set, training restores that checkpoint — parameters,
/// Adam moments, scheduler state, RNG stream — and continues exactly where
/// the interrupted run left off.
#[derive(Debug, Clone, Default)]
pub struct CheckpointPolicy {
    /// Directory for periodic checkpoints; `None` disables writing.
    pub dir: Option<PathBuf>,
    /// Checkpoint cadence in completed epochs (`0` is treated as `1`).
    pub every: usize,
    /// Retain only the newest K periodic checkpoints (`0` keeps all).
    pub keep_last: usize,
    /// Checkpoint file to restore before the first epoch.
    pub resume_from: Option<PathBuf>,
}

impl CheckpointPolicy {
    /// Effective cadence (guards the `every = 0` footgun).
    pub fn every_epochs(&self) -> usize {
        self.every.max(1)
    }
}

/// Which execution engine runs each training step.
///
/// `Eager` is the reference interpreter: every step walks the autograd
/// graph op by op. `Compiled` traces the first step of each distinct batch
/// shape into a flat replay plan (see `aimts_tensor::plan`) and replays it
/// for subsequent steps — same arithmetic, bit-identical results, no graph
/// bookkeeping. A step whose plan cannot be replayed (shape change, thread
/// or topology mismatch, untraceable op) silently falls back to eager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Executor {
    /// Interpret the autograd graph every step (reference path).
    #[default]
    Eager,
    /// Trace once per batch shape, then replay the compiled plan.
    Compiled,
}

/// Pre-training loop settings (paper: Adam, lr 7e-3, StepLR, 2 epochs,
/// batch 16).
#[derive(Debug, Clone)]
pub struct PretrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    /// StepLR period (epochs) and decay factor.
    pub lr_step: usize,
    pub lr_gamma: f32,
    pub seed: u64,
    /// Data-parallel worker threads. `0` (the default) resolves from the
    /// `AIMTS_THREADS` environment variable, falling back to the machine's
    /// available parallelism; `1` forces the serial training path.
    pub workers: usize,
    /// Periodic checkpointing / resume policy (disabled by default).
    pub checkpoint: CheckpointPolicy,
    /// Self-healing supervisor policy: numerical guards, optional
    /// gradient clipping, skip-anomalous-step, automatic rollback. The
    /// defaults guard and skip but never perturb a clean run.
    pub health: HealthPolicy,
    /// Step execution engine (eager interpreter or trace-and-replay).
    pub executor: Executor,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 7e-3,
            lr_step: 1,
            lr_gamma: 0.5,
            seed: 3407,
            workers: 0,
            checkpoint: CheckpointPolicy::default(),
            health: HealthPolicy::default(),
            executor: Executor::default(),
        }
    }
}

/// Fine-tuning settings (paper: Adam, lr 1e-3, full fine-tuning + MLP
/// classifier).
#[derive(Debug, Clone)]
pub struct FineTuneConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    /// Hidden width of the MLP classifier head.
    pub head_hidden: usize,
    /// If false, freeze the encoder (linear-probe mode; extension).
    pub train_encoder: bool,
    pub seed: u64,
    /// When set, [`crate::FineTuned::fit`] atomically checkpoints the
    /// encoder + head to this path whenever training-split accuracy
    /// reaches a new best.
    pub best_ckpt: Option<PathBuf>,
    /// Numerical guards for fine-tuning: non-finite losses/gradients skip
    /// the step, optional global-norm clipping. Fine-tuning has no full
    /// optimizer checkpoint, so the rollback rungs of the ladder apply to
    /// pre-training only.
    pub health: HealthPolicy,
    /// Step execution engine (eager interpreter or trace-and-replay).
    pub executor: Executor,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        FineTuneConfig {
            epochs: 20,
            batch_size: 16,
            lr: 1e-3,
            head_hidden: 64,
            train_encoder: true,
            seed: 3407,
            best_ckpt: None,
            health: HealthPolicy::default(),
            executor: Executor::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AimTsConfig::default();
        assert_eq!(c.g(), 5);
        assert_eq!(c.alpha, 0.7);
        assert_eq!(c.beta, 0.9);
        assert_eq!(c.gamma, 0.1);
        let p = PretrainConfig::default();
        assert_eq!((p.epochs, p.batch_size, p.seed), (2, 16, 3407));
        assert!((p.lr - 7e-3).abs() < 1e-9);
        let f = FineTuneConfig::default();
        assert!((f.lr - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn ablation_presets() {
        assert!(!Ablation::inter_only().intra);
        assert!(Ablation::proto_only().intra);
        assert!(!Ablation::si_only().inter);
        assert!(Ablation::si_only().si_mixup);
        assert!(!Ablation::si_naive_only().si_mixup);
    }
}
