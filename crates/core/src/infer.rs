//! Lock-free inference: frozen model copies, per-shape compiled plans, and
//! self-describing serving bundles.
//!
//! [`InferenceModel`] is the serving-side view of a fine-tuned classifier:
//! every parameter lives in an untracked `Storage::Hot` buffer (see
//! [`Replicate::freeze`]), so a forward pass acquires **zero** tensor locks
//! and allocates **zero** autograd graph state — the regression test
//! `infer_lockfree.rs` pins both via the lock-order checker's acquisition
//! counter. The model is immutable after construction, which is what lets
//! `aimts-serve` share one `Arc<InferenceModel>` across request threads and
//! hot-swap it with a pointer flip.
//!
//! Classification is bitwise-identical to [`FineTuned::predict`] for *any*
//! grouping of samples into batches: normalization is per-sample, the
//! encoder is channel-independent, and every kernel accumulates per output
//! element in a fixed order, so a sample's logits do not depend on its
//! batch neighbours. `tests/serve_conformance.rs` pins that contract.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

use aimts_data::preprocess::z_normalize_sample;
use aimts_data::{MultiSeries, Split};
use aimts_nn::{
    apply_named_tensors, decode_named_tensors, encode_named_tensors, sections, Activation,
    Checkpoint, CheckpointError, Mlp, Module, Replicate, SectionReader, SectionWriter,
};
use aimts_tensor::plan::{self, CompiledPlan};
use aimts_tensor::{no_grad, Tensor};

use crate::batch::{encode_channel_independent, samples_to_tensor};
use crate::config::Executor;
use crate::encoder::TsEncoder;
use crate::finetune::FineTuned;
use crate::health::HealthReport;

/// Offline evaluation and the online batcher both chunk un-bounded inputs
/// at this size; bounded peak activation memory, no effect on results.
pub const INFER_CHUNK: usize = 64;

/// A traced inference forward for one batch shape: the replay plan plus its
/// persistent `[B, M, T]` input handle.
struct InferPlan {
    plan: CompiledPlan,
    x: Tensor,
}

/// Compiled-plan cache keyed by batch shape `(B, M, T)`; `None` poisons a
/// shape whose trace failed so it stays permanently eager. Plans only
/// replay on the thread that traced them — off-thread calls take the
/// (bitwise-identical) eager path — so the mutex is for `Sync`, not
/// contention.
type InferPlans = Mutex<HashMap<(usize, usize, usize), Option<Arc<InferPlan>>>>;

/// An observation hook run on every batch before the forward pass (see
/// [`InferenceModel::with_pre_classify_hook`]).
pub type PreClassifyHook = Arc<dyn Fn(&[&MultiSeries]) + Send + Sync>;

/// An immutable, lock-free classifier: frozen encoder + frozen head.
pub struct InferenceModel {
    encoder: TsEncoder,
    head: Mlp,
    n_classes: usize,
    executor: Executor,
    plans: InferPlans,
    pre_hook: Option<PreClassifyHook>,
}

impl InferenceModel {
    /// Freeze `encoder` + `head` into a serving model (copies parameters
    /// into untracked Hot storage; the originals are untouched).
    pub fn new(encoder: &TsEncoder, head: &Mlp, n_classes: usize, executor: Executor) -> Self {
        InferenceModel {
            encoder: encoder.freeze(),
            head: head.freeze(),
            n_classes,
            executor,
            plans: Mutex::new(HashMap::new()),
            pre_hook: None,
        }
    }

    /// Install an observation hook invoked with each (shape-homogeneous)
    /// batch at the top of [`InferenceModel::classify`], before any
    /// tensor work. The hook must not mutate the samples; it exists so
    /// fault-injection harnesses can make specific payloads panic inside
    /// the guarded inference path exactly as a model crash would
    /// (`aimts-serve`'s poison-isolation tests). `None` in production.
    pub fn with_pre_classify_hook(mut self, hook: PreClassifyHook) -> Self {
        self.pre_hook = Some(hook);
        self
    }

    /// Number of output classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The executor this model classifies with.
    pub fn executor(&self) -> Executor {
        self.executor
    }

    /// Class predictions for raw (un-normalized) samples, all of the same
    /// `(M, T)` shape; use [`InferenceModel::classify_mixed`] for
    /// heterogeneous batches. Input order is preserved.
    pub fn classify(&self, samples: &[&MultiSeries]) -> Vec<usize> {
        assert!(!samples.is_empty(), "classify on an empty batch");
        if let Some(hook) = &self.pre_hook {
            hook(samples);
        }
        no_grad(|| {
            let mut preds = Vec::with_capacity(samples.len());
            for chunk in samples.chunks(INFER_CHUNK) {
                let prepared: Vec<MultiSeries> = chunk
                    .iter()
                    .map(|s| {
                        let mut v = (*s).clone();
                        z_normalize_sample(&mut v);
                        v
                    })
                    .collect();
                let refs: Vec<&MultiSeries> = prepared.iter().collect();
                let x = samples_to_tensor(&refs);
                preds.extend(self.logits_argmax(&x));
            }
            preds
        })
    }

    /// Class predictions for samples of arbitrary (possibly mixed) shapes:
    /// groups by `(M, T)` internally and scatters results back to input
    /// order. Each group classifies exactly as a homogeneous
    /// [`InferenceModel::classify`] call would.
    pub fn classify_mixed(&self, samples: &[&MultiSeries]) -> Vec<usize> {
        assert!(!samples.is_empty(), "classify on an empty batch");
        // Order-preserving grouping: first-seen shape order, input order
        // within each group.
        let mut groups: Vec<((usize, usize), Vec<usize>)> = Vec::new();
        for (i, s) in samples.iter().enumerate() {
            let key = (s.len(), s[0].len());
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, idx)) => idx.push(i),
                None => groups.push((key, vec![i])),
            }
        }
        let mut preds = vec![0usize; samples.len()];
        for (_, idx) in &groups {
            let group: Vec<&MultiSeries> = idx.iter().map(|&i| samples[i]).collect();
            for (&i, p) in idx.iter().zip(self.classify(&group)) {
                preds[i] = p;
            }
        }
        preds
    }

    /// Class predictions for a labeled split (the offline-evaluation entry;
    /// same semantics as [`FineTuned::predict`]).
    pub fn predict_split(&self, split: &Split) -> Vec<usize> {
        assert!(!split.is_empty());
        let refs: Vec<&MultiSeries> = split.samples.iter().map(|s| &s.vars).collect();
        self.classify(&refs)
    }

    /// Forward one prepared `[B, M, T]` batch and arg-max the logits,
    /// through the configured executor. Runs under the caller's `no_grad`.
    fn logits_argmax(&self, x: &Tensor) -> Vec<usize> {
        if self.executor == Executor::Eager {
            return self.eager_logits(x).argmax_axis(1);
        }
        let key = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let cached = {
            let plans = self
                .plans
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            plans.get(&key).cloned()
        };
        match cached {
            Some(None) => self.eager_logits(x).argmax_axis(1),
            Some(Some(ip)) => {
                if ip.plan.on_trace_thread() && ip.plan.check_topology(1).is_ok() {
                    ip.x.set_data(&x.data());
                    if ip.plan.run().is_ok() {
                        return ip.plan.output(0).argmax_axis(1);
                    }
                }
                self.eager_logits(x).argmax_axis(1)
            }
            None => {
                let traced = plan::trace(std::slice::from_ref(x), 1, || vec![self.eager_logits(x)]);
                let entry = match traced {
                    Ok(plan) => Some(Arc::new(InferPlan { plan, x: x.clone() })),
                    Err(_) => None,
                };
                {
                    let mut plans = self
                        .plans
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    plans.insert(key, entry.clone());
                }
                match entry {
                    // The freshly traced plan already holds this batch's
                    // logits; read them out directly.
                    Some(ip) => ip.plan.output(0).argmax_axis(1),
                    None => self.eager_logits(x).argmax_axis(1),
                }
            }
        }
    }

    fn eager_logits(&self, x: &Tensor) -> Tensor {
        self.head
            .forward(&encode_channel_independent(&self.encoder, x))
    }
}

impl FineTuned {
    /// Freeze this fine-tuned model into an immutable, lock-free
    /// [`InferenceModel`] (see module docs).
    pub fn freeze(&self, executor: Executor) -> InferenceModel {
        InferenceModel::new(&self.encoder, &self.head, self.n_classes, executor)
    }

    /// Atomically write a *self-describing* serving bundle: an `.aimts`
    /// checkpoint with an [`sections::ARCH`] section (architecture
    /// hyper-parameters) plus the usual [`sections::PARAMS`] payload, so a
    /// server can reconstruct the model from the file alone.
    pub fn save_bundle(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut arch = SectionWriter::new();
        arch.put_u32(self.encoder.hidden() as u32);
        arch.put_u32(self.encoder.repr_dim() as u32);
        arch.put_u32(self.head_hidden() as u32);
        arch.put_u32(self.n_classes as u32);
        let dilations: Vec<u32> = self.encoder.dilations().iter().map(|&d| d as u32).collect();
        arch.put_u32_slice(&dilations);
        let mut ck = Checkpoint::new(0, 0);
        ck.push_section(sections::ARCH, arch.finish());
        ck.push_section(
            sections::PARAMS,
            encode_named_tensors(&self.named_parameters()),
        );
        ck.save(path)
    }

    /// Reconstruct a fine-tuned model from a [`FineTuned::save_bundle`]
    /// file. Every checksum, the architecture section, and every parameter
    /// name/shape are validated; any defect surfaces as a typed
    /// [`CheckpointError`] without partial state.
    pub fn load_bundle(path: &Path) -> Result<FineTuned, CheckpointError> {
        let ck = Checkpoint::load(path)?;
        let mut arch = SectionReader::new(ck.require_section(sections::ARCH)?, sections::ARCH);
        let hidden = arch.get_u32("hidden")? as usize;
        let repr_dim = arch.get_u32("repr_dim")? as usize;
        let head_hidden = arch.get_u32("head_hidden")? as usize;
        let n_classes = arch.get_u32("n_classes")? as usize;
        let dilations: Vec<usize> = arch
            .get_u32_slice("dilations")?
            .iter()
            .map(|&d| d as usize)
            .collect();
        arch.finish()?;
        if hidden == 0
            || repr_dim == 0
            || head_hidden == 0
            || n_classes == 0
            || dilations.is_empty()
        {
            return Err(CheckpointError::Malformed {
                context: format!("section `{}`", sections::ARCH),
                detail: "architecture dimensions must be non-zero".to_string(),
            });
        }
        let encoder = TsEncoder::new(hidden, repr_dim, &dilations, 0);
        let head = Mlp::new(&[repr_dim, head_hidden, n_classes], Activation::Gelu, 0);
        let tuned = FineTuned {
            encoder,
            head,
            n_classes,
            train_losses: Vec::new(),
            best_train_accuracy: None,
            health: HealthReport::default(),
        };
        let entries =
            decode_named_tensors(ck.require_section(sections::PARAMS)?, sections::PARAMS)?;
        apply_named_tensors(&entries, &tuned.named_parameters())?;
        Ok(tuned)
    }

    /// Hidden width of the classifier head (recovered from the first head
    /// layer's weight shape; the struct does not store the config).
    fn head_hidden(&self) -> usize {
        let mut named = Vec::new();
        self.head.named_parameters("head", &mut named);
        let (_, w) = named
            .iter()
            .find(|(n, _)| n == "head.0.weight")
            // aimts-lint: allow(A001, Mlp::new always registers head.0.weight; absence is unreachable)
            .expect("Mlp head always has a first Linear layer");
        w.shape()[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AimTsConfig, FineTuneConfig};
    use crate::model::AimTs;
    use aimts_data::generator::{DatasetSpec, PatternFamily};
    use aimts_data::Dataset;

    fn easy_dataset() -> Dataset {
        DatasetSpec {
            n_classes: 2,
            train_per_class: 8,
            test_per_class: 8,
            noise: 0.05,
            length: 48,
            ..DatasetSpec::new("easy", PatternFamily::SineFreq, 5)
        }
        .generate()
    }

    fn tuned() -> FineTuned {
        let model = AimTs::new(AimTsConfig::tiny(), 3407);
        model.fine_tune(
            &easy_dataset(),
            &FineTuneConfig {
                epochs: 2,
                batch_size: 8,
                ..Default::default()
            },
        )
    }

    #[test]
    fn frozen_matches_offline_predict_both_executors() {
        let t = tuned();
        let ds = easy_dataset();
        let offline = t.predict(&ds.test);
        for executor in [Executor::Eager, Executor::Compiled] {
            let m = t.freeze(executor);
            assert_eq!(m.predict_split(&ds.test), offline, "{executor:?}");
        }
    }

    #[test]
    fn singletons_match_full_batch() {
        let t = tuned();
        let ds = easy_dataset();
        let m = t.freeze(Executor::Compiled);
        let full = m.predict_split(&ds.test);
        for (i, s) in ds.test.samples.iter().enumerate() {
            assert_eq!(m.classify(&[&s.vars]), vec![full[i]], "sample {i}");
        }
    }

    #[test]
    fn mixed_shapes_group_and_scatter() {
        let t = tuned();
        let m = t.freeze(Executor::Eager);
        let a: MultiSeries = vec![(0..48).map(|i| (i as f32).sin()).collect()];
        let b: MultiSeries = vec![(0..32).map(|i| (i as f32).cos()).collect()];
        let mixed = m.classify_mixed(&[&a, &b, &a]);
        assert_eq!(mixed[0], m.classify(&[&a])[0]);
        assert_eq!(mixed[1], m.classify(&[&b])[0]);
        assert_eq!(mixed[2], mixed[0]);
    }

    #[test]
    fn bundle_round_trips() {
        let t = tuned();
        let ds = easy_dataset();
        let dir = std::env::temp_dir().join(format!("aimts-bundle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("model.aimts");
        t.save_bundle(&path).expect("save bundle");
        let back = FineTuned::load_bundle(&path).expect("load bundle");
        assert_eq!(back.n_classes, t.n_classes);
        assert_eq!(back.predict(&ds.test), t.predict(&ds.test));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bundle_without_arch_section_is_rejected() {
        let t = tuned();
        let dir = std::env::temp_dir().join(format!("aimts-bundle-noarch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("params-only.aimts");
        // A plain fine-tune checkpoint (PARAMS only) is not a bundle.
        t.save_params(&path, 0).expect("save params");
        let err = match FineTuned::load_bundle(&path) {
            Ok(_) => panic!("params-only file must be rejected"),
            Err(e) => e,
        };
        assert!(
            matches!(err, CheckpointError::MissingSection { .. }),
            "{err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
