//! Downstream fine-tuning (paper Fig. 3b): full fine-tuning of the
//! pre-trained TS encoder plus a task-specific MLP classifier trained with
//! cross-entropy.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use aimts_data::preprocess::z_normalize_sample;
use aimts_data::{Dataset, MultiSeries, Split};
use aimts_nn::{
    apply_named_tensors, decode_named_tensors, encode_named_tensors, sections, Activation, Adam,
    Checkpoint, CheckpointError, Mlp, Module, Optimizer,
};
use aimts_tensor::plan::{self, CompiledPlan};
use aimts_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::batch::{batch_indices, encode_channel_independent, samples_to_tensor};
use crate::config::{Executor, FineTuneConfig};
use crate::encoder::TsEncoder;
use crate::health::{guard_and_clip, HealthMonitor, HealthReport};
use crate::model::AimTs;

/// A traced fine-tuning step: the replay plan plus its persistent input
/// handles (`x: [B, M, T]` batch, `targets: [B]` class indices as floats).
struct FitPlan {
    plan: CompiledPlan,
    x: Tensor,
    targets: Tensor,
}

/// How one fine-tuning step's loss was produced (mirrors the pre-training
/// `StepRun`): an eager autograd root, or a compiled plan to replay.
enum FitRun {
    Eager(Tensor),
    Plan(Arc<FitPlan>),
}

impl FitRun {
    fn loss_val(&self) -> f32 {
        match self {
            FitRun::Eager(t) => t.item(),
            FitRun::Plan(p) => p.plan.output(0).item(),
        }
    }

    fn backward(&self) {
        match self {
            FitRun::Eager(t) => t.backward(),
            FitRun::Plan(p) => p.plan.backward(),
        }
    }
}

/// Compiled-plan cache for one `fit` call, keyed by batch shape. Unlike
/// pre-training the cache is method-local: fine-tuning is single-threaded
/// and plans do not outlive the training loop that traced them.
type FitPlans = HashMap<(usize, usize, usize), Option<Arc<FitPlan>>>;

/// A fine-tuned task model: encoder copy + classifier head.
pub struct FineTuned {
    pub encoder: TsEncoder,
    pub head: Mlp,
    pub n_classes: usize,
    /// Cross-entropy per epoch on the training split.
    pub train_losses: Vec<f32>,
    /// Best training-split accuracy seen by [`FineTuned::fit`] when
    /// best-checkpointing is enabled (`None` otherwise).
    pub best_train_accuracy: Option<f64>,
    /// Supervisor account of fine-tuning: anomalous (skipped) steps, clip
    /// events, per-epoch gradient-norm stats. Accumulates across repeated
    /// [`FineTuned::fit`] calls. Fine-tuning has no full optimizer
    /// checkpoint, so the ladder stops at skip — the rollback/abort rungs
    /// apply to pre-training only.
    pub health: HealthReport,
}

impl FineTuned {
    /// Run the fine-tuning stage for `ds` starting from `model`'s
    /// pre-trained encoder.
    pub(crate) fn train(model: &AimTs, ds: &Dataset, fcfg: &FineTuneConfig) -> FineTuned {
        FineTuned::from_encoder(model.clone_ts_encoder(), model.cfg.repr_dim, ds, fcfg)
    }

    /// Fine-tune an arbitrary (e.g. baseline-pre-trained) [`TsEncoder`]
    /// plus a fresh classifier head on `ds`. Consumes the encoder copy.
    pub fn from_encoder(
        encoder: TsEncoder,
        repr_dim: usize,
        ds: &Dataset,
        fcfg: &FineTuneConfig,
    ) -> FineTuned {
        let head = Mlp::new(
            &[repr_dim, fcfg.head_hidden, ds.n_classes],
            Activation::Gelu,
            fcfg.seed.wrapping_add(77),
        );
        let mut tuned = FineTuned {
            encoder,
            head,
            n_classes: ds.n_classes,
            train_losses: Vec::new(),
            best_train_accuracy: None,
            health: HealthReport::default(),
        };
        tuned.fit(&ds.train, fcfg);
        tuned
    }

    /// Encoder + head parameters with stable hierarchical names (the layout
    /// [`FineTuned::save_params`] / [`FineTuned::load_params`] use).
    pub fn named_parameters(&self) -> Vec<(String, aimts_tensor::Tensor)> {
        let mut out = Vec::new();
        self.encoder.named_parameters("encoder", &mut out);
        self.head.named_parameters("head", &mut out);
        out
    }

    /// Atomically write encoder + head to a binary checkpoint. `epoch` and
    /// the best accuracy (scaled by 1e6 into the step counter) land in the
    /// header for quick inspection.
    pub fn save_params(&self, path: &Path, epoch: usize) -> Result<(), CheckpointError> {
        let mut ck = Checkpoint::new(
            (self.best_train_accuracy.unwrap_or(0.0) * 1e6) as u64,
            epoch as u64,
        );
        ck.push_section(
            sections::PARAMS,
            encode_named_tensors(&self.named_parameters()),
        );
        ck.save(path)
    }

    /// Restore encoder + head from a [`FineTuned::save_params`] checkpoint.
    /// Validates every checksum and shape; on error the model is untouched.
    pub fn load_params(&mut self, path: &Path) -> Result<(), CheckpointError> {
        let ck = Checkpoint::load(path)?;
        let entries =
            decode_named_tensors(ck.require_section(sections::PARAMS)?, sections::PARAMS)?;
        apply_named_tensors(&entries, &self.named_parameters())
    }

    /// Train on a (possibly subsampled) split.
    pub fn fit(&mut self, train: &Split, fcfg: &FineTuneConfig) {
        assert!(!train.is_empty(), "cannot fine-tune on an empty split");
        let prepared: Vec<MultiSeries> = train
            .samples
            .iter()
            .map(|s| {
                let mut v = s.vars.clone();
                z_normalize_sample(&mut v);
                v
            })
            .collect();
        let labels = train.labels();

        let mut params = self.head.parameters();
        if fcfg.train_encoder {
            params.extend(self.encoder.parameters());
        }
        let mut opt = Adam::new(params.clone(), fcfg.lr);
        let mut rng = StdRng::seed_from_u64(fcfg.seed);
        let mut mon = HealthMonitor::new(fcfg.health.clone());

        // One guarded step: skip on a non-finite loss or gradient norm,
        // otherwise clip (when configured) and step. Returns the loss when
        // the step went through.
        let guarded_step = |mon: &mut HealthMonitor, opt: &mut Adam, run: FitRun| -> Option<f32> {
            let attempt = mon.begin_attempt();
            let loss_val = run.loss_val();
            if mon.loss_is_bad(loss_val, attempt) {
                let _ = mon.record_skip(); // no rollback rung here aimts-lint: allow(A005, skip verdict is advisory; fine-tuning has no rollback rung)
                return None;
            }
            opt.zero_grad();
            run.backward();
            let (norm, clipped) = guard_and_clip(&params, mon.policy().clip_norm);
            if !norm.is_finite() {
                opt.zero_grad();
                let _ = mon.record_skip(); // aimts-lint: allow(A005, skip verdict is advisory; fine-tuning has no rollback rung)
                return None;
            }
            opt.step();
            mon.record_step(norm, clipped);
            Some(loss_val)
        };

        let mut plans: FitPlans = HashMap::new();
        for epoch in 0..fcfg.epochs {
            let mut epoch_loss = 0f32;
            let mut batches = 0usize;
            let mut attempted = 0usize;
            for batch in batch_indices(prepared.len(), fcfg.batch_size, &mut rng) {
                let samples: Vec<&MultiSeries> = batch.iter().map(|&i| &prepared[i]).collect();
                let targets: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
                let run = self.fit_loss(&samples, &targets, fcfg.executor, &mut plans);
                attempted += 1;
                if let Some(loss_val) = guarded_step(&mut mon, &mut opt, run) {
                    epoch_loss += loss_val;
                    batches += 1;
                }
            }
            // A single-sample dataset yields no (>= 2)-sized batches; fall
            // back to full-split steps in that pathological case (always
            // eager — it runs at most once per epoch).
            if attempted == 0 {
                let samples: Vec<&MultiSeries> = prepared.iter().collect();
                let x = samples_to_tensor(&samples);
                let logits = self
                    .head
                    .forward(&encode_channel_independent(&self.encoder, &x));
                let loss = logits.cross_entropy(&labels);
                if let Some(loss_val) = guarded_step(&mut mon, &mut opt, FitRun::Eager(loss)) {
                    epoch_loss = loss_val;
                    batches = 1;
                }
            }
            // An epoch whose every step was skipped reports NaN honestly.
            self.train_losses.push(if batches == 0 {
                f32::NAN
            } else {
                epoch_loss / batches as f32
            });
            mon.end_epoch();
            // Best-accuracy checkpointing: snapshot encoder + head whenever
            // the training-split accuracy improves, atomically, so the best
            // model survives a crash (or later over-fitting epochs).
            if let Some(path) = &fcfg.best_ckpt {
                let acc = self.evaluate(train);
                if self.best_train_accuracy.is_none_or(|best| acc > best) {
                    self.best_train_accuracy = Some(acc);
                    if let Err(e) = self.save_params(path, epoch) {
                        eprintln!(
                            "warning: best-accuracy checkpoint to {} failed: {e}",
                            path.display()
                        );
                    }
                }
            }
        }
        self.health.absorb(mon.into_report());
    }

    /// One fine-tuning step's loss through the configured executor.
    ///
    /// Eager keeps the historical path (slice-target cross-entropy).
    /// Compiled traces the first step of each batch shape — with the
    /// targets carried as a `[B]` tensor so they are a replayable graph
    /// input ([`Tensor::cross_entropy_t`] is arithmetic-identical to the
    /// slice variant) — and replays thereafter. Any replay obstacle falls
    /// back to an eager step; a shape whose trace failed stays eager.
    fn fit_loss(
        &self,
        samples: &[&MultiSeries],
        targets: &[usize],
        executor: Executor,
        plans: &mut FitPlans,
    ) -> FitRun {
        let x = samples_to_tensor(samples);
        if executor == Executor::Eager {
            let logits = self
                .head
                .forward(&encode_channel_independent(&self.encoder, &x));
            return FitRun::Eager(logits.cross_entropy(targets));
        }
        // Class indices are exact in f32 far beyond any class count.
        let tvec: Vec<f32> = targets.iter().map(|&t| t as f32).collect();
        let key = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let eager_t = |x: &Tensor, tvec: &[f32]| -> FitRun {
            let logits = self
                .head
                .forward(&encode_channel_independent(&self.encoder, x));
            let tg = Tensor::from_vec(tvec.to_vec(), &[tvec.len()]);
            FitRun::Eager(logits.cross_entropy_t(&tg))
        };
        match plans.get(&key).cloned() {
            Some(None) => eager_t(&x, &tvec),
            Some(Some(fp)) => {
                if fp.plan.on_trace_thread() && fp.plan.check_topology(1).is_ok() {
                    fp.x.set_data(&x.data());
                    fp.targets.set_data(&tvec);
                    if fp.plan.run().is_ok() {
                        return FitRun::Plan(fp);
                    }
                }
                eager_t(&x, &tvec)
            }
            None => {
                let tg = Tensor::from_vec(tvec.clone(), &[tvec.len()]);
                let traced = plan::trace(&[x.clone(), tg.clone()], 1, || {
                    let logits = self
                        .head
                        .forward(&encode_channel_independent(&self.encoder, &x));
                    vec![logits.cross_entropy_t(&tg)]
                });
                match traced {
                    Ok(plan) => {
                        let fp = Arc::new(FitPlan {
                            plan,
                            x,
                            targets: tg,
                        });
                        plans.insert(key, Some(Arc::clone(&fp)));
                        FitRun::Plan(fp)
                    }
                    Err(_) => {
                        plans.insert(key, None);
                        eager_t(&x, &tvec)
                    }
                }
            }
        }
    }

    /// Class predictions for a split (inference mode, no grad).
    ///
    /// Routed through a frozen [`crate::infer::InferenceModel`] copy: the
    /// forward runs on untracked `Storage::Hot` parameters, so beyond the
    /// one-time parameter snapshot it acquires no tensor locks and builds
    /// no autograd state. Results are bitwise-identical to the historical
    /// in-place forward (same values, same op order).
    pub fn predict(&self, split: &Split) -> Vec<usize> {
        assert!(!split.is_empty());
        self.freeze(Executor::Eager).predict_split(split)
    }

    /// Accuracy on a split.
    pub fn evaluate(&self, split: &Split) -> f64 {
        aimts_eval::accuracy(&self.predict(split), &split.labels())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AimTsConfig, FineTuneConfig};
    use aimts_data::generator::{DatasetSpec, PatternFamily};

    fn easy_dataset() -> Dataset {
        DatasetSpec {
            n_classes: 2,
            train_per_class: 10,
            test_per_class: 10,
            noise: 0.05,
            length: 48,
            ..DatasetSpec::new("easy", PatternFamily::SineFreq, 5)
        }
        .generate()
    }

    #[test]
    fn finetune_learns_separable_classes_without_pretraining() {
        let model = AimTs::new(AimTsConfig::tiny(), 3407);
        let ds = easy_dataset();
        let fcfg = FineTuneConfig {
            epochs: 30,
            batch_size: 8,
            ..Default::default()
        };
        let tuned = model.fine_tune(&ds, &fcfg);
        let acc = tuned.evaluate(&ds.test);
        assert!(
            acc >= 0.8,
            "expected separable classes to be learned, acc {acc}"
        );
        // Training loss decreased.
        assert!(tuned.train_losses.last().unwrap() < &tuned.train_losses[0]);
    }

    #[test]
    fn predictions_are_valid_classes() {
        let model = AimTs::new(AimTsConfig::tiny(), 1);
        let ds = easy_dataset();
        let tuned = model.fine_tune(
            &ds,
            &FineTuneConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        let preds = tuned.predict(&ds.test);
        assert_eq!(preds.len(), ds.test.len());
        assert!(preds.iter().all(|&p| p < ds.n_classes));
    }

    #[test]
    fn linear_probe_mode_keeps_encoder_frozen() {
        let model = AimTs::new(AimTsConfig::tiny(), 2);
        let before: Vec<f32> = model.ts_encoder.parameters()[0].to_vec();
        let ds = easy_dataset();
        let fcfg = FineTuneConfig {
            epochs: 2,
            train_encoder: false,
            ..Default::default()
        };
        let tuned = model.fine_tune(&ds, &fcfg);
        // The tuned copy's encoder must equal the original (frozen).
        let after: Vec<f32> = tuned.encoder.parameters()[0].to_vec();
        assert_eq!(before, after);
    }

    #[test]
    fn compiled_finetune_is_bitwise_eager() {
        let ds = easy_dataset();
        let run = |executor: Executor| {
            let model = AimTs::new(AimTsConfig::tiny(), 3407);
            let fcfg = FineTuneConfig {
                epochs: 4,
                batch_size: 8,
                executor,
                ..Default::default()
            };
            let tuned = model.fine_tune(&ds, &fcfg);
            let params: Vec<u32> = tuned
                .named_parameters()
                .iter()
                .flat_map(|(_, t)| t.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>())
                .collect();
            (tuned.train_losses.clone(), params)
        };
        let (eager_losses, eager_params) = run(Executor::Eager);
        let (compiled_losses, compiled_params) = run(Executor::Compiled);
        assert_eq!(
            eager_losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            compiled_losses
                .iter()
                .map(|l| l.to_bits())
                .collect::<Vec<_>>(),
            "compiled fine-tuning must replay the eager loss curve bit-for-bit"
        );
        assert_eq!(eager_params, compiled_params);
    }

    #[test]
    fn finetune_does_not_mutate_pretrained_model() {
        let model = AimTs::new(AimTsConfig::tiny(), 3);
        let before: Vec<f32> = model.ts_encoder.parameters()[0].to_vec();
        let ds = easy_dataset();
        let _ = model.fine_tune(
            &ds,
            &FineTuneConfig {
                epochs: 2,
                ..Default::default()
            },
        );
        let after: Vec<f32> = model.ts_encoder.parameters()[0].to_vec();
        assert_eq!(before, after);
    }
}
