//! Pre-training checkpoint assembly and restore.
//!
//! Composes the generic binary container from `aimts_nn::checkpoint` into
//! the full snapshot [`AimTs::pretrain`](crate::AimTs::pretrain) needs to
//! resume bit-exactly: model parameters, Adam moments, StepLR state, and
//! the training-loop bookkeeping (RNG stream word, micro-batch counter,
//! worker topology, loss history) in a dedicated `train` section.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use aimts_nn::{
    apply_named_tensors, decode_adam_state, decode_named_tensors, decode_scheduler_state,
    encode_adam_state, encode_named_tensors, encode_scheduler_state, sections, AdamState,
    Checkpoint, CheckpointError, SchedulerState, SectionReader, SectionWriter,
};

use crate::model::AimTs;

/// File extension of binary pre-training checkpoints.
pub const CKPT_EXT: &str = "aimts";

/// Training-loop bookkeeping persisted alongside model/optimizer state.
#[derive(Debug, Clone, PartialEq)]
pub struct PretrainState {
    /// Optimizer steps taken.
    pub steps: u64,
    /// Epochs fully completed.
    pub epochs_done: u64,
    /// Base seed the run was launched with (resume must match it for the
    /// derived streams to line up).
    pub base_seed: u64,
    /// Mid-stream state word of the shuffling/augmentation RNG.
    pub rng_state: u64,
    /// Micro-batches scheduled so far (drives derived augmentation seeds
    /// on the data-parallel path; 0 on the serial path).
    pub micro_counter: u64,
    /// Worker topology: 1 = serial path, >1 = replica-per-worker path.
    /// Round boundaries depend on it, so resume requires an exact match.
    pub workers: u32,
    /// Mean total loss of every completed epoch.
    pub epoch_losses: Vec<f32>,
    /// Mean `L_proto` of the last completed epoch.
    pub last_proto: f32,
    /// Mean `L_SI` of the last completed epoch.
    pub last_si: f32,
}

fn encode_train_state(st: &PretrainState) -> Vec<u8> {
    let mut w = SectionWriter::new();
    w.put_u64(st.steps);
    w.put_u64(st.epochs_done);
    w.put_u64(st.base_seed);
    w.put_u64(st.rng_state);
    w.put_u64(st.micro_counter);
    w.put_u32(st.workers);
    w.put_f32_slice(&st.epoch_losses);
    w.put_f32(st.last_proto);
    w.put_f32(st.last_si);
    w.finish()
}

fn decode_train_state(bytes: &[u8]) -> Result<PretrainState, CheckpointError> {
    let mut r = SectionReader::new(bytes, sections::TRAIN);
    let st = PretrainState {
        steps: r.get_u64("steps")?,
        epochs_done: r.get_u64("epochs_done")?,
        base_seed: r.get_u64("base_seed")?,
        rng_state: r.get_u64("rng_state")?,
        micro_counter: r.get_u64("micro_counter")?,
        workers: r.get_u32("workers")?,
        epoch_losses: r.get_f32_slice("epoch_losses")?,
        last_proto: r.get_f32("last_proto")?,
        last_si: r.get_f32("last_si")?,
    };
    r.finish()?;
    Ok(st)
}

/// Assemble a full pre-training checkpoint for `model` (sections: `params`,
/// `adam`, `scheduler`, `train`).
pub fn build_pretrain_checkpoint(
    model: &AimTs,
    adam: &AdamState,
    sched: &SchedulerState,
    train: &PretrainState,
) -> Checkpoint {
    let mut ck = Checkpoint::new(train.steps, train.epochs_done);
    ck.push_section(
        sections::PARAMS,
        encode_named_tensors(&model.named_parameters()),
    );
    ck.push_section(sections::ADAM, encode_adam_state(adam));
    ck.push_section(sections::SCHEDULER, encode_scheduler_state(sched));
    ck.push_section(sections::TRAIN, encode_train_state(train));
    ck
}

/// Everything decoded out of a pre-training checkpoint, not yet applied.
pub struct DecodedPretrain {
    pub adam: AdamState,
    pub scheduler: SchedulerState,
    pub train: PretrainState,
    entries: Vec<aimts_nn::TensorEntry>,
}

impl DecodedPretrain {
    /// Copy the checkpointed parameters into `model` (validates names and
    /// shapes first; a mismatch leaves the model untouched).
    pub fn apply_params(&self, model: &AimTs) -> Result<(), CheckpointError> {
        apply_named_tensors(&self.entries, &model.named_parameters())
    }
}

/// Validate and decode all four sections of a pre-training checkpoint.
pub fn decode_pretrain_checkpoint(ck: &Checkpoint) -> Result<DecodedPretrain, CheckpointError> {
    let entries = decode_named_tensors(ck.require_section(sections::PARAMS)?, sections::PARAMS)?;
    let adam = decode_adam_state(ck.require_section(sections::ADAM)?, sections::ADAM)?;
    let scheduler = decode_scheduler_state(
        ck.require_section(sections::SCHEDULER)?,
        sections::SCHEDULER,
    )?;
    let train = decode_train_state(ck.require_section(sections::TRAIN)?)?;
    Ok(DecodedPretrain {
        adam,
        scheduler,
        train,
        entries,
    })
}

/// Canonical path of the checkpoint cut after `epochs_done` epochs.
pub fn checkpoint_path(dir: &Path, epochs_done: usize) -> PathBuf {
    dir.join(format!("ckpt-{epochs_done:06}.{CKPT_EXT}"))
}

/// Periodic checkpoints in `dir`, sorted oldest → newest by epoch number.
pub fn list_checkpoints(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        if let Some(epoch) = name
            .strip_prefix("ckpt-")
            .and_then(|rest| rest.strip_suffix(&format!(".{CKPT_EXT}")))
            .and_then(|num| num.parse::<u64>().ok())
        {
            found.push((epoch, path));
        }
    }
    found.sort();
    Ok(found.into_iter().map(|(_, p)| p).collect())
}

/// Newest periodic checkpoint in `dir`, if any.
pub fn latest_checkpoint(dir: &Path) -> io::Result<Option<PathBuf>> {
    Ok(list_checkpoints(dir)?.pop())
}

/// Delete the oldest periodic checkpoints, keeping the newest `keep_last`
/// (0 keeps everything).
pub fn prune_checkpoints(dir: &Path, keep_last: usize) -> io::Result<()> {
    if keep_last == 0 {
        return Ok(());
    }
    let ckpts = list_checkpoints(dir)?;
    if ckpts.len() > keep_last {
        for stale in &ckpts[..ckpts.len() - keep_last] {
            fs::remove_file(stale)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AimTsConfig;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aimts_core_ckpt_{tag}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn dummy_state() -> PretrainState {
        PretrainState {
            steps: 12,
            epochs_done: 3,
            base_seed: 3407,
            rng_state: 0xDEAD_BEEF,
            micro_counter: 9,
            workers: 1,
            epoch_losses: vec![2.0, 1.5, 1.25],
            last_proto: 0.75,
            last_si: 0.5,
        }
    }

    #[test]
    fn pretrain_checkpoint_roundtrip() {
        let model = AimTs::new(AimTsConfig::tiny(), 5);
        let params: Vec<_> = model
            .named_parameters()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        let adam = aimts_nn::Adam::new(params, 7e-3).export_state();
        let sched = aimts_nn::StepLr::new(7e-3, 1, 0.5).export_state();
        let train = dummy_state();
        let ck = build_pretrain_checkpoint(&model, &adam, &sched, &train);
        assert_eq!(ck.step, 12);
        assert_eq!(ck.epoch, 3);

        let back = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
        let dec = decode_pretrain_checkpoint(&back).unwrap();
        assert_eq!(dec.train, train);
        assert_eq!(dec.adam.t, adam.t);
        assert_eq!(dec.scheduler, sched);

        // Applying onto a differently-initialized model reproduces weights.
        let other = AimTs::new(AimTsConfig::tiny(), 99);
        dec.apply_params(&other).unwrap();
        assert_eq!(other.flat_parameters(), model.flat_parameters());

        // A different architecture is rejected, untouched.
        let small = AimTs::new(
            AimTsConfig {
                hidden: 4,
                ..AimTsConfig::tiny()
            },
            0,
        );
        let before = small.flat_parameters();
        assert!(dec.apply_params(&small).is_err());
        assert_eq!(small.flat_parameters(), before);
    }

    #[test]
    fn missing_section_is_typed() {
        let mut ck = Checkpoint::new(0, 0);
        ck.push_section(sections::PARAMS, encode_named_tensors(&[]));
        assert!(matches!(
            decode_pretrain_checkpoint(&ck),
            Err(CheckpointError::MissingSection { .. })
        ));
    }

    #[test]
    fn listing_and_retention() {
        let dir = tmp_dir("retention");
        for epoch in [1usize, 2, 3, 4, 5] {
            let mut ck = Checkpoint::new(0, epoch as u64);
            ck.push_section("s", vec![epoch as u8]);
            ck.save(&checkpoint_path(&dir, epoch)).unwrap();
        }
        // Unrelated files are ignored.
        fs::write(dir.join("notes.txt"), "x").unwrap();
        fs::write(dir.join("ckpt-abc.aimts"), "x").unwrap();

        let all = list_checkpoints(&dir).unwrap();
        assert_eq!(all.len(), 5);
        assert_eq!(
            latest_checkpoint(&dir).unwrap().unwrap(),
            checkpoint_path(&dir, 5)
        );

        prune_checkpoints(&dir, 2).unwrap();
        let kept = list_checkpoints(&dir).unwrap();
        assert_eq!(
            kept,
            vec![checkpoint_path(&dir, 4), checkpoint_path(&dir, 5)]
        );

        // keep_last = 0 keeps everything.
        prune_checkpoints(&dir, 0).unwrap();
        assert_eq!(list_checkpoints(&dir).unwrap().len(), 2);
    }
}
