//! # aimts
//!
//! Reference Rust implementation of **AimTS — Augmented Series and Image
//! Contrastive Learning for Time Series Classification** (ICDE 2025).
//!
//! AimTS pre-trains a time-series encoder on an *unlabeled, multi-source*
//! pool and fine-tunes it per downstream classification task. Two losses
//! drive pre-training (paper Eq. 1):
//!
//! * **Prototype-based contrastive learning** ([`losses::proto_loss`],
//!   Eq. 3–6): every sample is augmented twice with each augmentation of a
//!   bank; per-augmentation views are contrasted *within* a sample using an
//!   adaptive temperature (intra), and prototype representations (the mean
//!   over augmentations) are contrasted *across* samples (inter).
//! * **Series-image contrastive learning** ([`losses::series_image_loss`],
//!   Eq. 7–12): each sample is rendered as an RGB line chart; the TS and
//!   image encoders are aligned CLIP-style, with extra negatives formed by
//!   **geodesic mixup** ([`mixup::geodesic_mixup`], Eq. 9) of the two
//!   modalities' representations on the unit hypersphere.
//!
//! ## Quickstart
//!
//! ```
//! use aimts::{AimTs, AimTsConfig, FineTuneConfig, PretrainConfig};
//! use aimts_data::archives::{monash_like_pool, ucr_like_archive};
//!
//! // Tiny settings so this doc-test runs in seconds.
//! let cfg = AimTsConfig::tiny();
//! let mut model = AimTs::new(cfg, 3407);
//! let pool = monash_like_pool(2, 0);
//! let report = model
//!     .pretrain(&pool[..24], &PretrainConfig { epochs: 1, batch_size: 4, ..Default::default() })
//!     .expect("pre-training failed");
//! assert!(report.final_loss.is_finite());
//! assert!(report.health.is_clean());
//!
//! let ds = &ucr_like_archive(1, 0)[0];
//! let mut ft_cfg = FineTuneConfig::default();
//! ft_cfg.epochs = 1;
//! let tuned = model.fine_tune(ds, &ft_cfg);
//! let acc = tuned.evaluate(&ds.test);
//! assert!((0.0..=1.0).contains(&acc));
//! ```

// Library code must propagate errors, not unwrap: the health supervisor must survive worker faults
// (mirrors aimts-lint rule A001; tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod augselect;
pub mod batch;
pub mod checkpoint;
pub mod config;
pub mod encoder;
pub mod finetune;
pub mod health;
pub mod infer;
pub mod losses;
pub mod mixup;
pub mod model;
pub mod parallel;

pub use augselect::{score_augmentations, select_bank, AugmentationScore};
pub use checkpoint::{
    build_pretrain_checkpoint, checkpoint_path, decode_pretrain_checkpoint, latest_checkpoint,
    list_checkpoints, prune_checkpoints, DecodedPretrain, PretrainState, CKPT_EXT,
};
pub use config::{AimTsConfig, CheckpointPolicy, Executor, FineTuneConfig, PretrainConfig};
pub use encoder::{copy_parameters, ImageEncoder, TsEncoder};
pub use finetune::FineTuned;
pub use health::{
    FaultPlan, GradNormStats, HealthMonitor, HealthPolicy, HealthReport, StepVerdict, TrainError,
};
pub use infer::{InferenceModel, INFER_CHUNK};
pub use model::{AimTs, MicroGrad, PretrainReport};
pub use parallel::{
    all_reduce_mean, all_reduce_mean_guarded, parallel_map, try_parallel_map, worker_count,
    THREADS_ENV,
};
