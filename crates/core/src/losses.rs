//! The AimTS contrastive losses (paper Eq. 3–12).
//!
//! All representation inputs are expected L2-normalized so dot products
//! are cosine similarities. Temperatures derived from series distances
//! (Eq. 3) are data-dependent *constants* — gradients do not flow through
//! them, matching the paper's construction.

use aimts_tensor::Tensor;

/// Adaptive temperatures `τ_i^{(j,k)}` (Eq. 3) from pairwise distances.
///
/// `dists` is a `[B, G, G]` row-major buffer of distances between
/// augmented views; each `(j, ·)` row is softmax-normalized (stable) and
/// shifted by `τ0`. Entries where `diag_tau0` marks the diagonal are set
/// to `d = -inf`, i.e. `τ = τ0`, so positive pairs use the base
/// temperature.
pub fn adaptive_tau(dists: &[f32], b: usize, g: usize, tau0: f32, diag_tau0: bool) -> Vec<f32> {
    assert_eq!(dists.len(), b * g * g, "distance buffer shape mismatch");
    let mut tau = vec![0f32; b * g * g];
    for bi in 0..b {
        for j in 0..g {
            let row = &dists[(bi * g + j) * g..(bi * g + j + 1) * g];
            // Stable softmax with optional -inf diagonal.
            let mut mx = f32::NEG_INFINITY;
            for (k, &d) in row.iter().enumerate() {
                if !(diag_tau0 && k == j) {
                    mx = mx.max(d);
                }
            }
            let mut denom = 0f32;
            let mut e = vec![0f32; g];
            for (k, &d) in row.iter().enumerate() {
                if diag_tau0 && k == j {
                    e[k] = 0.0; // exp(-inf)
                } else {
                    e[k] = (d - mx).exp();
                }
                denom += e[k];
            }
            let out = &mut tau[(bi * g + j) * g..(bi * g + j + 1) * g];
            for k in 0..g {
                out[k] = tau0 + if denom > 0.0 { e[k] / denom } else { 0.0 };
            }
        }
    }
    tau
}

/// Identity matrix helper.
fn eye(n: usize) -> Tensor {
    let mut d = vec![0f32; n * n];
    for i in 0..n {
        d[i * n + i] = 1.0;
    }
    Tensor::from_vec(d, &[n, n])
}

/// Intra-prototype contrastive loss (Eq. 4), summed per sample then
/// averaged over the batch.
///
/// * `v`, `vt`: the two view sets' projections `[B, G, P]` (normalized).
/// * `tau_within`: `[B, G, G]` temperatures for `v·v` pairs.
/// * `tau_cross`: `[B, G, G]` temperatures for `v·ṽ` pairs (diagonal τ0).
pub fn intra_prototype_loss(
    v: &Tensor,
    vt: &Tensor,
    tau_within: &Tensor,
    tau_cross: &Tensor,
) -> Tensor {
    assert_eq!(v.shape(), vt.shape());
    let (b, g, _p) = (v.shape()[0], v.shape()[1], v.shape()[2]);
    assert_eq!(tau_within.shape(), &[b, g, g]);
    let s_within = v.matmul(&v.transpose(1, 2)).div(tau_within); // [B,G,G]
    let s_cross = v.matmul(&vt.transpose(1, 2)).div(tau_cross);

    let id = eye(g).reshape(&[1, g, g]);
    let not_id = Tensor::ones(&[1, g, g]).sub(&id);

    let exp_within = s_within.exp().mul(&not_id); // 1[k≠j] exp(s)
    let exp_cross = s_cross.exp();
    let denom = exp_within
        .sum_axis(2, false)
        .add(&exp_cross.sum_axis(2, false)); // [B,G]
    let pos_logit = s_cross.mul(&id).sum_axis(2, false); // s̃^{(k,k)} [B,G]
                                                         // -Σ_k (pos - ln denom), then mean over batch.
    pos_logit
        .sub(&denom.ln())
        .sum_axis(1, false)
        .neg()
        .mean_all()
}

/// Inter-prototype contrastive loss (Eq. 5), averaged over the batch.
///
/// `z`, `zt`: prototype projections `[B, P]` of the two view sets
/// (normalized); `tau` the fixed temperature.
pub fn inter_prototype_loss(z: &Tensor, zt: &Tensor, tau: f32) -> Tensor {
    assert_eq!(z.shape(), zt.shape());
    let b = z.shape()[0];
    assert!(b >= 2, "inter-prototype loss needs at least 2 samples");
    let s_zz = z.matmul(&z.transpose(0, 1)).div_scalar(tau); // [B,B]
    let s_zzt = z.matmul(&zt.transpose(0, 1)).div_scalar(tau);
    let id = eye(b);
    let not_id = Tensor::ones(&[b, b]).sub(&id);
    let denom = s_zz
        .exp()
        .mul(&not_id)
        .sum_axis(1, false)
        .add(&s_zzt.exp().sum_axis(1, false));
    let pos = s_zzt.mul(&id).sum_axis(1, false);
    pos.sub(&denom.ln()).neg().mean_all()
}

/// Two-level prototype loss `L_proto` (Eq. 6):
/// `(α·ℓ_inter + (1−α)·ℓ_intra) / 2` (batch-averaged terms).
pub fn proto_loss(inter: &Tensor, intra: &Tensor, alpha: f32) -> Tensor {
    inter
        .mul_scalar(alpha)
        .add(&intra.mul_scalar(1.0 - alpha))
        .mul_scalar(0.5)
}

/// Bidirectional naive series-image InfoNCE (Eq. 7–8), batch-averaged.
///
/// `u`: image projections `[B, P]`; `v`: series projections `[B, P]`.
pub fn series_image_naive(u: &Tensor, v: &Tensor, tau: f32) -> Tensor {
    assert_eq!(u.shape(), v.shape());
    let b = u.shape()[0];
    let id = eye(b);
    let s_uv = u.matmul(&v.transpose(0, 1)).div_scalar(tau); // [B,B]
                                                             // ℓ^{I-S}: anchor u_i against all v_j.
    let pos = s_uv.mul(&id).sum_axis(1, false); // sim(u_i, v_i)/τ
    let l_is = pos.sub(&s_uv.exp().sum_axis(1, false).ln()).neg();
    // ℓ^{S-I}: anchor v_i against all u_j — transpose of the same logits.
    let s_vu = s_uv.transpose(0, 1);
    let l_si = pos.sub(&s_vu.exp().sum_axis(1, false).ln()).neg();
    l_is.add(&l_si).mean_all().mul_scalar(0.5)
}

/// Geodesic-mixup series-image loss (Eq. 10–11), batch-averaged.
///
/// `mixed`: the mixup negatives `m_λ(u_j, v_j)` `[B, P]`.
pub fn series_image_mixup(u: &Tensor, v: &Tensor, mixed: &Tensor, tau: f32) -> Tensor {
    assert_eq!(u.shape(), v.shape());
    assert_eq!(u.shape(), mixed.shape());
    let b = u.shape()[0];
    let id = eye(b);
    let pos = u
        .matmul(&v.transpose(0, 1))
        .div_scalar(tau)
        .mul(&id)
        .sum_axis(1, false);
    let s_um = u.matmul(&mixed.transpose(0, 1)).div_scalar(tau);
    let s_vm = v.matmul(&mixed.transpose(0, 1)).div_scalar(tau);
    let l_imix = pos.sub(&s_um.exp().sum_axis(1, false).ln()).neg();
    let l_smix = pos.sub(&s_vm.exp().sum_axis(1, false).ln()).neg();
    l_imix.add(&l_smix).mean_all().mul_scalar(0.5)
}

/// Combined series-image loss `L_SI` (Eq. 12).
pub fn series_image_loss(naive: &Tensor, mix: &Tensor, beta: f32) -> Tensor {
    naive.mul_scalar(beta).add(&mix.mul_scalar(1.0 - beta))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm_rand(shape: &[usize], seed: u64) -> Tensor {
        let t = Tensor::randn(shape, seed);
        let last = shape.len() - 1;
        t.l2_normalize(last)
    }

    #[test]
    fn adaptive_tau_rows_sum_and_diag() {
        let b = 2;
        let g = 3;
        let dists: Vec<f32> = (0..b * g * g).map(|i| (i % 5) as f32 * 0.3).collect();
        let tau = adaptive_tau(&dists, b, g, 0.2, true);
        for bi in 0..b {
            for j in 0..g {
                let row = &tau[(bi * g + j) * g..(bi * g + j + 1) * g];
                // diag entry = τ0 exactly.
                assert!((row[j] - 0.2).abs() < 1e-6);
                // off-diagonal softmax sums to 1 → row sums to g*τ0 + 1.
                let total: f32 = row.iter().sum();
                assert!((total - (g as f32 * 0.2 + 1.0)).abs() < 1e-5);
                assert!(row.iter().all(|&t| (0.2..=1.2).contains(&t)));
            }
        }
    }

    #[test]
    fn adaptive_tau_monotone_in_distance() {
        // Larger distance → larger temperature (paper: far pairs pulled
        // less strongly apart).
        let dists = vec![0.0, 1.0, 3.0, 1.0, 0.0, 0.5, 3.0, 0.5, 0.0];
        let tau = adaptive_tau(&dists, 1, 3, 0.1, true);
        // Row 0: d(0,1)=1 < d(0,2)=3 → tau(0,1) < tau(0,2).
        assert!(tau[1] < tau[2]);
    }

    #[test]
    fn intra_loss_finite_and_positive() {
        let v = norm_rand(&[4, 5, 8], 1);
        let vt = norm_rand(&[4, 5, 8], 2);
        let tau = Tensor::full(&[4, 5, 5], 0.5);
        let l = intra_prototype_loss(&v, &vt, &tau, &tau);
        assert!(l.item().is_finite());
        assert!(l.item() > 0.0);
    }

    #[test]
    fn intra_loss_lower_when_views_aligned() {
        // Perfectly aligned positive pairs should score lower loss than
        // random pairs.
        let v = norm_rand(&[4, 5, 8], 3);
        let tau = Tensor::full(&[4, 5, 5], 0.5);
        let aligned = intra_prototype_loss(&v, &v, &tau, &tau);
        let random = intra_prototype_loss(&v, &norm_rand(&[4, 5, 8], 99), &tau, &tau);
        assert!(aligned.item() < random.item());
    }

    #[test]
    fn inter_loss_prefers_matched_prototypes() {
        let z = norm_rand(&[6, 16], 4);
        let matched = inter_prototype_loss(&z, &z, 0.2);
        let mismatched = inter_prototype_loss(&z, &norm_rand(&[6, 16], 77), 0.2);
        assert!(matched.item() < mismatched.item());
    }

    #[test]
    fn inter_loss_gradient_flows() {
        let z = Tensor::randn(&[4, 8], 5)
            .l2_normalize(1)
            .detach()
            .requires_grad();
        let zt = Tensor::randn(&[4, 8], 6)
            .l2_normalize(1)
            .detach()
            .requires_grad();
        inter_prototype_loss(&z, &zt, 0.2).backward();
        assert!(z.grad().is_some() && zt.grad().is_some());
    }

    #[test]
    fn naive_si_loss_is_symmetric_in_pairs() {
        let u = norm_rand(&[5, 8], 7);
        let v = norm_rand(&[5, 8], 8);
        let a = series_image_naive(&u, &v, 0.2).item();
        let b = series_image_naive(&v, &u, 0.2).item();
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }

    #[test]
    fn naive_si_matched_lower_than_random() {
        let u = norm_rand(&[6, 8], 9);
        let matched = series_image_naive(&u, &u, 0.2);
        let random = series_image_naive(&u, &norm_rand(&[6, 8], 55), 0.2);
        assert!(matched.item() < random.item());
    }

    #[test]
    fn mixup_loss_finite_and_grads() {
        let u = Tensor::randn(&[4, 8], 10)
            .l2_normalize(1)
            .detach()
            .requires_grad();
        let v = Tensor::randn(&[4, 8], 11)
            .l2_normalize(1)
            .detach()
            .requires_grad();
        let mixed = crate::mixup::geodesic_mixup(&u, &v, &[0.2, 0.4, 0.6, 0.8]);
        let l = series_image_mixup(&u, &v, &mixed, 0.2);
        assert!(l.item().is_finite());
        l.backward();
        assert!(u.grad().is_some() && v.grad().is_some());
    }

    #[test]
    fn combined_losses_weighting() {
        let a = Tensor::scalar(2.0);
        let b = Tensor::scalar(4.0);
        assert!((proto_loss(&a, &b, 0.7).item() - 0.5 * (0.7 * 2.0 + 0.3 * 4.0)).abs() < 1e-6);
        assert!((series_image_loss(&a, &b, 0.9).item() - (0.9 * 2.0 + 0.1 * 4.0)).abs() < 1e-6);
    }

    #[test]
    fn intra_loss_matches_numeric_gradient() {
        // End-to-end check through the matrix plumbing.
        let v0 = Tensor::randn(&[2, 3, 4], 12).l2_normalize(2).detach();
        let vt = Tensor::randn(&[2, 3, 4], 13).l2_normalize(2).detach();
        let tau = Tensor::full(&[2, 3, 3], 0.5);
        let vt2 = vt.clone();
        let tau2 = tau.clone();
        aimts_tensor::check_gradients(
            &move |ins| intra_prototype_loss(&ins[0], &vt2, &tau2, &tau2),
            &[v0],
            1e-2,
            3e-2,
        );
    }

    #[test]
    fn inter_loss_matches_numeric_gradient() {
        let z = Tensor::randn(&[3, 4], 14).l2_normalize(1).detach();
        let zt = Tensor::randn(&[3, 4], 15).l2_normalize(1).detach();
        let zt2 = zt.clone();
        aimts_tensor::check_gradients(
            &move |ins| inter_prototype_loss(&ins[0], &zt2, 0.3),
            &[z],
            1e-2,
            3e-2,
        );
    }
}
