//! Geodesic (spherical) mixup of image and series representations
//! (paper Eq. 9): `m_λ(u, v) = u·sin(λθ)/sin(θ) + v·sin((1−λ)θ)/sin(θ)`
//! with `θ = arccos(u · v)`, producing points on the unit hypersphere
//! between the two modality subspaces.

use aimts_eval::sample_beta;
use aimts_tensor::{arena, plan, read_pair, Tensor};
use rand::rngs::StdRng;

/// Per-row slerp coefficients `(cu, cv)` for rows of `u`/`v` (`[B, P]`)
/// and mixing weights `lambdas[b]` — the CPU-side constant part of the
/// geodesic mixup, shared by the eager path and its replay thunks.
fn slerp_coeffs(
    ud: &[f32],
    vd: &[f32],
    lambdas: &[f32],
    b: usize,
    p: usize,
) -> (Vec<f32>, Vec<f32>) {
    let mut cu = arena::take(b);
    let mut cv = arena::take(b);
    for (row, &lam) in lambdas.iter().enumerate() {
        let dot: f32 = ud[row * p..(row + 1) * p]
            .iter()
            .zip(&vd[row * p..(row + 1) * p])
            .map(|(a, b)| a * b)
            .sum();
        let theta = dot.clamp(-1.0 + 1e-6, 1.0 - 1e-6).acos();
        let sin_t = theta.sin();
        if sin_t < 1e-4 {
            // Degenerate: linear interpolation (paper's formula limit).
            cu.push(lam);
            cv.push(1.0 - lam);
        } else {
            cu.push((lam * theta).sin() / sin_t);
            cv.push(((1.0 - lam) * theta).sin() / sin_t);
        }
    }
    (cu, cv)
}

/// Mix rows of `u` and `v` (both `[B, P]`, unit-normalized) with
/// per-row coefficients `lambdas[b]`.
///
/// The angle `θ` is computed from the current values and treated as a
/// constant during backpropagation (gradients flow through the linear
/// combination only); the result is re-projected onto the unit sphere,
/// which keeps the `‖m‖ = 1` invariant exactly even in the `θ → 0` limit
/// where slerp degenerates to lerp.
pub fn geodesic_mixup(u: &Tensor, v: &Tensor, lambdas: &[f32]) -> Tensor {
    let b = u.shape()[0];
    assert_eq!(lambdas.len(), b, "one lambda per row required");
    geodesic_mixup_t(u, v, &Tensor::from_vec(lambdas.to_vec(), &[b]))
}

/// [`geodesic_mixup`] with the coefficients carried as a `[B]` tensor.
///
/// Because the lambdas are a graph input rather than a captured slice,
/// this variant is traceable: the slerp coefficients are recorded as
/// custom replay ops that recompute from the *current* `u`/`v`/`lambdas`
/// values on every replay (arithmetic-identical to the eager path).
pub fn geodesic_mixup_t(u: &Tensor, v: &Tensor, lambdas: &Tensor) -> Tensor {
    assert_eq!(u.shape(), v.shape(), "mixup operand shape mismatch");
    assert_eq!(u.ndim(), 2, "mixup expects [B, P]");
    let b = u.shape()[0];
    let p = u.shape()[1];
    assert_eq!(lambdas.numel(), b, "one lambda per row required");

    // Per-row angle from the data (constant w.r.t. autograd). Guards are
    // taken in tensor-id order (deadlock-freedom convention, lint A002).
    let lam = lambdas.to_vec();
    let (ud, vd) = read_pair(u, v);
    let (cu, cv) = slerp_coeffs(&ud, &vd, &lam, b, p);
    drop((ud, vd));
    let cu_t = Tensor::from_vec(cu, &[b, 1]);
    let cv_t = Tensor::from_vec(cv, &[b, 1]);
    let parents = [u, v, lambdas];
    plan::record_custom(&cu_t, "slerp_cu", &parents, move |ps| {
        let lam = arena::copy_of(&ps[2].data());
        let (ud, vd) = read_pair(&ps[0], &ps[1]);
        let (cu, cv) = slerp_coeffs(&ud, &vd, &lam, b, p);
        drop((ud, vd));
        arena::recycle(lam);
        arena::recycle(cv);
        cu
    });
    plan::record_custom(&cv_t, "slerp_cv", &parents, move |ps| {
        let lam = arena::copy_of(&ps[2].data());
        let (ud, vd) = read_pair(&ps[0], &ps[1]);
        let (cu, cv) = slerp_coeffs(&ud, &vd, &lam, b, p);
        drop((ud, vd));
        arena::recycle(lam);
        arena::recycle(cu);
        cv
    });
    u.mul(&cu_t).add(&v.mul(&cv_t)).l2_normalize(1)
}

/// Draw one mixup coefficient per row: `λ ~ Beta(γ, γ)` (paper Eq. 9).
pub fn sample_lambdas(b: usize, gamma: f32, rng: &mut StdRng) -> Vec<f32> {
    (0..b)
        .map(|_| sample_beta(gamma as f64, gamma as f64, rng) as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn unit_rows(data: Vec<f32>, b: usize, p: usize) -> Tensor {
        Tensor::from_vec(data, &[b, p]).l2_normalize(1)
    }

    #[test]
    fn endpoints_recover_inputs() {
        let u = unit_rows(vec![1.0, 0.0, 0.0, 1.0], 2, 2);
        let v = unit_rows(vec![0.6, 0.8, 0.8, 0.6], 2, 2);
        // λ = 1 → m = u (paper Eq. 9 convention).
        let m1 = geodesic_mixup(&u, &v, &[1.0, 1.0]);
        for (a, b) in m1.to_vec().iter().zip(u.to_vec()) {
            assert!((a - b).abs() < 1e-3);
        }
        // λ = 0 → m = v.
        let m0 = geodesic_mixup(&u, &v, &[0.0, 0.0]);
        for (a, b) in m0.to_vec().iter().zip(v.to_vec()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn output_stays_on_unit_sphere() {
        let mut rng = StdRng::seed_from_u64(0);
        let u = Tensor::randn(&[8, 16], 1).l2_normalize(1);
        let v = Tensor::randn(&[8, 16], 2).l2_normalize(1);
        let lambdas = sample_lambdas(8, 0.1, &mut rng);
        let m = geodesic_mixup(&u, &v, &lambdas);
        let norms = m.square().sum_axis(1, false).to_vec();
        for n in norms {
            assert!((n - 1.0).abs() < 1e-4, "norm^2 {n}");
        }
    }

    #[test]
    fn midpoint_is_between() {
        let u = unit_rows(vec![1.0, 0.0], 1, 2);
        let v = unit_rows(vec![0.0, 1.0], 1, 2);
        let m = geodesic_mixup(&u, &v, &[0.5]);
        let mv = m.to_vec();
        assert!((mv[0] - mv[1]).abs() < 1e-4, "midpoint symmetric");
        assert!(mv[0] > 0.5, "on the sphere, not the chord");
    }

    #[test]
    fn identical_inputs_degenerate_safely() {
        let u = unit_rows(vec![0.6, 0.8], 1, 2);
        let m = geodesic_mixup(&u, &u, &[0.3]);
        for (a, b) in m.to_vec().iter().zip(u.to_vec()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn gradient_flows_to_both_inputs() {
        let u = Tensor::randn(&[4, 8], 3)
            .l2_normalize(1)
            .detach()
            .requires_grad();
        let v = Tensor::randn(&[4, 8], 4)
            .l2_normalize(1)
            .detach()
            .requires_grad();
        let m = geodesic_mixup(&u, &v, &[0.3, 0.5, 0.7, 0.9]);
        m.square().sum_all().backward();
        assert!(u.grad().is_some());
        assert!(v.grad().is_some());
    }

    #[test]
    fn lambda_distribution_respects_gamma() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = sample_lambdas(5000, 0.1, &mut rng);
        assert!(l.iter().all(|x| (0.0..=1.0).contains(x)));
        let extreme = l.iter().filter(|&&x| !(0.1..=0.9).contains(&x)).count();
        assert!(
            extreme > 2500,
            "Beta(0.1, 0.1) should be bimodal, got {extreme}"
        );
    }
}
