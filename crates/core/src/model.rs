//! The [`AimTs`] model: both encoders, both projection heads, and the
//! multi-source pre-training loop of Fig. 3(a).

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

use aimts_data::preprocess::{resample_sample, z_normalize_sample};
use aimts_data::{Dataset, MultiSeries};
use aimts_eval::Summary;
use aimts_imaging::render_sample;
use aimts_nn::{
    load_state_dict, save_state_dict, Activation, Adam, Checkpoint, CheckpointError, Mlp, Module,
    Optimizer, ParamLayout, Replicate, StepLr,
};
use aimts_tensor::plan::{self, CompiledPlan};
use aimts_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::batch::{batch_indices, encode_channel_independent, samples_to_tensor};
use crate::checkpoint::{
    build_pretrain_checkpoint, checkpoint_path, decode_pretrain_checkpoint, prune_checkpoints,
    PretrainState,
};
use crate::config::{AimTsConfig, Executor, FineTuneConfig, PretrainConfig};
use crate::encoder::{ImageEncoder, TsEncoder};
use crate::finetune::FineTuned;
use crate::health::{
    guard_and_clip, params_all_finite, HealthMonitor, HealthReport, StepVerdict, TrainError,
};
use crate::losses;
use crate::mixup::{geodesic_mixup_t, sample_lambdas};
use crate::parallel;

/// Summary of a pre-training run.
#[derive(Debug, Clone)]
pub struct PretrainReport {
    /// Mean total loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Mean total loss of the final epoch.
    pub final_loss: f32,
    /// Optimizer steps taken.
    pub steps: usize,
    /// Mean `L_proto` of the final epoch (0 when ablated away).
    pub final_proto_loss: f32,
    /// Mean `L_SI` of the final epoch (0 when ablated away).
    pub final_si_loss: f32,
    /// Data-parallel workers actually used (1 = serial path).
    pub workers: usize,
    /// What the self-healing supervisor did during the run (skips, clips,
    /// rollbacks, worker panics, per-epoch gradient-norm stats).
    pub health: HealthReport,
}

/// Flat gradient of one micro-batch plus its loss values, produced by
/// [`AimTs::microbatch_gradient`] on a worker replica.
#[derive(Debug, Clone)]
pub struct MicroGrad {
    /// Gradient over all parameters in `named_parameters()` order.
    pub gradient: Vec<f32>,
    /// Total loss value of the micro-batch.
    pub loss: f32,
    /// `L_proto` value (0 when ablated away).
    pub proto_loss: f32,
    /// `L_SI` value (0 when ablated away).
    pub si_loss: f32,
}

/// Compiled-plan cache key: one plan per distinct batch shape `(B, M, T)`.
type PlanKey = (usize, usize, usize);

/// One pre-training step's freshly drawn graph inputs (see
/// [`AimTs::step_inputs`]): stacked view sets, adaptive temperatures,
/// rendered charts, the original series batch, and the mixup coefficients.
/// Fields are `None` when the ablation disables the loss that needs them.
struct StepTensors {
    b: usize,
    m: usize,
    t: usize,
    /// `[B*G, M, T]` first stacked view set (prototype losses).
    view0: Option<Tensor>,
    /// `[B*G, M, T]` second stacked view set.
    view1: Option<Tensor>,
    /// `[B, G, G]` within-set adaptive temperatures (Eq. 3).
    tau_w: Option<Tensor>,
    /// `[B, G, G]` cross-set adaptive temperatures.
    tau_c: Option<Tensor>,
    /// `[B, 3, H, W]` rendered line charts (series-image losses).
    img: Option<Tensor>,
    /// `[B, M, T]` un-augmented series batch.
    orig: Option<Tensor>,
    /// `[B]` geodesic-mixup coefficients `λ ~ Beta(γ, γ)`.
    lam: Option<Tensor>,
}

impl StepTensors {
    /// Present tensors in a fixed order — the compiled plan's input list.
    fn input_tensors(&self) -> Vec<Tensor> {
        [
            &self.view0,
            &self.view1,
            &self.tau_w,
            &self.tau_c,
            &self.img,
            &self.orig,
            &self.lam,
        ]
        .into_iter()
        .filter_map(|t| t.clone())
        .collect()
    }

    /// Copy this step's values into `dst`'s same-shaped tensors (the
    /// persistent input handles of a cached plan).
    fn copy_into(&self, dst: &StepTensors) {
        let pairs = [
            (&self.view0, &dst.view0),
            (&self.view1, &dst.view1),
            (&self.tau_w, &dst.tau_w),
            (&self.tau_c, &dst.tau_c),
            (&self.img, &dst.img),
            (&self.orig, &dst.orig),
            (&self.lam, &dst.lam),
        ];
        for (src, dst) in pairs {
            if let (Some(s), Some(d)) = (src, dst) {
                d.set_data(&s.data());
            }
        }
    }
}

/// The graph roots of one pre-training step (see [`AimTs::step_graph`]).
struct StepOutputs {
    /// Scalar total loss (Eq. 1) — the backward root.
    total: Tensor,
    /// `L_proto` (None when ablated away).
    proto: Option<Tensor>,
    /// `L_SI` (None when ablated away).
    si: Option<Tensor>,
}

/// A traced pre-training step: the replay plan, its persistent input
/// handles, and where `L_proto` / `L_SI` sit in the plan's output list
/// (output 0 is always the total loss).
struct StepPlan {
    plan: CompiledPlan,
    tensors: StepTensors,
    proto_idx: Option<usize>,
    si_idx: Option<usize>,
}

/// How one step's loss came to be: an eager autograd root, or a compiled
/// plan whose flat backward schedule stands in for the graph walk.
enum StepRun {
    Eager(Tensor),
    Plan(Arc<StepPlan>),
}

impl StepRun {
    /// The step's total loss value.
    fn loss_val(&self) -> f32 {
        match self {
            StepRun::Eager(t) => t.item(),
            StepRun::Plan(p) => p.plan.output(0).item(),
        }
    }

    /// Accumulate gradients into the model's parameters (graph walk for
    /// eager, precomputed dense-slot schedule for compiled — bitwise the
    /// same results).
    fn backward(&self) {
        match self {
            StepRun::Eager(t) => t.backward(),
            StepRun::Plan(p) => p.plan.backward(),
        }
    }
}

/// Lock the plan cache, surviving a poisoned mutex (a panicking worker may
/// have held it; the map is always in a consistent state between calls).
fn lock_cache(
    cache: &Mutex<HashMap<PlanKey, Option<Arc<StepPlan>>>>,
) -> std::sync::MutexGuard<'_, HashMap<PlanKey, Option<Arc<StepPlan>>>> {
    cache.lock().unwrap_or_else(|e| e.into_inner())
}

/// The AimTS model (paper Fig. 3).
pub struct AimTs {
    pub cfg: AimTsConfig,
    pub ts_encoder: TsEncoder,
    /// `P^TS`, the series projection head.
    pub ts_proj: Mlp,
    pub image_encoder: ImageEncoder,
    /// `P^I`, the image projection head.
    pub img_proj: Mlp,
    seed: u64,
    /// Compiled step plans keyed by batch shape; `None` poisons a shape
    /// whose trace failed so it stays permanently eager. The mutex is not
    /// for contention — plans only replay on the thread that traced them —
    /// but keeps `AimTs: Sync` for the worker pool. Never cloned into
    /// replicas: each replica warms its own cache on its pinned thread.
    plan_cache: Mutex<HashMap<PlanKey, Option<Arc<StepPlan>>>>,
    /// Parameter enumeration frozen on first use (`named_parameters` walks
    /// the module tree and formats names; the flat-exchange hot path would
    /// otherwise redo that every call).
    layout: OnceLock<ParamLayout>,
}

impl AimTs {
    /// Fresh model with deterministic initialization.
    pub fn new(cfg: AimTsConfig, seed: u64) -> Self {
        let ts_encoder = TsEncoder::new(cfg.hidden, cfg.repr_dim, &cfg.dilations, seed);
        let ts_proj = Mlp::new(
            &[cfg.repr_dim, cfg.repr_dim, cfg.proj_dim],
            Activation::Gelu,
            seed.wrapping_add(1000),
        );
        let image_encoder = ImageEncoder::new(cfg.repr_dim, seed.wrapping_add(2000));
        let img_proj = Mlp::new(
            &[cfg.repr_dim, cfg.repr_dim, cfg.proj_dim],
            Activation::Gelu,
            seed.wrapping_add(3000),
        );
        AimTs {
            cfg,
            ts_encoder,
            ts_proj,
            image_encoder,
            img_proj,
            seed,
            plan_cache: Mutex::new(HashMap::new()),
            layout: OnceLock::new(),
        }
    }

    /// The frozen parameter layout (computed once per instance). The
    /// handles alias the live parameters, so reads and writes through the
    /// layout are indistinguishable from re-enumerating every call.
    fn layout(&self) -> &ParamLayout {
        self.layout.get_or_init(|| ParamLayout::of(self))
    }

    /// [`Module::flat_parameters`] through the cached [`ParamLayout`].
    pub fn flat_parameters(&self) -> Vec<f32> {
        self.layout().flat_parameters()
    }

    /// [`Module::load_flat`] through the cached [`ParamLayout`].
    pub fn load_flat(&self, flat: &[f32]) {
        self.layout().load_flat(flat)
    }

    /// [`Module::flat_gradient`] through the cached [`ParamLayout`].
    pub fn flat_gradient(&self) -> Vec<f32> {
        self.layout().flat_gradient()
    }

    /// [`Module::accumulate_flat_gradient`] through the cached
    /// [`ParamLayout`].
    pub fn accumulate_flat_gradient(&self, flat: &[f32]) {
        self.layout().accumulate_flat_gradient(flat)
    }

    /// All trainable parameters with stable hierarchical names.
    pub fn named_parameters(&self) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        self.ts_encoder.named_parameters("ts_encoder", &mut out);
        self.ts_proj.named_parameters("ts_proj", &mut out);
        self.image_encoder
            .named_parameters("image_encoder", &mut out);
        self.img_proj.named_parameters("img_proj", &mut out);
        out
    }

    /// Total scalar parameter count.
    pub fn num_parameters(&self) -> usize {
        self.named_parameters().iter().map(|(_, t)| t.numel()).sum()
    }

    /// Save all parameters as JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        save_state_dict(path, &self.named_parameters())
    }

    /// Load all parameters from JSON (shapes must match).
    pub fn load(&mut self, path: &Path) -> io::Result<()> {
        load_state_dict(path, &self.named_parameters())
    }

    /// Normalize + resample one pool sample to the pre-training length.
    fn prepare(&self, s: &MultiSeries) -> MultiSeries {
        let mut vars = resample_sample(s, self.cfg.pretrain_len);
        z_normalize_sample(&mut vars);
        vars
    }

    /// Multi-source pre-training (paper Fig. 3a; losses Eq. 1).
    ///
    /// `pool` may mix variable counts and lengths — samples are resampled
    /// to `cfg.pretrain_len`, z-normalized, and batched within groups of
    /// equal variable count.
    ///
    /// Training is data-parallel across micro-batches: the worker count is
    /// resolved by [`parallel::worker_count`] from `pcfg.workers` (then the
    /// `AIMTS_THREADS` environment variable, then available cores). With
    /// one worker the original serial loop runs, bit-for-bit.
    ///
    /// Fault tolerance comes in two layers. `pcfg.checkpoint` gives
    /// periodic checkpoints and — when `resume_from` is set — bit-exact
    /// continuation of an interrupted run (identical parameters and loss
    /// curve to the uninterrupted run on the serial path; the data-parallel
    /// path matches within float all-reduce tolerance when resumed with the
    /// same worker count). `pcfg.health` arms the self-healing supervisor:
    /// non-finite losses/gradients skip the step, optional global-norm
    /// clipping, automatic rollback to the last good epoch boundary after
    /// too many consecutive anomalies, and worker-panic containment on the
    /// data-parallel path (see [`crate::health`]).
    ///
    /// Errors are typed: [`TrainError::Checkpoint`] for checkpoint I/O or
    /// compatibility failures, [`TrainError::Diverged`] when the rollback
    /// budget is exhausted (the model is left on its last good weights).
    pub fn pretrain(
        &mut self,
        pool: &[MultiSeries],
        pcfg: &PretrainConfig,
    ) -> Result<PretrainReport, TrainError> {
        assert!(pool.len() >= 2, "pre-training needs at least 2 samples");
        let workers = parallel::worker_count(pcfg.workers);
        if workers <= 1 {
            self.pretrain_serial(pool, pcfg)
        } else {
            self.pretrain_parallel(pool, pcfg, workers)
        }
    }

    /// Restore a pre-training checkpoint into `self`/`opt`/`sched` and
    /// validate that it belongs to this run shape (same seed, same worker
    /// topology). Returns the decoded training bookkeeping.
    fn restore_pretrain(
        &mut self,
        path: &Path,
        pcfg: &PretrainConfig,
        expected_workers: u32,
        opt: &mut Adam,
        sched: &mut StepLr,
    ) -> Result<PretrainState, CheckpointError> {
        let ck = aimts_nn::Checkpoint::load(path)?;
        let dec = decode_pretrain_checkpoint(&ck)?;
        if dec.train.base_seed != pcfg.seed {
            return Err(CheckpointError::Incompatible {
                detail: format!(
                    "checkpoint was produced with seed {}, this run uses seed {} \
                     (resume requires the same seed for identical random streams)",
                    dec.train.base_seed, pcfg.seed
                ),
            });
        }
        if dec.train.workers != expected_workers {
            return Err(CheckpointError::Incompatible {
                detail: format!(
                    "checkpoint was produced with workers={}, this run resolves workers={} \
                     (gradient-averaging rounds depend on the worker count)",
                    dec.train.workers, expected_workers
                ),
            });
        }
        if dec.train.epochs_done as usize > pcfg.epochs {
            return Err(CheckpointError::Incompatible {
                detail: format!(
                    "checkpoint has already completed {} epochs but this run asks for {}",
                    dec.train.epochs_done, pcfg.epochs
                ),
            });
        }
        dec.apply_params(self)?;
        opt.restore_state(&dec.adam)
            .map_err(|detail| CheckpointError::Incompatible { detail })?;
        sched
            .restore_state(&dec.scheduler)
            .map_err(|detail| CheckpointError::Incompatible { detail })?;
        Ok(dec.train)
    }

    /// Restore the in-memory last-good checkpoint into `self`/`opt`/`sched`
    /// after the supervisor demanded a rollback. The restore happens
    /// *before* the rollback budget is checked, so even a run that aborts
    /// with [`TrainError::Diverged`] ends on the last good weights. Returns
    /// the restored training bookkeeping.
    fn rollback(
        &mut self,
        last_good: &Checkpoint,
        opt: &mut Adam,
        sched: &mut StepLr,
        mon: &mut HealthMonitor,
        reason: &str,
    ) -> Result<PretrainState, TrainError> {
        let dec = decode_pretrain_checkpoint(last_good)?;
        dec.apply_params(self)?;
        opt.restore_state(&dec.adam)
            .map_err(|detail| CheckpointError::Incompatible { detail })?;
        sched
            .restore_state(&dec.scheduler)
            .map_err(|detail| CheckpointError::Incompatible { detail })?;
        mon.record_rollback(reason)?;
        eprintln!(
            "warning: self-healing rollback to epoch {} ({reason})",
            dec.train.epochs_done
        );
        Ok(dec.train)
    }

    /// Group prepared-sample indices by variable count (constant M per
    /// batch).
    fn group_by_var_count(
        prepared: &[MultiSeries],
    ) -> std::collections::BTreeMap<usize, Vec<usize>> {
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for (i, s) in prepared.iter().enumerate() {
            groups.entry(s.len()).or_default().push(i);
        }
        groups
    }

    /// The original single-threaded loop: one shared RNG drives shuffling
    /// and augmentation sequentially, one optimizer step per micro-batch,
    /// every step supervised by the [`HealthMonitor`].
    fn pretrain_serial(
        &mut self,
        pool: &[MultiSeries],
        pcfg: &PretrainConfig,
    ) -> Result<PretrainReport, TrainError> {
        let prepared: Vec<MultiSeries> = pool.iter().map(|s| self.prepare(s)).collect();
        let groups = Self::group_by_var_count(&prepared);
        // Buffer arena for the whole run: after the first step the graph's
        // buffer sizes are all pooled, so steady-state steps stop
        // allocating (see `aimts_tensor::arena`).
        let _arena = aimts_tensor::arena::enable();

        let params: Vec<Tensor> = self
            .named_parameters()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        let mut opt = Adam::new(params.clone(), pcfg.lr);
        let mut sched = StepLr::new(pcfg.lr, pcfg.lr_step, pcfg.lr_gamma);
        let mut rng = StdRng::seed_from_u64(pcfg.seed);
        let mut mon = HealthMonitor::new(pcfg.health.clone());

        let mut epoch_losses = Vec::with_capacity(pcfg.epochs);
        let mut steps = 0usize;
        let (mut last_proto, mut last_si) = (0f32, 0f32);
        let mut epoch = 0usize;
        if let Some(path) = &pcfg.checkpoint.resume_from {
            let st = self.restore_pretrain(path, pcfg, 1, &mut opt, &mut sched)?;
            rng = StdRng::from_state(st.rng_state);
            epoch = st.epochs_done as usize;
            steps = st.steps as usize;
            epoch_losses = st.epoch_losses;
            last_proto = st.last_proto;
            last_si = st.last_si;
        }
        // In-memory rollback target: exactly what a checkpoint written at
        // this epoch boundary would contain. Held in memory so rollback
        // works even when `checkpoint.dir` is unset.
        let mut last_good = build_pretrain_checkpoint(
            self,
            &opt.export_state(),
            &sched.export_state(),
            &PretrainState {
                steps: steps as u64,
                epochs_done: epoch as u64,
                base_seed: pcfg.seed,
                rng_state: rng.state(),
                micro_counter: 0,
                workers: 1,
                epoch_losses: epoch_losses.clone(),
                last_proto,
                last_si,
            },
        );
        while epoch < pcfg.epochs {
            let mut losses_this_epoch = Vec::new();
            let (mut protos, mut sis) = (Vec::new(), Vec::new());
            let mut rollback: Option<String> = None;
            'epoch: for idxs in groups.values() {
                for batch in batch_indices(idxs.len(), pcfg.batch_size, &mut rng) {
                    let samples: Vec<&MultiSeries> =
                        batch.iter().map(|&k| &prepared[idxs[k]]).collect();
                    let attempt = mon.begin_attempt();
                    let (run, lp, lsi) =
                        self.pretrain_step_ex(&samples, &mut rng, pcfg.executor, 1);
                    let loss_val = run.loss_val();
                    let bad = if mon.loss_is_bad(loss_val, attempt) {
                        Some(format!("non-finite loss {loss_val}"))
                    } else {
                        opt.zero_grad();
                        run.backward();
                        let (norm, clipped) = guard_and_clip(&params, mon.policy().clip_norm);
                        if !norm.is_finite() {
                            Some(format!("non-finite gradient norm {norm}"))
                        } else {
                            opt.step();
                            steps += 1;
                            if !params_all_finite(&params) {
                                rollback = Some("non-finite parameter after optimizer step".into());
                                break 'epoch;
                            }
                            mon.record_step(norm, clipped);
                            losses_this_epoch.push(loss_val as f64);
                            protos.push(lp as f64);
                            sis.push(lsi as f64);
                            None
                        }
                    };
                    if let Some(reason) = bad {
                        opt.zero_grad();
                        if mon.record_skip() == StepVerdict::RollBack {
                            rollback = Some(format!(
                                "{} consecutive anomalous steps (last: {reason})",
                                mon.policy().max_bad_steps.max(1)
                            ));
                            break 'epoch;
                        }
                    }
                }
            }
            if let Some(reason) = rollback {
                let st = self.rollback(&last_good, &mut opt, &mut sched, &mut mon, &reason)?;
                // Re-shuffle forward: a fresh deterministic shuffling stream
                // so the replayed epoch does not re-create the exact batch
                // sequence that just poisoned the run.
                rng = StdRng::seed_from_u64(parallel::microbatch_seed(
                    st.rng_state,
                    RESHUFFLE_STREAM,
                    mon.report().rollbacks as u64,
                ));
                epoch = st.epochs_done as usize;
                steps = st.steps as usize;
                epoch_losses = st.epoch_losses;
                last_proto = st.last_proto;
                last_si = st.last_si;
                continue;
            }
            epoch_losses.push(mean_or_nan(&losses_this_epoch));
            last_proto = mean_or_nan(&protos);
            last_si = mean_or_nan(&sis);
            mon.end_epoch();
            sched.step(&mut opt);
            last_good = build_pretrain_checkpoint(
                self,
                &opt.export_state(),
                &sched.export_state(),
                &PretrainState {
                    steps: steps as u64,
                    epochs_done: (epoch + 1) as u64,
                    base_seed: pcfg.seed,
                    rng_state: rng.state(),
                    micro_counter: 0,
                    workers: 1,
                    epoch_losses: epoch_losses.clone(),
                    last_proto,
                    last_si,
                },
            );
            maybe_write_checkpoint(pcfg, epoch + 1, &last_good)?;
            epoch += 1;
        }
        Ok(PretrainReport {
            final_loss: epoch_losses.last().copied().unwrap_or(f32::NAN),
            epoch_losses,
            steps,
            final_proto_loss: last_proto,
            final_si_loss: last_si,
            workers: 1,
            health: mon.into_report(),
        })
    }

    /// Data-parallel loop: each round ships the master weights to per-worker
    /// replicas, runs up to `workers` micro-batches concurrently (augment,
    /// rasterize, forward, backward all on the worker thread), all-reduces
    /// the flat gradients, and steps the optimizer once on the mean.
    ///
    /// Worker threads are spawned **once** per run by
    /// [`parallel::with_worker_pool`] and live until the run ends; slot `i`
    /// always executes replica `i`, so every replica's tensors and buffer
    /// arena stay on one thread for the whole run. The worker hot path
    /// takes no locks: replica activations live in unsynchronized hot
    /// storage, and the only `RwLock`s left are on `requires_grad`
    /// parameters — written by `load_flat` at the top of a task and read
    /// when the gradient is exported, both on the owning worker thread.
    ///
    /// Augmentation RNG is derived per micro-batch from
    /// [`parallel::microbatch_seed`], so results depend only on the seed and
    /// worker count — never on thread scheduling.
    ///
    /// Worker panics are contained per micro-batch: a crashed or poisoned
    /// replica degrades the step to the surviving replicas' gradients
    /// (re-averaged) instead of aborting the process; a round with no
    /// survivors is skipped like any other anomalous step. The panicking
    /// worker thread itself survives and serves later rounds.
    fn pretrain_parallel(
        &mut self,
        pool: &[MultiSeries],
        pcfg: &PretrainConfig,
        workers: usize,
    ) -> Result<PretrainReport, TrainError> {
        /// One dispatched micro-batch: (augmentation seed, micro index,
        /// sample indices, master weights snapshot).
        type PoolTask = (u64, u64, Vec<usize>, Arc<Vec<f32>>);

        let prepared: Vec<MultiSeries> = pool.iter().map(|s| self.prepare(s)).collect();
        let groups = Self::group_by_var_count(&prepared);
        // Master-thread arena: the all-reduce mean, flat master weights,
        // and shipped worker gradients all recycle through it.
        let _arena = aimts_tensor::arena::enable();

        let params: Vec<Tensor> = self
            .named_parameters()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        let mut opt = Adam::new(params.clone(), pcfg.lr);
        let mut sched = StepLr::new(pcfg.lr, pcfg.lr_step, pcfg.lr_gamma);
        // Drives shuffling only; augmentation seeds are derived per
        // micro-batch.
        let mut rng = StdRng::seed_from_u64(pcfg.seed);
        let mut mon = HealthMonitor::new(pcfg.health.clone());
        // The fault plan is fixed at construction; capture it by value so
        // the worker closure does not borrow the monitor.
        let fault = mon.policy().fault;
        let executor = pcfg.executor;

        // An epoch can never yield more micro-batches than this, so extra
        // replicas would sit idle.
        let max_micro: usize = groups.values().map(|g| g.len().div_ceil(2)).sum();
        let workers = workers.min(max_micro.max(1));

        let mut epoch_losses = Vec::with_capacity(pcfg.epochs);
        let mut steps = 0usize;
        let (mut last_proto, mut last_si) = (0f32, 0f32);
        let mut micro_counter = 0u64;
        let mut epoch = 0usize;
        if let Some(path) = &pcfg.checkpoint.resume_from {
            let st = self.restore_pretrain(path, pcfg, workers as u32, &mut opt, &mut sched)?;
            rng = StdRng::from_state(st.rng_state);
            epoch = st.epochs_done as usize;
            steps = st.steps as usize;
            micro_counter = st.micro_counter;
            epoch_losses = st.epoch_losses;
            last_proto = st.last_proto;
            last_si = st.last_si;
        }
        // Replicate *after* a potential restore so workers start from the
        // checkpointed weights.
        let replicas: Vec<AimTs> = (0..workers).map(|_| self.replicate()).collect();
        // In-memory rollback target (see `pretrain_serial`).
        let mut last_good = build_pretrain_checkpoint(
            self,
            &opt.export_state(),
            &sched.export_state(),
            &PretrainState {
                steps: steps as u64,
                epochs_done: epoch as u64,
                base_seed: pcfg.seed,
                rng_state: rng.state(),
                micro_counter,
                workers: workers as u32,
                epoch_losses: epoch_losses.clone(),
                last_proto,
                last_si,
            },
        );

        parallel::with_worker_pool(
            workers,
            |slot, (seed, micro, batch, master): PoolTask| {
                if fault.forces_panic(micro) {
                    // aimts-lint: allow(A001, deliberate fault injection: the resilience suite requires a real worker panic)
                    panic!("injected worker panic on micro-batch {micro}");
                }
                let replica = &replicas[slot];
                replica.load_flat(&master);
                let samples: Vec<&MultiSeries> = batch.iter().map(|&i| &prepared[i]).collect();
                replica.microbatch_gradient_ex(&samples, seed, executor, workers)
            },
            |pool| -> Result<PretrainReport, TrainError> {
                while epoch < pcfg.epochs {
                    // The epoch's schedule up front: (derived seed, micro index,
                    // sample indices).
                    let mut schedule: Vec<(u64, u64, Vec<usize>)> = Vec::new();
                    for idxs in groups.values() {
                        for batch in batch_indices(idxs.len(), pcfg.batch_size, &mut rng) {
                            let seed =
                                parallel::microbatch_seed(pcfg.seed, epoch as u64, micro_counter);
                            schedule.push((
                                seed,
                                micro_counter,
                                batch.iter().map(|&k| idxs[k]).collect(),
                            ));
                            micro_counter += 1;
                        }
                    }
                    let mut losses_this_epoch = Vec::new();
                    let (mut protos, mut sis) = (Vec::new(), Vec::new());
                    let mut rollback: Option<String> = None;
                    'rounds: for round in schedule.chunks(workers) {
                        let attempt = mon.begin_attempt();
                        let master = Arc::new(self.flat_parameters());
                        let tasks: Vec<PoolTask> = round
                            .iter()
                            .map(|(seed, micro, batch)| {
                                (*seed, *micro, batch.clone(), Arc::clone(&master))
                            })
                            .collect();
                        let results = pool.run_round(tasks);
                        // Every worker dropped its snapshot clone before reporting;
                        // reclaim the master buffer for the next round.
                        if let Ok(buf) = Arc::try_unwrap(master) {
                            aimts_tensor::arena::recycle(buf);
                        }
                        let forced = fault.forces_bad(attempt);
                        let mut grads = Vec::with_capacity(results.len());
                        let mut stats = Vec::with_capacity(results.len());
                        let (mut panics, mut poisoned) = (0usize, 0usize);
                        for r in results {
                            match r {
                                Err(msg) => {
                                    eprintln!("warning: pre-training worker panicked: {msg}");
                                    panics += 1;
                                }
                                Ok(mg) => {
                                    if forced
                                        || !mg.loss.is_finite()
                                        || !aimts_tensor::all_finite(&mg.gradient)
                                    {
                                        poisoned += 1;
                                    } else {
                                        stats.push((mg.loss, mg.proto_loss, mg.si_loss));
                                        grads.push(mg.gradient);
                                    }
                                }
                            }
                        }
                        if grads.is_empty() {
                            // No usable gradient in the whole round: skip the step.
                            mon.record_lost_round(panics);
                            if mon.record_skip() == StepVerdict::RollBack {
                                rollback = Some(format!(
                                    "{} consecutive anomalous steps (last round: \
                             {panics} worker panics, {poisoned} poisoned gradients)",
                                    mon.policy().max_bad_steps.max(1)
                                ));
                                break 'rounds;
                            }
                            continue;
                        }
                        let (mean, excluded) = parallel::all_reduce_mean_guarded(&grads)
                            // aimts-lint: allow(A001, survivors were filtered to all-finite buffers two lines above)
                            .expect("surviving gradient buffers are all-finite");
                        debug_assert_eq!(excluded, 0, "survivors were pre-filtered");
                        opt.zero_grad();
                        self.accumulate_flat_gradient(&mean);
                        // The mean is folded into `.grad` slots and the per-worker
                        // buffers are summed; all of them can go back to the pool.
                        aimts_tensor::arena::recycle(mean);
                        for g in grads {
                            aimts_tensor::arena::recycle(g);
                        }
                        let (norm, clipped) = guard_and_clip(&params, mon.policy().clip_norm);
                        if !norm.is_finite() {
                            // Unreachable when the survivors are finite; kept as a
                            // defensive guard so a logic error skips instead of
                            // stepping on garbage.
                            opt.zero_grad();
                            mon.record_lost_round(panics);
                            if mon.record_skip() == StepVerdict::RollBack {
                                rollback = Some(format!("non-finite gradient norm {norm}"));
                                break 'rounds;
                            }
                            continue;
                        }
                        opt.step();
                        steps += 1;
                        if !params_all_finite(&params) {
                            mon.record_lost_round(panics);
                            rollback = Some("non-finite parameter after optimizer step".into());
                            break 'rounds;
                        }
                        mon.record_step(norm, clipped);
                        mon.record_degraded(panics, poisoned);
                        for (l, lp, lsi) in stats {
                            losses_this_epoch.push(l as f64);
                            protos.push(lp as f64);
                            sis.push(lsi as f64);
                        }
                    }
                    if let Some(reason) = rollback {
                        let st =
                            self.rollback(&last_good, &mut opt, &mut sched, &mut mon, &reason)?;
                        rng = StdRng::seed_from_u64(parallel::microbatch_seed(
                            st.rng_state,
                            RESHUFFLE_STREAM,
                            mon.report().rollbacks as u64,
                        ));
                        epoch = st.epochs_done as usize;
                        steps = st.steps as usize;
                        micro_counter = st.micro_counter;
                        epoch_losses = st.epoch_losses;
                        last_proto = st.last_proto;
                        last_si = st.last_si;
                        continue;
                    }
                    epoch_losses.push(mean_or_nan(&losses_this_epoch));
                    last_proto = mean_or_nan(&protos);
                    last_si = mean_or_nan(&sis);
                    mon.end_epoch();
                    sched.step(&mut opt);
                    last_good = build_pretrain_checkpoint(
                        self,
                        &opt.export_state(),
                        &sched.export_state(),
                        &PretrainState {
                            steps: steps as u64,
                            epochs_done: (epoch + 1) as u64,
                            base_seed: pcfg.seed,
                            rng_state: rng.state(),
                            micro_counter,
                            workers: workers as u32,
                            epoch_losses: epoch_losses.clone(),
                            last_proto,
                            last_si,
                        },
                    );
                    maybe_write_checkpoint(pcfg, epoch + 1, &last_good)?;
                    epoch += 1;
                }
                Ok(PretrainReport {
                    final_loss: epoch_losses.last().copied().unwrap_or(f32::NAN),
                    epoch_losses,
                    steps,
                    final_proto_loss: last_proto,
                    final_si_loss: last_si,
                    workers,
                    health: mon.into_report(),
                })
            },
        )
    }

    /// Zero all gradients, run one pre-training step on already-prepared
    /// `samples` with a fresh RNG seeded by `rng_seed`, backprop, and export
    /// the flat gradient. The building block of the data-parallel path; also
    /// the seam the determinism tests use to compare serial and threaded
    /// gradient computation.
    pub fn microbatch_gradient(&self, samples: &[&MultiSeries], rng_seed: u64) -> MicroGrad {
        self.microbatch_gradient_ex(samples, rng_seed, Executor::Eager, 1)
    }

    /// [`AimTs::microbatch_gradient`] with an explicit execution engine and
    /// worker topology. Compiled plans are tagged with the topology they
    /// were traced under so a resumed run with a different worker count can
    /// never replay a stale plan (it falls back to eager instead).
    pub fn microbatch_gradient_ex(
        &self,
        samples: &[&MultiSeries],
        rng_seed: u64,
        executor: Executor,
        topology: usize,
    ) -> MicroGrad {
        self.layout().zero_grad();
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let (run, proto_loss, si_loss) =
            self.pretrain_step_ex(samples, &mut rng, executor, topology);
        let loss_val = run.loss_val();
        run.backward();
        MicroGrad {
            gradient: self.flat_gradient(),
            loss: loss_val,
            proto_loss,
            si_loss,
        }
    }

    /// One pre-training step on a batch of prepared samples, routed
    /// through the configured executor. Returns the step run handle (loss
    /// root or compiled plan) plus the `L_proto` / `L_SI` values.
    ///
    /// The eager engine builds and returns the autograd graph as always.
    /// The compiled engine draws the step's inputs (identical RNG stream),
    /// then replays the cached plan for this batch shape — tracing it first
    /// if this shape has not been seen. Any replay obstacle (trace failure,
    /// thread or topology mismatch, interior shape change) falls back to an
    /// eager step over the *already drawn* inputs, so the executors can
    /// never diverge on randomness.
    fn pretrain_step_ex(
        &self,
        samples: &[&MultiSeries],
        rng: &mut StdRng,
        executor: Executor,
        topology: usize,
    ) -> (StepRun, f32, f32) {
        let inp = self.step_inputs(samples, rng);
        if executor == Executor::Eager {
            return self.eager_step(inp);
        }
        let key = (inp.b, inp.m, inp.t);
        let cached = lock_cache(&self.plan_cache).get(&key).cloned();
        match cached {
            // Shape traced before and judged untraceable: permanent eager.
            Some(None) => self.eager_step(inp),
            Some(Some(sp)) => {
                if sp.plan.on_trace_thread() && sp.plan.check_topology(topology).is_ok() {
                    inp.copy_into(&sp.tensors);
                    if sp.plan.run().is_ok() {
                        let lp = sp.proto_idx.map_or(0.0, |i| sp.plan.output(i).item());
                        let ls = sp.si_idx.map_or(0.0, |i| sp.plan.output(i).item());
                        return (StepRun::Plan(sp), lp, ls);
                    }
                }
                // Thread/topology mismatch or an interior shape drift: run
                // this one step eagerly; the cached plan stays for callers
                // on the right thread.
                self.eager_step(inp)
            }
            None => {
                let trace_inputs = inp.input_tensors();
                let (mut proto_idx, mut si_idx) = (None, None);
                let traced = plan::trace(&trace_inputs, topology, || {
                    let out = self.step_graph(&inp);
                    let mut outs = vec![out.total];
                    if let Some(p) = out.proto {
                        proto_idx = Some(outs.len());
                        outs.push(p);
                    }
                    if let Some(s) = out.si {
                        si_idx = Some(outs.len());
                        outs.push(s);
                    }
                    outs
                });
                match traced {
                    Ok(plan) => {
                        // The trace *was* this step's eager forward; its
                        // outputs already hold the step's values.
                        let lp = proto_idx.map_or(0.0, |i| plan.output(i).item());
                        let ls = si_idx.map_or(0.0, |i| plan.output(i).item());
                        let sp = Arc::new(StepPlan {
                            plan,
                            tensors: inp,
                            proto_idx,
                            si_idx,
                        });
                        lock_cache(&self.plan_cache).insert(key, Some(Arc::clone(&sp)));
                        (StepRun::Plan(sp), lp, ls)
                    }
                    Err(_) => {
                        // Untraceable graph (should not happen for the step
                        // graph, but custom banks could introduce foreign
                        // ops): poison the shape and redo the step eagerly.
                        lock_cache(&self.plan_cache).insert(key, None);
                        self.eager_step(inp)
                    }
                }
            }
        }
    }

    /// Eager step over inputs that were already drawn (fallback seam of the
    /// compiled executor, and the tail of the eager one).
    fn eager_step(&self, inp: StepTensors) -> (StepRun, f32, f32) {
        let out = self.step_graph(&inp);
        let lp = out.proto.as_ref().map_or(0.0, Tensor::item);
        let ls = out.si.as_ref().map_or(0.0, Tensor::item);
        (StepRun::Eager(out.total), lp, ls)
    }

    /// Draw one step's inputs: every random decision (augmented views,
    /// mixup lambdas) and all CPU-side preprocessing (distances, adaptive
    /// temperatures, chart rasterization, batch stacking) in the exact
    /// order of the historical monolithic step, so the RNG stream is
    /// bit-identical. The returned tensors are pure graph inputs with no
    /// autograd history of interest.
    fn step_inputs(&self, samples: &[&MultiSeries], rng: &mut StdRng) -> StepTensors {
        let cfg = &self.cfg;
        let b = samples.len();
        let g = cfg.g();
        let m = samples[0].len();
        let t_len = samples[0][0].len();
        let ab = cfg.ablation;
        let (mut view0, mut view1, mut tau_w, mut tau_c) = (None, None, None, None);
        if ab.inter || ab.intra {
            // --- augmented views ---------------------------------------------
            // Two view sets: views[set][i][k] is a MultiSeries.
            let mut views = [Vec::with_capacity(b), Vec::with_capacity(b)];
            for s in samples {
                for set in &mut views {
                    let per_aug: Vec<MultiSeries> = cfg
                        .bank
                        .iter()
                        .map(|aug| aug.apply_multivariate(s, rng))
                        .collect();
                    set.push(per_aug);
                }
            }
            // Adaptive temperatures from raw-series distances (Eq. 3).
            let flat = |v: &MultiSeries| -> Vec<f32> { v.concat() };
            let mut d_within = vec![0f32; b * g * g];
            let mut d_cross = vec![0f32; b * g * g];
            for i in 0..b {
                let f0: Vec<Vec<f32>> = views[0][i].iter().map(&flat).collect();
                let f1: Vec<Vec<f32>> = views[1][i].iter().map(&flat).collect();
                for j in 0..g {
                    for k in 0..g {
                        d_within[(i * g + j) * g + k] = aimts_augment::euclidean(&f0[j], &f0[k]);
                        d_cross[(i * g + j) * g + k] = aimts_augment::euclidean(&f0[j], &f1[k]);
                    }
                }
            }
            tau_w = Some(Tensor::from_vec(
                losses::adaptive_tau(&d_within, b, g, cfg.tau0, true),
                &[b, g, g],
            ));
            tau_c = Some(Tensor::from_vec(
                losses::adaptive_tau(&d_cross, b, g, cfg.tau0, true),
                &[b, g, g],
            ));
            // Order rows (i, k): each entry is a MultiSeries of equal M/T.
            let stack = |set: &Vec<Vec<MultiSeries>>| -> Tensor {
                let refs: Vec<&MultiSeries> = set.iter().flatten().collect();
                samples_to_tensor(&refs) // [B*G, M, T]
            };
            view0 = Some(stack(&views[0]));
            view1 = Some(stack(&views[1]));
        }
        let (mut img, mut orig, mut lam) = (None, None, None);
        if ab.si_naive || ab.si_mixup {
            let imgs: Vec<Tensor> = samples
                .iter()
                .map(|s| {
                    let img = render_sample(s, &cfg.image);
                    Tensor::from_vec(img.data, &[1, 3, img.height, img.width])
                })
                .collect();
            img = Some(Tensor::concat(&imgs, 0));
            orig = Some(samples_to_tensor(samples));
            if ab.si_mixup {
                lam = Some(Tensor::from_vec(sample_lambdas(b, cfg.gamma, rng), &[b]));
            }
        }
        StepTensors {
            b,
            m,
            t: t_len,
            view0,
            view1,
            tau_w,
            tau_c,
            img,
            orig,
            lam,
        }
    }

    /// The tensor graph of one pre-training step over already-drawn inputs:
    /// no RNG, no CPU preprocessing — exactly the arithmetic of the
    /// historical monolithic step, and the region the compiled executor
    /// traces.
    fn step_graph(&self, inp: &StepTensors) -> StepOutputs {
        let cfg = &self.cfg;
        let b = inp.b;
        let g = cfg.g();
        let ab = cfg.ablation;
        let mut total: Option<Tensor> = None;
        let (mut proto_out, mut si_out) = (None, None);

        if ab.inter || ab.intra {
            let take = |t: &Option<Tensor>| -> Tensor {
                t.clone()
                    // aimts-lint: allow(A001, step_inputs and step_graph read the same immutable ablation flags)
                    .expect("step_inputs populates every tensor its ablation enables")
            };
            let (tau_w, tau_c) = (take(&inp.tau_w), take(&inp.tau_c));
            // --- encode both view sets ---------------------------------------
            let r = encode_channel_independent(&self.ts_encoder, &take(&inp.view0)); // [B*G, J]
            let rt = encode_channel_independent(&self.ts_encoder, &take(&inp.view1));

            let mut inter_term = None;
            let mut intra_term = None;
            if ab.intra {
                let v = self
                    .ts_proj
                    .forward(&r)
                    .l2_normalize(1)
                    .reshape(&[b, g, cfg.proj_dim]);
                let vt = self
                    .ts_proj
                    .forward(&rt)
                    .l2_normalize(1)
                    .reshape(&[b, g, cfg.proj_dim]);
                intra_term = Some(losses::intra_prototype_loss(&v, &vt, &tau_w, &tau_c));
            }
            if ab.inter {
                // Prototype = P^TS(mean over augmentations of r) (Eq. 2).
                let rbar = r.reshape(&[b, g, cfg.repr_dim]).mean_axis(1, false);
                let rtbar = rt.reshape(&[b, g, cfg.repr_dim]).mean_axis(1, false);
                let z = self.ts_proj.forward(&rbar).l2_normalize(1);
                let zt = self.ts_proj.forward(&rtbar).l2_normalize(1);
                inter_term = Some(losses::inter_prototype_loss(&z, &zt, cfg.tau_inter));
            }
            let proto = match (inter_term, intra_term) {
                (Some(inter), Some(intra)) => losses::proto_loss(&inter, &intra, cfg.alpha),
                (Some(inter), None) => inter,
                (None, Some(intra)) => intra,
                (None, None) => unreachable!(),
            };
            proto_out = Some(proto.clone());
            total = Some(proto);
        }

        if ab.si_naive || ab.si_mixup {
            // --- series-image contrastive ------------------------------------
            let take = |t: &Option<Tensor>| -> Tensor {
                t.clone()
                    // aimts-lint: allow(A001, step_inputs and step_graph read the same immutable ablation flags)
                    .expect("step_inputs populates every tensor its ablation enables")
            };
            let u = self
                .img_proj
                .forward(&self.image_encoder.encode(&take(&inp.img)))
                .l2_normalize(1);
            let r_orig = encode_channel_independent(&self.ts_encoder, &take(&inp.orig));
            let v_si = self.ts_proj.forward(&r_orig).l2_normalize(1);

            let naive = losses::series_image_naive(&u, &v_si, cfg.tau_si);
            let si = if ab.si_mixup {
                let mixed = geodesic_mixup_t(&u, &v_si, &take(&inp.lam));
                let mix = losses::series_image_mixup(&u, &v_si, &mixed, cfg.tau_si);
                if ab.si_naive {
                    losses::series_image_loss(&naive, &mix, cfg.beta)
                } else {
                    mix
                }
            } else {
                naive
            };
            si_out = Some(si.clone());
            total = Some(match total {
                Some(t) => t.add(&si),
                None => si,
            });
        }

        let total = total.expect("at least one loss component must be enabled"); // aimts-lint: allow(A001, config validation rejects all-disabled loss components before training starts)
        StepOutputs {
            total,
            proto: proto_out,
            si: si_out,
        }
    }

    /// Encode downstream samples (no augmentation, no images — Fig. 3b).
    /// All samples must share `M` and `T`; returns `[B, J]`.
    pub fn encode(&self, samples: &[&MultiSeries]) -> Tensor {
        let batch = samples_to_tensor(samples);
        encode_channel_independent(&self.ts_encoder, &batch)
    }

    /// Fine-tune a *copy* of the pre-trained TS encoder plus a fresh MLP
    /// classifier on a downstream dataset (Fig. 3b). The pre-trained model
    /// itself is left untouched so it can be reused across tasks.
    pub fn fine_tune(&self, ds: &Dataset, fcfg: &FineTuneConfig) -> FineTuned {
        FineTuned::train(self, ds, fcfg)
    }

    /// Deep copy with fresh parameter storage: a data-parallel replica.
    /// Shares nothing with the original (see [`Replicate`]).
    pub fn replicate(&self) -> AimTs {
        AimTs {
            cfg: self.cfg.clone(),
            ts_encoder: self.ts_encoder.replicate(),
            ts_proj: self.ts_proj.replicate(),
            image_encoder: self.image_encoder.replicate(),
            img_proj: self.img_proj.replicate(),
            seed: self.seed,
            // Plans replay against the tensors they were traced over; a
            // replica has fresh parameter storage, so it warms its own
            // cache (and layout) on its own pinned worker thread.
            plan_cache: Mutex::new(HashMap::new()),
            layout: OnceLock::new(),
        }
    }

    /// Clone the TS encoder (architecture + current weights).
    pub(crate) fn clone_ts_encoder(&self) -> TsEncoder {
        let fresh = TsEncoder::new(
            self.cfg.hidden,
            self.cfg.repr_dim,
            &self.cfg.dilations,
            self.seed,
        );
        let mut src = Vec::new();
        self.ts_encoder.named_parameters("enc", &mut src);
        let mut dst = Vec::new();
        fresh.named_parameters("enc", &mut dst);
        for ((_, s), (_, d)) in src.iter().zip(&dst) {
            d.set_data(&s.to_vec());
        }
        fresh
    }
}

/// Stream tag for the post-rollback re-shuffle (see `AimTs::rollback`):
/// mixed with the last-good RNG state and the rollback ordinal via
/// [`parallel::microbatch_seed`] so each replay walks a fresh — but still
/// deterministic — shuffling stream.
const RESHUFFLE_STREAM: u64 = 0x5E1F_4EA1;

/// Epoch-loss aggregation that tolerates an epoch whose every step was
/// skipped (no samples → `NaN`, which the report surfaces honestly).
fn mean_or_nan(xs: &[f64]) -> f32 {
    if xs.is_empty() {
        f32::NAN
    } else {
        Summary::of(xs).mean as f32
    }
}

/// Write the periodic checkpoint for the just-finished epoch when the
/// policy's cadence (or the final epoch) says so, then apply retention.
/// The checkpoint bytes are the already-built in-memory last-good state.
fn maybe_write_checkpoint(
    pcfg: &PretrainConfig,
    epochs_done: usize,
    ck: &Checkpoint,
) -> Result<(), CheckpointError> {
    let Some(dir) = &pcfg.checkpoint.dir else {
        return Ok(());
    };
    let cadence_hit = epochs_done.is_multiple_of(pcfg.checkpoint.every_epochs());
    if !cadence_hit && epochs_done != pcfg.epochs {
        return Ok(());
    }
    std::fs::create_dir_all(dir)?;
    ck.save(&checkpoint_path(dir, epochs_done))?;
    prune_checkpoints(dir, pcfg.checkpoint.keep_last)?;
    Ok(())
}

impl Module for AimTs {
    /// Channel-independent encoding of an already-stacked `[B, M, T]` batch
    /// (the tensor-level counterpart of [`AimTs::encode`]).
    fn forward(&self, x: &Tensor) -> Tensor {
        encode_channel_independent(&self.ts_encoder, x)
    }

    fn named_parameters(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        for (name, t) in self.named_parameters() {
            let full = if prefix.is_empty() {
                name
            } else {
                format!("{prefix}.{name}")
            };
            out.push((full, t));
        }
    }
}

impl Replicate for AimTs {
    fn replicate(&self) -> Self {
        AimTs::replicate(self)
    }

    fn freeze(&self) -> Self {
        AimTs {
            cfg: self.cfg.clone(),
            ts_encoder: self.ts_encoder.freeze(),
            ts_proj: self.ts_proj.freeze(),
            image_encoder: self.image_encoder.freeze(),
            img_proj: self.img_proj.freeze(),
            seed: self.seed,
            plan_cache: Mutex::new(HashMap::new()),
            layout: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimts_data::archives::monash_like_pool;

    fn tiny_pool(n: usize) -> Vec<MultiSeries> {
        monash_like_pool(2, 0).into_iter().take(n).collect()
    }

    #[test]
    fn pretrain_smoke_and_loss_decreases() {
        let mut model = AimTs::new(AimTsConfig::tiny(), 3407);
        let pool = tiny_pool(16);
        let report = model
            .pretrain(
                &pool,
                &PretrainConfig {
                    epochs: 3,
                    batch_size: 8,
                    lr: 5e-3,
                    ..Default::default()
                },
            )
            .expect("clean pre-training must succeed");
        assert!(report.final_loss.is_finite());
        assert!(report.health.is_clean(), "{}", report.health);
        assert_eq!(report.health.epoch_grad_norms.len(), 3);
        assert!(report.health.epoch_grad_norms[0].mean.is_finite());
        assert_eq!(report.epoch_losses.len(), 3);
        assert!(
            report.epoch_losses[2] < report.epoch_losses[0],
            "loss should decrease: {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn pretrain_reports_both_components() {
        let mut model = AimTs::new(AimTsConfig::tiny(), 1);
        let report = model
            .pretrain(
                &tiny_pool(8),
                &PretrainConfig {
                    epochs: 1,
                    batch_size: 4,
                    ..Default::default()
                },
            )
            .expect("clean pre-training must succeed");
        assert!(report.final_proto_loss > 0.0);
        assert!(report.final_si_loss > 0.0);
        assert!(report.steps > 0);
    }

    #[test]
    fn ablation_inter_only_trains() {
        let cfg = AimTsConfig {
            ablation: crate::config::Ablation::inter_only(),
            ..AimTsConfig::tiny()
        };
        let mut model = AimTs::new(cfg, 2);
        let report = model
            .pretrain(
                &tiny_pool(8),
                &PretrainConfig {
                    epochs: 1,
                    batch_size: 4,
                    ..Default::default()
                },
            )
            .expect("clean pre-training must succeed");
        assert!(report.final_si_loss == 0.0);
        assert!(report.final_proto_loss > 0.0);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("aimts_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let model = AimTs::new(AimTsConfig::tiny(), 7);
        model.save(&path).unwrap();
        let mut other = AimTs::new(AimTsConfig::tiny(), 8);
        let before = other.named_parameters()[0].1.to_vec();
        other.load(&path).unwrap();
        let after = other.named_parameters()[0].1.to_vec();
        assert_ne!(before, after);
        assert_eq!(after, model.named_parameters()[0].1.to_vec());
    }

    #[test]
    fn encoder_clone_is_deep() {
        let model = AimTs::new(AimTsConfig::tiny(), 9);
        let cloned = model.clone_ts_encoder();
        let x = Tensor::randn(&[2, 1, 32], 0);
        let a = model.ts_encoder.encode_rows(&x).to_vec();
        let b = cloned.encode_rows(&x).to_vec();
        assert_eq!(a, b);
        // Mutating the clone must not touch the original.
        cloned.parameters()[0].update_data(|d| d.iter_mut().for_each(|v| *v += 1.0));
        let c = model.ts_encoder.encode_rows(&x).to_vec();
        assert_eq!(a, c);
    }

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn core_types_are_send_sync() {
        assert_send_sync::<TsEncoder>();
        assert_send_sync::<ImageEncoder>();
        assert_send_sync::<AimTs>();
    }

    #[test]
    fn replicate_is_deep_and_matches() {
        let model = AimTs::new(AimTsConfig::tiny(), 10);
        let replica = model.replicate();
        let pool = tiny_pool(8);
        let prepared: Vec<MultiSeries> = pool.iter().map(|s| model.prepare(s)).collect();
        // Pick two samples sharing a variable count.
        let groups = AimTs::group_by_var_count(&prepared);
        let idxs = groups.values().max_by_key(|g| g.len()).unwrap();
        let refs: Vec<&MultiSeries> = idxs[..2].iter().map(|&i| &prepared[i]).collect();
        assert_eq!(model.encode(&refs).to_vec(), replica.encode(&refs).to_vec());
        // Training the replica leaves the master untouched.
        let before = model.flat_parameters();
        replica.microbatch_gradient(&refs, 0);
        assert_eq!(model.flat_parameters(), before);
        assert!(model
            .named_parameters()
            .iter()
            .all(|(_, p)| p.grad().is_none()));
    }

    #[test]
    fn parallel_gradients_match_serial_within_tolerance() {
        let model = AimTs::new(AimTsConfig::tiny(), 42);
        let pool = tiny_pool(16);
        let prepared: Vec<MultiSeries> = pool.iter().map(|s| model.prepare(s)).collect();
        // Micro-batches must share a variable count; pair up the largest group.
        let groups = AimTs::group_by_var_count(&prepared);
        let idxs = groups.values().max_by_key(|g| g.len()).unwrap();
        assert!(idxs.len() >= 8, "need 4 pairs of equal-M samples");
        let mbs: Vec<(u64, Vec<usize>)> = idxs
            .chunks(2)
            .take(4)
            .enumerate()
            .map(|(i, pair)| (11 * (i as u64 + 1), pair.to_vec()))
            .collect();
        // Serial reference: each micro-batch gradient on the master model.
        let serial: Vec<Vec<f32>> = mbs
            .iter()
            .map(|(seed, idx)| {
                let s: Vec<&MultiSeries> = idx.iter().map(|&i| &prepared[i]).collect();
                model.microbatch_gradient(&s, *seed).gradient
            })
            .collect();
        let expect = crate::parallel::all_reduce_mean(&serial);
        // Threaded: four replicas computing the same micro-batches at once.
        let replicas: Vec<AimTs> = (0..4).map(|_| model.replicate()).collect();
        let master = model.flat_parameters();
        let results = crate::parallel::parallel_map(&mbs, 4, |slot, (seed, idx)| {
            let replica = &replicas[slot];
            replica.load_flat(&master);
            let s: Vec<&MultiSeries> = idx.iter().map(|&i| &prepared[i]).collect();
            replica.microbatch_gradient(&s, *seed).gradient
        });
        let got = crate::parallel::all_reduce_mean(&results);
        assert_eq!(expect.len(), got.len());
        let worst = expect
            .iter()
            .zip(&got)
            .map(|(a, b)| (a - b).abs())
            .fold(0f32, f32::max);
        assert!(
            worst <= 1e-5,
            "serial vs threaded gradient diverged: {worst}"
        );
    }

    #[test]
    fn parallel_pretrain_is_deterministic_and_learns() {
        let run = || {
            let mut model = AimTs::new(AimTsConfig::tiny(), 3407);
            model
                .pretrain(
                    &tiny_pool(16),
                    &PretrainConfig {
                        epochs: 2,
                        batch_size: 4,
                        workers: 2,
                        ..Default::default()
                    },
                )
                .expect("clean pre-training must succeed")
        };
        let a = run();
        let b = run();
        assert_eq!(a.workers, 2);
        assert_eq!(
            a.epoch_losses, b.epoch_losses,
            "same seed+workers must agree"
        );
        assert!(a.final_loss.is_finite());
        assert!(a.steps > 0);
        assert!(a.health.is_clean(), "{}", a.health);
    }

    #[test]
    fn num_parameters_positive_and_stable() {
        let m = AimTs::new(AimTsConfig::tiny(), 0);
        assert!(m.num_parameters() > 1000);
        assert_eq!(
            m.num_parameters(),
            AimTs::new(AimTsConfig::tiny(), 5).num_parameters()
        );
    }

    #[test]
    fn compiled_serial_pretrain_is_bitwise_eager() {
        let run = |executor: Executor| {
            let mut model = AimTs::new(AimTsConfig::tiny(), 3407);
            let report = model
                .pretrain(
                    &tiny_pool(12),
                    &PretrainConfig {
                        epochs: 2,
                        batch_size: 4,
                        workers: 1,
                        executor,
                        ..Default::default()
                    },
                )
                .expect("clean pre-training must succeed");
            (report, model.flat_parameters())
        };
        let (eager, eager_params) = run(Executor::Eager);
        let (compiled, compiled_params) = run(Executor::Compiled);
        assert_eq!(
            eager
                .epoch_losses
                .iter()
                .map(|l| l.to_bits())
                .collect::<Vec<_>>(),
            compiled
                .epoch_losses
                .iter()
                .map(|l| l.to_bits())
                .collect::<Vec<_>>(),
            "compiled executor must replay the eager trajectory bit-for-bit"
        );
        assert_eq!(eager.steps, compiled.steps);
        assert!(compiled.health.is_clean(), "{}", compiled.health);
        assert_eq!(
            eager_params.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            compiled_params
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>(),
            "final parameters must be bit-identical across executors"
        );
    }

    #[test]
    fn compiled_microbatch_gradient_is_bitwise_eager() {
        let model = AimTs::new(AimTsConfig::tiny(), 21);
        let pool = tiny_pool(8);
        let prepared: Vec<MultiSeries> = pool.iter().map(|s| model.prepare(s)).collect();
        let groups = AimTs::group_by_var_count(&prepared);
        let idxs = groups.values().max_by_key(|g| g.len()).unwrap();
        let refs: Vec<&MultiSeries> = idxs[..2].iter().map(|&i| &prepared[i]).collect();
        let eager = model.microbatch_gradient_ex(&refs, 5, Executor::Eager, 1);
        // First compiled call traces, the second replays the cached plan;
        // both must reproduce the eager gradient exactly.
        for round in 0..2 {
            let compiled = model.microbatch_gradient_ex(&refs, 5, Executor::Compiled, 1);
            assert_eq!(
                eager.loss.to_bits(),
                compiled.loss.to_bits(),
                "round {round}"
            );
            assert_eq!(
                eager.proto_loss.to_bits(),
                compiled.proto_loss.to_bits(),
                "round {round}"
            );
            assert_eq!(
                eager.si_loss.to_bits(),
                compiled.si_loss.to_bits(),
                "round {round}"
            );
            let diverged = eager
                .gradient
                .iter()
                .zip(&compiled.gradient)
                .filter(|(a, b)| a.to_bits() != b.to_bits())
                .count();
            assert_eq!(
                diverged, 0,
                "round {round}: {diverged} gradient elements diverged"
            );
        }
    }

    #[test]
    fn compiled_parallel_pretrain_is_deterministic() {
        let run = |executor: Executor| {
            let mut model = AimTs::new(AimTsConfig::tiny(), 3407);
            model
                .pretrain(
                    &tiny_pool(16),
                    &PretrainConfig {
                        epochs: 2,
                        batch_size: 4,
                        workers: 2,
                        executor,
                        ..Default::default()
                    },
                )
                .expect("clean pre-training must succeed")
        };
        let eager = run(Executor::Eager);
        let compiled = run(Executor::Compiled);
        assert_eq!(
            eager
                .epoch_losses
                .iter()
                .map(|l| l.to_bits())
                .collect::<Vec<_>>(),
            compiled
                .epoch_losses
                .iter()
                .map(|l| l.to_bits())
                .collect::<Vec<_>>(),
            "pinned-slot replicas replay their warm plans bit-for-bit"
        );
        assert!(compiled.health.is_clean(), "{}", compiled.health);
    }
}
