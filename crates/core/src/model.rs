//! The [`AimTs`] model: both encoders, both projection heads, and the
//! multi-source pre-training loop of Fig. 3(a).

use std::io;
use std::path::Path;

use aimts_data::preprocess::{resample_sample, z_normalize_sample};
use aimts_data::{Dataset, MultiSeries};
use aimts_eval::Summary;
use aimts_imaging::render_sample;
use aimts_nn::{
    load_state_dict, save_state_dict, Activation, Adam, Mlp, Module, Optimizer, StepLr,
};
use aimts_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::batch::{batch_indices, encode_channel_independent, samples_to_tensor};
use crate::config::{AimTsConfig, FineTuneConfig, PretrainConfig};
use crate::encoder::{ImageEncoder, TsEncoder};
use crate::finetune::FineTuned;
use crate::losses;
use crate::mixup::{geodesic_mixup, sample_lambdas};

/// Summary of a pre-training run.
#[derive(Debug, Clone)]
pub struct PretrainReport {
    /// Mean total loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Mean total loss of the final epoch.
    pub final_loss: f32,
    /// Optimizer steps taken.
    pub steps: usize,
    /// Mean `L_proto` of the final epoch (0 when ablated away).
    pub final_proto_loss: f32,
    /// Mean `L_SI` of the final epoch (0 when ablated away).
    pub final_si_loss: f32,
}

/// The AimTS model (paper Fig. 3).
pub struct AimTs {
    pub cfg: AimTsConfig,
    pub ts_encoder: TsEncoder,
    /// `P^TS`, the series projection head.
    pub ts_proj: Mlp,
    pub image_encoder: ImageEncoder,
    /// `P^I`, the image projection head.
    pub img_proj: Mlp,
    seed: u64,
}

impl AimTs {
    /// Fresh model with deterministic initialization.
    pub fn new(cfg: AimTsConfig, seed: u64) -> Self {
        let ts_encoder = TsEncoder::new(cfg.hidden, cfg.repr_dim, &cfg.dilations, seed);
        let ts_proj = Mlp::new(
            &[cfg.repr_dim, cfg.repr_dim, cfg.proj_dim],
            Activation::Gelu,
            seed.wrapping_add(1000),
        );
        let image_encoder = ImageEncoder::new(cfg.repr_dim, seed.wrapping_add(2000));
        let img_proj = Mlp::new(
            &[cfg.repr_dim, cfg.repr_dim, cfg.proj_dim],
            Activation::Gelu,
            seed.wrapping_add(3000),
        );
        AimTs {
            cfg,
            ts_encoder,
            ts_proj,
            image_encoder,
            img_proj,
            seed,
        }
    }

    /// All trainable parameters with stable hierarchical names.
    pub fn named_parameters(&self) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        self.ts_encoder.named_parameters("ts_encoder", &mut out);
        self.ts_proj.named_parameters("ts_proj", &mut out);
        self.image_encoder
            .named_parameters("image_encoder", &mut out);
        self.img_proj.named_parameters("img_proj", &mut out);
        out
    }

    /// Total scalar parameter count.
    pub fn num_parameters(&self) -> usize {
        self.named_parameters().iter().map(|(_, t)| t.numel()).sum()
    }

    /// Save all parameters as JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        save_state_dict(path, &self.named_parameters())
    }

    /// Load all parameters from JSON (shapes must match).
    pub fn load(&mut self, path: &Path) -> io::Result<()> {
        load_state_dict(path, &self.named_parameters())
    }

    /// Normalize + resample one pool sample to the pre-training length.
    fn prepare(&self, s: &MultiSeries) -> MultiSeries {
        let mut vars = resample_sample(s, self.cfg.pretrain_len);
        z_normalize_sample(&mut vars);
        vars
    }

    /// Multi-source pre-training (paper Fig. 3a; losses Eq. 1).
    ///
    /// `pool` may mix variable counts and lengths — samples are resampled
    /// to `cfg.pretrain_len`, z-normalized, and batched within groups of
    /// equal variable count.
    pub fn pretrain(&mut self, pool: &[MultiSeries], pcfg: &PretrainConfig) -> PretrainReport {
        assert!(pool.len() >= 2, "pre-training needs at least 2 samples");
        let prepared: Vec<MultiSeries> = pool.iter().map(|s| self.prepare(s)).collect();
        // Group sample indices by variable count (constant M per batch).
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for (i, s) in prepared.iter().enumerate() {
            groups.entry(s.len()).or_default().push(i);
        }

        let params: Vec<Tensor> = self
            .named_parameters()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        let mut opt = Adam::new(params, pcfg.lr);
        let mut sched = StepLr::new(pcfg.lr, pcfg.lr_step, pcfg.lr_gamma);
        let mut rng = StdRng::seed_from_u64(pcfg.seed);

        let mut epoch_losses = Vec::with_capacity(pcfg.epochs);
        let mut steps = 0usize;
        let (mut last_proto, mut last_si) = (0f32, 0f32);
        for _epoch in 0..pcfg.epochs {
            let mut losses_this_epoch = Vec::new();
            let (mut protos, mut sis) = (Vec::new(), Vec::new());
            for idxs in groups.values() {
                for batch in batch_indices(idxs.len(), pcfg.batch_size, &mut rng) {
                    let samples: Vec<&MultiSeries> =
                        batch.iter().map(|&k| &prepared[idxs[k]]).collect();
                    let (loss, lp, lsi) = self.pretrain_step(&samples, &mut rng);
                    opt.zero_grad();
                    loss.backward();
                    opt.step();
                    steps += 1;
                    losses_this_epoch.push(loss.item() as f64);
                    protos.push(lp as f64);
                    sis.push(lsi as f64);
                }
            }
            epoch_losses.push(Summary::of(&losses_this_epoch).mean as f32);
            last_proto = Summary::of(&protos).mean as f32;
            last_si = Summary::of(&sis).mean as f32;
            sched.step(&mut opt);
        }
        PretrainReport {
            final_loss: *epoch_losses.last().unwrap(),
            epoch_losses,
            steps,
            final_proto_loss: last_proto,
            final_si_loss: last_si,
        }
    }

    /// One pre-training step on a batch of prepared samples.
    /// Returns (total loss, L_proto value, L_SI value).
    fn pretrain_step(&self, samples: &[&MultiSeries], rng: &mut StdRng) -> (Tensor, f32, f32) {
        let cfg = &self.cfg;
        let b = samples.len();
        let g = cfg.g();
        let ab = cfg.ablation;
        let mut total: Option<Tensor> = None;
        let (mut proto_val, mut si_val) = (0f32, 0f32);

        if ab.inter || ab.intra {
            // --- augmented views -------------------------------------------------
            // Two view sets: views[set][i][k] is a MultiSeries.
            let mut views = [Vec::with_capacity(b), Vec::with_capacity(b)];
            for s in samples {
                for set in &mut views {
                    let per_aug: Vec<MultiSeries> = cfg
                        .bank
                        .iter()
                        .map(|aug| aug.apply_multivariate(s, rng))
                        .collect();
                    set.push(per_aug);
                }
            }
            // Adaptive temperatures from raw-series distances (Eq. 3).
            let flat = |v: &MultiSeries| -> Vec<f32> { v.concat() };
            let mut d_within = vec![0f32; b * g * g];
            let mut d_cross = vec![0f32; b * g * g];
            for i in 0..b {
                let f0: Vec<Vec<f32>> = views[0][i].iter().map(&flat).collect();
                let f1: Vec<Vec<f32>> = views[1][i].iter().map(&flat).collect();
                for j in 0..g {
                    for k in 0..g {
                        d_within[(i * g + j) * g + k] = aimts_augment::euclidean(&f0[j], &f0[k]);
                        d_cross[(i * g + j) * g + k] = aimts_augment::euclidean(&f0[j], &f1[k]);
                    }
                }
            }
            let tau_w = Tensor::from_vec(
                losses::adaptive_tau(&d_within, b, g, cfg.tau0, true),
                &[b, g, g],
            );
            let tau_c = Tensor::from_vec(
                losses::adaptive_tau(&d_cross, b, g, cfg.tau0, true),
                &[b, g, g],
            );

            // --- encode both view sets ------------------------------------------
            let encode_set = |set: &Vec<Vec<MultiSeries>>| -> Tensor {
                // Order rows (i, k): each entry is a MultiSeries of equal M/T.
                let refs: Vec<&MultiSeries> = set.iter().flatten().collect();
                let batch = samples_to_tensor(&refs); // [B*G, M, T]
                encode_channel_independent(&self.ts_encoder, &batch) // [B*G, J]
            };
            let r = encode_set(&views[0]);
            let rt = encode_set(&views[1]);

            let mut inter_term = None;
            let mut intra_term = None;
            if ab.intra {
                let v = self
                    .ts_proj
                    .forward(&r)
                    .l2_normalize(1)
                    .reshape(&[b, g, cfg.proj_dim]);
                let vt = self
                    .ts_proj
                    .forward(&rt)
                    .l2_normalize(1)
                    .reshape(&[b, g, cfg.proj_dim]);
                intra_term = Some(losses::intra_prototype_loss(&v, &vt, &tau_w, &tau_c));
            }
            if ab.inter {
                // Prototype = P^TS(mean over augmentations of r) (Eq. 2).
                let rbar = r.reshape(&[b, g, cfg.repr_dim]).mean_axis(1, false);
                let rtbar = rt.reshape(&[b, g, cfg.repr_dim]).mean_axis(1, false);
                let z = self.ts_proj.forward(&rbar).l2_normalize(1);
                let zt = self.ts_proj.forward(&rtbar).l2_normalize(1);
                inter_term = Some(losses::inter_prototype_loss(&z, &zt, cfg.tau_inter));
            }
            let proto = match (inter_term, intra_term) {
                (Some(inter), Some(intra)) => losses::proto_loss(&inter, &intra, cfg.alpha),
                (Some(inter), None) => inter,
                (None, Some(intra)) => intra,
                (None, None) => unreachable!(),
            };
            proto_val = proto.item();
            total = Some(proto);
        }

        if ab.si_naive || ab.si_mixup {
            // --- series-image contrastive ---------------------------------------
            let imgs: Vec<Tensor> = samples
                .iter()
                .map(|s| {
                    let img = render_sample(s, &cfg.image);
                    Tensor::from_vec(img.data, &[1, 3, img.height, img.width])
                })
                .collect();
            let img_batch = Tensor::concat(&imgs, 0);
            let u = self
                .img_proj
                .forward(&self.image_encoder.encode(&img_batch))
                .l2_normalize(1);
            let orig = samples_to_tensor(samples);
            let r_orig = encode_channel_independent(&self.ts_encoder, &orig);
            let v_si = self.ts_proj.forward(&r_orig).l2_normalize(1);

            let naive = losses::series_image_naive(&u, &v_si, cfg.tau_si);
            let si = if ab.si_mixup {
                let lambdas = sample_lambdas(b, cfg.gamma, rng);
                let mixed = geodesic_mixup(&u, &v_si, &lambdas);
                let mix = losses::series_image_mixup(&u, &v_si, &mixed, cfg.tau_si);
                if ab.si_naive {
                    losses::series_image_loss(&naive, &mix, cfg.beta)
                } else {
                    mix
                }
            } else {
                naive
            };
            si_val = si.item();
            total = Some(match total {
                Some(t) => t.add(&si),
                None => si,
            });
        }

        let total = total.expect("at least one loss component must be enabled");
        (total, proto_val, si_val)
    }

    /// Encode downstream samples (no augmentation, no images — Fig. 3b).
    /// All samples must share `M` and `T`; returns `[B, J]`.
    pub fn encode(&self, samples: &[&MultiSeries]) -> Tensor {
        let batch = samples_to_tensor(samples);
        encode_channel_independent(&self.ts_encoder, &batch)
    }

    /// Fine-tune a *copy* of the pre-trained TS encoder plus a fresh MLP
    /// classifier on a downstream dataset (Fig. 3b). The pre-trained model
    /// itself is left untouched so it can be reused across tasks.
    pub fn fine_tune(&self, ds: &Dataset, fcfg: &FineTuneConfig) -> FineTuned {
        FineTuned::train(self, ds, fcfg)
    }

    /// Clone the TS encoder (architecture + current weights).
    pub(crate) fn clone_ts_encoder(&self) -> TsEncoder {
        let fresh = TsEncoder::new(
            self.cfg.hidden,
            self.cfg.repr_dim,
            &self.cfg.dilations,
            self.seed,
        );
        let mut src = Vec::new();
        self.ts_encoder.named_parameters("enc", &mut src);
        let mut dst = Vec::new();
        fresh.named_parameters("enc", &mut dst);
        for ((_, s), (_, d)) in src.iter().zip(&dst) {
            d.set_data(&s.to_vec());
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimts_data::archives::monash_like_pool;

    fn tiny_pool(n: usize) -> Vec<MultiSeries> {
        monash_like_pool(2, 0).into_iter().take(n).collect()
    }

    #[test]
    fn pretrain_smoke_and_loss_decreases() {
        let mut model = AimTs::new(AimTsConfig::tiny(), 3407);
        let pool = tiny_pool(16);
        let report = model.pretrain(
            &pool,
            &PretrainConfig {
                epochs: 3,
                batch_size: 8,
                lr: 5e-3,
                ..Default::default()
            },
        );
        assert!(report.final_loss.is_finite());
        assert_eq!(report.epoch_losses.len(), 3);
        assert!(
            report.epoch_losses[2] < report.epoch_losses[0],
            "loss should decrease: {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn pretrain_reports_both_components() {
        let mut model = AimTs::new(AimTsConfig::tiny(), 1);
        let report = model.pretrain(
            &tiny_pool(8),
            &PretrainConfig {
                epochs: 1,
                batch_size: 4,
                ..Default::default()
            },
        );
        assert!(report.final_proto_loss > 0.0);
        assert!(report.final_si_loss > 0.0);
        assert!(report.steps > 0);
    }

    #[test]
    fn ablation_inter_only_trains() {
        let cfg = AimTsConfig {
            ablation: crate::config::Ablation::inter_only(),
            ..AimTsConfig::tiny()
        };
        let mut model = AimTs::new(cfg, 2);
        let report = model.pretrain(
            &tiny_pool(8),
            &PretrainConfig {
                epochs: 1,
                batch_size: 4,
                ..Default::default()
            },
        );
        assert!(report.final_si_loss == 0.0);
        assert!(report.final_proto_loss > 0.0);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("aimts_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let model = AimTs::new(AimTsConfig::tiny(), 7);
        model.save(&path).unwrap();
        let mut other = AimTs::new(AimTsConfig::tiny(), 8);
        let before = other.named_parameters()[0].1.to_vec();
        other.load(&path).unwrap();
        let after = other.named_parameters()[0].1.to_vec();
        assert_ne!(before, after);
        assert_eq!(after, model.named_parameters()[0].1.to_vec());
    }

    #[test]
    fn encoder_clone_is_deep() {
        let model = AimTs::new(AimTsConfig::tiny(), 9);
        let cloned = model.clone_ts_encoder();
        let x = Tensor::randn(&[2, 1, 32], 0);
        let a = model.ts_encoder.encode_rows(&x).to_vec();
        let b = cloned.encode_rows(&x).to_vec();
        assert_eq!(a, b);
        // Mutating the clone must not touch the original.
        cloned.parameters()[0].update_data(|d| d.iter_mut().for_each(|v| *v += 1.0));
        let c = model.ts_encoder.encode_rows(&x).to_vec();
        assert_eq!(a, c);
    }

    #[test]
    fn num_parameters_positive_and_stable() {
        let m = AimTs::new(AimTsConfig::tiny(), 0);
        assert!(m.num_parameters() > 1000);
        assert_eq!(
            m.num_parameters(),
            AimTs::new(AimTsConfig::tiny(), 5).num_parameters()
        );
    }
}
