//! Batching utilities: sample ↔ tensor conversion and channel-independent
//! encoding (paper §V-A.3: "we use channel independence for the samples,
//! encoding TS separately for each dimension").

use aimts_data::MultiSeries;
use aimts_tensor::Tensor;

use crate::encoder::TsEncoder;

/// Stack samples with identical `M` and `T` into a `[B, M, T]` tensor.
pub fn samples_to_tensor(samples: &[&MultiSeries]) -> Tensor {
    assert!(!samples.is_empty(), "empty batch");
    let m = samples[0].len();
    let t = samples[0][0].len();
    let mut data = Vec::with_capacity(samples.len() * m * t);
    for s in samples {
        assert_eq!(s.len(), m, "mixed variable counts in one batch");
        for var in s.iter() {
            assert_eq!(var.len(), t, "mixed lengths in one batch");
            data.extend_from_slice(var);
        }
    }
    Tensor::from_vec(data, &[samples.len(), m, t])
}

/// Channel-independent encoding of a `[B, M, T]` batch:
/// fold `M` into the row dimension, encode each variable as a univariate
/// row, then mean-pool the `M` variable representations → `[B, J]`.
pub fn encode_channel_independent(encoder: &TsEncoder, batch: &Tensor) -> Tensor {
    assert_eq!(batch.ndim(), 3, "expected [B, M, T]");
    let (b, m, t) = (batch.shape()[0], batch.shape()[1], batch.shape()[2]);
    let rows = batch.reshape(&[b * m, 1, t]);
    let reprs = encoder.encode_rows(&rows); // [B*M, J]
    let j = reprs.shape()[1];
    reprs.reshape(&[b, m, j]).mean_axis(1, false)
}

/// Convenience: encode a slice of samples (equal `M`, `T`) → `[B, J]`.
pub fn encode_samples(encoder: &TsEncoder, samples: &[&MultiSeries]) -> Tensor {
    encode_channel_independent(encoder, &samples_to_tensor(samples))
}

/// Deterministic batch index iterator: shuffled epochs of `n` indices in
/// chunks of `batch_size` (last partial batch kept if `>= 2`, since the
/// contrastive losses need at least two samples).
///
/// Contract: `batch_size == 0` is a programming error and panics;
/// `batch_size == 1` cannot satisfy the contrastive losses, so it is
/// clamped to 2 with a warning on stderr rather than silently.
pub fn batch_indices(n: usize, batch_size: usize, rng: &mut rand::rngs::StdRng) -> Vec<Vec<usize>> {
    use rand::Rng;
    assert!(batch_size > 0, "batch_indices: batch_size must be >= 1");
    let effective = if batch_size < 2 {
        eprintln!(
            "warning: batch_size {batch_size} clamped to 2 \
             (contrastive losses need at least two samples per batch)"
        );
        2
    } else {
        batch_size
    };
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx.chunks(effective)
        .filter(|c| c.len() >= 2)
        .map(|c| c.to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_to_tensor_layout() {
        let a: MultiSeries = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let b: MultiSeries = vec![vec![5.0, 6.0], vec![7.0, 8.0]];
        let t = samples_to_tensor(&[&a, &b]);
        assert_eq!(t.shape(), &[2, 2, 2]);
        assert_eq!(t.at(&[1, 0, 1]), 6.0);
    }

    #[test]
    #[should_panic(expected = "mixed variable counts")]
    fn mixed_m_rejected() {
        let a: MultiSeries = vec![vec![1.0, 2.0]];
        let b: MultiSeries = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let _ = samples_to_tensor(&[&a, &b]);
    }

    #[test]
    fn channel_independent_mean_of_variables() {
        let enc = TsEncoder::new(8, 16, &[1], 0);
        // A sample whose two variables are identical must produce the same
        // representation as the univariate version of either variable.
        let v = vec![0.5f32; 32];
        let multi: MultiSeries = vec![v.clone(), v.clone()];
        let uni: MultiSeries = vec![v];
        let r_multi = encode_samples(&enc, &[&multi]);
        let r_uni = encode_samples(&enc, &[&uni]);
        for (a, b) in r_multi.to_vec().iter().zip(r_uni.to_vec()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn batch_indices_cover_everything() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let batches = batch_indices(23, 8, &mut rng);
        let mut all: Vec<usize> = batches.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        assert!(batches.iter().all(|b| b.len() >= 2));
    }

    #[test]
    fn batch_indices_clamps_one_to_pairs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let batches = batch_indices(10, 1, &mut rng);
        assert_eq!(batches.len(), 5);
        assert!(batches.iter().all(|b| b.len() == 2));
    }

    #[test]
    #[should_panic(expected = "batch_size must be >= 1")]
    fn batch_indices_rejects_zero_batch_size() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let _ = batch_indices(4, 0, &mut rng);
    }

    #[test]
    fn batch_indices_drop_singleton_tail() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let batches = batch_indices(9, 4, &mut rng);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 8, "singleton tail batch must be dropped");
    }
}
