//! The two encoders: a dilated-convolution TS encoder (`F^TS`) and a small
//! CNN image encoder (`F^I`).

use aimts_nn::{kaiming_conv1d, Conv2d, Linear, Module, Replicate};
use aimts_tensor::ops::{Conv1dSpec, Conv2dSpec};
use aimts_tensor::Tensor;

/// One residual dilated-convolution block (TS2Vec-style).
struct DilatedBlock {
    w1: Tensor,
    w2: Tensor,
    b1: Tensor,
    b2: Tensor,
    dilation: usize,
}

impl DilatedBlock {
    fn new(channels: usize, dilation: usize, seed: u64) -> Self {
        DilatedBlock {
            w1: kaiming_conv1d(channels, channels, 3, seed).requires_grad(),
            w2: kaiming_conv1d(channels, channels, 3, seed.wrapping_add(1)).requires_grad(),
            b1: Tensor::zeros(&[channels]).requires_grad(),
            b2: Tensor::zeros(&[channels]).requires_grad(),
            dilation,
        }
    }

    fn forward(&self, x: &Tensor) -> Tensor {
        let spec = Conv1dSpec::same(3, self.dilation);
        let h = x.conv1d(&self.w1, Some(&self.b1), spec).gelu();
        let h = h.conv1d(&self.w2, Some(&self.b2), spec);
        h.add(x).gelu()
    }

    fn named(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        out.push((format!("{prefix}.w1"), self.w1.clone()));
        out.push((format!("{prefix}.b1"), self.b1.clone()));
        out.push((format!("{prefix}.w2"), self.w2.clone()));
        out.push((format!("{prefix}.b2"), self.b2.clone()));
    }

    fn replicate(&self) -> Self {
        DilatedBlock {
            w1: self.w1.requires_grad(),
            w2: self.w2.requires_grad(),
            b1: self.b1.requires_grad(),
            b2: self.b2.requires_grad(),
            dilation: self.dilation,
        }
    }

    fn freeze(&self) -> Self {
        DilatedBlock {
            w1: self.w1.detach(),
            w2: self.w2.detach(),
            b1: self.b1.detach(),
            b2: self.b2.detach(),
            dilation: self.dilation,
        }
    }
}

/// The time-series encoder `F^TS`: input projection → stacked residual
/// dilated conv blocks → output projection → global max-pool over time.
///
/// Operates on `[rows, 1, T]` univariate rows; multivariate samples are
/// handled channel-independently by the batching layer (paper §V-A.3),
/// folding variables into the row dimension and mean-pooling afterwards.
pub struct TsEncoder {
    input_w: Tensor,
    input_b: Tensor,
    blocks: Vec<DilatedBlock>,
    output_w: Tensor,
    output_b: Tensor,
    /// Mixes the three pooled statistics back to `repr_dim`.
    pool_mix: Linear,
    repr_dim: usize,
}

impl TsEncoder {
    pub fn new(hidden: usize, repr_dim: usize, dilations: &[usize], seed: u64) -> Self {
        let blocks = dilations
            .iter()
            .enumerate()
            .map(|(i, &d)| DilatedBlock::new(hidden, d, seed.wrapping_add(10 + 2 * i as u64)))
            .collect();
        TsEncoder {
            input_w: kaiming_conv1d(hidden, 1, 3, seed).requires_grad(),
            input_b: Tensor::zeros(&[hidden]).requires_grad(),
            blocks,
            output_w: kaiming_conv1d(repr_dim, hidden, 3, seed.wrapping_add(99)).requires_grad(),
            output_b: Tensor::zeros(&[repr_dim]).requires_grad(),
            pool_mix: Linear::new(3 * repr_dim, repr_dim, true, seed.wrapping_add(123)),
            repr_dim,
        }
    }

    /// Representation dimension `J`.
    pub fn repr_dim(&self) -> usize {
        self.repr_dim
    }

    /// Hidden channel width of the dilated blocks.
    pub fn hidden(&self) -> usize {
        self.input_w.shape()[0]
    }

    /// Dilation factor of each residual block, in order. Together with
    /// [`TsEncoder::hidden`] and [`TsEncoder::repr_dim`] this fully
    /// describes the architecture, which is what serving bundles persist.
    pub fn dilations(&self) -> Vec<usize> {
        self.blocks.iter().map(|b| b.dilation).collect()
    }

    /// Encode `[rows, 1, T]` univariate rows into `[rows, J]`.
    ///
    /// The temporal feature map is summarized by three pooled statistics —
    /// global max, global mean, and a *first-moment* pool (mean weighted by
    /// normalized time position) — mixed by a linear layer. Max/mean alone
    /// are translation-invariant; the moment pool preserves *where* in the
    /// series activations occur, which classes defined by event position or
    /// temporal direction (chirps, motif location) require.
    pub fn encode_rows(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.ndim(), 3, "TsEncoder expects [rows, 1, T]");
        assert_eq!(x.shape()[1], 1, "TsEncoder rows must be univariate");
        let mut h = x
            .conv1d(&self.input_w, Some(&self.input_b), Conv1dSpec::same(3, 1))
            .gelu();
        for b in &self.blocks {
            h = b.forward(&h);
        }
        let out = h.conv1d(&self.output_w, Some(&self.output_b), Conv1dSpec::same(3, 1));
        let t = out.shape()[2];
        let mx = out.global_max_pool1d();
        let avg = out.global_avg_pool1d();
        // Position weights in [-1, 1], constant w.r.t. autograd.
        let w: Vec<f32> = (0..t)
            .map(|i| {
                if t == 1 {
                    0.0
                } else {
                    2.0 * i as f32 / (t - 1) as f32 - 1.0
                }
            })
            .collect();
        let w = Tensor::from_vec(w, &[1, 1, t]);
        let moment = out.mul(&w).global_avg_pool1d();
        let cat = Tensor::concat(&[mx, avg, moment], 1);
        self.pool_mix.forward(&cat)
    }
}

impl Module for TsEncoder {
    fn forward(&self, x: &Tensor) -> Tensor {
        self.encode_rows(x)
    }

    fn named_parameters(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        let p = |s: &str| {
            if prefix.is_empty() {
                s.to_string()
            } else {
                format!("{prefix}.{s}")
            }
        };
        out.push((p("input_w"), self.input_w.clone()));
        out.push((p("input_b"), self.input_b.clone()));
        for (i, b) in self.blocks.iter().enumerate() {
            b.named(&p(&format!("block{i}")), out);
        }
        out.push((p("output_w"), self.output_w.clone()));
        out.push((p("output_b"), self.output_b.clone()));
        self.pool_mix.named_parameters(&p("pool_mix"), out);
    }
}

impl Replicate for TsEncoder {
    fn replicate(&self) -> Self {
        TsEncoder {
            input_w: self.input_w.requires_grad(),
            input_b: self.input_b.requires_grad(),
            blocks: self.blocks.iter().map(DilatedBlock::replicate).collect(),
            output_w: self.output_w.requires_grad(),
            output_b: self.output_b.requires_grad(),
            pool_mix: self.pool_mix.replicate(),
            repr_dim: self.repr_dim,
        }
    }

    fn freeze(&self) -> Self {
        TsEncoder {
            input_w: self.input_w.detach(),
            input_b: self.input_b.detach(),
            blocks: self.blocks.iter().map(DilatedBlock::freeze).collect(),
            output_w: self.output_w.detach(),
            output_b: self.output_b.detach(),
            pool_mix: self.pool_mix.freeze(),
            repr_dim: self.repr_dim,
        }
    }
}

/// Copy all parameter values from `src` into `dst` (same architecture).
/// Used to hand pre-trained weights to per-task fine-tuning copies.
pub fn copy_parameters(src: &dyn Module, dst: &dyn Module) {
    let mut s = Vec::new();
    src.named_parameters("p", &mut s);
    let mut d = Vec::new();
    dst.named_parameters("p", &mut d);
    assert_eq!(s.len(), d.len(), "parameter count mismatch");
    for ((sn, st), (dn, dt)) in s.iter().zip(&d) {
        assert_eq!(sn, dn, "parameter name mismatch");
        dt.set_data(&st.to_vec());
    }
}

/// The image encoder `F^I`: three stride-2 conv layers → global average
/// pool → linear to the shared representation dimension.
pub struct ImageEncoder {
    convs: Vec<Conv2d>,
    head: Linear,
}

impl ImageEncoder {
    pub fn new(repr_dim: usize, seed: u64) -> Self {
        let spec = Conv2dSpec {
            stride: 2,
            padding: 1,
        };
        let convs = vec![
            Conv2d::new(3, 8, 3, spec, true, seed),
            Conv2d::new(8, 16, 3, spec, true, seed.wrapping_add(1)),
            Conv2d::new(16, 32, 3, spec, true, seed.wrapping_add(2)),
        ];
        ImageEncoder {
            convs,
            head: Linear::new(32, repr_dim, true, seed.wrapping_add(3)),
        }
    }

    /// Encode `[B, 3, H, W]` images into `[B, J]`.
    pub fn encode(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.ndim(), 4, "ImageEncoder expects [B, 3, H, W]");
        assert_eq!(x.shape()[1], 3, "ImageEncoder expects RGB input");
        let mut h = x.clone();
        for c in &self.convs {
            h = c.forward(&h).gelu();
        }
        self.head.forward(&h.global_avg_pool2d())
    }
}

impl Module for ImageEncoder {
    fn forward(&self, x: &Tensor) -> Tensor {
        self.encode(x)
    }

    fn named_parameters(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        let p = |s: &str| {
            if prefix.is_empty() {
                s.to_string()
            } else {
                format!("{prefix}.{s}")
            }
        };
        for (i, c) in self.convs.iter().enumerate() {
            c.named_parameters(&p(&format!("conv{i}")), out);
        }
        self.head.named_parameters(&p("head"), out);
    }
}

impl Replicate for ImageEncoder {
    fn replicate(&self) -> Self {
        ImageEncoder {
            convs: self.convs.iter().map(Replicate::replicate).collect(),
            head: self.head.replicate(),
        }
    }

    fn freeze(&self) -> Self {
        ImageEncoder {
            convs: self.convs.iter().map(Replicate::freeze).collect(),
            head: self.head.freeze(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ts_encoder_shapes() {
        let enc = TsEncoder::new(8, 16, &[1, 2], 0);
        let x = Tensor::randn(&[5, 1, 48], 1);
        let r = enc.encode_rows(&x);
        assert_eq!(r.shape(), &[5, 16]);
    }

    #[test]
    fn ts_encoder_handles_variable_lengths() {
        let enc = TsEncoder::new(8, 16, &[1, 2], 0);
        for len in [16usize, 33, 100] {
            let r = enc.encode_rows(&Tensor::randn(&[2, 1, len], 1));
            assert_eq!(r.shape(), &[2, 16], "len {len}");
        }
    }

    #[test]
    fn ts_encoder_is_trainable_end_to_end() {
        let enc = TsEncoder::new(8, 16, &[1], 0);
        let x = Tensor::randn(&[3, 1, 32], 2);
        enc.encode_rows(&x).square().sum_all().backward();
        for p in enc.parameters() {
            assert!(p.grad().is_some(), "missing gradient on a parameter");
        }
    }

    #[test]
    fn ts_encoder_param_names_stable() {
        let enc = TsEncoder::new(8, 16, &[1, 2], 0);
        let mut names = Vec::new();
        enc.named_parameters("ts", &mut names);
        let names: Vec<String> = names.into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"ts.input_w".to_string()));
        assert!(names.contains(&"ts.block1.w2".to_string()));
        assert!(names.contains(&"ts.output_b".to_string()));
    }

    #[test]
    fn image_encoder_shapes() {
        let enc = ImageEncoder::new(16, 0);
        let x = Tensor::randn(&[2, 3, 32, 32], 1);
        assert_eq!(enc.encode(&x).shape(), &[2, 16]);
        let x = Tensor::randn(&[2, 3, 64, 64], 1);
        assert_eq!(enc.encode(&x).shape(), &[2, 16]);
    }

    #[test]
    fn image_encoder_trainable() {
        let enc = ImageEncoder::new(8, 0);
        let x = Tensor::randn(&[2, 3, 16, 16], 1);
        enc.encode(&x).square().sum_all().backward();
        for p in enc.parameters() {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    fn replicas_match_then_diverge_independently() {
        let enc = TsEncoder::new(8, 16, &[1, 2], 3);
        let rep = enc.replicate();
        let x = Tensor::randn(&[2, 1, 32], 4);
        assert_eq!(enc.encode_rows(&x).to_vec(), rep.encode_rows(&x).to_vec());
        rep.parameters()[0].update_data(|d| d.iter_mut().for_each(|v| *v += 1.0));
        assert_ne!(enc.parameters()[0].to_vec(), rep.parameters()[0].to_vec());

        let img = ImageEncoder::new(8, 5);
        let irep = img.replicate();
        let xi = Tensor::randn(&[1, 3, 16, 16], 6);
        assert_eq!(img.encode(&xi).to_vec(), irep.encode(&xi).to_vec());
        irep.parameters()[0].update_data(|d| d.iter_mut().for_each(|v| *v += 1.0));
        assert_ne!(img.parameters()[0].to_vec(), irep.parameters()[0].to_vec());
    }

    #[test]
    fn deterministic_construction() {
        let a = TsEncoder::new(8, 16, &[1, 2], 7);
        let b = TsEncoder::new(8, 16, &[1, 2], 7);
        let xa = a.parameters()[0].to_vec();
        let xb = b.parameters()[0].to_vec();
        assert_eq!(xa, xb);
    }
}
