//! Oracle tests for the im2col convolution lowering.
//!
//! The direct loop-nest kernels (`conv1d_direct` / `conv2d_direct`) are the
//! reference implementation; every test here runs the same problem through
//! the im2col path and asserts that forward outputs *and* all gradients
//! (input, weight, bias) agree within `TOL` across a grid of stride /
//! padding / dilation / channel shapes, including the degenerate geometries
//! most likely to expose off-by-one errors in the unfold bounds.

use aimts_tensor::ops::{Conv1dSpec, Conv2dSpec};
use aimts_tensor::Tensor;

const TOL: f32 = 1e-4;

fn assert_close(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= TOL,
            "{what}: mismatch at {i}: direct={x} im2col={y} (diff {})",
            (x - y).abs()
        );
    }
}

/// Run one conv1d problem through both lowerings, backprop a non-uniform
/// upstream gradient, and compare forward values and all three gradients.
fn check_conv1d(b: usize, cin: usize, cout: usize, l: usize, k: usize, spec: Conv1dSpec) {
    let x = Tensor::randn(&[b, cin, l], 1);
    let w = Tensor::randn(&[cout, cin, k], 2);
    let bias = Tensor::randn(&[cout], 3);

    let lo = spec.out_len(l, k);
    // Non-uniform weighting of the outputs so gx/gw see a structured gout.
    let upstream = Tensor::randn(&[b, cout, lo], 4);

    let run = |im2col: bool| {
        let xg = x.clone().requires_grad();
        let wg = w.clone().requires_grad();
        let bg = bias.clone().requires_grad();
        let y = if im2col {
            xg.conv1d_im2col(&wg, Some(&bg), spec)
        } else {
            xg.conv1d_direct(&wg, Some(&bg), spec)
        };
        y.mul(&upstream).sum_all().backward();
        (
            y.to_vec(),
            xg.grad().unwrap(),
            wg.grad().unwrap(),
            bg.grad().unwrap(),
        )
    };

    let (yd, gxd, gwd, gbd) = run(false);
    let (yi, gxi, gwi, gbi) = run(true);
    let tag = format!("conv1d b={b} cin={cin} cout={cout} l={l} k={k} spec={spec:?}");
    assert_close(&yd, &yi, &format!("{tag} forward"));
    assert_close(&gxd, &gxi, &format!("{tag} grad-x"));
    assert_close(&gwd, &gwi, &format!("{tag} grad-w"));
    assert_close(&gbd, &gbi, &format!("{tag} grad-bias"));
}

/// Same protocol for conv2d.
fn check_conv2d(
    b: usize,
    cin: usize,
    cout: usize,
    h: usize,
    w_: usize,
    k: usize,
    spec: Conv2dSpec,
) {
    let x = Tensor::randn(&[b, cin, h, w_], 5);
    let w = Tensor::randn(&[cout, cin, k, k], 6);
    let bias = Tensor::randn(&[cout], 7);

    let ho = spec.out_dim(h, k);
    let wo = spec.out_dim(w_, k);
    let upstream = Tensor::randn(&[b, cout, ho, wo], 8);

    let run = |im2col: bool| {
        let xg = x.clone().requires_grad();
        let wg = w.clone().requires_grad();
        let bg = bias.clone().requires_grad();
        let y = if im2col {
            xg.conv2d_im2col(&wg, Some(&bg), spec)
        } else {
            xg.conv2d_direct(&wg, Some(&bg), spec)
        };
        y.mul(&upstream).sum_all().backward();
        (
            y.to_vec(),
            xg.grad().unwrap(),
            wg.grad().unwrap(),
            bg.grad().unwrap(),
        )
    };

    let (yd, gxd, gwd, gbd) = run(false);
    let (yi, gxi, gwi, gbi) = run(true);
    let tag = format!("conv2d b={b} cin={cin} cout={cout} h={h} w={w_} k={k} spec={spec:?}");
    assert_close(&yd, &yi, &format!("{tag} forward"));
    assert_close(&gxd, &gxi, &format!("{tag} grad-x"));
    assert_close(&gwd, &gwi, &format!("{tag} grad-w"));
    assert_close(&gbd, &gbi, &format!("{tag} grad-bias"));
}

fn spec1(stride: usize, padding: usize, dilation: usize) -> Conv1dSpec {
    Conv1dSpec {
        stride,
        padding,
        dilation,
    }
}

#[test]
fn conv1d_grid_of_specs() {
    for &(stride, padding, dilation) in &[
        (1, 0, 1),
        (1, 1, 1),
        (1, 2, 1),
        (2, 0, 1),
        (2, 1, 1), // stride > 1 with padding
        (3, 2, 1),
        (1, 0, 2), // dilation > 1
        (1, 2, 2),
        (2, 2, 2), // stride, padding and dilation all non-trivial
        (1, 3, 3),
    ] {
        check_conv1d(2, 3, 4, 16, 3, spec1(stride, padding, dilation));
    }
}

#[test]
fn conv1d_channel_shapes() {
    // Univariate input (the encoder's input conv is 1 -> hidden).
    check_conv1d(1, 1, 8, 32, 3, Conv1dSpec::same(3, 1));
    // Wide channel mix, single batch element.
    check_conv1d(1, 16, 16, 24, 3, Conv1dSpec::same(3, 2));
    // Batch larger than channels.
    check_conv1d(8, 2, 3, 20, 5, spec1(2, 2, 1));
}

#[test]
fn conv1d_kernel_equals_input_length() {
    // One output position, no padding: the unfold is a single full column.
    check_conv1d(2, 3, 4, 7, 7, spec1(1, 0, 1));
}

#[test]
fn conv1d_dilated_span_equals_padded_input() {
    // Dilated kernel span (2*(5-1)+1 = 9) exactly covers l + 2p = 9.
    check_conv1d(2, 2, 3, 7, 5, spec1(1, 1, 2));
}

#[test]
fn conv1d_padding_larger_than_kernel_reach() {
    // Leading/trailing output positions read only zero padding.
    check_conv1d(1, 2, 2, 6, 3, spec1(1, 4, 1));
}

#[test]
fn conv1d_stride_overshoots_tail() {
    // Last valid window starts well before the padded end.
    check_conv1d(2, 2, 2, 11, 3, spec1(4, 1, 1));
}

#[test]
fn conv1d_even_kernel() {
    check_conv1d(2, 3, 3, 12, 4, spec1(1, 1, 1));
    check_conv1d(2, 3, 3, 12, 4, spec1(2, 0, 2));
}

#[test]
fn conv2d_grid_of_specs() {
    for &(stride, padding) in &[(1, 0), (1, 1), (2, 0), (2, 1), (3, 2)] {
        check_conv2d(2, 2, 3, 9, 9, 3, Conv2dSpec { stride, padding });
    }
}

#[test]
fn conv2d_kernel_equals_input() {
    // 1x1 output map.
    check_conv2d(
        2,
        2,
        3,
        5,
        5,
        5,
        Conv2dSpec {
            stride: 1,
            padding: 0,
        },
    );
}

#[test]
fn conv2d_rectangular_input() {
    check_conv2d(
        1,
        3,
        4,
        6,
        10,
        3,
        Conv2dSpec {
            stride: 2,
            padding: 1,
        },
    );
}

#[test]
fn conv2d_single_channel_single_batch() {
    check_conv2d(
        1,
        1,
        1,
        8,
        8,
        3,
        Conv2dSpec {
            stride: 1,
            padding: 1,
        },
    );
}

#[test]
fn dispatch_output_matches_forced_paths() {
    // Public entry point must agree with both pinned paths regardless of
    // which one the heuristic selects.
    let spec = Conv1dSpec::same(3, 1);
    let x = Tensor::randn(&[2, 32, 64], 9);
    let w = Tensor::randn(&[32, 32, 3], 10);
    let auto = x.conv1d(&w, None, spec).to_vec();
    let direct = x.conv1d_direct(&w, None, spec).to_vec();
    let lowered = x.conv1d_im2col(&w, None, spec).to_vec();
    assert_close(&auto, &direct, "dispatch vs direct");
    assert_close(&auto, &lowered, "dispatch vs im2col");
}
