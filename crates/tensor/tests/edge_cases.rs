//! Edge-case and stress tests for the tensor substrate: degenerate
//! shapes, extreme values, deep graphs, and gradient-accumulation
//! semantics that the training loops rely on.

use aimts_tensor::ops::{Conv1dSpec, Conv2dSpec};
use aimts_tensor::{no_grad, Tensor};

#[test]
fn scalar_tensor_arithmetic() {
    let a = Tensor::scalar(2.0);
    let b = Tensor::scalar(3.0);
    assert_eq!(a.add(&b).item(), 5.0);
    assert_eq!(a.mul(&b).item(), 6.0);
    // Scalar broadcast against a vector.
    let v = Tensor::from_vec(vec![1.0, 2.0], &[2]);
    assert_eq!(v.mul(&a).to_vec(), vec![2.0, 4.0]);
}

#[test]
fn single_element_dims() {
    let a = Tensor::ones(&[1, 1, 1]);
    assert_eq!(a.sum_axis(1, false).shape(), &[1, 1]);
    assert_eq!(a.max_axis(2, true).shape(), &[1, 1, 1]);
    assert_eq!(a.transpose(0, 2).shape(), &[1, 1, 1]);
}

#[test]
fn conv1d_minimum_viable_input() {
    // Input exactly as long as the kernel span.
    let x = Tensor::ones(&[1, 1, 3]);
    let w = Tensor::ones(&[1, 1, 3]);
    let y = x.conv1d(&w, None, Conv1dSpec::default());
    assert_eq!(y.shape(), &[1, 1, 1]);
    assert_eq!(y.item(), 3.0);
}

#[test]
#[should_panic(expected = "too short")]
fn conv1d_rejects_too_short_input() {
    let x = Tensor::ones(&[1, 1, 2]);
    let w = Tensor::ones(&[1, 1, 5]);
    let _ = x.conv1d(&w, None, Conv1dSpec::default());
}

#[test]
fn conv2d_1x1_kernel_is_channel_mix() {
    let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 1, 2]);
    // 1x1 kernel summing both channels.
    let w = Tensor::ones(&[1, 2, 1, 1]);
    let y = x.conv2d(&w, None, Conv2dSpec::default());
    assert_eq!(y.to_vec(), vec![4.0, 6.0]);
}

#[test]
fn large_values_softmax_stable() {
    let a = Tensor::from_vec(vec![1e4, 1e4 + 1.0, -1e4], &[1, 3]);
    let y = a.softmax_last().to_vec();
    assert!(y.iter().all(|v| v.is_finite()));
    assert!(y[1] > y[0] && y[0] > y[2]);
}

#[test]
fn deep_graph_backward() {
    // 200 chained ops: the iterative topological sort must not recurse.
    let x = Tensor::from_vec(vec![1.0], &[1]).requires_grad();
    let mut h = x.clone();
    for _ in 0..200 {
        h = h.mul_scalar(1.01).add_scalar(0.001);
    }
    h.sum_all().backward();
    let g = x.grad().unwrap()[0];
    assert!((g - 1.01f32.powi(200)).abs() / 1.01f32.powi(200) < 1e-3);
}

#[test]
fn wide_fanout_backward() {
    // One tensor feeding 50 branches accumulates all 50 contributions.
    let x = Tensor::from_vec(vec![2.0], &[1]).requires_grad();
    let branches: Vec<Tensor> = (0..50).map(|_| x.square()).collect();
    let total = branches
        .iter()
        .fold(Tensor::scalar(0.0), |acc, b| acc.add(b));
    total.sum_all().backward();
    assert!((x.grad().unwrap()[0] - 50.0 * 2.0 * 2.0).abs() < 1e-3);
}

#[test]
fn no_grad_inside_training_graph() {
    let x = Tensor::from_vec(vec![3.0], &[1]).requires_grad();
    // A detached statistic used as a constant must not receive gradient.
    let scale = no_grad(|| x.mul_scalar(2.0));
    let y = x.mul(&scale);
    y.sum_all().backward();
    // dy/dx = scale = 6 (not 2x * 2 = 12, since scale is constant).
    assert_eq!(x.grad().unwrap(), vec![6.0]);
}

#[test]
fn backward_with_vector_seed() {
    let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).requires_grad();
    let y = x.square();
    y.backward_with(&[1.0, 0.0, 2.0]);
    assert_eq!(x.grad().unwrap(), vec![2.0, 0.0, 12.0]);
}

#[test]
fn empty_axis_reductions_on_row_vectors() {
    let a = Tensor::from_vec(vec![5.0, 7.0], &[1, 2]);
    assert_eq!(a.sum_axis(0, false).to_vec(), vec![5.0, 7.0]);
    assert_eq!(a.mean_axis(1, false).to_vec(), vec![6.0]);
}

#[test]
fn broadcast_to_higher_rank() {
    let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
    let b = a.broadcast_to(&[3, 4, 2]);
    assert_eq!(b.shape(), &[3, 4, 2]);
    assert_eq!(b.to_vec()[..4], [1.0, 2.0, 1.0, 2.0]);
}

#[test]
fn concat_single_tensor_is_identity() {
    let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
    let c = Tensor::concat(std::slice::from_ref(&a), 0);
    assert_eq!(c.to_vec(), a.to_vec());
}

#[test]
fn index_select_empty_result() {
    let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
    let s = a.index_select(0, &[]);
    assert_eq!(s.shape(), &[0]);
    assert_eq!(s.numel(), 0);
}

#[test]
fn l2_normalize_zero_vector_is_safe() {
    let a = Tensor::zeros(&[1, 4]);
    let n = a.l2_normalize(1).to_vec();
    assert!(n.iter().all(|v| v.is_finite()));
}

#[test]
fn grad_not_retained_on_intermediates() {
    let x = Tensor::from_vec(vec![1.0], &[1]).requires_grad();
    let mid = x.mul_scalar(2.0);
    mid.square().sum_all().backward();
    assert!(x.grad().is_some());
    assert!(mid.grad().is_none(), "intermediates must not retain grad");
}

#[test]
fn clamp_then_backward_through_boundary() {
    let x = Tensor::from_vec(vec![-5.0, 0.0, 5.0], &[3]).requires_grad();
    x.clamp(-1.0, 1.0).square().sum_all().backward();
    let g = x.grad().unwrap();
    assert_eq!(g[0], 0.0);
    assert_eq!(g[2], 0.0);
}
