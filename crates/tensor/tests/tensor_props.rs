//! Property-based invariants for the tensor substrate.

use aimts_tensor::{broadcast_shapes, shape, Tensor};
use proptest::prelude::*;

/// Strategy: a small shape (1–3 dims, each 1–5).
fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=5, 1..=3)
}

/// Strategy: a tensor with the given shape and bounded finite values.
fn tensor_of(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n = shape::numel(&shape);
    prop::collection::vec(-10f32..10f32, n..=n).prop_map(move |v| Tensor::from_vec(v, &shape))
}

fn shaped_tensor() -> impl Strategy<Value = Tensor> {
    small_shape().prop_flat_map(tensor_of)
}

proptest! {
    #[test]
    fn add_commutes(t in shaped_tensor()) {
        let u = Tensor::from_vec(t.to_vec().iter().map(|x| x + 1.0).collect(), t.shape());
        prop_assert_eq!(t.add(&u).to_vec(), u.add(&t).to_vec());
    }

    #[test]
    fn mul_by_one_is_identity(t in shaped_tensor()) {
        let ones = Tensor::ones(t.shape());
        prop_assert_eq!(t.mul(&ones).to_vec(), t.to_vec());
    }

    #[test]
    fn sub_self_is_zero(t in shaped_tensor()) {
        prop_assert!(t.sub(&t).to_vec().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn broadcast_is_symmetric(a in small_shape(), b in small_shape()) {
        prop_assert_eq!(broadcast_shapes(&a, &b), broadcast_shapes(&b, &a));
    }

    #[test]
    fn broadcast_with_self_is_identity(a in small_shape()) {
        prop_assert_eq!(broadcast_shapes(&a, &a), Some(a));
    }

    #[test]
    fn softmax_rows_normalized(v in prop::collection::vec(-20f32..20f32, 6..=6)) {
        let t = Tensor::from_vec(v, &[2, 3]);
        let y = t.softmax_last().to_vec();
        prop_assert!(y.iter().all(|x| x.is_finite() && *x >= 0.0));
        prop_assert!((y[..3].iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!((y[3..].iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn l2_normalize_unit_rows(v in prop::collection::vec(-5f32..5f32, 8..=8)) {
        let t = Tensor::from_vec(v, &[2, 4]);
        let n = t.l2_normalize(1).to_vec();
        for r in 0..2 {
            let norm: f32 = n[r*4..(r+1)*4].iter().map(|x| x * x).sum::<f32>().sqrt();
            // Rows that were ~0 stay ~0; others become unit.
            prop_assert!(norm <= 1.0 + 1e-4);
        }
    }

    #[test]
    fn reshape_preserves_sum(t in shaped_tensor()) {
        let flat = t.reshape(&[t.numel()]);
        prop_assert!((flat.sum_all().item() - t.sum_all().item()).abs() < 1e-3);
    }

    #[test]
    fn transpose_twice_is_identity(v in prop::collection::vec(-10f32..10f32, 12..=12)) {
        let t = Tensor::from_vec(v, &[3, 4]);
        prop_assert_eq!(t.transpose(0, 1).transpose(0, 1).to_vec(), t.to_vec());
    }

    #[test]
    fn sum_axis_matches_total(t in shaped_tensor()) {
        let per_axis = t.sum_axis(0, false).sum_all().item();
        let total = t.sum_all().item();
        prop_assert!((per_axis - total).abs() < 1e-2 * (1.0 + total.abs()));
    }

    #[test]
    fn max_axis_bounds_values(v in prop::collection::vec(-10f32..10f32, 12..=12)) {
        let t = Tensor::from_vec(v.clone(), &[3, 4]);
        let m = t.max_axis(1, false).to_vec();
        for (r, mv) in m.iter().enumerate() {
            for c in 0..4 {
                prop_assert!(v[r*4 + c] <= *mv);
            }
        }
    }

    #[test]
    fn matmul_identity(v in prop::collection::vec(-10f32..10f32, 9..=9)) {
        let t = Tensor::from_vec(v, &[3, 3]);
        let mut eye = vec![0f32; 9];
        for i in 0..3 { eye[i*3+i] = 1.0; }
        let id = Tensor::from_vec(eye, &[3, 3]);
        let y = t.matmul(&id).to_vec();
        for (a, b) in y.iter().zip(t.to_vec()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn grad_of_sum_is_ones(t in shaped_tensor()) {
        let v = t.requires_grad();
        v.sum_all().backward();
        prop_assert!(v.grad().unwrap().iter().all(|&g| g == 1.0));
    }

    #[test]
    fn relu_output_nonnegative(t in shaped_tensor()) {
        prop_assert!(t.relu().to_vec().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn clamp_respects_bounds(t in shaped_tensor()) {
        let y = t.clamp(-1.0, 1.0).to_vec();
        prop_assert!(y.iter().all(|&x| (-1.0..=1.0).contains(&x)));
    }
}
