//! Threading-model guarantees: tensors are `Send + Sync`, and independent
//! graphs can be built and differentiated concurrently on worker threads.

use aimts_tensor::{no_grad, Tensor};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn tensor_is_send_sync() {
    // Covers detached tensors, leaf variables, and op outputs alike: the
    // handle type itself carries the bound.
    assert_send_sync::<Tensor>();
}

#[test]
fn graph_built_on_worker_thread_backprops_there() {
    let results: Vec<Vec<f32>> = std::thread::scope(|s| {
        (0..4)
            .map(|i| {
                s.spawn(move || {
                    let a = Tensor::from_vec(vec![i as f32 + 1.0, 2.0], &[2]).requires_grad();
                    // y = sum(a * a) -> dy/da = 2a
                    a.mul(&a).sum_all().backward();
                    a.grad().unwrap()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for (i, g) in results.iter().enumerate() {
        assert_eq!(g, &vec![2.0 * (i as f32 + 1.0), 4.0], "worker {i} grad");
    }
}

#[test]
fn graph_moves_across_threads_before_backward() {
    // Build the graph on a worker, run the reverse sweep on the main thread.
    let (a, loss) = std::thread::spawn(|| {
        let a = Tensor::from_vec(vec![3.0], &[1]).requires_grad();
        let loss = a.mul(&a).sum_all();
        (a, loss)
    })
    .join()
    .unwrap();
    loss.backward();
    assert_eq!(a.grad().unwrap(), vec![6.0]);
}

#[test]
fn shared_parameter_accumulates_from_concurrent_backwards() {
    // One leaf variable shared by per-thread graphs: accumulate_grad is
    // locked, so concurrent sweeps must sum cleanly.
    let p = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad();
    std::thread::scope(|s| {
        for _ in 0..8 {
            let p = p.clone();
            s.spawn(move || p.mul(&p).sum_all().backward());
        }
    });
    // Each backward adds 2p: 8 * [2, 4].
    assert_eq!(p.grad().unwrap(), vec![16.0, 32.0]);
}

#[test]
fn no_grad_is_per_thread() {
    let a = Tensor::ones(&[2]).requires_grad();
    no_grad(|| {
        // The outer thread has tracking disabled, a fresh worker does not.
        let a2 = a.clone();
        let tracked = std::thread::spawn(move || a2.mul(&a2).is_tracked())
            .join()
            .unwrap();
        assert!(tracked, "worker thread should track by default");
        assert!(!a.mul(&a).is_tracked(), "outer scope stays no-grad");
    });
}
