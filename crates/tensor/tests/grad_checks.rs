//! Finite-difference verification for every differentiable operator.
//!
//! Each test builds a small scalar-valued function of one or more inputs
//! and asserts that reverse-mode gradients match central differences.

use aimts_tensor::ops::{Conv1dSpec, Conv2dSpec};
use aimts_tensor::{check_gradients, Tensor};

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
    Tensor::from_vec(v, s)
}

#[test]
fn gc_add_broadcast() {
    let a = t(vec![0.5, -1.0, 2.0, 0.1, 0.2, 0.3], &[2, 3]);
    let b = t(vec![1.0, -0.5, 0.25], &[3]);
    check_gradients(&|i| i[0].add(&i[1]).square().sum_all(), &[a, b], EPS, TOL);
}

#[test]
fn gc_sub_mul_div_chain() {
    let a = t(vec![1.2, -0.7, 0.4, 2.0], &[2, 2]);
    let b = t(vec![0.9, 1.4, -1.1, 0.6], &[2, 2]);
    check_gradients(
        &|i| {
            i[0].sub(&i[1])
                .mul(&i[0])
                .div(&i[1].square().add_scalar(1.0))
                .sum_all()
        },
        &[a, b],
        EPS,
        TOL,
    );
}

#[test]
fn gc_maximum_minimum() {
    let a = t(vec![1.0, -2.0, 0.3, 0.9], &[4]);
    let b = t(vec![0.5, 0.5, 0.5, 0.5], &[4]);
    check_gradients(
        &|i| i[0].maximum(&i[1]).sum_all(),
        &[a.clone(), b.clone()],
        EPS,
        TOL,
    );
    check_gradients(
        &|i| i[0].minimum(&i[1]).square().sum_all(),
        &[a, b],
        EPS,
        TOL,
    );
}

#[test]
fn gc_unary_family() {
    let a = t(vec![0.5, 1.5, 2.5], &[3]);
    check_gradients(
        &|i| i[0].exp().sum_all(),
        std::slice::from_ref(&a),
        EPS,
        TOL,
    );
    check_gradients(
        &|i| i[0].ln().sum_all(),
        std::slice::from_ref(&a),
        1e-3,
        TOL,
    );
    check_gradients(
        &|i| i[0].sqrt().sum_all(),
        std::slice::from_ref(&a),
        1e-3,
        TOL,
    );
    check_gradients(
        &|i| i[0].powf(3.0).sum_all(),
        std::slice::from_ref(&a),
        EPS,
        TOL,
    );
    check_gradients(
        &|i| i[0].sigmoid().sum_all(),
        std::slice::from_ref(&a),
        EPS,
        TOL,
    );
    check_gradients(
        &|i| i[0].tanh().sum_all(),
        std::slice::from_ref(&a),
        EPS,
        TOL,
    );
    check_gradients(&|i| i[0].gelu().sum_all(), &[a], EPS, TOL);
}

#[test]
fn gc_relu_away_from_kink() {
    let a = t(vec![0.5, -0.9, 1.4, -2.2], &[4]);
    check_gradients(
        &|i| i[0].relu().sum_all(),
        std::slice::from_ref(&a),
        1e-3,
        TOL,
    );
    check_gradients(&|i| i[0].leaky_relu(0.1).sum_all(), &[a], 1e-3, TOL);
}

#[test]
fn gc_matmul_2d() {
    let a = t(vec![0.4, -0.2, 1.1, 0.9, -0.5, 0.3], &[2, 3]);
    let b = t(vec![0.7, 0.1, -0.3, 0.8, 1.2, -0.6], &[3, 2]);
    check_gradients(
        &|i| i[0].matmul(&i[1]).square().sum_all(),
        &[a, b],
        EPS,
        TOL,
    );
}

#[test]
fn gc_matmul_batched() {
    let a = Tensor::randn(&[2, 2, 3], 11);
    let b = Tensor::randn(&[2, 3, 2], 12);
    check_gradients(&|i| i[0].matmul(&i[1]).sum_all(), &[a, b], EPS, TOL);
}

#[test]
fn gc_matmul_3d_2d() {
    let a = Tensor::randn(&[2, 2, 3], 13);
    let b = Tensor::randn(&[3, 4], 14);
    check_gradients(
        &|i| i[0].matmul(&i[1]).square().sum_all(),
        &[a, b],
        EPS,
        TOL,
    );
}

#[test]
fn gc_reductions() {
    let a = Tensor::randn(&[2, 3, 2], 15);
    check_gradients(
        &|i| i[0].sum_axis(1, false).square().sum_all(),
        std::slice::from_ref(&a),
        EPS,
        TOL,
    );
    check_gradients(
        &|i| i[0].mean_axis(2, true).square().sum_all(),
        std::slice::from_ref(&a),
        EPS,
        TOL,
    );
    check_gradients(&|i| i[0].var_axis(1, false).sum_all(), &[a], EPS, TOL);
}

#[test]
fn gc_max_axis() {
    // Values well separated so finite differences do not cross the argmax.
    let a = t(vec![1.0, 5.0, 2.0, 9.0, 3.0, 7.0], &[2, 3]);
    check_gradients(
        &|i| i[0].max_axis(1, false).square().sum_all(),
        &[a],
        1e-3,
        TOL,
    );
}

#[test]
fn gc_softmax_and_log_softmax() {
    let a = t(vec![0.2, -0.9, 1.3, 0.0, 0.5, -0.5], &[2, 3]);
    let w = t(vec![1.0, 2.0, 3.0, -1.0, 0.5, 1.5], &[2, 3]);
    let w2 = w.clone();
    check_gradients(
        &move |i| i[0].softmax_last().mul(&w).sum_all(),
        std::slice::from_ref(&a),
        EPS,
        TOL,
    );
    check_gradients(
        &move |i| i[0].log_softmax_last().mul(&w2).sum_all(),
        &[a],
        EPS,
        TOL,
    );
}

#[test]
fn gc_cross_entropy() {
    let logits = Tensor::randn(&[4, 5], 16);
    check_gradients(&|i| i[0].cross_entropy(&[0, 2, 4, 1]), &[logits], EPS, TOL);
}

#[test]
fn gc_l2_normalize() {
    let a = t(vec![0.8, -1.2, 0.5, 2.0, 0.3, -0.7], &[2, 3]);
    let w = t(vec![1.0, -2.0, 0.5, 0.7, 1.1, -0.4], &[2, 3]);
    check_gradients(
        &move |i| i[0].l2_normalize(1).mul(&w).sum_all(),
        &[a],
        1e-3,
        TOL,
    );
}

#[test]
fn gc_shape_ops() {
    let a = Tensor::randn(&[2, 3, 4], 17);
    check_gradients(
        &|i| i[0].reshape(&[6, 4]).square().sum_all(),
        std::slice::from_ref(&a),
        EPS,
        TOL,
    );
    check_gradients(
        &|i| i[0].permute(&[2, 0, 1]).square().sum_all(),
        std::slice::from_ref(&a),
        EPS,
        TOL,
    );
    check_gradients(
        &|i| i[0].transpose(0, 2).square().sum_all(),
        std::slice::from_ref(&a),
        EPS,
        TOL,
    );
    check_gradients(
        &|i| i[0].slice_axis(2, 1, 3).square().sum_all(),
        std::slice::from_ref(&a),
        EPS,
        TOL,
    );
    check_gradients(
        &|i| i[0].index_select(1, &[0, 0, 2]).square().sum_all(),
        &[a],
        EPS,
        TOL,
    );
}

#[test]
fn gc_concat() {
    let a = Tensor::randn(&[2, 2], 18);
    let b = Tensor::randn(&[2, 3], 19);
    check_gradients(
        &|i| {
            Tensor::concat(&[i[0].clone(), i[1].clone()], 1)
                .square()
                .sum_all()
        },
        &[a, b],
        EPS,
        TOL,
    );
}

#[test]
fn gc_broadcast_to() {
    let a = Tensor::randn(&[1, 3], 20);
    check_gradients(
        &|i| i[0].broadcast_to(&[4, 3]).square().sum_all(),
        &[a],
        EPS,
        TOL,
    );
}

#[test]
fn gc_conv1d_full() {
    let x = Tensor::randn(&[2, 2, 7], 21);
    let w = Tensor::randn(&[3, 2, 3], 22).mul_scalar(0.5).detach();
    let b = Tensor::randn(&[3], 23).detach();
    let spec = Conv1dSpec {
        stride: 2,
        padding: 1,
        dilation: 1,
    };
    check_gradients(
        &|i| i[0].conv1d(&i[1], Some(&i[2]), spec).square().sum_all(),
        &[x, w, b],
        EPS,
        TOL,
    );
}

#[test]
fn gc_conv1d_dilated() {
    let x = Tensor::randn(&[1, 1, 9], 24);
    let w = Tensor::randn(&[2, 1, 3], 25).mul_scalar(0.5).detach();
    let spec = Conv1dSpec::same(3, 2);
    check_gradients(
        &|i| i[0].conv1d(&i[1], None, spec).square().sum_all(),
        &[x, w],
        EPS,
        TOL,
    );
}

#[test]
fn gc_conv2d() {
    let x = Tensor::randn(&[1, 2, 5, 5], 26);
    let w = Tensor::randn(&[2, 2, 3, 3], 27).mul_scalar(0.3).detach();
    let b = Tensor::randn(&[2], 28).detach();
    let spec = Conv2dSpec {
        stride: 2,
        padding: 1,
    };
    check_gradients(
        &|i| i[0].conv2d(&i[1], Some(&i[2]), spec).square().sum_all(),
        &[x, w, b],
        EPS,
        TOL,
    );
}

/// Gradient-check conv1d with the lowering pinned, so a dispatch-heuristic
/// change can never silently drop one path out of coverage.
fn gc_conv1d_both_paths(x_shape: &[usize], w_shape: &[usize], spec: Conv1dSpec, seed: u64) {
    let x = Tensor::randn(x_shape, seed);
    let w = Tensor::randn(w_shape, seed + 1).mul_scalar(0.5).detach();
    let b = Tensor::randn(&[w_shape[0]], seed + 2).detach();
    check_gradients(
        &|i| {
            i[0].conv1d_direct(&i[1], Some(&i[2]), spec)
                .square()
                .sum_all()
        },
        &[x.clone(), w.clone(), b.clone()],
        EPS,
        TOL,
    );
    check_gradients(
        &|i| {
            i[0].conv1d_im2col(&i[1], Some(&i[2]), spec)
                .square()
                .sum_all()
        },
        &[x, w, b],
        EPS,
        TOL,
    );
}

#[test]
fn gc_conv1d_plain_both_paths() {
    gc_conv1d_both_paths(
        &[2, 2, 8],
        &[3, 2, 3],
        Conv1dSpec {
            stride: 1,
            padding: 0,
            dilation: 1,
        },
        40,
    );
}

#[test]
fn gc_conv1d_strided_padded_both_paths() {
    gc_conv1d_both_paths(
        &[2, 2, 9],
        &[2, 2, 3],
        Conv1dSpec {
            stride: 2,
            padding: 1,
            dilation: 1,
        },
        43,
    );
}

#[test]
fn gc_conv1d_dilated_both_paths() {
    gc_conv1d_both_paths(&[1, 2, 9], &[2, 2, 3], Conv1dSpec::same(3, 2), 46);
}

#[test]
fn gc_conv1d_stride_padding_dilation_both_paths() {
    gc_conv1d_both_paths(
        &[2, 2, 10],
        &[2, 2, 3],
        Conv1dSpec {
            stride: 2,
            padding: 2,
            dilation: 2,
        },
        49,
    );
}

#[test]
fn gc_conv1d_kernel_spans_input_both_paths() {
    gc_conv1d_both_paths(
        &[1, 2, 5],
        &[2, 2, 5],
        Conv1dSpec {
            stride: 1,
            padding: 0,
            dilation: 1,
        },
        52,
    );
}

fn gc_conv2d_both_paths(x_shape: &[usize], w_shape: &[usize], spec: Conv2dSpec, seed: u64) {
    let x = Tensor::randn(x_shape, seed);
    let w = Tensor::randn(w_shape, seed + 1).mul_scalar(0.3).detach();
    let b = Tensor::randn(&[w_shape[0]], seed + 2).detach();
    check_gradients(
        &|i| {
            i[0].conv2d_direct(&i[1], Some(&i[2]), spec)
                .square()
                .sum_all()
        },
        &[x.clone(), w.clone(), b.clone()],
        EPS,
        TOL,
    );
    check_gradients(
        &|i| {
            i[0].conv2d_im2col(&i[1], Some(&i[2]), spec)
                .square()
                .sum_all()
        },
        &[x, w, b],
        EPS,
        TOL,
    );
}

#[test]
fn gc_conv2d_plain_both_paths() {
    gc_conv2d_both_paths(
        &[1, 2, 5, 5],
        &[2, 2, 3, 3],
        Conv2dSpec {
            stride: 1,
            padding: 1,
        },
        55,
    );
}

#[test]
fn gc_conv2d_strided_both_paths() {
    gc_conv2d_both_paths(
        &[2, 1, 6, 6],
        &[2, 1, 3, 3],
        Conv2dSpec {
            stride: 2,
            padding: 1,
        },
        58,
    );
}

#[test]
fn gc_conv2d_kernel_spans_input_both_paths() {
    gc_conv2d_both_paths(
        &[1, 2, 4, 4],
        &[2, 2, 4, 4],
        Conv2dSpec {
            stride: 1,
            padding: 0,
        },
        61,
    );
}

#[test]
fn gc_avg_pool() {
    let x = Tensor::randn(&[2, 3, 6], 64);
    check_gradients(
        &|i| i[0].global_avg_pool1d().square().sum_all(),
        &[x],
        EPS,
        TOL,
    );
    let x2 = Tensor::randn(&[2, 2, 4, 4], 65);
    check_gradients(
        &|i| i[0].global_avg_pool2d().square().sum_all(),
        &[x2],
        EPS,
        TOL,
    );
}

#[test]
fn gc_max_pool() {
    // Distinct values so the argmax is stable under perturbation.
    let x = t(vec![1., 7., 3., 9., 2., 8., 4., 6.], &[1, 1, 8]);
    check_gradients(&|i| i[0].max_pool1d(2).square().sum_all(), &[x], 1e-3, TOL);
    let x2 = t((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
    check_gradients(&|i| i[0].max_pool2d(2).square().sum_all(), &[x2], 1e-3, TOL);
}

#[test]
fn gc_composite_mlp_like() {
    // End-to-end: x @ W1 -> gelu -> @ W2 -> softmax cross-entropy.
    let x = Tensor::randn(&[3, 4], 30);
    let w1 = Tensor::randn(&[4, 5], 31).mul_scalar(0.5).detach();
    let w2 = Tensor::randn(&[5, 3], 32).mul_scalar(0.5).detach();
    check_gradients(
        &|i| {
            i[0].matmul(&i[1])
                .gelu()
                .matmul(&i[2])
                .cross_entropy(&[0, 1, 2])
        },
        &[x, w1, w2],
        EPS,
        TOL,
    );
}
