//! Integration tests for the debug-build runtime lock-order checker.
//!
//! The ordering invariant: any thread holding several tensor-internal
//! lock guards must have acquired them in ascending tensor-id order.
//! `aimts-lint` A002 enforces this statically; these tests pin down the
//! dynamic side — a deliberate out-of-order acquisition panics naming
//! both tensor ids, and ordinary multi-threaded training math stays
//! silent.
//!
//! Since the lock-free hot path landed, only *variables*
//! (`requires_grad` leaves — master and replica parameters) carry the
//! `RwLock` the checker tracks; constants and op outputs are
//! unsynchronized hot storage, guarded instead by the debug aliasing
//! tally (see `arena_alias.rs`). The deliberate-violation test therefore
//! uses variables.

use aimts_tensor::{read_pair, Tensor};

#[cfg(debug_assertions)]
#[test]
fn out_of_order_acquisition_panics_with_both_ids() {
    let older = Tensor::zeros(&[4]).requires_grad(); // created first → smaller id
    let newer = Tensor::zeros(&[4]).requires_grad();
    assert!(older.id() < newer.id(), "id counter must be monotonic");

    // AssertUnwindSafe: the closure only takes read guards; no state is
    // mutated before the checker panics.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _hi = newer.data();
        let _lo = older.data(); // descending: must trip the checker
    }));
    let err = result.expect_err("descending acquisition must panic in debug builds");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic payload>".to_string());
    assert!(
        msg.contains(&format!("tensor id {}", older.id())),
        "panic must name the acquired id: {msg}"
    );
    assert!(
        msg.contains(&format!("tensor id {}", newer.id())),
        "panic must name the already-held id: {msg}"
    );
}

#[cfg(debug_assertions)]
#[test]
fn read_pair_orders_any_argument_order() {
    let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
    let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
    // Both argument orders must succeed; guards come back in arg order.
    let (ga, gb) = read_pair(&a, &b);
    assert_eq!((ga[0], gb[0]), (1.0, 3.0));
    drop((ga, gb));
    let (gb, ga) = read_pair(&b, &a);
    assert_eq!((ga[1], gb[1]), (2.0, 4.0));
}

/// Clean path: concurrent training math across `AIMTS_THREADS` worker
/// threads (the same knob CI's thread matrix sets) must never trip the
/// checker, because every two-guard op acquires through `read_pair`.
#[test]
fn concurrent_ops_stay_clean_under_thread_matrix() {
    let threads: usize = std::env::var("AIMTS_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let shared = Tensor::ones(&[8, 8]);
    std::thread::scope(|s| {
        for w in 0..threads.max(1) {
            let shared = &shared;
            s.spawn(move || {
                for i in 0..25 {
                    let local = Tensor::full(&[8, 8], (w * 31 + i) as f32);
                    // Both argument orders: shared's id is lower on one
                    // side and higher on the other.
                    let x = shared.matmul(&local).add(&local.matmul(shared));
                    let y = local.sub(shared).mul(&x);
                    assert_eq!(y.shape(), &[8, 8]);
                    let v = y.sum_all();
                    assert_eq!(v.numel(), 1);
                }
            });
        }
    });
}
