//! Bitwise oracle for the trace-and-compile executor.
//!
//! Every test runs the same step twice — once eagerly on a twin set of
//! tensors, once by replaying a [`aimts_tensor::plan::CompiledPlan`] traced
//! from an earlier step — and asserts **bit equality** (`to_bits`), not
//! tolerance: the compiled executor's contract is that replay is the eager
//! computation, merely without rebuilding the graph.
//!
//! Covered here:
//! * random shapes / seeds / values (proptest) over a Linear→relu→Linear→
//!   l2_normalize→scaled-similarity step that exercises the fused
//!   matmul→bias, matmul→scale, and l2_normalize chains;
//! * replay across an Adam parameter update (the Adam recurrence from
//!   `aimts_nn::Adam`, applied identically to both twins — replay must
//!   track in-place parameter mutation);
//! * fused-chain *boundaries*: the same chains with a multi-consumer or
//!   plan-output intermediate, where fusion must stand down;
//! * conv→gelu fusion with backward;
//! * `NaN`/`±inf` inputs — replay must reproduce the eager bit patterns,
//!   not sanitize them.

use aimts_tensor::{plan, Tensor};
use proptest::prelude::*;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn grad_bits(t: &Tensor) -> Vec<u32> {
    bits(&t.grad().expect("gradient present"))
}

/// The Adam recurrence of `aimts_nn::Adam` (defaults: β₁ 0.9, β₂ 0.999,
/// ε 1e-8, no weight decay), replicated here because the tensor crate
/// sits below the nn crate. Applied to bitwise-equal params and grads it
/// must produce bitwise-equal updates on both twins.
fn adam_step(param: &Tensor, m: &mut [f32], v: &mut [f32], t: i32, lr: f32) {
    let (b1, b2, eps) = (0.9f32, 0.999f32, 1e-8f32);
    let bc1 = 1.0 - b1.powi(t);
    let bc2 = 1.0 - b2.powi(t);
    let g = param.grad().expect("gradient present");
    param.update_data(|data| {
        for (i, x) in data.iter_mut().enumerate() {
            m[i] = b1 * m[i] + (1.0 - b1) * g[i];
            v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
            *x -= lr * (m[i] / bc1) / ((v[i] / bc2).sqrt() + eps);
        }
    });
}

/// One twin of the random step: its own parameter tensors over shared
/// initial values.
struct Twin {
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
}

impl Twin {
    fn new(w1: &[f32], b1v: &[f32], w2: &[f32], din: usize, h: usize, dout: usize) -> Twin {
        Twin {
            w1: Tensor::from_vec(w1.to_vec(), &[din, h]).requires_grad(),
            b1: Tensor::from_vec(b1v.to_vec(), &[h]).requires_grad(),
            w2: Tensor::from_vec(w2.to_vec(), &[h, dout]).requires_grad(),
        }
    }

    /// matmul→bias (fuses) → relu → matmul → l2_normalize (fuses) →
    /// self-similarity → `/τ` scaling (fuses) → scalar loss.
    fn step(&self, x: &Tensor) -> Tensor {
        let h = x.matmul(&self.w1).add(&self.b1).relu();
        let z = h.matmul(&self.w2).l2_normalize(1);
        z.matmul(&z.transpose(0, 1)).mul_scalar(7.5).sum_all()
    }

    fn zero_grad(&self) {
        self.w1.zero_grad();
        self.b1.zero_grad();
        self.w2.zero_grad();
    }

    fn params(&self) -> [&Tensor; 3] {
        [&self.w1, &self.b1, &self.w2]
    }
}

/// Trace on `x0`, then for each subsequent input: replay the plan on one
/// twin and run eagerly on the other, asserting bitwise-equal losses and
/// gradients, then push both twins through an identical Adam update so the
/// next round replays against mutated parameters.
fn check_random_step(
    din: usize,
    h: usize,
    dout: usize,
    b: usize,
    xs: &[Vec<f32>],
    weights: &[f32],
) {
    let need = din * h + h + h * dout;
    assert!(weights.len() >= need, "strategy sizing bug");
    let (w1v, rest) = weights.split_at(din * h);
    let (b1v, rest) = rest.split_at(h);
    let w2v = &rest[..h * dout];

    let traced = Twin::new(w1v, b1v, w2v, din, h, dout);
    let eager = Twin::new(w1v, b1v, w2v, din, h, dout);

    let x = Tensor::from_vec(xs[0].clone(), &[b, din]);
    let plan = plan::trace(std::slice::from_ref(&x), 1, || vec![traced.step(&x)])
        .expect("random step must trace");
    assert!(plan.fused_count() >= 3, "expected bias+norm+scale fusion");

    let mut moments: Vec<(Vec<f32>, Vec<f32>)> = traced
        .params()
        .iter()
        .map(|p| (vec![0f32; p.numel()], vec![0f32; p.numel()]))
        .collect();
    let mut eager_moments = moments.clone();

    for (round, fresh) in xs.iter().enumerate().skip(1) {
        let t = round as i32;
        traced.zero_grad();
        x.set_data(fresh);
        plan.run().expect("replay");
        plan.backward();

        eager.zero_grad();
        let xe = Tensor::from_vec(fresh.clone(), &[b, din]);
        let loss = eager.step(&xe);
        loss.backward();

        assert_eq!(
            plan.output(0).item().to_bits(),
            loss.item().to_bits(),
            "round {round}: loss diverged"
        );
        for (pc, pe) in traced.params().iter().zip(eager.params()) {
            assert_eq!(grad_bits(pc), grad_bits(pe), "round {round}: grad diverged");
        }

        for ((pc, pe), (mc, me)) in traced
            .params()
            .iter()
            .zip(eager.params())
            .zip(moments.iter_mut().zip(eager_moments.iter_mut()))
        {
            adam_step(pc, &mut mc.0, &mut mc.1, t, 3e-3);
            adam_step(pe, &mut me.0, &mut me.1, t, 3e-3);
            assert_eq!(
                bits(&pc.to_vec()),
                bits(&pe.to_vec()),
                "round {round}: Adam-updated params diverged"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random shapes, random weights, three replay rounds with an Adam
    /// update between each: loss, gradients, and updated parameters stay
    /// bitwise equal to eager throughout.
    #[test]
    fn compiled_step_is_bitwise_eager(
        din in 1usize..5,
        h in 1usize..6,
        dout in 1usize..5,
        b in 1usize..4,
        seed_vals in prop::collection::vec(-3f32..3f32, 150..=150),
        input_vals in prop::collection::vec(-5f32..5f32, 60..=60),
    ) {
        let xs: Vec<Vec<f32>> = (0..4)
            .map(|r| {
                (0..b * din)
                    .map(|i| input_vals[(r * 13 + i * 7) % input_vals.len()])
                    .collect()
            })
            .collect();
        check_random_step(din, h, dout, b, &xs, &seed_vals);
    }

    /// Non-finite inputs: replay reproduces the exact NaN/inf bit patterns
    /// the eager step produces — the executor must not sanitize, clamp, or
    /// reorder anything.
    #[test]
    fn non_finite_inputs_replay_bitwise(
        vals in prop::collection::vec(-2f32..2f32, 12..=12),
        poison_idx in 0usize..12,
        poison in prop::sample::select(vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY]),
    ) {
        let w = Tensor::from_vec(vec![0.5, -1.5, 2.0, 0.25, -0.75, 1.0, 0.0, 3.0, -2.0], &[3, 3])
            .requires_grad();
        let x = Tensor::from_vec(vals.clone(), &[4, 3]);
        let plan = plan::trace(std::slice::from_ref(&x), 1, || {
            vec![x.matmul(&w).gelu().l2_normalize(1).sum_all()]
        })
        .expect("trace");

        let mut poisoned = vals;
        poisoned[poison_idx] = poison;
        w.zero_grad();
        x.set_data(&poisoned);
        plan.run().expect("replay");
        plan.backward();
        let (ploss, pgrad) = (plan.output(0).item().to_bits(), grad_bits(&w));

        let we = Tensor::from_vec(w.to_vec(), &[3, 3]).requires_grad();
        let xe = Tensor::from_vec(poisoned, &[4, 3]);
        let loss = xe.matmul(&we).gelu().l2_normalize(1).sum_all();
        loss.backward();
        prop_assert_eq!(ploss, loss.item().to_bits());
        prop_assert_eq!(pgrad, grad_bits(&we));
    }
}

/// A multi-consumer intermediate defeats matmul→bias fusion (the product
/// feeds both the bias add and the loss directly); values must still match
/// bitwise.
#[test]
fn multi_consumer_product_blocks_fusion_but_matches() {
    let x = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[2, 2]);
    let w = Tensor::from_vec(vec![0.4, 1.2, -0.6, 0.8], &[2, 2]).requires_grad();
    let b = Tensor::from_vec(vec![0.1, -0.2], &[2]).requires_grad();
    let step = |x: &Tensor, w: &Tensor, b: &Tensor| {
        let prod = x.matmul(w);
        // `prod` is consumed twice: once by the bias add, once directly.
        prod.add(b).relu().sum_all().add(&prod.square().sum_all())
    };
    let plan = plan::trace(std::slice::from_ref(&x), 1, || vec![step(&x, &w, &b)]).expect("trace");
    assert_eq!(
        plan.fused_count(),
        0,
        "multi-consumer product must not fuse"
    );

    let fresh = vec![-1.0, 4.0, 2.5, 0.0];
    w.zero_grad();
    b.zero_grad();
    x.set_data(&fresh);
    plan.run().expect("replay");
    plan.backward();

    let we = Tensor::from_vec(w.to_vec(), &[2, 2]).requires_grad();
    let be = Tensor::from_vec(b.to_vec(), &[2]).requires_grad();
    let xe = Tensor::from_vec(fresh, &[2, 2]);
    let loss = step(&xe, &we, &be);
    loss.backward();
    assert_eq!(plan.output(0).item().to_bits(), loss.item().to_bits());
    assert_eq!(grad_bits(&w), grad_bits(&we));
    assert_eq!(grad_bits(&b), grad_bits(&be));
}

/// An intermediate that is itself a plan output keeps its slot: fusion
/// must stand down so the caller can read the un-fused value after replay.
#[test]
fn plan_output_intermediate_blocks_fusion_but_matches() {
    let x = Tensor::from_vec(vec![2.0, -1.0], &[1, 2]);
    let w = Tensor::from_vec(vec![1.5, 0.5, -0.25, 2.0], &[2, 2]).requires_grad();
    let plan = plan::trace(std::slice::from_ref(&x), 1, || {
        let prod = x.matmul(&w);
        let scaled = prod.mul_scalar(3.0);
        vec![scaled.sum_all(), prod]
    })
    .expect("trace");
    assert_eq!(plan.fused_count(), 0, "plan-output product must not fuse");

    let fresh = vec![-3.0, 0.25];
    w.zero_grad();
    x.set_data(&fresh);
    plan.run().expect("replay");
    plan.backward();

    let we = Tensor::from_vec(w.to_vec(), &[2, 2]).requires_grad();
    let xe = Tensor::from_vec(fresh, &[1, 2]);
    let prod_e = xe.matmul(&we);
    let loss_e = prod_e.mul_scalar(3.0).sum_all();
    loss_e.backward();
    assert_eq!(plan.output(0).item().to_bits(), loss_e.item().to_bits());
    assert_eq!(bits(&plan.output(1).to_vec()), bits(&prod_e.to_vec()));
    assert_eq!(grad_bits(&w), grad_bits(&we));
}

/// conv→gelu fuses; forward and every gradient replay bitwise.
#[test]
fn conv_gelu_fusion_is_bitwise() {
    use aimts_tensor::ops::Conv1dSpec;
    let spec = Conv1dSpec::same(3, 1);
    let x = Tensor::from_vec(
        (0..24).map(|i| (i as f32 * 0.37).sin()).collect(),
        &[2, 2, 6],
    );
    let w = Tensor::from_vec((0..12).map(|i| 0.2 - i as f32 * 0.05).collect(), &[2, 2, 3])
        .requires_grad();
    let bias = Tensor::from_vec(vec![0.05, -0.1], &[2]).requires_grad();
    let plan = plan::trace(std::slice::from_ref(&x), 1, || {
        vec![x.conv1d(&w, Some(&bias), spec).gelu().square().sum_all()]
    })
    .expect("trace");
    assert!(plan.fused_count() >= 1, "conv→gelu should fuse");

    let fresh: Vec<f32> = (0..24).map(|i| (i as f32 * 0.61).cos()).collect();
    w.zero_grad();
    bias.zero_grad();
    x.set_data(&fresh);
    plan.run().expect("replay");
    plan.backward();

    let we = Tensor::from_vec(w.to_vec(), &[2, 2, 3]).requires_grad();
    let be = Tensor::from_vec(bias.to_vec(), &[2]).requires_grad();
    let xe = Tensor::from_vec(fresh, &[2, 2, 6]);
    let loss = xe.conv1d(&we, Some(&be), spec).gelu().square().sum_all();
    loss.backward();
    assert_eq!(plan.output(0).item().to_bits(), loss.item().to_bits());
    assert_eq!(grad_bits(&w), grad_bits(&we));
    assert_eq!(grad_bits(&bias), grad_bits(&be));
}
