//! Proptest oracle suite for the SIMD kernels: every vector path must be
//! **bitwise** identical to the scalar path — not merely within tolerance —
//! over arbitrary shapes, including tails that are not a multiple of the
//! vector width. This is the property that keeps the serial training
//! trajectory identical across machines with different SIMD capabilities.
//!
//! Levels are pinned per thread with `simd::force_level`; a forced level
//! the CPU lacks clamps to the detected maximum, so on a scalar-only host
//! every comparison degenerates to scalar-vs-scalar and still passes.

use aimts_tensor::ops::{Conv1dSpec, Conv2dSpec};
use aimts_tensor::{simd, Tensor};
use proptest::prelude::*;

/// All levels worth comparing on this host (deduplicated by clamping).
const LEVELS: [simd::Level; 3] = [simd::Level::Scalar, simd::Level::Sse2, simd::Level::Avx2];

/// Run `f` with the dispatch level pinned, restoring detection after.
fn at_level<R>(level: simd::Level, f: impl FnOnce() -> R) -> R {
    simd::force_level(Some(level));
    let r = f();
    simd::force_level(None);
    r
}

/// Finite floats spanning magnitudes, plus the special values the kernels
/// must propagate identically (signed zero, infinities, NaN, subnormal).
fn element() -> impl Strategy<Value = f32> {
    const SPECIALS: [f32; 8] = [
        0.0,
        -0.0,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        f32::MIN_POSITIVE / 2.0, // subnormal
        f32::MAX,
        f32::MIN,
    ];
    (0u8..9, -1e30f32..1e30f32, 0usize..SPECIALS.len()).prop_map(|(sel, v, i)| {
        if sel < 8 {
            v
        } else {
            SPECIALS[i]
        }
    })
}

fn buffer(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(element(), 0..max_len)
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    /// `c += s * b` agrees bitwise across every dispatch level, for every
    /// length (vector body + scalar tail) and value mix.
    #[test]
    fn axpy_matches_scalar_bitwise(
        c0 in buffer(130),
        b in buffer(130),
        s in element(),
    ) {
        let n = c0.len().min(b.len());
        let (c0, b) = (&c0[..n], &b[..n]);
        let reference = at_level(simd::Level::Scalar, || {
            let mut c = c0.to_vec();
            simd::axpy(&mut c, s, b);
            c
        });
        for level in LEVELS {
            let got = at_level(level, || {
                let mut c = c0.to_vec();
                simd::axpy(&mut c, s, b);
                c
            });
            prop_assert_eq!(
                bits(&reference),
                bits(&got),
                "axpy diverged at {:?} (n={})",
                level,
                n
            );
        }
    }

    /// `a += b` agrees bitwise across every dispatch level.
    #[test]
    fn add_assign_matches_scalar_bitwise(a0 in buffer(130), b in buffer(130)) {
        let n = a0.len().min(b.len());
        let (a0, b) = (&a0[..n], &b[..n]);
        let reference = at_level(simd::Level::Scalar, || {
            let mut a = a0.to_vec();
            simd::add_assign(&mut a, b);
            a
        });
        for level in LEVELS {
            let got = at_level(level, || {
                let mut a = a0.to_vec();
                simd::add_assign(&mut a, b);
                a
            });
            prop_assert_eq!(
                bits(&reference),
                bits(&got),
                "add_assign diverged at {:?} (n={})",
                level,
                n
            );
        }
    }

    /// `a *= s` agrees bitwise across every dispatch level.
    #[test]
    fn scale_assign_matches_scalar_bitwise(a0 in buffer(130), s in element()) {
        let reference = at_level(simd::Level::Scalar, || {
            let mut a = a0.clone();
            simd::scale_assign(&mut a, s);
            a
        });
        for level in LEVELS {
            let got = at_level(level, || {
                let mut a = a0.clone();
                simd::scale_assign(&mut a, s);
                a
            });
            prop_assert_eq!(
                bits(&reference),
                bits(&got),
                "scale_assign diverged at {:?}",
                level
            );
        }
    }

    /// Whole-op oracle: matmul through the public API is bitwise stable
    /// across dispatch levels for arbitrary (including non-lane-multiple)
    /// shapes.
    #[test]
    fn matmul_bitwise_stable_across_levels(
        m in 1usize..9,
        k in 1usize..17,
        n in 1usize..19,
        seed in 0u64..1000,
    ) {
        let a = Tensor::randn(&[m, k], seed);
        let b = Tensor::randn(&[k, n], seed.wrapping_add(1));
        let reference = at_level(simd::Level::Scalar, || a.matmul(&b).data_bits());
        for level in LEVELS {
            let got = at_level(level, || a.matmul(&b).data_bits());
            prop_assert_eq!(
                reference.clone(),
                got,
                "matmul diverged at {:?} (m={} k={} n={})",
                level, m, k, n
            );
        }
    }

    /// Whole-op oracle: conv1d im2col forward *and* every gradient are
    /// bitwise stable across dispatch levels (exercises the SIMD pack /
    /// accumulate loops and their scalar tails via odd lengths).
    #[test]
    fn conv1d_bitwise_stable_across_levels(
        b in 1usize..3,
        cin in 1usize..4,
        cout in 1usize..4,
        l in 5usize..23,
        k in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..3,
        dilation in 1usize..3,
        seed in 0u64..1000,
    ) {
        let spec = Conv1dSpec { stride, padding, dilation };
        // Skip geometries where the (dilated) kernel does not fit.
        if l + 2 * padding < dilation * (k - 1) + 1 {
            continue;
        }
        let lo = spec.out_len(l, k);
        if lo == 0 {
            continue;
        }
        let x = Tensor::randn(&[b, cin, l], seed);
        let w = Tensor::randn(&[cout, cin, k], seed.wrapping_add(1));
        let bias = Tensor::randn(&[cout], seed.wrapping_add(2));
        let upstream = Tensor::randn(&[b, cout, lo], seed.wrapping_add(3));
        let run = || {
            let xg = x.clone().requires_grad();
            let wg = w.clone().requires_grad();
            let bg = bias.clone().requires_grad();
            let y = xg.conv1d_im2col(&wg, Some(&bg), spec);
            y.mul(&upstream).sum_all().backward();
            (
                y.data_bits(),
                bits(&xg.grad().unwrap()),
                bits(&wg.grad().unwrap()),
                bits(&bg.grad().unwrap()),
            )
        };
        let reference = at_level(simd::Level::Scalar, run);
        for level in LEVELS {
            let got = at_level(level, run);
            prop_assert_eq!(
                reference.clone(),
                got,
                "conv1d diverged at {:?} (spec={:?})",
                level, spec
            );
        }
    }

    /// Whole-op oracle: conv2d im2col forward and gradients, bitwise across
    /// levels.
    #[test]
    fn conv2d_bitwise_stable_across_levels(
        b in 1usize..3,
        cin in 1usize..3,
        cout in 1usize..3,
        h in 3usize..10,
        w in 3usize..11,
        k in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        seed in 0u64..1000,
    ) {
        let spec = Conv2dSpec { stride, padding };
        // Skip geometries where the kernel does not fit.
        if h + 2 * padding < k || w + 2 * padding < k {
            continue;
        }
        let (ho, wo) = (spec.out_dim(h, k), spec.out_dim(w, k));
        if ho == 0 || wo == 0 {
            continue;
        }
        let x = Tensor::randn(&[b, cin, h, w], seed);
        let wt = Tensor::randn(&[cout, cin, k, k], seed.wrapping_add(1));
        let bias = Tensor::randn(&[cout], seed.wrapping_add(2));
        let upstream = Tensor::randn(&[b, cout, ho, wo], seed.wrapping_add(3));
        let run = || {
            let xg = x.clone().requires_grad();
            let wg = wt.clone().requires_grad();
            let bg = bias.clone().requires_grad();
            let y = xg.conv2d_im2col(&wg, Some(&bg), spec);
            y.mul(&upstream).sum_all().backward();
            (
                y.data_bits(),
                bits(&xg.grad().unwrap()),
                bits(&wg.grad().unwrap()),
                bits(&bg.grad().unwrap()),
            )
        };
        let reference = at_level(simd::Level::Scalar, run);
        for level in LEVELS {
            let got = at_level(level, run);
            prop_assert_eq!(
                reference.clone(),
                got,
                "conv2d diverged at {:?} (spec={:?})",
                level, spec
            );
        }
    }
}
