//! The arena's core safety invariant: a pooled buffer is never handed out
//! while anything alive can still reach it. Gradients are the highest-value
//! target — they outlive the op graph that produced them (the optimizer
//! reads them after the loss tensor is dropped), so these tests churn the
//! pool hard after backward and pin the gradient bits.
//!
//! The debug-build aliasing tally on hot storage is the dynamic checker for
//! the same contract on tensor data; the `#[cfg(debug_assertions)]` tests
//! prove it actually fires through the public `Tensor` API.

use aimts_tensor::{arena, Tensor};

fn grad_bits(t: &Tensor) -> Vec<u32> {
    t.grad()
        .expect("gradient must exist")
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// After backward, the pool recycles every activation of the dropped graph;
/// new same-shape traffic must reuse those buffers (hits > 0) without ever
/// touching the still-live gradient.
#[test]
fn arena_reuse_never_aliases_live_gradients() {
    let _scope = arena::enable();
    let w = Tensor::randn(&[16, 16], 7).requires_grad();
    let x = Tensor::randn(&[16, 16], 8);
    let loss = w.matmul(&x).sum_all();
    loss.backward();
    let g1 = grad_bits(&w);
    // Drop the graph: its hot buffers recycle into the pool.
    drop(loss);
    let before = arena::stats();
    // Same-shape traffic: every allocation here is a candidate to receive
    // one of the just-recycled buffers.
    for s in 0..10u64 {
        let y = Tensor::randn(&[16, 16], 100 + s);
        let z = y.matmul(&x).add(&y).sum_all();
        assert!(z.numel() == 1);
    }
    let after = arena::stats();
    assert!(
        after.hits > before.hits,
        "pool must actually be reused for the test to mean anything: {after:?}"
    );
    assert_eq!(g1, grad_bits(&w), "live gradient clobbered by arena reuse");
}

/// Accumulating into an existing gradient while the pool churns must only
/// change it by the newly accumulated amount — reuse of recycled buffers
/// can't corrupt the accumulation target.
#[test]
fn gradient_accumulation_survives_pool_churn() {
    let _scope = arena::enable();
    let w = Tensor::randn(&[8, 8], 1).requires_grad();
    let x = Tensor::ones(&[8, 8]);
    w.matmul(&x).sum_all().backward();
    let g1 = grad_bits(&w);
    // Churn: allocate and drop unrelated same-shape graphs.
    for s in 0..5u64 {
        let y = Tensor::randn(&[8, 8], 50 + s);
        let _ = y.matmul(&x).sum_all().to_vec();
    }
    // Second backward accumulates the identical contribution: every element
    // must exactly double (a + a is exact in IEEE float).
    w.matmul(&x).sum_all().backward();
    let g2: Vec<f32> = w.grad().expect("grad");
    let doubled: Vec<u32> = g1
        .iter()
        .map(|&b| (2.0 * f32::from_bits(b)).to_bits())
        .collect();
    let got: Vec<u32> = g2.iter().map(|v| v.to_bits()).collect();
    assert_eq!(doubled, got, "accumulation target corrupted by pool churn");
}

/// `reset` drops pooled buffers only — buffers currently owned by live
/// tensors and gradients are untouched.
#[test]
fn reset_spares_live_buffers() {
    let _scope = arena::enable();
    let w = Tensor::randn(&[32], 3).requires_grad();
    let y = w.mul(&w).sum_all();
    y.backward();
    let g1 = grad_bits(&w);
    let d1 = w.data_bits();
    arena::reset();
    assert_eq!(g1, grad_bits(&w));
    assert_eq!(d1, w.data_bits());
}

/// The debug aliasing tally fires through the public API: mutating a hot
/// tensor while a read guard on the same tensor is live is the exact bug
/// class the checker exists for.
#[cfg(debug_assertions)]
#[test]
fn hot_write_during_read_panics_in_debug() {
    let t = Tensor::from_vec(vec![1.0; 8], &[8]);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        t.update_data(|_| {
            // Re-entrant read while the write guard is live.
            let _g = t.data();
        });
    }));
    let err = result.expect_err("torn access must panic in debug builds");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("hot-buffer aliasing violation"),
        "panic must name the violation: {msg}"
    );
}

/// Sequential guard use through the public API stays silent — the checker
/// only rejects *overlapping* access.
#[test]
fn sequential_hot_access_is_clean() {
    let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
    {
        let d = t.data();
        assert_eq!(d[1], 2.0);
    }
    t.update_data(|d| d[0] = 5.0);
    assert_eq!(t.to_vec(), vec![5.0, 2.0]);
}
