//! Trace-and-compile graph executor.
//!
//! Pre-training replays the same step graph thousands of times: same ops,
//! same shapes, same topological order. Instead of re-deriving the autograd
//! graph (closure boxing, `Arc` churn, buffer sizing) on every step, this
//! module runs **one** eager step under a tracer that records every op into
//! a [`CompiledPlan`] — a flat `Vec` of instructions over the traced
//! tensors' own hot buffers — and then replays that plan with zero
//! allocation and no graph bookkeeping.
//!
//! ## How replay stays bitwise-identical to eager
//!
//! * **Forward**: each instruction stores the producing op's *kernel
//!   thunk* — a closure calling the exact same private kernel the eager op
//!   used — plus handles to the op's parent tensors. Replay recomputes the
//!   value into an arena buffer and swaps it into the traced output
//!   tensor, so downstream instructions (and retained backward closures)
//!   observe fresh values through their existing handles. Same kernels,
//!   same operand order ⇒ identical bits.
//! * **Backward**: the plan pre-computes the exact post-order
//!   [`crate::autograd`] would walk and keeps the traced graph alive, so
//!   replay drives the *original* backward closures over a dense slot
//!   schedule that mirrors `run_backward`'s accumulation semantics
//!   verbatim (same closure calls, same `simd::add_assign` ordering).
//!
//! ## Fusion
//!
//! Four chain patterns common in the AimTS step dispatch onto dedicated
//! fused kernels (still bitwise-identical — see each kernel's notes):
//! `conv → relu/gelu`, `matmul → add(bias)` (the Linear layer),
//! `matmul → mul_scalar` (the InfoNCE `/τ` scaling), and the five-op
//! `l2_normalize` chain `square → sum_axis → add_scalar → sqrt → div`.
//!
//! ## Safety / fallback semantics
//!
//! * Tracing is per-thread and re-entrancy is rejected
//!   ([`TraceError::Nested`]).
//! * A plan is only valid on the thread that traced it (hot buffers are
//!   unsynchronized); [`CompiledPlan::run`] checks and returns
//!   [`PlanError::ThreadMismatch`] instead of touching anything.
//! * A plan records the worker topology it was traced under;
//!   [`CompiledPlan::check_topology`] lets callers reject replaying a plan
//!   in a run shape it was not traced for.
//! * An op without a trace hook is detected at trace finish
//!   ([`TraceError::UntracedOps`]) by walking the backward order — callers
//!   fall back to eager execution rather than replaying a hole.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::thread::{self, ThreadId};

use crate::arena;
use crate::autograd;
use crate::ops::unary::{gelu_scalar, relu_scalar};
use crate::simd;
use crate::tensor::Tensor;

/// Opcode of a recorded instruction, used by the fusion pass to recognize
/// chains. `Custom` covers out-of-crate recordings via [`record_custom`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    Add,
    Sub,
    Mul,
    Div,
    Maximum,
    Minimum,
    AddScalar,
    MulScalar,
    Affine,
    Exp,
    Ln,
    Sqrt,
    Square,
    Abs,
    Powf,
    Relu,
    LeakyRelu,
    Gelu,
    Sigmoid,
    Tanh,
    Clamp,
    Matmul,
    Conv1d,
    Conv2d,
    SumAll,
    SumAxis,
    MaxAxis,
    MaxPool1d,
    MaxPool2d,
    SoftmaxLast,
    LogSoftmaxLast,
    NllLoss,
    Reshape,
    Permute,
    Concat,
    SliceAxis,
    IndexSelect,
    BroadcastTo,
    Custom(&'static str),
}

/// Scalar attributes the fusion pass needs to introspect. Kernels capture
/// their own attributes inside the thunk; this is pattern-matching only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Attr {
    None,
    Scalar(f32),
    Axis { axis: usize, keep: bool },
}

/// Forward recompute kernel: reads the parents' current buffers, returns
/// the output value. Must be arithmetic-identical to the eager op.
type Thunk = Box<dyn Fn(&[Tensor]) -> Vec<f32> + Send + Sync>;

/// How an instruction executes: plain single-op, or one of the fused
/// chain kernels.
enum Kind {
    Single,
    /// `conv → act`: the conv output is written (its value is read by both
    /// backward closures), then the activation is applied element-wise into
    /// the activation output's buffer in place — one arena round-trip and
    /// one dispatch saved per conv.
    ConvAct {
        act_out: Tensor,
        act: fn(f32) -> f32,
    },
    /// `matmul → mul_scalar`: scale the matmul buffer in place and write it
    /// to the scaled output only. The matmul slot is skipped — its sole
    /// consumer was the scaling op, and neither backward closure reads the
    /// unscaled product.
    MatmulScale {
        scale_out: Tensor,
        s: f32,
    },
    /// `matmul → add(bias)`: the Linear-layer pattern. The product buffer
    /// gets the 1-D bias added row-wise in place (the same `x + y`
    /// additions the eager broadcast add performs, in the same row-major
    /// order) and lands in the sum slot only. The product slot is skipped —
    /// its sole consumer was the add, and neither backward closure reads
    /// the raw product (the add's backward only reduces `gout`; the
    /// matmul's reads its parents).
    MatmulBias {
        add_out: Tensor,
        bias: Tensor,
    },
    /// The `l2_normalize` chain. Writes the norm slot (the `sqrt` output —
    /// its backward reads its own value) and the final quotient; skips the
    /// square/sum/add_scalar intermediates, whose backward closures read
    /// only parents or nothing.
    L2Norm {
        axis: usize,
        eps: f32,
        norm_out: Tensor,
        div_out: Tensor,
    },
}

/// One recorded step of the forward plan.
struct Instr {
    op: Op,
    attr: Attr,
    out: Tensor,
    parents: Vec<Tensor>,
    run: Thunk,
    kind: Kind,
}

/// One step of the precomputed backward schedule: the traced node plus,
/// for each parent, its dense slot index in the schedule (`None` for
/// untracked parents — exactly the parents `run_backward` skips).
struct BackStep {
    node: Tensor,
    parent_slots: Vec<Option<usize>>,
}

/// Trace failure: the caller should fall back to eager execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// `trace` was called while a trace was already active on this thread.
    Nested,
    /// The build closure returned no outputs.
    NoOutputs,
    /// `missing` graph nodes reachable from the outputs had no recorded
    /// instruction (an op without a trace hook) — the plan would replay a
    /// stale value for them.
    UntracedOps { missing: usize },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Nested => write!(f, "trace() is not re-entrant on one thread"),
            TraceError::NoOutputs => write!(f, "trace build closure returned no outputs"),
            TraceError::UntracedOps { missing } => write!(
                f,
                "{missing} graph node(s) have no trace hook; plan would replay stale values"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// Replay failure: the plan is not valid in the current execution context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// The plan was traced on a different thread; its hot buffers must not
    /// be touched from here.
    ThreadMismatch,
    /// The plan was traced under a different worker topology.
    TopologyMismatch { planned: usize, current: usize },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::ThreadMismatch => {
                write!(
                    f,
                    "compiled plan replayed on a different thread than it was traced on"
                )
            }
            PlanError::TopologyMismatch { planned, current } => write!(
                f,
                "compiled plan was traced under {planned} worker(s) but the run uses {current}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

struct TraceState {
    instrs: Vec<Instr>,
    /// Ids whose values replay will refresh: declared inputs plus every
    /// recorded output. An untracked op is recorded iff some parent is
    /// live or tracked — constants stay constants.
    live: HashSet<u64>,
    /// Ids of recorded outputs (for the completeness check).
    recorded: HashSet<u64>,
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static TRACER: RefCell<Option<TraceState>> = const { RefCell::new(None) };
}

/// Fast tracing check — a thread-local `Cell` read, cheap enough for every
/// op site on the eager path.
#[inline]
pub(crate) fn is_tracing() -> bool {
    ACTIVE.with(|c| c.get())
}

/// Record one op into the active trace (no-op when not tracing). Called by
/// every op site in `ops/*` right after constructing the output tensor.
/// The closure is only boxed when a trace is active.
#[inline]
pub(crate) fn record<F>(out: &Tensor, op: Op, attr: Attr, parents: &[&Tensor], f: F)
where
    F: Fn(&[Tensor]) -> Vec<f32> + Send + Sync + 'static,
{
    if !is_tracing() {
        return;
    }
    record_boxed(out, op, attr, parents, Box::new(f));
}

fn record_boxed(out: &Tensor, op: Op, attr: Attr, parents: &[&Tensor], run: Thunk) {
    TRACER.with(|t| {
        let mut slot = t.borrow_mut();
        let Some(st) = slot.as_mut() else { return };
        // Tracked outputs always replay. Untracked outputs replay only when
        // they depend on something that changes between replays (an input
        // or an earlier recorded value); pure constants are left alone.
        let relevant = out.is_tracked()
            || parents
                .iter()
                .any(|p| p.is_tracked() || st.live.contains(&p.id()));
        if !relevant {
            return;
        }
        st.live.insert(out.id());
        st.recorded.insert(out.id());
        st.instrs.push(Instr {
            op,
            attr,
            out: out.clone(),
            parents: parents.iter().map(|&p| p.clone()).collect(),
            run,
            kind: Kind::Single,
        });
    });
}

/// Public recording hook for computations performed *outside* this crate's
/// op set (e.g. CPU-side coefficient computations that read traced tensor
/// values). `f` must recompute `out`'s buffer from the parents' current
/// values, arithmetic-identically to how it was first produced.
pub fn record_custom<F>(out: &Tensor, name: &'static str, parents: &[&Tensor], f: F)
where
    F: Fn(&[Tensor]) -> Vec<f32> + Send + Sync + 'static,
{
    record(out, Op::Custom(name), Attr::None, parents, f);
}

/// Resets the tracer even if the build closure panics, so a failed trace
/// can never leave the thread stuck in recording mode.
struct TraceGuard;

impl Drop for TraceGuard {
    fn drop(&mut self) {
        ACTIVE.with(|c| c.set(false));
        TRACER.with(|t| {
            t.borrow_mut().take();
        });
    }
}

/// Run `build` eagerly under the tracer and compile the recorded ops into
/// a replayable plan.
///
/// * `inputs` — tensors whose buffers the caller will overwrite before
///   each replay (`set_data`); ops depending on them are re-executed even
///   when untracked.
/// * `topology` — the worker topology this plan belongs to (recorded for
///   [`CompiledPlan::check_topology`]).
/// * `build` — the step builder; returns the plan outputs, with the loss
///   root first. Because the trace *is* a full eager step, a shape change
///   simply means the caller traces a new plan for the new shapes.
pub fn trace(
    inputs: &[Tensor],
    topology: usize,
    build: impl FnOnce() -> Vec<Tensor>,
) -> Result<CompiledPlan, TraceError> {
    if is_tracing() {
        return Err(TraceError::Nested);
    }
    TRACER.with(|t| {
        *t.borrow_mut() = Some(TraceState {
            instrs: Vec::new(),
            live: inputs.iter().map(|i| i.id()).collect(),
            recorded: HashSet::new(),
        });
    });
    ACTIVE.with(|c| c.set(true));
    let guard = TraceGuard;
    let outputs = build();
    let st = TRACER.with(|t| t.borrow_mut().take());
    drop(guard);
    let Some(st) = st else {
        // Unreachable: the guard is the only other taker and drops after us.
        return Err(TraceError::NoOutputs);
    };
    finish(st, inputs, outputs, topology)
}

fn finish(
    st: TraceState,
    inputs: &[Tensor],
    outputs: Vec<Tensor>,
    topology: usize,
) -> Result<CompiledPlan, TraceError> {
    if outputs.is_empty() {
        return Err(TraceError::NoOutputs);
    }
    // Completeness: every graph node reachable from an output must have a
    // recorded instruction, otherwise replay would reuse stale values.
    let mut missing = 0usize;
    let mut seen: HashSet<u64> = HashSet::new();
    for out in &outputs {
        for node in autograd::backward_order(out) {
            if seen.insert(node.id()) && node.graph().is_some() && !st.recorded.contains(&node.id())
            {
                missing += 1;
            }
        }
    }
    if missing > 0 {
        return Err(TraceError::UntracedOps { missing });
    }

    // Dense backward schedule over the root's exact post-order.
    let order = autograd::backward_order(&outputs[0]);
    let index: HashMap<u64, usize> = order.iter().enumerate().map(|(i, n)| (n.id(), i)).collect();
    let sched: Vec<BackStep> = order
        .into_iter()
        .map(|node| {
            let parent_slots = node
                .op_parents()
                .iter()
                .map(|p| {
                    if p.is_tracked() {
                        index.get(&p.id()).copied()
                    } else {
                        None
                    }
                })
                .collect();
            BackStep { node, parent_slots }
        })
        .collect();

    let out_ids: HashSet<u64> = outputs.iter().map(|o| o.id()).collect();
    let (instrs, fused) = fuse(st.instrs, &out_ids);

    Ok(CompiledPlan {
        instrs,
        sched,
        outputs,
        inputs: inputs.to_vec(),
        thread: thread::current().id(),
        topology,
        fused,
    })
}

/// Pattern-match the four fused chains over the recorded instruction
/// list. Every elided intermediate must be single-consumer and not a plan
/// output, and its backward closure must not read the skipped slot (each
/// `Kind` variant documents why its skips are safe).
fn fuse(mut instrs: Vec<Instr>, plan_outputs: &HashSet<u64>) -> (Vec<Instr>, usize) {
    let mut consumers: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, ins) in instrs.iter().enumerate() {
        for p in &ins.parents {
            consumers.entry(p.id()).or_default().push(i);
        }
    }
    // The id's sole consumer among recorded instrs, provided it is not a
    // plan output (outputs must keep their slots written).
    let sole_consumer = |id: u64| -> Option<usize> {
        if plan_outputs.contains(&id) {
            return None;
        }
        match consumers.get(&id).map(Vec::as_slice) {
            Some([j]) => Some(*j),
            _ => None,
        }
    };

    let mut consumed: HashSet<usize> = HashSet::new();
    let mut fused = 0usize;
    for i in 0..instrs.len() {
        if consumed.contains(&i) {
            continue;
        }
        match instrs[i].op {
            Op::Conv1d | Op::Conv2d => {
                let Some(j) = sole_consumer(instrs[i].out.id()) else {
                    continue;
                };
                if consumed.contains(&j) || instrs[j].parents.len() != 1 {
                    continue;
                }
                let act = match instrs[j].op {
                    Op::Relu => relu_scalar as fn(f32) -> f32,
                    Op::Gelu => gelu_scalar as fn(f32) -> f32,
                    _ => continue,
                };
                instrs[i].kind = Kind::ConvAct {
                    act_out: instrs[j].out.clone(),
                    act,
                };
                consumed.insert(j);
                fused += 1;
            }
            Op::Matmul => {
                let Some(j) = sole_consumer(instrs[i].out.id()) else {
                    continue;
                };
                if consumed.contains(&j) {
                    continue;
                }
                match instrs[j].op {
                    Op::MulScalar if instrs[j].parents.len() == 1 => {
                        let Attr::Scalar(s) = instrs[j].attr else {
                            continue;
                        };
                        instrs[i].kind = Kind::MatmulScale {
                            scale_out: instrs[j].out.clone(),
                            s,
                        };
                    }
                    // `product + bias` with a 1-D bias over the columns of
                    // a 2-D product — the Linear layer's bias add.
                    Op::Add
                        if instrs[j].parents.len() == 2
                            && instrs[j].parents[0].id() == instrs[i].out.id()
                            && instrs[i].out.ndim() == 2
                            && instrs[j].parents[1].ndim() == 1
                            && instrs[j].parents[1].numel() == instrs[i].out.shape()[1] =>
                    {
                        instrs[i].kind = Kind::MatmulBias {
                            add_out: instrs[j].out.clone(),
                            bias: instrs[j].parents[1].clone(),
                        };
                    }
                    _ => continue,
                }
                consumed.insert(j);
                fused += 1;
            }
            Op::Square => {
                // square → sum_axis(keep) → add_scalar(eps) → sqrt → div,
                // with div = x / sqrt_out for the same x the square read.
                let chain = || -> Option<(usize, usize, usize, usize, usize, f32)> {
                    let j_sum = sole_consumer(instrs[i].out.id())?;
                    let Attr::Axis { axis, keep: true } = instrs[j_sum].attr else {
                        return None;
                    };
                    if instrs[j_sum].op != Op::SumAxis {
                        return None;
                    }
                    let j_add = sole_consumer(instrs[j_sum].out.id())?;
                    if instrs[j_add].op != Op::AddScalar {
                        return None;
                    }
                    let Attr::Scalar(eps) = instrs[j_add].attr else {
                        return None;
                    };
                    let j_sqrt = sole_consumer(instrs[j_add].out.id())?;
                    if instrs[j_sqrt].op != Op::Sqrt {
                        return None;
                    }
                    let j_div = sole_consumer(instrs[j_sqrt].out.id())?;
                    if instrs[j_div].op != Op::Div
                        || instrs[j_div].parents.len() != 2
                        || instrs[j_div].parents[0].id() != instrs[i].parents[0].id()
                        || instrs[j_div].parents[1].id() != instrs[j_sqrt].out.id()
                    {
                        return None;
                    }
                    for j in [j_sum, j_add, j_sqrt, j_div] {
                        if consumed.contains(&j) {
                            return None;
                        }
                    }
                    Some((j_sum, j_add, j_sqrt, j_div, axis, eps))
                };
                let Some((j_sum, j_add, j_sqrt, j_div, axis, eps)) = chain() else {
                    continue;
                };
                instrs[i].kind = Kind::L2Norm {
                    axis,
                    eps,
                    norm_out: instrs[j_sqrt].out.clone(),
                    div_out: instrs[j_div].out.clone(),
                };
                consumed.extend([j_sum, j_add, j_sqrt, j_div]);
                fused += 1;
            }
            _ => {}
        }
    }
    let instrs: Vec<Instr> = instrs
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !consumed.contains(i))
        .map(|(_, ins)| ins)
        .collect();
    (instrs, fused)
}

/// A compiled, replayable step: flat forward instruction list + dense
/// backward schedule over the retained traced graph. Replaying is
/// bitwise-identical to re-running the eager step on the same input data.
pub struct CompiledPlan {
    instrs: Vec<Instr>,
    sched: Vec<BackStep>,
    outputs: Vec<Tensor>,
    inputs: Vec<Tensor>,
    thread: ThreadId,
    topology: usize,
    fused: usize,
}

impl CompiledPlan {
    /// Replay the forward plan in place. The caller has already refreshed
    /// the input tensors' buffers (`set_data`); afterwards every traced
    /// tensor — in particular [`CompiledPlan::output`] — holds the value
    /// the eager step would have produced.
    pub fn run(&self) -> Result<(), PlanError> {
        if thread::current().id() != self.thread {
            return Err(PlanError::ThreadMismatch);
        }
        for ins in &self.instrs {
            match &ins.kind {
                Kind::Single => {
                    let buf = (ins.run)(&ins.parents);
                    ins.out.swap_data(buf);
                }
                Kind::ConvAct { act_out, act } => {
                    let buf = (ins.run)(&ins.parents);
                    ins.out.swap_data(buf);
                    let src = ins.out.data();
                    act_out.update_data(|dst| {
                        for (d, &x) in dst.iter_mut().zip(src.iter()) {
                            *d = act(x);
                        }
                    });
                }
                Kind::MatmulScale { scale_out, s } => {
                    let mut buf = (ins.run)(&ins.parents);
                    // Same multiply as the eager `mul_scalar` map.
                    simd::scale_assign(&mut buf, *s);
                    scale_out.swap_data(buf);
                }
                Kind::MatmulBias { add_out, bias } => {
                    let mut buf = (ins.run)(&ins.parents);
                    let bd = bias.data();
                    // The eager broadcast add materializes `product` and
                    // `bias` expansions and computes `x + y` element by
                    // element in row-major order; adding the bias row-wise
                    // in place performs the identical additions.
                    for row in buf.chunks_exact_mut(bd.len()) {
                        for (v, &b) in row.iter_mut().zip(bd.iter()) {
                            *v += b;
                        }
                    }
                    drop(bd);
                    add_out.swap_data(buf);
                }
                Kind::L2Norm {
                    axis,
                    eps,
                    norm_out,
                    div_out,
                } => {
                    let x = &ins.parents[0];
                    let shape = x.shape();
                    let outer: usize = shape[..*axis].iter().product();
                    let ax = shape[*axis];
                    let inner: usize = shape[*axis + 1..].iter().product();
                    let xd = x.data();
                    // Accumulate x² in the exact (outer, axis, inner) loop
                    // order `sum_axis` uses — same additions, same order.
                    let mut nrm = arena::zeroed(outer * inner);
                    for o in 0..outer {
                        let obase = o * inner;
                        for a in 0..ax {
                            let base = (o * ax + a) * inner;
                            for k in 0..inner {
                                let v = xd[base + k];
                                nrm[obase + k] += v * v;
                            }
                        }
                    }
                    for v in nrm.iter_mut() {
                        *v = (*v + eps).sqrt();
                    }
                    // x / broadcast(norm): the keep-dim norm broadcasts to
                    // x's shape with stride 0 along `axis`, so element
                    // (o, a, k) divides by nrm[o * inner + k] — the same
                    // pairing the eager broadcast expansion produces.
                    let mut y = arena::take(xd.len());
                    for o in 0..outer {
                        let obase = o * inner;
                        for a in 0..ax {
                            let base = (o * ax + a) * inner;
                            for k in 0..inner {
                                y.push(xd[base + k] / nrm[obase + k]);
                            }
                        }
                    }
                    drop(xd);
                    norm_out.swap_data(nrm);
                    div_out.swap_data(y);
                }
            }
        }
        Ok(())
    }

    /// Replay the backward sweep from the (scalar) root output, driving the
    /// retained backward closures over the precomputed dense schedule.
    /// Accumulates into leaf variables' `.grad` exactly like
    /// `Tensor::backward` on the eager graph.
    pub fn backward(&self) {
        assert_eq!(
            self.outputs[0].numel(),
            1,
            "plan backward requires a scalar root output"
        );
        let n = self.sched.len();
        let mut slots: Vec<Option<Vec<f32>>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        slots[n - 1] = Some(arena::copy_of(&[1.0]));
        for i in (0..n).rev() {
            let Some(gout) = slots[i].take() else {
                continue;
            };
            let step = &self.sched[i];
            if step.node.is_variable() {
                step.node.accumulate_grad(&gout);
            }
            if let Some(graph) = step.node.graph() {
                let parent_grads = (graph.backward)(&step.node, &gout);
                for (ps, pg) in step.parent_slots.iter().zip(parent_grads) {
                    let Some(pg) = pg else {
                        continue;
                    };
                    let Some(ps) = ps else {
                        // Gradient for an untracked parent: nothing to
                        // accumulate into, but the buffer is pool-backed.
                        arena::recycle(pg);
                        continue;
                    };
                    match slots[*ps].as_mut() {
                        Some(acc) => {
                            simd::add_assign(acc, &pg);
                            arena::recycle(pg);
                        }
                        None => slots[*ps] = Some(pg),
                    }
                }
            }
            arena::recycle(gout);
        }
        for g in slots.into_iter().flatten() {
            arena::recycle(g);
        }
    }

    /// Reject replaying this plan under a different worker topology.
    pub fn check_topology(&self, workers: usize) -> Result<(), PlanError> {
        if workers == self.topology {
            Ok(())
        } else {
            Err(PlanError::TopologyMismatch {
                planned: self.topology,
                current: workers,
            })
        }
    }

    /// Whether the current thread is the one that traced this plan.
    pub fn on_trace_thread(&self) -> bool {
        thread::current().id() == self.thread
    }

    /// The `i`-th output tensor handle (0 is the loss root).
    pub fn output(&self, i: usize) -> &Tensor {
        &self.outputs[i]
    }

    /// All output handles, root first.
    pub fn outputs(&self) -> &[Tensor] {
        &self.outputs
    }

    /// The declared input handles, in `trace` order.
    pub fn inputs(&self) -> &[Tensor] {
        &self.inputs
    }

    /// Number of forward instructions after fusion.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when the plan records no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Number of fused chains the compiler formed.
    pub fn fused_count(&self) -> usize {
        self.fused
    }

    /// The worker topology recorded at trace time.
    pub fn topology(&self) -> usize {
        self.topology
    }
}

impl fmt::Debug for CompiledPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CompiledPlan({} instrs, {} fused, {} backward steps, topology {})",
            self.instrs.len(),
            self.fused,
            self.sched.len(),
            self.topology
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data_bits()
    }

    #[test]
    fn trace_replay_matches_eager_bitwise() {
        let w = Tensor::from_vec(vec![0.5, -1.5, 2.0, 0.25], &[2, 2]).requires_grad();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let step = |x: &Tensor, w: &Tensor| -> Vec<Tensor> {
            let h = x.matmul(w).gelu();
            let loss = h.square().sum_all();
            vec![loss, h]
        };
        let plan = trace(std::slice::from_ref(&x), 1, || step(&x, &w)).expect("trace");

        // Fresh data, replayed through the plan.
        let x2 = vec![-0.5, 4.0, 0.125, -3.0];
        x.set_data(&x2);
        plan.run().expect("replay");
        plan.backward();
        let plan_loss = bits(plan.output(0));
        let plan_h = bits(plan.output(1));
        let plan_grad: Vec<u32> = w
            .grad()
            .expect("grad")
            .iter()
            .map(|g| g.to_bits())
            .collect();

        // Eager reference on identical data.
        let w2 = Tensor::from_vec(w.to_vec(), &[2, 2]).requires_grad();
        let xe = Tensor::from_vec(x2, &[2, 2]);
        let outs = step(&xe, &w2);
        outs[0].backward();
        assert_eq!(plan_loss, bits(&outs[0]));
        assert_eq!(plan_h, bits(&outs[1]));
        let eager_grad: Vec<u32> = w2
            .grad()
            .expect("grad")
            .iter()
            .map(|g| g.to_bits())
            .collect();
        assert_eq!(plan_grad, eager_grad);
    }

    #[test]
    fn l2_normalize_chain_fuses_and_matches() {
        let x = Tensor::from_vec(vec![3.0, -4.0, 1.0, 2.0, -2.0, 0.5], &[2, 3]);
        let plan = trace(std::slice::from_ref(&x), 1, || {
            vec![x.l2_normalize(1).sum_all()]
        })
        .expect("trace");
        assert!(plan.fused_count() >= 1, "l2_normalize chain should fuse");
        let fresh = vec![0.1, 7.0, -0.3, 2.5, 2.5, -9.0];
        x.set_data(&fresh);
        plan.run().expect("replay");
        let eager = Tensor::from_vec(fresh, &[2, 3]).l2_normalize(1).sum_all();
        assert_eq!(bits(plan.output(0)), bits(&eager));
    }

    #[test]
    fn matmul_scale_chain_fuses_and_matches() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![0.5, -0.5, 1.5, 2.5], &[2, 2]);
        let plan = trace(&[a.clone(), b.clone()], 1, || {
            vec![a.matmul(&b).div_scalar(0.2).sum_all()]
        })
        .expect("trace");
        assert!(plan.fused_count() >= 1, "matmul→scale chain should fuse");
        a.set_data(&[9.0, -1.0, 0.25, 3.0]);
        plan.run().expect("replay");
        let ae = Tensor::from_vec(vec![9.0, -1.0, 0.25, 3.0], &[2, 2]);
        let eager = ae.matmul(&b).div_scalar(0.2).sum_all();
        assert_eq!(bits(plan.output(0)), bits(&eager));
    }

    #[test]
    fn matmul_bias_chain_fuses_and_matches() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let w = Tensor::from_vec(vec![0.5, -0.5, 1.5, 2.5], &[2, 2]).requires_grad();
        let b = Tensor::from_vec(vec![0.25, -0.75], &[2]).requires_grad();
        let plan = trace(std::slice::from_ref(&x), 1, || {
            vec![x.matmul(&w).add(&b).relu().sum_all()]
        })
        .expect("trace");
        assert!(plan.fused_count() >= 1, "matmul→bias chain should fuse");
        let fresh = vec![-2.0, 0.5, 4.0, 1.0, -1.0, 3.0];
        x.set_data(&fresh);
        plan.run().expect("replay");
        plan.backward();
        let pw: Vec<u32> = w
            .grad()
            .expect("w grad")
            .iter()
            .map(|g| g.to_bits())
            .collect();
        let pb: Vec<u32> = b
            .grad()
            .expect("b grad")
            .iter()
            .map(|g| g.to_bits())
            .collect();
        let loss = bits(plan.output(0));

        let xe = Tensor::from_vec(fresh, &[3, 2]);
        let we = Tensor::from_vec(w.to_vec(), &[2, 2]).requires_grad();
        let be = Tensor::from_vec(b.to_vec(), &[2]).requires_grad();
        let eager = xe.matmul(&we).add(&be).relu().sum_all();
        eager.backward();
        assert_eq!(loss, bits(&eager));
        let ew: Vec<u32> = we
            .grad()
            .expect("w grad")
            .iter()
            .map(|g| g.to_bits())
            .collect();
        let eb: Vec<u32> = be
            .grad()
            .expect("b grad")
            .iter()
            .map(|g| g.to_bits())
            .collect();
        assert_eq!(pw, ew);
        assert_eq!(pb, eb);
    }

    #[test]
    fn nested_trace_is_rejected() {
        let x = Tensor::ones(&[2]);
        let result = trace(std::slice::from_ref(&x), 1, || {
            let inner = trace(std::slice::from_ref(&x), 1, || vec![x.add(&x)]);
            assert_eq!(inner.err(), Some(TraceError::Nested));
            vec![x.add(&x)]
        });
        assert!(
            result.is_ok(),
            "outer trace survives the rejected inner one"
        );
        assert!(!is_tracing());
    }

    #[test]
    fn unhooked_op_is_detected() {
        let x = Tensor::ones(&[2]).requires_grad();
        let result = trace(&[], 1, || {
            // A hand-built node with no recorded instruction stands in for
            // an op that forgot its trace hook.
            let rogue = Tensor::from_op(
                vec![2.0, 2.0],
                &[2],
                vec![x.clone()],
                Box::new(|_, gout| vec![Some(gout.to_vec())]),
            );
            vec![rogue.sum_all()]
        });
        assert_eq!(result.err(), Some(TraceError::UntracedOps { missing: 1 }));
    }

    #[test]
    fn topology_and_thread_checks() {
        let x = Tensor::ones(&[2]);
        let plan = trace(std::slice::from_ref(&x), 4, || vec![x.add(&x).sum_all()]).expect("trace");
        assert!(plan.check_topology(4).is_ok());
        assert_eq!(
            plan.check_topology(1).err(),
            Some(PlanError::TopologyMismatch {
                planned: 4,
                current: 1
            })
        );
        let moved = std::thread::spawn(move || plan.run().err())
            .join()
            .expect("join");
        assert_eq!(moved, Some(PlanError::ThreadMismatch));
    }

    #[test]
    fn replay_steady_state_hits_arena() {
        let _scope = arena::enable();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let w = Tensor::from_vec(vec![0.1; 4], &[2, 2]).requires_grad();
        let plan = trace(std::slice::from_ref(&x), 1, || {
            vec![x.matmul(&w).gelu().square().sum_all()]
        })
        .expect("trace");
        // Warm up, then the pool must serve every replay buffer.
        for _ in 0..3 {
            plan.run().expect("replay");
            plan.backward();
            w.zero_grad();
        }
        let before = arena::stats();
        for _ in 0..10 {
            plan.run().expect("replay");
            plan.backward();
            w.zero_grad();
        }
        let after = arena::stats();
        assert_eq!(
            after.misses, before.misses,
            "steady-state replay must not miss the arena"
        );
    }
}
