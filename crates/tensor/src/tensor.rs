//! The [`Tensor`] handle and graph-node plumbing.

use std::cell::{Cell, Ref, RefCell};
use std::fmt;
use std::rc::Rc;

use crate::autograd;
use crate::shape::{self, Shape};

thread_local! {
    static NEXT_ID: Cell<u64> = const { Cell::new(1) };
}

fn next_id() -> u64 {
    NEXT_ID.with(|c| {
        let id = c.get();
        c.set(id + 1);
        id
    })
}

/// Backward closure: given the node and the gradient flowing into it,
/// produce the gradient for each parent (`None` = parent gets no gradient).
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor, &[f32]) -> Vec<Option<Vec<f32>>>>;

pub(crate) struct Inner {
    pub(crate) id: u64,
    pub(crate) data: RefCell<Vec<f32>>,
    pub(crate) shape: Shape,
    /// Accumulated gradient; only retained on leaf variables.
    pub(crate) grad: RefCell<Option<Vec<f32>>>,
    /// True for user-created leaves that should accumulate gradient.
    pub(crate) is_variable: bool,
    /// True when this node participates in the autograd graph.
    pub(crate) track: bool,
    pub(crate) parents: Vec<Tensor>,
    pub(crate) backward: Option<BackwardFn>,
}

/// A dense row-major `f32` tensor; cheap to clone (shared handle).
///
/// See the crate docs for an overview. All operation methods live in the
/// [`crate::ops`] modules but are exposed as inherent methods.
#[derive(Clone)]
pub struct Tensor {
    pub(crate) inner: Rc<Inner>,
}

impl Tensor {
    // ----- construction ---------------------------------------------------

    /// Build a tensor from data in row-major order. Panics on size mismatch.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape::numel(shape),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            inner: Rc::new(Inner {
                id: next_id(),
                data: RefCell::new(data),
                shape: shape.to_vec(),
                grad: RefCell::new(None),
                is_variable: false,
                track: false,
                parents: Vec::new(),
                backward: None,
            }),
        }
    }

    /// A scalar (0-d) tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor::from_vec(vec![v], &[])
    }

    /// All zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::from_vec(vec![0.0; shape::numel(shape)], shape)
    }

    /// All ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::from_vec(vec![1.0; shape::numel(shape)], shape)
    }

    /// Constant fill.
    pub fn full(shape: &[usize], v: f32) -> Self {
        Tensor::from_vec(vec![v; shape::numel(shape)], shape)
    }

    /// Internal: build a non-leaf node from an op.
    pub(crate) fn from_op(
        data: Vec<f32>,
        shape: &[usize],
        parents: Vec<Tensor>,
        backward: BackwardFn,
    ) -> Self {
        debug_assert_eq!(data.len(), shape::numel(shape));
        let track = autograd::is_grad_enabled() && parents.iter().any(|p| p.inner.track);
        if !track {
            return Tensor::from_vec(data, shape);
        }
        Tensor {
            inner: Rc::new(Inner {
                id: next_id(),
                data: RefCell::new(data),
                shape: shape.to_vec(),
                grad: RefCell::new(None),
                is_variable: false,
                track: true,
                parents,
                backward: Some(backward),
            }),
        }
    }

    /// Mark this tensor as a trainable leaf variable. Returns a new handle
    /// that shares nothing with `self` (data is copied), accumulates
    /// gradient during [`Tensor::backward`], and is tracked by the graph.
    pub fn requires_grad(&self) -> Self {
        Tensor {
            inner: Rc::new(Inner {
                id: next_id(),
                data: RefCell::new(self.inner.data.borrow().clone()),
                shape: self.inner.shape.clone(),
                grad: RefCell::new(None),
                is_variable: true,
                track: true,
                parents: Vec::new(),
                backward: None,
            }),
        }
    }

    /// A copy detached from the autograd graph (shares no graph state).
    pub fn detach(&self) -> Self {
        Tensor::from_vec(self.to_vec(), self.shape())
    }

    // ----- metadata -------------------------------------------------------

    /// Dimension sizes.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.inner.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.inner.shape.len()
    }

    /// Total element count.
    #[inline]
    pub fn numel(&self) -> usize {
        shape::numel(&self.inner.shape)
    }

    /// Unique node id (stable within a thread).
    #[inline]
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Whether this tensor is a gradient-accumulating leaf.
    #[inline]
    pub fn is_variable(&self) -> bool {
        self.inner.is_variable
    }

    /// Whether this tensor participates in the autograd graph.
    #[inline]
    pub fn is_tracked(&self) -> bool {
        self.inner.track
    }

    // ----- data access ----------------------------------------------------

    /// Borrow the underlying buffer.
    pub fn data(&self) -> Ref<'_, Vec<f32>> {
        self.inner.data.borrow()
    }

    /// Copy the underlying buffer out.
    pub fn to_vec(&self) -> Vec<f32> {
        self.inner.data.borrow().clone()
    }

    /// The single value of a one-element tensor. Panics otherwise.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires a single-element tensor");
        self.inner.data.borrow()[0]
    }

    /// Element at a multi-index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        let flat = shape::ravel(idx, self.shape());
        self.inner.data.borrow()[flat]
    }

    /// Overwrite the buffer in place (used by optimizers). Panics if the
    /// length differs. Does not touch the graph.
    pub fn set_data(&self, data: &[f32]) {
        let mut d = self.inner.data.borrow_mut();
        assert_eq!(d.len(), data.len(), "set_data length mismatch");
        d.copy_from_slice(data);
    }

    /// Apply `f` to the buffer in place (used by optimizers).
    pub fn update_data(&self, f: impl FnOnce(&mut [f32])) {
        f(&mut self.inner.data.borrow_mut());
    }

    // ----- gradient -------------------------------------------------------

    /// Accumulated gradient of a leaf variable, if any.
    pub fn grad(&self) -> Option<Vec<f32>> {
        self.inner.grad.borrow().clone()
    }

    /// Clear the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.inner.grad.borrow_mut() = None;
    }

    /// Overwrite the accumulated gradient (used by gradient clipping).
    pub fn set_grad(&self, g: &[f32]) {
        assert_eq!(g.len(), self.numel(), "set_grad length mismatch");
        *self.inner.grad.borrow_mut() = Some(g.to_vec());
    }

    pub(crate) fn accumulate_grad(&self, g: &[f32]) {
        let mut slot = self.inner.grad.borrow_mut();
        match slot.as_mut() {
            Some(existing) => {
                for (e, x) in existing.iter_mut().zip(g) {
                    *e += x;
                }
            }
            None => *slot = Some(g.to_vec()),
        }
    }

    /// Run reverse-mode autodiff from this (scalar) tensor.
    ///
    /// Panics if the tensor has more than one element; use
    /// [`Tensor::backward_with`] to seed a non-scalar output.
    pub fn backward(&self) {
        assert_eq!(
            self.numel(),
            1,
            "backward() requires a scalar; use backward_with"
        );
        autograd::run_backward(self, &[1.0]);
    }

    /// Run reverse-mode autodiff seeding this tensor's gradient with `seed`.
    pub fn backward_with(&self, seed: &[f32]) {
        assert_eq!(seed.len(), self.numel(), "seed length mismatch");
        autograd::run_backward(self, seed);
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.inner.data.borrow();
        let preview: Vec<f32> = d.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor(shape={:?}, tracked={}, data={:?}{})",
            self.inner.shape,
            self.inner.track,
            preview,
            if d.len() > 8 { ", ..." } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_metadata() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.ndim(), 2);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert!(!t.is_tracked());
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn construction_rejects_bad_shape() {
        let _ = Tensor::from_vec(vec![1., 2., 3.], &[2, 2]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(7.5).item(), 7.5);
        assert_eq!(Tensor::scalar(7.5).numel(), 1);
    }

    #[test]
    fn requires_grad_makes_tracked_leaf() {
        let t = Tensor::zeros(&[3]).requires_grad();
        assert!(t.is_tracked());
        assert!(t.is_variable());
        assert!(t.grad().is_none());
    }

    #[test]
    fn detach_breaks_tracking() {
        let t = Tensor::zeros(&[3]).requires_grad();
        assert!(!t.detach().is_tracked());
    }

    #[test]
    fn set_and_update_data() {
        let t = Tensor::zeros(&[2]);
        t.set_data(&[1.0, 2.0]);
        assert_eq!(t.to_vec(), vec![1.0, 2.0]);
        t.update_data(|d| d.iter_mut().for_each(|x| *x *= 3.0));
        assert_eq!(t.to_vec(), vec![3.0, 6.0]);
    }
}
