//! The [`Tensor`] handle and graph-node plumbing.
//!
//! Storage is `Arc`-based and node ids come from a process-wide atomic
//! counter, so tensors can be built, moved, and differentiated on any
//! thread. Graph bookkeeping (parents + backward op) is split into an
//! optional [`GraphNode`] attached only to op-produced tensors; leaves
//! (parameters, constants, detached copies) carry no graph state and are
//! `Send + Sync` by construction.

use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::arena;
use crate::autograd;
use crate::hotcell::{HotCell, HotReadGuard};
use crate::lockorder;
use crate::shape::{self, Shape};
use crate::simd;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Ignore lock poisoning: a panicking worker thread aborts its own step,
/// and the plain `f32` buffers behind these locks are never left in a
/// torn state by our writers (they only overwrite whole slices).
fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn mutex_lock<T>(l: &Mutex<T>) -> MutexGuard<'_, T> {
    l.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Backward closure: given the node and the gradient flowing into it,
/// produce the gradient for each parent (`None` = parent gets no gradient).
///
/// `Send + Sync` so a graph built on a worker thread can run its reverse
/// sweep there (or be handed to another thread wholesale).
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor, &[f32]) -> Vec<Option<Vec<f32>>> + Send + Sync>;

/// Graph bookkeeping for op-produced nodes. Kept out of [`Inner`]'s data
/// fields so that leaf tensors pay nothing for autograd support.
pub(crate) struct GraphNode {
    pub(crate) parents: Vec<Tensor>,
    pub(crate) backward: BackwardFn,
}

/// Where a tensor's buffer lives.
///
/// The split is the core of the lock-free hot path: *variables* (master
/// and replica parameters, mutated by optimizers and `load_flat`, read
/// concurrently at the all-reduce boundary) keep the `RwLock` and stay
/// registered with the debug lock-order checker; everything else —
/// constants, op outputs, activations — is produced once on one thread
/// and read without any synchronization.
pub(crate) enum Storage {
    /// `RwLock`-guarded buffer; the only storage the lock-order checker
    /// still tracks. Used for `requires_grad` variables.
    Shared(RwLock<Vec<f32>>),
    /// Unsynchronized buffer with a debug-build aliasing checker.
    Hot(HotCell),
}

pub(crate) struct Inner {
    pub(crate) id: u64,
    pub(crate) data: Storage,
    pub(crate) shape: Shape,
    /// Accumulated gradient; only retained on leaf variables.
    pub(crate) grad: Mutex<Option<Vec<f32>>>,
    /// True for user-created leaves that should accumulate gradient.
    pub(crate) is_variable: bool,
    /// Present only on op outputs that participate in the autograd graph.
    pub(crate) graph: Option<GraphNode>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Hand hot buffers back to the thread-local arena so the next
        // step's activations reuse them instead of hitting the allocator.
        if let Storage::Hot(cell) = &mut self.data {
            arena::recycle(cell.take_buf());
        }
        if let Some(g) = self
            .grad
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
        {
            arena::recycle(g);
        }
    }
}

/// Read guard over a tensor's data buffer. For [`Storage::Shared`]
/// tensors this wraps the `RwLock` read guard and is registered with the
/// debug lock-order checker (see [`crate::lockorder`]); for
/// [`Storage::Hot`] tensors it is a zero-cost borrow (debug builds tally
/// readers to catch torn access). Derefs to `Vec<f32>`, so call sites use
/// it exactly like the raw guard it wraps.
pub struct DataGuard<'a> {
    repr: GuardRepr<'a>,
}

enum GuardRepr<'a> {
    Shared {
        // Field order matters: the lock guard must drop before the checker
        // token so the checker never reports a lock as released while held.
        guard: RwLockReadGuard<'a, Vec<f32>>,
        _token: lockorder::LockToken,
    },
    Hot(HotReadGuard<'a>),
}

impl Deref for DataGuard<'_> {
    type Target = Vec<f32>;

    #[inline]
    fn deref(&self) -> &Vec<f32> {
        match &self.repr {
            GuardRepr::Shared { guard, .. } => guard,
            GuardRepr::Hot(g) => g,
        }
    }
}

/// Acquire read guards on two tensors' data buffers in ascending id order
/// (the workspace-wide deadlock-freedom convention, enforced by
/// `aimts-lint` A002 and the debug lock-order checker), returning them in
/// *argument* order.
pub fn read_pair<'a>(a: &'a Tensor, b: &'a Tensor) -> (DataGuard<'a>, DataGuard<'a>) {
    if a.inner.id <= b.inner.id {
        let ga = a.data();
        let gb = b.data();
        (ga, gb)
    } else {
        let gb = b.data();
        let ga = a.data();
        (ga, gb)
    }
}

/// A dense row-major `f32` tensor; cheap to clone (shared handle).
///
/// See the crate docs for an overview. All operation methods live in the
/// [`crate::ops`] modules but are exposed as inherent methods.
#[derive(Clone)]
pub struct Tensor {
    pub(crate) inner: Arc<Inner>,
}

impl Tensor {
    // ----- construction ---------------------------------------------------

    /// Build a tensor from data in row-major order. Panics on size mismatch.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape::numel(shape),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            inner: Arc::new(Inner {
                id: next_id(),
                data: Storage::Hot(HotCell::new(data)),
                shape: shape.to_vec(),
                grad: Mutex::new(None),
                is_variable: false,
                graph: None,
            }),
        }
    }

    /// A scalar (0-d) tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor::from_vec(vec![v], &[])
    }

    /// All zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::from_vec(vec![0.0; shape::numel(shape)], shape)
    }

    /// All ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::from_vec(vec![1.0; shape::numel(shape)], shape)
    }

    /// Constant fill.
    pub fn full(shape: &[usize], v: f32) -> Self {
        Tensor::from_vec(vec![v; shape::numel(shape)], shape)
    }

    /// Internal: build a non-leaf node from an op.
    pub(crate) fn from_op(
        data: Vec<f32>,
        shape: &[usize],
        parents: Vec<Tensor>,
        backward: BackwardFn,
    ) -> Self {
        debug_assert_eq!(data.len(), shape::numel(shape));
        let track = autograd::is_grad_enabled() && parents.iter().any(|p| p.is_tracked());
        if !track {
            return Tensor::from_vec(data, shape);
        }
        Tensor {
            inner: Arc::new(Inner {
                id: next_id(),
                data: Storage::Hot(HotCell::new(data)),
                shape: shape.to_vec(),
                grad: Mutex::new(None),
                is_variable: false,
                graph: Some(GraphNode { parents, backward }),
            }),
        }
    }

    /// Mark this tensor as a trainable leaf variable. Returns a new handle
    /// that shares nothing with `self` (data is copied), accumulates
    /// gradient during [`Tensor::backward`], and is tracked by the graph.
    pub fn requires_grad(&self) -> Self {
        Tensor {
            inner: Arc::new(Inner {
                id: next_id(),
                data: Storage::Shared(RwLock::new(self.to_vec())),
                shape: self.inner.shape.clone(),
                grad: Mutex::new(None),
                is_variable: true,
                graph: None,
            }),
        }
    }

    /// A copy detached from the autograd graph (shares no graph state).
    pub fn detach(&self) -> Self {
        Tensor::from_vec(self.to_vec(), self.shape())
    }

    // ----- metadata -------------------------------------------------------

    /// Dimension sizes.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.inner.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.inner.shape.len()
    }

    /// Total element count.
    #[inline]
    pub fn numel(&self) -> usize {
        shape::numel(&self.inner.shape)
    }

    /// Unique node id (stable across the whole process).
    #[inline]
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Whether this tensor is a gradient-accumulating leaf.
    #[inline]
    pub fn is_variable(&self) -> bool {
        self.inner.is_variable
    }

    /// Whether this tensor participates in the autograd graph.
    #[inline]
    pub fn is_tracked(&self) -> bool {
        self.inner.is_variable || self.inner.graph.is_some()
    }

    /// Parents recorded by the producing op (empty for leaves).
    #[inline]
    pub(crate) fn op_parents(&self) -> &[Tensor] {
        self.inner.graph.as_ref().map_or(&[], |g| &g.parents)
    }

    /// Graph bookkeeping, if this is an op output.
    #[inline]
    pub(crate) fn graph(&self) -> Option<&GraphNode> {
        self.inner.graph.as_ref()
    }

    // ----- data access ----------------------------------------------------

    /// Borrow the underlying buffer. Variables take a shared read lock
    /// registered (in debug builds) with the lock-order checker; hot
    /// tensors borrow with zero synchronization. When two *variable*
    /// buffers are needed at once, go through [`read_pair`].
    pub fn data(&self) -> DataGuard<'_> {
        match &self.inner.data {
            Storage::Shared(lock) => {
                let token = lockorder::acquire(self.inner.id);
                DataGuard {
                    repr: GuardRepr::Shared {
                        // aimts-lint: allow(A002, storage match arms are exclusive: one guard per call)
                        guard: read_lock(lock),
                        _token: token,
                    },
                }
            }
            Storage::Hot(cell) => DataGuard {
                repr: GuardRepr::Hot(cell.read()),
            },
        }
    }

    /// Run `f` with exclusive access to the buffer, dispatching on the
    /// storage kind (write lock + checker token for variables, checked
    /// exclusive borrow for hot tensors).
    fn with_data_mut<R>(&self, f: impl FnOnce(&mut Vec<f32>) -> R) -> R {
        match &self.inner.data {
            Storage::Shared(lock) => {
                let _token = lockorder::acquire(self.inner.id);
                // aimts-lint: allow(A002, storage match arms are exclusive: one guard per call)
                f(&mut write_lock(lock))
            }
            Storage::Hot(cell) => f(&mut cell.write()),
        }
    }

    /// Copy the underlying buffer out.
    pub fn to_vec(&self) -> Vec<f32> {
        self.data().clone()
    }

    /// The single value of a one-element tensor. Panics otherwise.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires a single-element tensor");
        self.data()[0]
    }

    /// Element at a multi-index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        let flat = shape::ravel(idx, self.shape());
        self.data()[flat]
    }

    /// Overwrite the buffer in place (used by optimizers). Panics if the
    /// length differs. Does not touch the graph.
    pub fn set_data(&self, data: &[f32]) {
        self.with_data_mut(|d| {
            assert_eq!(d.len(), data.len(), "set_data length mismatch");
            d.copy_from_slice(data);
        });
    }

    /// Apply `f` to the buffer in place (used by optimizers).
    pub fn update_data(&self, f: impl FnOnce(&mut [f32])) {
        self.with_data_mut(|d| f(d));
    }

    /// Replace the buffer wholesale with `buf`, recycling the old buffer
    /// into the thread-local arena. Used by compiled-plan replay, which
    /// recomputes each traced node's value into an arena buffer and swaps
    /// it in — downstream instructions and retained backward closures then
    /// read the fresh value through their existing handles.
    pub(crate) fn swap_data(&self, mut buf: Vec<f32>) {
        debug_assert_eq!(buf.len(), self.numel(), "swap_data length mismatch");
        self.with_data_mut(|d| std::mem::swap(d, &mut buf));
        arena::recycle(buf);
    }

    /// True when every element is finite (no `NaN`, no `±inf`).
    ///
    /// One branch-free pass over the buffer (see [`crate::all_finite`]);
    /// cheap enough to run on every loss/gradient of a training step.
    pub fn all_finite(&self) -> bool {
        crate::all_finite(&self.data())
    }

    /// Raw IEEE-754 bit patterns of the buffer, in element order.
    ///
    /// Unlike [`Tensor::to_vec`] followed by arithmetic, the bit patterns
    /// survive any value exactly — including `NaN` payloads and `±inf` —
    /// which is what binary checkpointing needs for bit-exact round-trips.
    pub fn data_bits(&self) -> Vec<u32> {
        self.data().iter().map(|x| x.to_bits()).collect()
    }

    /// Overwrite the buffer from raw bit patterns (inverse of
    /// [`Tensor::data_bits`]). Panics if the length differs.
    pub fn set_data_bits(&self, bits: &[u32]) {
        self.with_data_mut(|d| {
            assert_eq!(d.len(), bits.len(), "set_data_bits length mismatch");
            for (x, b) in d.iter_mut().zip(bits) {
                *x = f32::from_bits(*b);
            }
        });
    }

    // ----- gradient -------------------------------------------------------

    /// Accumulated gradient of a leaf variable, if any.
    pub fn grad(&self) -> Option<Vec<f32>> {
        let _token = lockorder::acquire(self.inner.id);
        mutex_lock(&self.inner.grad).clone()
    }

    /// Clear the accumulated gradient (the buffer returns to the arena).
    pub fn zero_grad(&self) {
        let _token = lockorder::acquire(self.inner.id);
        if let Some(g) = mutex_lock(&self.inner.grad).take() {
            arena::recycle(g);
        }
    }

    /// Overwrite the accumulated gradient (used by gradient clipping).
    pub fn set_grad(&self, g: &[f32]) {
        assert_eq!(g.len(), self.numel(), "set_grad length mismatch");
        let _token = lockorder::acquire(self.inner.id);
        let mut slot = mutex_lock(&self.inner.grad);
        match slot.as_mut() {
            Some(existing) => existing.copy_from_slice(g),
            None => *slot = Some(arena::copy_of(g)),
        }
    }

    /// Add `g` into the accumulated gradient (allocating it on first use).
    /// Panics if the length differs from the tensor's element count.
    pub fn accumulate_grad(&self, g: &[f32]) {
        assert_eq!(
            g.len(),
            self.numel(),
            "accumulate_grad length mismatch: gradient has {} elements, tensor has {}",
            g.len(),
            self.numel()
        );
        let _token = lockorder::acquire(self.inner.id);
        let mut slot = mutex_lock(&self.inner.grad);
        match slot.as_mut() {
            Some(existing) => simd::add_assign(existing, g),
            None => *slot = Some(arena::copy_of(g)),
        }
    }

    /// Run reverse-mode autodiff from this (scalar) tensor.
    ///
    /// Panics if the tensor has more than one element; use
    /// [`Tensor::backward_with`] to seed a non-scalar output.
    pub fn backward(&self) {
        assert_eq!(
            self.numel(),
            1,
            "backward() requires a scalar; use backward_with"
        );
        autograd::run_backward(self, &[1.0]);
    }

    /// Run reverse-mode autodiff seeding this tensor's gradient with `seed`.
    pub fn backward_with(&self, seed: &[f32]) {
        assert_eq!(seed.len(), self.numel(), "seed length mismatch");
        autograd::run_backward(self, seed);
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.data();
        let preview: Vec<f32> = d.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor(shape={:?}, tracked={}, data={:?}{})",
            self.inner.shape,
            self.is_tracked(),
            preview,
            if d.len() > 8 { ", ..." } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_metadata() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.ndim(), 2);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert!(!t.is_tracked());
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn construction_rejects_bad_shape() {
        let _ = Tensor::from_vec(vec![1., 2., 3.], &[2, 2]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(7.5).item(), 7.5);
        assert_eq!(Tensor::scalar(7.5).numel(), 1);
    }

    #[test]
    fn requires_grad_makes_tracked_leaf() {
        let t = Tensor::zeros(&[3]).requires_grad();
        assert!(t.is_tracked());
        assert!(t.is_variable());
        assert!(t.grad().is_none());
    }

    #[test]
    fn detach_breaks_tracking() {
        let t = Tensor::zeros(&[3]).requires_grad();
        assert!(!t.detach().is_tracked());
    }

    #[test]
    fn set_and_update_data() {
        let t = Tensor::zeros(&[2]);
        t.set_data(&[1.0, 2.0]);
        assert_eq!(t.to_vec(), vec![1.0, 2.0]);
        t.update_data(|d| d.iter_mut().for_each(|x| *x *= 3.0));
        assert_eq!(t.to_vec(), vec![3.0, 6.0]);
    }

    #[test]
    fn ids_unique_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| (0..64).map(|_| Tensor::zeros(&[1]).id()).collect()))
            .collect();
        let mut ids: Vec<u64> = Vec::new();
        for h in handles {
            let v: Vec<u64> = h.join().unwrap();
            ids.extend(v);
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4 * 64, "node ids collided across threads");
    }

    #[test]
    #[should_panic(expected = "accumulate_grad length mismatch")]
    fn accumulate_grad_rejects_short_gradient() {
        let t = Tensor::zeros(&[3]).requires_grad();
        t.accumulate_grad(&[1.0, 2.0]);
    }
}
