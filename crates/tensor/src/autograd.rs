//! Reverse-mode autodiff engine: topological sweep + grad-mode toggling.
//!
//! Grad mode is a *per-thread* toggle: a worker thread can run its own
//! `no_grad` scope without affecting graphs being recorded elsewhere. The
//! sweep itself only touches the root's own ancestor graph, so separate
//! graphs can run `backward` concurrently on different threads.

use std::cell::Cell;
use std::collections::{HashMap, HashSet};

use crate::arena;
use crate::simd;
use crate::tensor::Tensor;

thread_local! {
    static GRAD_ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// Whether operations currently record the autograd graph.
pub fn is_grad_enabled() -> bool {
    GRAD_ENABLED.with(|c| c.get())
}

/// RAII guard that disables gradient tracking until dropped.
pub struct NoGradGuard {
    prev: bool,
}

impl Drop for NoGradGuard {
    fn drop(&mut self) {
        GRAD_ENABLED.with(|c| c.set(self.prev));
    }
}

/// Run `f` with gradient tracking disabled (inference mode).
///
/// ```
/// use aimts_tensor::{no_grad, Tensor};
/// let a = Tensor::ones(&[2]).requires_grad();
/// let out = no_grad(|| a.mul(&a));
/// assert!(!out.is_tracked());
/// ```
pub fn no_grad<R>(f: impl FnOnce() -> R) -> R {
    let _guard = push_no_grad();
    f()
}

/// Explicit guard variant of [`no_grad`] for scopes spanning statements.
pub fn push_no_grad() -> NoGradGuard {
    let prev = GRAD_ENABLED.with(|c| {
        let p = c.get();
        c.set(false);
        p
    });
    NoGradGuard { prev }
}

/// Topological (post-)order over the tracked ancestors of `root`: leaves
/// first, `root` last. This is the exact traversal `run_backward` sweeps in
/// reverse; the plan compiler reuses it so a compiled backward schedule
/// visits nodes in the identical order.
pub(crate) fn backward_order(root: &Tensor) -> Vec<Tensor> {
    // Iterative DFS post-order: children (parents in graph terms) first.
    let mut order: Vec<Tensor> = Vec::new();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut stack: Vec<(Tensor, usize)> = vec![(root.clone(), 0)];
    while let Some((node, pi)) = stack.pop() {
        if pi == 0 && !visited.insert(node.inner.id) {
            continue;
        }
        let parents = node.op_parents();
        let mut advanced = false;
        for (j, p) in parents.iter().enumerate().skip(pi) {
            if p.is_tracked() && !visited.contains(&p.inner.id) {
                stack.push((node.clone(), j + 1));
                stack.push((p.clone(), 0));
                advanced = true;
                break;
            }
        }
        if !advanced {
            order.push(node);
        }
    }
    order
}

/// Reverse sweep. Builds a topological order over tracked ancestors of
/// `root`, then propagates `seed` backwards, accumulating into leaf
/// variables' `.grad`.
pub(crate) fn run_backward(root: &Tensor, seed: &[f32]) {
    if !root.is_tracked() {
        return;
    }
    let order = backward_order(root);
    // `order` is post-order: leaves first, root last → walk reversed.
    // Flowing gradient buffers come from (and return to) the thread-local
    // arena, so steady-state backward sweeps allocate nothing.
    let mut grads: HashMap<u64, Vec<f32>> = HashMap::new();
    grads.insert(root.inner.id, arena::copy_of(seed));
    for node in order.iter().rev() {
        let Some(gout) = grads.remove(&node.inner.id) else {
            continue;
        };
        if node.inner.is_variable {
            node.accumulate_grad(&gout);
        }
        if let Some(graph) = node.graph() {
            let parent_grads = (graph.backward)(node, &gout);
            debug_assert_eq!(parent_grads.len(), graph.parents.len());
            for (p, pg) in graph.parents.iter().zip(parent_grads) {
                let Some(pg) = pg else {
                    continue;
                };
                if !p.is_tracked() {
                    // No grad slot for this parent, but the buffer is
                    // pool-backed — return it instead of dropping it.
                    arena::recycle(pg);
                    continue;
                }
                debug_assert_eq!(pg.len(), p.numel(), "parent grad length mismatch");
                match grads.get_mut(&p.inner.id) {
                    Some(acc) => {
                        simd::add_assign(acc, &pg);
                        arena::recycle(pg);
                    }
                    None => {
                        grads.insert(p.inner.id, pg);
                    }
                }
            }
        }
        arena::recycle(gout);
    }
    for (_, g) in grads.drain() {
        arena::recycle(g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn no_grad_disables_tracking() {
        let a = Tensor::ones(&[2]).requires_grad();
        assert!(a.add(&a).is_tracked());
        let out = no_grad(|| a.add(&a));
        assert!(!out.is_tracked());
        assert!(is_grad_enabled());
    }

    #[test]
    fn no_grad_nests() {
        no_grad(|| {
            assert!(!is_grad_enabled());
            no_grad(|| assert!(!is_grad_enabled()));
            assert!(!is_grad_enabled());
        });
        assert!(is_grad_enabled());
    }

    #[test]
    fn diamond_graph_accumulates_both_paths() {
        // y = a*a + a*a -> dy/da = 4a
        let a = Tensor::from_vec(vec![3.0], &[1]).requires_grad();
        let sq = a.mul(&a);
        let y = sq.add(&sq).sum_all();
        y.backward();
        assert_eq!(a.grad().unwrap(), vec![12.0]);
    }

    #[test]
    fn grad_accumulates_across_backward_calls() {
        let a = Tensor::from_vec(vec![2.0], &[1]).requires_grad();
        a.mul(&a).sum_all().backward();
        a.mul(&a).sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![8.0]);
        a.zero_grad();
        assert!(a.grad().is_none());
    }

    #[test]
    fn shared_subgraph_reused_twice() {
        // z = (a+b) * (a+b); dz/da = 2(a+b)
        let a = Tensor::from_vec(vec![1.0], &[1]).requires_grad();
        let b = Tensor::from_vec(vec![2.0], &[1]).requires_grad();
        let s = a.add(&b);
        s.mul(&s).sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![6.0]);
        assert_eq!(b.grad().unwrap(), vec![6.0]);
    }
}
