//! # aimts-tensor
//!
//! A dense, row-major, `f32` n-dimensional tensor library with reverse-mode
//! automatic differentiation, written from scratch for the AimTS
//! reproduction. It provides exactly the operator set the paper's models
//! need — broadcasting element-wise arithmetic, (batched) matrix
//! multiplication, 1-D/2-D convolution and pooling, reductions, softmax,
//! and shape manipulation — each with a hand-written backward pass that is
//! verified against finite differences in the test suite.
//!
//! ## Design
//!
//! A [`Tensor`] is a cheaply clonable handle (`Arc`) to an immutable-shape
//! node; tensors are `Send + Sync` and node ids come from a process-wide
//! atomic counter, so graphs can be built and differentiated on worker
//! threads. Nodes created from operations record their parents and a
//! backward closure; [`Tensor::backward`] runs a topological sweep
//! accumulating gradients into every reachable leaf that was created with
//! [`Tensor::requires_grad`]. Gradient tracking can be suspended with
//! [`no_grad`], which skips graph construction entirely (used for
//! inference and evaluation loops); the toggle is per-thread.
//!
//! ```
//! use aimts_tensor::Tensor;
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).requires_grad();
//! let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
//! let loss = a.mul(&b).sum_all();
//! loss.backward();
//! assert_eq!(a.grad().unwrap(), vec![4.0, 5.0, 6.0]);
//! ```

mod autograd;
mod grad_check;
mod init;
mod tensor;

pub mod ops;
pub mod shape;

pub use autograd::{is_grad_enabled, no_grad, push_no_grad, NoGradGuard};
pub use grad_check::{check_gradients, numeric_gradient};
pub use shape::{broadcast_shapes, Shape};
pub use tensor::Tensor;

/// Numerical epsilon used by normalization and division-adjacent kernels.
pub const EPS: f32 = 1e-8;
