//! # aimts-tensor
//!
//! A dense, row-major, `f32` n-dimensional tensor library with reverse-mode
//! automatic differentiation, written from scratch for the AimTS
//! reproduction. It provides exactly the operator set the paper's models
//! need — broadcasting element-wise arithmetic, (batched) matrix
//! multiplication, 1-D/2-D convolution and pooling, reductions, softmax,
//! and shape manipulation — each with a hand-written backward pass that is
//! verified against finite differences in the test suite.
//!
//! ## Design
//!
//! A [`Tensor`] is a cheaply clonable handle (`Arc`) to an immutable-shape
//! node; tensors are `Send + Sync` and node ids come from a process-wide
//! atomic counter, so graphs can be built and differentiated on worker
//! threads. Nodes created from operations record their parents and a
//! backward closure; [`Tensor::backward`] runs a topological sweep
//! accumulating gradients into every reachable leaf that was created with
//! [`Tensor::requires_grad`]. Gradient tracking can be suspended with
//! [`no_grad`], which skips graph construction entirely (used for
//! inference and evaluation loops); the toggle is per-thread.
//!
//! ```
//! use aimts_tensor::Tensor;
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).requires_grad();
//! let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
//! let loss = a.mul(&b).sum_all();
//! loss.backward();
//! assert_eq!(a.grad().unwrap(), vec![4.0, 5.0, 6.0]);
//! ```

// Library code must propagate errors, not unwrap: lock-order and autograd paths must stay panic-free
// (mirrors aimts-lint rule A001; tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod autograd;
mod grad_check;
mod hotcell;
mod init;
mod tensor;

pub mod arena;
pub mod lockorder;
pub mod ops;
pub mod plan;
pub mod shape;
pub mod simd;

pub use autograd::{is_grad_enabled, no_grad, push_no_grad, NoGradGuard};
pub use grad_check::{check_gradients, numeric_gradient};
pub use shape::{broadcast_shapes, Shape};
pub use tensor::{read_pair, DataGuard, Tensor};

/// Numerical epsilon used by normalization and division-adjacent kernels.
pub const EPS: f32 = 1e-8;

/// True when every value in the slice is finite (no `NaN`, no `±inf`).
///
/// An `f32` is non-finite exactly when its exponent bits are all ones, so
/// the check is a branch-free mask-and-compare per element that the
/// compiler auto-vectorizes — cheap enough to guard every loss value and
/// flat gradient of a training step.
#[inline]
pub fn all_finite(xs: &[f32]) -> bool {
    const EXP_MASK: u32 = 0x7F80_0000;
    xs.iter().all(|x| x.to_bits() & EXP_MASK != EXP_MASK)
}

#[cfg(test)]
mod finite_tests {
    use super::all_finite;

    #[test]
    fn all_finite_classifies_specials() {
        assert!(all_finite(&[]));
        assert!(all_finite(&[0.0, -0.0, 1.5, f32::MAX, f32::MIN_POSITIVE]));
        // Subnormals are finite.
        assert!(all_finite(&[f32::from_bits(1)]));
        assert!(!all_finite(&[0.0, f32::NAN]));
        assert!(!all_finite(&[f32::INFINITY]));
        assert!(!all_finite(&[f32::NEG_INFINITY, 1.0]));
        // NaN payload variants are all caught.
        assert!(!all_finite(&[f32::from_bits(0x7F80_0001)]));
    }

    #[test]
    fn tensor_all_finite_matches_slice() {
        let t = super::Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert!(t.all_finite());
        t.set_data(&[1.0, f32::NAN]);
        assert!(!t.all_finite());
    }
}
