//! Unsynchronized ("hot") buffer storage with a debug-build race detector.
//!
//! Activations and op outputs are produced once, read by downstream ops
//! and the backward sweep, and never shared *mutably* across threads: a
//! replica's forward/backward graph lives entirely on its worker thread,
//! and the handful of cross-thread reads (checkpoint digests, the final
//! all-reduce) happen only after the producing step has finished. Paying a
//! `RwLock` acquisition per element access on that path is pure overhead —
//! it is what flattened the PR 2 parallel speedup to 1.0×.
//!
//! [`HotCell`] therefore stores the buffer in an `UnsafeCell` with **no
//! synchronization in release builds**. The safety contract (writers are
//! exclusive; never concurrent with readers) is the same one `RwLock`
//! enforced dynamically — here it is upheld by the ownership structure of
//! the training loop and *checked* in debug builds by an atomic
//! reader/writer tally that panics on any torn access, in the spirit of
//! the `lockorder` checker that still guards the surviving locks.
//!
//! Every debug-build guard acquisition additionally draws an epoch stamp
//! — a process-global op id packed with a per-thread debug id (from
//! [`crate::lockorder::debug_thread_id`]) — and records it in the cell.
//! A violation report therefore names **both** conflicting sites as
//! `(thread, op)` pairs, turning "something raced" into "op 17 on thread
//! 3 collided with op 16 on thread 2", which is usually enough to find
//! the two call sites in a deterministic test run.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

#[cfg(debug_assertions)]
use std::sync::atomic::{AtomicI32, AtomicU64, Ordering};

/// Number of readers currently holding a guard, or `-1` while a write
/// guard is live. Debug builds only.
#[cfg(debug_assertions)]
type AccessTally = AtomicI32;

/// Process-global access epoch. Every guard acquisition draws one op id,
/// so a violation report can name *which* access it collided with, not
/// just that something was live.
#[cfg(debug_assertions)]
static NEXT_OP: AtomicU64 = AtomicU64::new(1);

/// Draw a fresh epoch stamp: `(packed, thread, op)` where `packed` is
/// `thread << 32 | op` (op truncated to 32 bits — debug runs never come
/// close, and the stamp is diagnostic, not a correctness input).
#[cfg(debug_assertions)]
fn stamp() -> (u64, u32, u64) {
    let op = NEXT_OP.fetch_add(1, Ordering::Relaxed);
    let thread = crate::lockorder::debug_thread_id();
    ((u64::from(thread) << 32) | (op & 0xFFFF_FFFF), thread, op)
}

/// Unpack a stamp back into `(thread, op)` for a violation report.
#[cfg(debug_assertions)]
fn unpack(packed: u64) -> (u32, u64) {
    ((packed >> 32) as u32, packed & 0xFFFF_FFFF)
}

pub(crate) struct HotCell {
    buf: UnsafeCell<Vec<f32>>,
    #[cfg(debug_assertions)]
    tally: AccessTally,
    /// Stamp of the most recent read acquisition (0 = never read).
    #[cfg(debug_assertions)]
    last_read: AtomicU64,
    /// Stamp of the most recent write acquisition (0 = never written).
    #[cfg(debug_assertions)]
    last_write: AtomicU64,
}

// SAFETY: `HotCell` hands out shared and exclusive references to the inner
// buffer without synchronization. Callers (the `Tensor` methods in
// `tensor.rs`) uphold the aliasing contract: mutation happens only through
// tensors not concurrently read by another thread. Debug builds verify
// the contract at runtime via `tally`.
unsafe impl Send for HotCell {}
// SAFETY: see above — shared access is plain reads of a buffer that is not
// concurrently mutated.
unsafe impl Sync for HotCell {}

impl HotCell {
    pub(crate) fn new(buf: Vec<f32>) -> Self {
        HotCell {
            buf: UnsafeCell::new(buf),
            #[cfg(debug_assertions)]
            tally: AccessTally::new(0),
            #[cfg(debug_assertions)]
            last_read: AtomicU64::new(0),
            #[cfg(debug_assertions)]
            last_write: AtomicU64::new(0),
        }
    }

    /// Shared read access. Panics in debug builds if a writer is live,
    /// naming both conflicting sites by `(thread, op)` stamp.
    pub(crate) fn read(&self) -> HotReadGuard<'_> {
        #[cfg(debug_assertions)]
        {
            let (packed, thread, op) = stamp();
            let prev = self.tally.fetch_add(1, Ordering::Acquire);
            if prev < 0 {
                let (wt, wo) = unpack(self.last_write.load(Ordering::Acquire));
                // aimts-lint: allow(A001, the debug race validator reports by panicking — the access path has no error channel and the violation is a caller bug)
                panic!(
                    "hot-buffer aliasing violation: read (thread {thread}, op {op}) \
                     while a write guard is live (thread {wt}, op {wo}) — an op or \
                     optimizer is mutating a tensor another path is reading"
                );
            }
            self.last_read.store(packed, Ordering::Release);
        }
        HotReadGuard { cell: self }
    }

    /// Exclusive write access. Panics in debug builds if any reader or
    /// another writer is live, naming both conflicting sites by
    /// `(thread, op)` stamp.
    pub(crate) fn write(&self) -> HotWriteGuard<'_> {
        #[cfg(debug_assertions)]
        {
            let (packed, thread, op) = stamp();
            if let Err(live) =
                self.tally
                    .compare_exchange(0, -1, Ordering::Acquire, Ordering::Acquire)
            {
                let (kind, site) = if live < 0 {
                    ("write", self.last_write.load(Ordering::Acquire))
                } else {
                    ("read", self.last_read.load(Ordering::Acquire))
                };
                let (ct, co) = unpack(site);
                // aimts-lint: allow(A001, the debug race validator reports by panicking — the access path has no error channel and the violation is a caller bug)
                panic!(
                    "hot-buffer aliasing violation: write (thread {thread}, op {op}) \
                     while a {kind} guard is live (thread {ct}, op {co}) — hot tensors \
                     must not be mutated concurrently with any access"
                );
            }
            self.last_write.store(packed, Ordering::Release);
        }
        HotWriteGuard { cell: self }
    }

    /// Steal the buffer out of a cell that is provably unaliased
    /// (`&mut self` — used when the owning `Inner` is being dropped).
    pub(crate) fn take_buf(&mut self) -> Vec<f32> {
        std::mem::take(self.buf.get_mut())
    }
}

pub(crate) struct HotReadGuard<'a> {
    cell: &'a HotCell,
}

impl Deref for HotReadGuard<'_> {
    type Target = Vec<f32>;

    #[inline]
    fn deref(&self) -> &Vec<f32> {
        // SAFETY: guard construction established (and debug builds verify)
        // that no exclusive access is live for the guard's lifetime.
        unsafe { &*self.cell.buf.get() }
    }
}

impl Drop for HotReadGuard<'_> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        self.cell.tally.fetch_sub(1, Ordering::Release);
    }
}

pub(crate) struct HotWriteGuard<'a> {
    cell: &'a HotCell,
}

impl Deref for HotWriteGuard<'_> {
    type Target = Vec<f32>;

    #[inline]
    fn deref(&self) -> &Vec<f32> {
        // SAFETY: the live write guard is the only access path.
        unsafe { &*self.cell.buf.get() }
    }
}

impl DerefMut for HotWriteGuard<'_> {
    #[inline]
    fn deref_mut(&mut self) -> &mut Vec<f32> {
        // SAFETY: the live write guard is the only access path.
        unsafe { &mut *self.cell.buf.get() }
    }
}

impl Drop for HotWriteGuard<'_> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        self.cell.tally.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_then_write_sequential_is_clean() {
        let cell = HotCell::new(vec![1.0, 2.0]);
        {
            let r = cell.read();
            assert_eq!(r[0], 1.0);
        }
        {
            let mut w = cell.write();
            w[0] = 5.0;
        }
        assert_eq!(cell.read()[0], 5.0);
    }

    #[test]
    fn concurrent_reads_are_clean() {
        let cell = HotCell::new(vec![7.0; 8]);
        let a = cell.read();
        let b = cell.read();
        assert_eq!(a[3].to_bits(), b[3].to_bits());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "hot-buffer aliasing violation")]
    fn write_during_read_panics_in_debug() {
        let cell = HotCell::new(vec![0.0]);
        let _r = cell.read();
        let _w = cell.write();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "hot-buffer aliasing violation")]
    fn read_during_write_panics_in_debug() {
        let cell = HotCell::new(vec![0.0]);
        let _w = cell.write();
        let _r = cell.read();
    }

    #[cfg(debug_assertions)]
    fn panic_message(err: &(dyn std::any::Any + Send)) -> String {
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }

    /// The thread ids named in a violation report, in order of mention.
    #[cfg(debug_assertions)]
    fn thread_ids(msg: &str) -> Vec<u32> {
        msg.match_indices("thread ")
            .map(|(i, pat)| {
                msg[i + pat.len()..]
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse()
                    .unwrap_or(0)
            })
            .collect()
    }

    #[cfg(debug_assertions)]
    #[test]
    fn violation_report_names_both_sites() {
        let cell = HotCell::new(vec![0.0]);
        let _w = cell.write();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cell.read();
        }))
        .expect_err("read during write must panic");
        let msg = panic_message(&*err);
        assert!(
            msg.starts_with("hot-buffer aliasing violation"),
            "prefix must be stable for downstream matchers: {msg}"
        );
        // Both the offending access and the live guard carry (thread, op)
        // stamps; on one thread the thread ids match and the op ids don't.
        let threads = thread_ids(&msg);
        assert_eq!(threads.len(), 2, "two sites expected: {msg}");
        assert_eq!(threads[0], threads[1], "same-thread conflict: {msg}");
        assert_eq!(msg.matches(", op ").count(), 2, "two op stamps: {msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn cross_thread_violation_names_both_threads() {
        use std::sync::{mpsc, Arc};

        let cell = Arc::new(HotCell::new(vec![0.0]));
        let (ready_tx, ready_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let peer = Arc::clone(&cell);
        let reader = std::thread::spawn(move || {
            // Park with a live read guard so the main thread's write
            // collides with an access stamped by *this* thread.
            let _r = peer.read();
            ready_tx.send(()).ok();
            release_rx.recv().ok();
        });
        ready_rx.recv().expect("reader thread started");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cell.write();
        }))
        .expect_err("write during cross-thread read must panic");
        release_tx.send(()).ok();
        reader.join().expect("reader thread exits cleanly");
        let msg = panic_message(&*err);
        let threads = thread_ids(&msg);
        assert_eq!(threads.len(), 2, "two sites expected: {msg}");
        assert_ne!(
            threads[0], threads[1],
            "conflicting sites must name distinct threads: {msg}"
        );
    }
}
