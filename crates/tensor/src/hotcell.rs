//! Unsynchronized ("hot") buffer storage with a debug-build race detector.
//!
//! Activations and op outputs are produced once, read by downstream ops
//! and the backward sweep, and never shared *mutably* across threads: a
//! replica's forward/backward graph lives entirely on its worker thread,
//! and the handful of cross-thread reads (checkpoint digests, the final
//! all-reduce) happen only after the producing step has finished. Paying a
//! `RwLock` acquisition per element access on that path is pure overhead —
//! it is what flattened the PR 2 parallel speedup to 1.0×.
//!
//! [`HotCell`] therefore stores the buffer in an `UnsafeCell` with **no
//! synchronization in release builds**. The safety contract (writers are
//! exclusive; never concurrent with readers) is the same one `RwLock`
//! enforced dynamically — here it is upheld by the ownership structure of
//! the training loop and *checked* in debug builds by an atomic
//! reader/writer tally that panics on any torn access, in the spirit of
//! the `lockorder` checker that still guards the surviving locks.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

#[cfg(debug_assertions)]
use std::sync::atomic::{AtomicI32, Ordering};

/// Number of readers currently holding a guard, or `-1` while a write
/// guard is live. Debug builds only.
#[cfg(debug_assertions)]
type AccessTally = AtomicI32;

pub(crate) struct HotCell {
    buf: UnsafeCell<Vec<f32>>,
    #[cfg(debug_assertions)]
    tally: AccessTally,
}

// SAFETY: `HotCell` hands out shared and exclusive references to the inner
// buffer without synchronization. Callers (the `Tensor` methods in
// `tensor.rs`) uphold the aliasing contract: mutation happens only through
// tensors not concurrently read by another thread. Debug builds verify
// the contract at runtime via `tally`.
unsafe impl Send for HotCell {}
// SAFETY: see above — shared access is plain reads of a buffer that is not
// concurrently mutated.
unsafe impl Sync for HotCell {}

impl HotCell {
    pub(crate) fn new(buf: Vec<f32>) -> Self {
        HotCell {
            buf: UnsafeCell::new(buf),
            #[cfg(debug_assertions)]
            tally: AccessTally::new(0),
        }
    }

    /// Shared read access. Panics in debug builds if a writer is live.
    pub(crate) fn read(&self) -> HotReadGuard<'_> {
        #[cfg(debug_assertions)]
        {
            let prev = self.tally.fetch_add(1, Ordering::Acquire);
            assert!(
                prev >= 0,
                "hot-buffer aliasing violation: read while a write guard is live \
                 (an op or optimizer is mutating a tensor another path is reading)"
            );
        }
        HotReadGuard { cell: self }
    }

    /// Exclusive write access. Panics in debug builds if any reader or
    /// another writer is live.
    pub(crate) fn write(&self) -> HotWriteGuard<'_> {
        #[cfg(debug_assertions)]
        {
            let raced = self
                .tally
                .compare_exchange(0, -1, Ordering::Acquire, Ordering::Relaxed)
                .is_err();
            assert!(
                !raced,
                "hot-buffer aliasing violation: write while another guard is live \
                 (hot tensors must not be mutated concurrently with any access)"
            );
        }
        HotWriteGuard { cell: self }
    }

    /// Steal the buffer out of a cell that is provably unaliased
    /// (`&mut self` — used when the owning `Inner` is being dropped).
    pub(crate) fn take_buf(&mut self) -> Vec<f32> {
        std::mem::take(self.buf.get_mut())
    }
}

pub(crate) struct HotReadGuard<'a> {
    cell: &'a HotCell,
}

impl Deref for HotReadGuard<'_> {
    type Target = Vec<f32>;

    #[inline]
    fn deref(&self) -> &Vec<f32> {
        // SAFETY: guard construction established (and debug builds verify)
        // that no exclusive access is live for the guard's lifetime.
        unsafe { &*self.cell.buf.get() }
    }
}

impl Drop for HotReadGuard<'_> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        self.cell.tally.fetch_sub(1, Ordering::Release);
    }
}

pub(crate) struct HotWriteGuard<'a> {
    cell: &'a HotCell,
}

impl Deref for HotWriteGuard<'_> {
    type Target = Vec<f32>;

    #[inline]
    fn deref(&self) -> &Vec<f32> {
        // SAFETY: the live write guard is the only access path.
        unsafe { &*self.cell.buf.get() }
    }
}

impl DerefMut for HotWriteGuard<'_> {
    #[inline]
    fn deref_mut(&mut self) -> &mut Vec<f32> {
        // SAFETY: the live write guard is the only access path.
        unsafe { &mut *self.cell.buf.get() }
    }
}

impl Drop for HotWriteGuard<'_> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        self.cell.tally.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_then_write_sequential_is_clean() {
        let cell = HotCell::new(vec![1.0, 2.0]);
        {
            let r = cell.read();
            assert_eq!(r[0], 1.0);
        }
        {
            let mut w = cell.write();
            w[0] = 5.0;
        }
        assert_eq!(cell.read()[0], 5.0);
    }

    #[test]
    fn concurrent_reads_are_clean() {
        let cell = HotCell::new(vec![7.0; 8]);
        let a = cell.read();
        let b = cell.read();
        assert_eq!(a[3].to_bits(), b[3].to_bits());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "hot-buffer aliasing violation")]
    fn write_during_read_panics_in_debug() {
        let cell = HotCell::new(vec![0.0]);
        let _r = cell.read();
        let _w = cell.write();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "hot-buffer aliasing violation")]
    fn read_during_write_panics_in_debug() {
        let cell = HotCell::new(vec![0.0]);
        let _w = cell.write();
        let _r = cell.read();
    }
}
