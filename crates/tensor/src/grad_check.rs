//! Finite-difference gradient checking used throughout the test suite.

use crate::tensor::Tensor;

/// Numerically estimate `d f(inputs) / d inputs[which]` by central
/// differences, where `f` must return a scalar tensor.
///
/// The inputs are cloned per evaluation; `f` must be a pure function of
/// the input *values*.
pub fn numeric_gradient(
    f: &dyn Fn(&[Tensor]) -> Tensor,
    inputs: &[Tensor],
    which: usize,
    eps: f32,
) -> Vec<f32> {
    let n = inputs[which].numel();
    let mut grad = vec![0f32; n];
    for i in 0..n {
        let eval = |delta: f32| -> f32 {
            let perturbed: Vec<Tensor> = inputs
                .iter()
                .enumerate()
                .map(|(j, t)| {
                    let mut d = t.to_vec();
                    if j == which {
                        d[i] += delta;
                    }
                    Tensor::from_vec(d, t.shape())
                })
                .collect();
            f(&perturbed).item()
        };
        grad[i] = (eval(eps) - eval(-eps)) / (2.0 * eps);
    }
    grad
}

/// Assert that autograd and finite differences agree for every input.
///
/// `f` maps the (leaf, tracked) inputs to a scalar loss. Tolerance is a
/// combined absolute/relative bound suitable for `f32`.
pub fn check_gradients(f: &dyn Fn(&[Tensor]) -> Tensor, inputs: &[Tensor], eps: f32, tol: f32) {
    let vars: Vec<Tensor> = inputs.iter().map(|t| t.requires_grad()).collect();
    let loss = f(&vars);
    assert_eq!(loss.numel(), 1, "check_gradients requires scalar output");
    loss.backward();
    for (which, v) in vars.iter().enumerate() {
        let auto = v
            .grad()
            // aimts-lint: allow(A001, grad-check is a test harness; a missing gradient must fail loudly)
            .unwrap_or_else(|| panic!("input {which} received no gradient"));
        let numeric = numeric_gradient(f, inputs, which, eps);
        for (i, (a, n)) in auto.iter().zip(&numeric).enumerate() {
            let denom = 1f32.max(a.abs()).max(n.abs());
            assert!(
                (a - n).abs() / denom <= tol,
                "gradient mismatch for input {which} element {i}: autograd {a} vs numeric {n}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn catches_correct_simple_gradient() {
        let x = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]);
        check_gradients(&|ins| ins[0].square().sum_all(), &[x], 1e-2, 1e-2);
    }

    #[test]
    fn two_input_function() {
        let a = Tensor::from_vec(vec![0.3, 0.7], &[2]);
        let b = Tensor::from_vec(vec![1.5, -0.2], &[2]);
        check_gradients(&|ins| ins[0].mul(&ins[1]).sum_all(), &[a, b], 1e-2, 1e-2);
    }
}
