//! Shape and stride arithmetic shared by every kernel.

/// A tensor shape: dimension sizes in row-major order.
pub type Shape = Vec<usize>;

/// Number of elements implied by `shape` (empty shape = scalar = 1 element).
#[inline]
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major strides for `shape`.
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * shape[i + 1];
    }
    s
}

/// NumPy-style broadcast of two shapes; `None` if incompatible.
///
/// Dimensions align from the right; each pair must be equal or contain a 1.
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let nd = a.len().max(b.len());
    let mut out = vec![0usize; nd];
    for i in 0..nd {
        let da = if i < nd - a.len() {
            1
        } else {
            a[i - (nd - a.len())]
        };
        let db = if i < nd - b.len() {
            1
        } else {
            b[i - (nd - b.len())]
        };
        if da == db || da == 1 || db == 1 {
            out[i] = da.max(db);
        } else {
            return None;
        }
    }
    Some(out)
}

/// Strides of `shape` when broadcast to `target` (stride 0 on expanded dims).
///
/// Panics if `shape` does not broadcast to `target`.
pub fn broadcast_strides(shape: &[usize], target: &[usize]) -> Vec<usize> {
    assert!(
        shape.len() <= target.len(),
        "cannot broadcast {shape:?} to {target:?}"
    );
    let base = strides(shape);
    let offset = target.len() - shape.len();
    let mut out = vec![0usize; target.len()];
    for i in 0..shape.len() {
        let t = target[offset + i];
        if shape[i] == t {
            out[offset + i] = base[i];
        } else if shape[i] == 1 {
            out[offset + i] = 0;
        } else {
            // aimts-lint: allow(A001, callers validate with broadcast_shapes first; reaching here is a programming error)
            panic!("cannot broadcast {shape:?} to {target:?}");
        }
    }
    out
}

/// Reduce a gradient computed at the broadcast `from` shape back to `to`.
///
/// Sums over every axis that was expanded (including leading axes that did
/// not exist in `to`). This is the standard broadcast-backward rule.
pub fn reduce_grad_to_shape(grad: &[f32], from: &[usize], to: &[usize]) -> Vec<f32> {
    debug_assert_eq!(grad.len(), numel(from));
    if from == to {
        return grad.to_vec();
    }
    let to_elems = numel(to);
    let mut out = vec![0f32; to_elems];
    let to_strides_in_from = broadcast_strides(to, from);
    let from_strides = strides(from);
    // Walk every element of `from`, mapping its multi-index onto `to`.
    let nd = from.len();
    let mut idx = vec![0usize; nd];
    for (i, &g) in grad.iter().enumerate() {
        // Decompose i into the multi-index (kept incremental for speed).
        let mut rem = i;
        let mut to_off = 0usize;
        for d in 0..nd {
            idx[d] = rem / from_strides[d];
            rem %= from_strides[d];
            to_off += idx[d] * to_strides_in_from[d];
        }
        // `to_strides_in_from` has stride 0 on expanded dims, so `to_off`
        // indexes `out` correctly, but it was computed with broadcast
        // strides of `to` *inside from-space*; those equal real strides of
        // `to` wherever the dim exists.
        out[to_off] += g;
    }
    out
}

/// Convert a flat index into a multi-index for `shape`.
pub fn unravel(mut flat: usize, shape: &[usize]) -> Vec<usize> {
    let st = strides(shape);
    let mut out = vec![0usize; shape.len()];
    for d in 0..shape.len() {
        out[d] = flat / st[d];
        flat %= st[d];
    }
    out
}

/// Convert a multi-index into a flat index for `shape`.
pub fn ravel(idx: &[usize], shape: &[usize]) -> usize {
    let st = strides(shape);
    idx.iter().zip(&st).map(|(i, s)| i * s).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[5]), vec![1]);
        assert_eq!(strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[2, 3], &[3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 4]), Some(vec![2, 4]));
        assert_eq!(broadcast_shapes(&[2, 3], &[4]), None);
        assert_eq!(broadcast_shapes(&[], &[3]), Some(vec![3]));
    }

    #[test]
    fn broadcast_strides_expand() {
        assert_eq!(broadcast_strides(&[3], &[2, 3]), vec![0, 1]);
        assert_eq!(broadcast_strides(&[2, 1], &[2, 4]), vec![1, 0]);
    }

    #[test]
    fn reduce_grad_sums_expanded_axes() {
        // from [2,3] back to [3]: sum over rows.
        let g = vec![1., 2., 3., 10., 20., 30.];
        assert_eq!(reduce_grad_to_shape(&g, &[2, 3], &[3]), vec![11., 22., 33.]);
        // from [2,3] back to [2,1]: sum over cols.
        assert_eq!(reduce_grad_to_shape(&g, &[2, 3], &[2, 1]), vec![6., 60.]);
    }

    #[test]
    fn ravel_roundtrip() {
        let shape = [2, 3, 4];
        for flat in 0..24 {
            assert_eq!(ravel(&unravel(flat, &shape), &shape), flat);
        }
    }
}
