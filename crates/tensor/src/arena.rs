//! Thread-local recycling arena for activation and gradient buffers.
//!
//! Training runs the same graph shape every micro-batch, so the set of
//! buffer sizes stabilizes after the first step. Instead of a classic bump
//! arena (which would need lifetime plumbing through `Arc`-shared
//! tensors), this is a *recycling pool*: freed `Vec<f32>` buffers are
//! binned by capacity and handed back to the next allocation of the same
//! size, so the steady-state step performs no heap allocation for
//! activations, im2col scratch, or autograd gradients.
//!
//! ## Lifetime rules
//!
//! * The pool is per-thread and **disabled by default** — every API is a
//!   no-op pass-through to the global allocator until a scope enables it.
//! * [`enable`] returns an RAII scope; training loops hold one for the
//!   duration of a worker's life. Dropping the outermost scope clears the
//!   pool, releasing the memory.
//! * Buffers re-enter the pool in exactly two ways: a `Hot`-storage tensor
//!   buffer when its last handle drops (see `Drop for Inner` in
//!   `tensor.rs`), or an explicit [`recycle`] of a scratch buffer. A
//!   buffer therefore never re-enters the pool while a live tensor,
//!   gradient, or guard can still reach it — that invariant is what the
//!   aliasing test in `tests/arena_alias.rs` pins down.
//! * Recycled buffers are size-capped ([`MAX_POOL_BYTES`] per thread,
//!   [`MAX_BUFS_PER_CLASS`] per size class); overflow is dropped to the
//!   allocator as usual.
//!
//! The arena is intentionally **unsafe-free**: it moves whole `Vec<f32>`
//! values through a thread-local `RefCell`, never raw pointers, so the
//! aliasing argument above is enforced by ownership rather than asserted.
//! Keep it that way — a recycling pool is exactly the kind of code where
//! a "harmless" pointer cache becomes a use-after-free.

use std::cell::RefCell;
use std::collections::HashMap;

/// Per-thread cap on pooled bytes; beyond this, freed buffers are dropped.
pub const MAX_POOL_BYTES: usize = 256 << 20;
/// Cap on pooled buffers of any single size class.
pub const MAX_BUFS_PER_CLASS: usize = 64;

/// Counters for observing pool behavior (per thread).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Allocations served from the pool.
    pub hits: u64,
    /// Allocations that fell through to the global allocator.
    pub misses: u64,
    /// Buffers accepted back into the pool.
    pub recycled: u64,
    /// Buffers rejected (pool disabled or caps hit) and freed normally.
    pub dropped: u64,
}

#[derive(Default)]
struct Pool {
    depth: u32,
    bytes: usize,
    free: HashMap<usize, Vec<Vec<f32>>>,
    stats: ArenaStats,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// RAII scope holding the pool enabled on this thread. Scopes nest; the
/// pool (and its memory) is cleared when the outermost scope drops.
pub struct ArenaScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ArenaScope {
    fn drop(&mut self) {
        POOL.try_with(|p| {
            let mut p = p.borrow_mut();
            p.depth = p.depth.saturating_sub(1);
            if p.depth == 0 {
                p.free.clear();
                p.bytes = 0;
            }
        })
        .ok();
    }
}

/// Enable the pool on the current thread until the returned scope drops.
pub fn enable() -> ArenaScope {
    POOL.with(|p| p.borrow_mut().depth += 1);
    ArenaScope {
        _not_send: std::marker::PhantomData,
    }
}

/// Whether the pool is enabled on this thread.
pub fn is_enabled() -> bool {
    POOL.try_with(|p| p.borrow().depth > 0).unwrap_or(false)
}

/// An **empty** `Vec` with capacity at least `len`, reusing a pooled
/// buffer when one of exactly that capacity is available. Callers fill it
/// with `extend`/`push`; pair with [`recycle`] (or let it ride inside a
/// `Hot` tensor) to return it.
pub fn take(len: usize) -> Vec<f32> {
    POOL.try_with(|p| {
        let mut p = p.borrow_mut();
        if p.depth == 0 {
            return Vec::with_capacity(len);
        }
        if let Some(bucket) = p.free.get_mut(&len) {
            if let Some(mut v) = bucket.pop() {
                p.bytes = p.bytes.saturating_sub(len * 4);
                p.stats.hits += 1;
                v.clear();
                return v;
            }
        }
        p.stats.misses += 1;
        Vec::with_capacity(len)
    })
    .unwrap_or_else(|_| Vec::with_capacity(len))
}

/// A zero-filled `Vec` of length `len`, pool-backed like [`take`].
pub fn zeroed(len: usize) -> Vec<f32> {
    let mut v = take(len);
    v.resize(len, 0.0);
    v
}

/// A `Vec` of length `len` filled from `it`, pool-backed like [`take`].
/// The iterator must yield exactly `len` items.
pub fn map_collect(len: usize, it: impl Iterator<Item = f32>) -> Vec<f32> {
    let mut v = take(len);
    v.extend(it);
    debug_assert_eq!(v.len(), len, "map_collect iterator length mismatch");
    v
}

/// A pool-backed copy of `src`.
pub fn copy_of(src: &[f32]) -> Vec<f32> {
    let mut v = take(src.len());
    v.extend_from_slice(src);
    v
}

/// Return a buffer to the pool (no-op when the pool is disabled or full).
pub fn recycle(v: Vec<f32>) {
    let cap = v.capacity();
    if cap == 0 {
        return;
    }
    POOL.try_with(|p| {
        let mut p = p.borrow_mut();
        if p.depth == 0 || p.bytes + cap * 4 > MAX_POOL_BYTES {
            p.stats.dropped += 1;
            return;
        }
        let bucket = p.free.entry(cap).or_default();
        if bucket.len() >= MAX_BUFS_PER_CLASS {
            p.stats.dropped += 1;
            return;
        }
        bucket.push(v);
        p.bytes += cap * 4;
        p.stats.recycled += 1;
    })
    .ok();
}

/// Drop all pooled buffers on this thread (the enable depth is kept).
pub fn reset() {
    POOL.try_with(|p| {
        let mut p = p.borrow_mut();
        p.free.clear();
        p.bytes = 0;
    })
    .ok();
}

/// Snapshot of this thread's pool counters.
pub fn stats() -> ArenaStats {
    POOL.try_with(|p| p.borrow().stats).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_pool_is_pass_through() {
        let before = stats();
        let v = zeroed(16);
        recycle(v);
        let after = stats();
        assert_eq!(after.hits, before.hits);
        assert_eq!(after.recycled, before.recycled);
    }

    #[test]
    fn enabled_pool_reuses_exact_capacity() {
        let _scope = enable();
        let v = zeroed(32);
        let cap = v.capacity();
        let ptr = v.as_ptr() as usize;
        recycle(v);
        let v2 = take(32);
        assert_eq!(v2.capacity(), cap);
        assert_eq!(v2.as_ptr() as usize, ptr, "expected pooled buffer back");
        assert!(v2.is_empty());
        let z = zeroed(32);
        assert!(z.iter().all(|&x| x.to_bits() == 0));
    }

    #[test]
    fn nested_scopes_keep_pool_until_outermost_drop() {
        let outer = enable();
        {
            let _inner = enable();
            recycle(zeroed(8));
        }
        assert!(is_enabled());
        let hits_before = stats().hits;
        let _ = take(8);
        assert_eq!(stats().hits, hits_before + 1, "inner-scope buffer survived");
        drop(outer);
        assert!(!is_enabled());
    }
}
