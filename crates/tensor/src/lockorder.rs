//! Debug-only runtime lock-order checker for tensor-internal locks.
//!
//! The deadlock-freedom argument for concurrent tensor code (e.g.
//! `all_reduce_mean_guarded`) is that every thread acquires tensor locks
//! in ascending id order. `aimts-lint` rule A002 enforces this statically;
//! this module enforces it dynamically in debug builds: every acquisition
//! of a tensor's `data`/`grad` lock registers with a thread-local stack,
//! and acquiring a lock with a *smaller* id than one already held panics,
//! naming both ids. Release builds compile the whole checker down to a
//! zero-sized no-op.
//!
//! The token must be taken *before* blocking on the real lock, so a
//! would-be deadlock trips the checker instead of hanging the test.

#[cfg(debug_assertions)]
mod imp {
    use std::cell::{Cell, RefCell};
    use std::sync::atomic::{AtomicU32, Ordering};

    thread_local! {
        static HELD: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
        static ACQUIRED: Cell<u64> = const { Cell::new(0) };
        static THREAD_ID: Cell<u32> = const { Cell::new(0) };
    }

    /// Next debug thread id; 0 is reserved for "not yet assigned".
    static NEXT_THREAD: AtomicU32 = AtomicU32::new(1);

    /// A small, stable, per-thread id for debug diagnostics.
    ///
    /// Assigned lazily on first use, dense from 1, and never reused within
    /// a process run — unlike `std::thread::ThreadId` it fits in a `u32`
    /// and packs into the hot-buffer race validator's epoch stamps.
    pub fn debug_thread_id() -> u32 {
        THREAD_ID.with(|c| {
            let mut id = c.get();
            if id == 0 {
                id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
                c.set(id);
            }
            id
        })
    }

    /// RAII registration of one lock acquisition on this thread.
    pub struct LockToken {
        id: u64,
    }

    /// Register acquisition of the lock belonging to tensor `id`.
    ///
    /// Panics when a lock with a smaller id is already held by this
    /// thread. Equal ids are allowed: a tensor's `data` and `grad` locks
    /// share its id, and holding both is ordering-neutral.
    pub fn acquire(id: u64) -> LockToken {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            // `h` is non-decreasing by construction, so the max is last.
            if let Some(&top) = h.last() {
                assert!(
                    top <= id,
                    "tensor lock-order violation: acquiring the lock of tensor id {id} \
                     while already holding tensor id {top}; acquire guards in ascending \
                     id order (use aimts_tensor::read_pair for pairs)"
                );
            }
            h.push(id);
        });
        ACQUIRED.with(|c| c.set(c.get() + 1));
        LockToken { id }
    }

    impl Drop for LockToken {
        fn drop(&mut self) {
            // try_with: tokens may drop during thread teardown after the
            // thread-local has been destroyed.
            // aimts-lint: allow(A005, nothing to unwind if the thread-local is already destroyed)
            let _ = HELD.try_with(|h| {
                let mut h = h.borrow_mut();
                if let Some(k) = h.iter().rposition(|&x| x == self.id) {
                    h.remove(k);
                }
            });
        }
    }

    /// Number of tensor locks the current thread holds (test hook).
    pub fn held_count() -> usize {
        HELD.with(|h| h.borrow().len())
    }

    /// Cumulative count of lock acquisitions on the current thread.
    ///
    /// Serving-path regression tests take a delta around a frozen-model
    /// forward to prove it touches no `Storage::Shared` locks.
    pub fn acquired_total() -> u64 {
        ACQUIRED.with(|c| c.get())
    }
}

#[cfg(not(debug_assertions))]
mod imp {
    /// Zero-sized stand-in; the release checker tracks nothing.
    pub struct LockToken;

    #[inline(always)]
    pub fn acquire(_id: u64) -> LockToken {
        LockToken
    }

    #[inline(always)]
    pub fn held_count() -> usize {
        0
    }

    /// Release builds track nothing; the counter reads as a constant zero.
    #[inline(always)]
    pub fn acquired_total() -> u64 {
        0
    }

    /// Release builds assign no ids; every thread reads as 0.
    #[inline(always)]
    pub fn debug_thread_id() -> u32 {
        0
    }
}

pub use imp::{acquire, acquired_total, debug_thread_id, held_count, LockToken};

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;

    #[test]
    fn ascending_and_equal_ids_are_fine() {
        let t1 = acquire(10);
        let t2 = acquire(10);
        let t3 = acquire(11);
        assert_eq!(held_count(), 3);
        drop(t3);
        drop(t2);
        drop(t1);
        assert_eq!(held_count(), 0);
    }

    #[test]
    fn release_reopens_lower_ids() {
        let t = acquire(10);
        drop(t);
        let t = acquire(5);
        drop(t);
    }

    #[test]
    fn descending_acquisition_panics_with_both_ids() {
        let result = std::panic::catch_unwind(|| {
            let _hi = acquire(42);
            let _lo = acquire(7);
        });
        let err = result.expect_err("descending order must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("tensor id 7"), "missing acquired id: {msg}");
        assert!(msg.contains("tensor id 42"), "missing held id: {msg}");
        // Unwinding dropped `_hi`, and the failed acquisition itself must
        // not leave residue on the stack.
        assert_eq!(held_count(), 0, "panicked acquire leaked a token");
    }

    #[test]
    fn acquisition_counter_is_cumulative() {
        let before = acquired_total();
        let t1 = acquire(100);
        let t2 = acquire(101);
        drop(t2);
        drop(t1);
        // Dropping tokens never rewinds the counter: it measures traffic,
        // not residency.
        assert_eq!(acquired_total() - before, 2);
    }

    #[test]
    fn debug_thread_ids_are_stable_and_distinct() {
        let mine = debug_thread_id();
        assert!(mine > 0, "debug ids start at 1");
        assert_eq!(mine, debug_thread_id(), "id must be stable per thread");
        let theirs = std::thread::spawn(debug_thread_id)
            .join()
            .expect("spawned thread");
        assert_ne!(mine, theirs, "distinct threads get distinct ids");
    }

    #[test]
    fn out_of_order_drop_removes_the_right_token() {
        let t1 = acquire(1);
        let t2 = acquire(2);
        drop(t1);
        assert_eq!(held_count(), 1);
        let t3 = acquire(3);
        drop(t2);
        drop(t3);
        assert_eq!(held_count(), 0);
    }
}
