//! Seeded random tensor constructors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::shape::numel;
use crate::tensor::Tensor;

/// Fill a buffer with standard normals via Box–Muller.
pub(crate) fn fill_randn(rng: &mut StdRng, out: &mut [f32]) {
    let mut i = 0;
    while i < out.len() {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        out[i] = r * theta.cos();
        if i + 1 < out.len() {
            out[i + 1] = r * theta.sin();
        }
        i += 2;
    }
}

impl Tensor {
    /// Standard-normal tensor with an explicit seed (deterministic).
    pub fn randn(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::randn_with(shape, &mut rng)
    }

    /// Standard-normal tensor drawing from a caller-owned RNG.
    pub fn randn_with(shape: &[usize], rng: &mut StdRng) -> Tensor {
        let mut data = vec![0f32; numel(shape)];
        fill_randn(rng, &mut data);
        Tensor::from_vec(data, shape)
    }

    /// Uniform tensor over `[lo, hi)` with an explicit seed.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::rand_uniform_with(shape, lo, hi, &mut rng)
    }

    /// Uniform tensor drawing from a caller-owned RNG.
    pub fn rand_uniform_with(shape: &[usize], lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
        let data = (0..numel(shape)).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor::from_vec(data, shape)
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn randn_deterministic_per_seed() {
        let a = Tensor::randn(&[16], 7);
        let b = Tensor::randn(&[16], 7);
        let c = Tensor::randn(&[16], 8);
        assert_eq!(a.to_vec(), b.to_vec());
        assert_ne!(a.to_vec(), c.to_vec());
    }

    #[test]
    fn randn_roughly_standard() {
        let a = Tensor::randn(&[10_000], 42);
        let v = a.to_vec();
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        let var: f32 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_in_range() {
        let a = Tensor::rand_uniform(&[1000], -2.0, 3.0, 1);
        assert!(a.to_vec().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }
}
