//! Runtime-dispatched SIMD kernels for the hot inner loops.
//!
//! ## Bit-exactness contract
//!
//! Every vector path here is **bit-identical** to the scalar path it
//! replaces, for every input (including non-finite values): the vector
//! bodies use separate multiply and add instructions — never FMA — so each
//! element sees exactly the scalar operation sequence `round(round(s*b) + c)`
//! and the per-element order of operations is unchanged. This is what lets
//! the serial training trajectory stay bit-identical across machines with
//! different SIMD capabilities, and what the proptest oracle suite in
//! `tests/simd_oracle.rs` asserts (bitwise, not within-tolerance).
//!
//! ## Dispatch policy
//!
//! The widest supported level is detected once per process
//! (`is_x86_feature_detected!`) and cached; on non-x86_64 targets the
//! scalar path is the only level. Tests and benches can pin a narrower
//! level per thread with [`force_level`] to compare paths against each
//! other on the same machine.

#[cfg(target_arch = "x86_64")]
use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction-set level a kernel may run at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Plain Rust loops — the oracle all other paths must match bitwise.
    Scalar,
    /// 4-lane `__m128` paths (baseline on x86_64).
    Sse2,
    /// 8-lane `__m256` paths.
    Avx2,
}

#[cfg(target_arch = "x86_64")]
static DETECTED: AtomicU8 = AtomicU8::new(0); // 0 = not yet probed

#[cfg(target_arch = "x86_64")]
fn detect() -> Level {
    match DETECTED.load(Ordering::Relaxed) {
        2 => Level::Sse2,
        3 => Level::Avx2,
        _ => {
            let l = if std::arch::is_x86_feature_detected!("avx2") {
                Level::Avx2
            } else {
                // SSE2 is part of the x86_64 baseline.
                Level::Sse2
            };
            DETECTED.store(if l == Level::Avx2 { 3 } else { 2 }, Ordering::Relaxed);
            l
        }
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> Level {
    Level::Scalar
}

thread_local! {
    static FORCED: std::cell::Cell<Option<Level>> = const { std::cell::Cell::new(None) };
}

/// Pin the dispatch level for the current thread (`None` restores runtime
/// detection). Forcing a level the CPU does not support is a programming
/// error; [`active_level`] clamps to the detected maximum instead of
/// executing illegal instructions.
#[doc(hidden)]
pub fn force_level(level: Option<Level>) {
    FORCED.with(|f| f.set(level));
}

/// The level kernels will actually run at on this thread.
pub fn active_level() -> Level {
    let max = detect();
    match FORCED.with(|f| f.get()) {
        Some(l) if rank(l) <= rank(max) => l,
        Some(_) => max,
        None => max,
    }
}

fn rank(l: Level) -> u8 {
    match l {
        Level::Scalar => 0,
        Level::Sse2 => 1,
        Level::Avx2 => 2,
    }
}

// ----- axpy: c[j] += s * b[j] -------------------------------------------

/// `c[j] += s * b[j]` — the inner loop of the ikj matmul kernel and the
/// stride-1 col2im accumulate.
#[inline]
pub fn axpy(c: &mut [f32], s: f32, b: &[f32]) {
    debug_assert_eq!(c.len(), b.len());
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_level() only reports levels the CPU supports.
        Level::Avx2 => unsafe { axpy_avx2(c, s, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        Level::Sse2 => unsafe { axpy_sse2(c, s, b) },
        _ => axpy_scalar(c, s, b),
    }
}

/// Scalar oracle for [`axpy`].
pub fn axpy_scalar(c: &mut [f32], s: f32, b: &[f32]) {
    for (cv, bv) in c.iter_mut().zip(b) {
        *cv += s * bv;
    }
}

// SAFETY: caller must guarantee AVX2 is available (the dispatcher checks
// active_level()). All loads/stores are unaligned (`loadu`/`storeu`) and
// bounded by `n = min(c.len(), b.len())`, so every `ptr.add(i)` with
// `i + 8 <= n` stays inside the borrowed slices; `c`/`b` cannot alias
// because `c` is `&mut`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(c: &mut [f32], s: f32, b: &[f32]) {
    use std::arch::x86_64::*;
    let n = c.len().min(b.len());
    let vs = _mm256_set1_ps(s);
    let cp = c.as_mut_ptr();
    let bp = b.as_ptr();
    let mut i = 0;
    while i + 8 <= n {
        // mul then add (no FMA) so each lane rounds exactly like the scalar
        // `*cv += s * bv`.
        let prod = _mm256_mul_ps(vs, _mm256_loadu_ps(bp.add(i)));
        let sum = _mm256_add_ps(_mm256_loadu_ps(cp.add(i)), prod);
        _mm256_storeu_ps(cp.add(i), sum);
        i += 8;
    }
    axpy_scalar(&mut c[i..n], s, &b[i..n]);
}

// SAFETY: SSE2 is baseline on x86_64; unaligned 4-lane loads/stores are
// bounded by `n = min(c.len(), b.len())`, so `ptr.add(i)` with
// `i + 4 <= n` stays in bounds, and `&mut c` rules out aliasing with `b`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn axpy_sse2(c: &mut [f32], s: f32, b: &[f32]) {
    use std::arch::x86_64::*;
    let n = c.len().min(b.len());
    let vs = _mm_set1_ps(s);
    let cp = c.as_mut_ptr();
    let bp = b.as_ptr();
    let mut i = 0;
    while i + 4 <= n {
        let prod = _mm_mul_ps(vs, _mm_loadu_ps(bp.add(i)));
        let sum = _mm_add_ps(_mm_loadu_ps(cp.add(i)), prod);
        _mm_storeu_ps(cp.add(i), sum);
        i += 4;
    }
    axpy_scalar(&mut c[i..n], s, &b[i..n]);
}

// ----- add_assign: a[j] += b[j] -----------------------------------------

/// `a[j] += b[j]` — gradient accumulation in the autograd sweep and the
/// all-reduce fold.
#[inline]
pub fn add_assign(a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_level() only reports levels the CPU supports.
        Level::Avx2 => unsafe { add_assign_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        Level::Sse2 => unsafe { add_assign_sse2(a, b) },
        _ => add_assign_scalar(a, b),
    }
}

/// Scalar oracle for [`add_assign`].
pub fn add_assign_scalar(a: &mut [f32], b: &[f32]) {
    for (av, bv) in a.iter_mut().zip(b) {
        *av += bv;
    }
}

// SAFETY: caller must guarantee AVX2 (dispatcher-checked); unaligned
// 8-lane accesses are bounded by `n = min(a.len(), b.len())` and `&mut a`
// rules out aliasing with `b`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn add_assign_avx2(a: &mut [f32], b: &[f32]) {
    use std::arch::x86_64::*;
    let n = a.len().min(b.len());
    let ap = a.as_mut_ptr();
    let bp = b.as_ptr();
    let mut i = 0;
    while i + 8 <= n {
        let sum = _mm256_add_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)));
        _mm256_storeu_ps(ap.add(i), sum);
        i += 8;
    }
    add_assign_scalar(&mut a[i..n], &b[i..n]);
}

// SAFETY: SSE2 is baseline on x86_64; unaligned 4-lane accesses are
// bounded by `n = min(a.len(), b.len())` and `&mut a` rules out aliasing.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn add_assign_sse2(a: &mut [f32], b: &[f32]) {
    use std::arch::x86_64::*;
    let n = a.len().min(b.len());
    let ap = a.as_mut_ptr();
    let bp = b.as_ptr();
    let mut i = 0;
    while i + 4 <= n {
        let sum = _mm_add_ps(_mm_loadu_ps(ap.add(i)), _mm_loadu_ps(bp.add(i)));
        _mm_storeu_ps(ap.add(i), sum);
        i += 4;
    }
    add_assign_scalar(&mut a[i..n], &b[i..n]);
}

// ----- scale_assign: a[j] *= s ------------------------------------------

/// `a[j] *= s` — the mean step of all-reduce and loss scaling.
#[inline]
pub fn scale_assign(a: &mut [f32], s: f32) {
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_level() only reports levels the CPU supports.
        Level::Avx2 => unsafe { scale_assign_avx2(a, s) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        Level::Sse2 => unsafe { scale_assign_sse2(a, s) },
        _ => scale_assign_scalar(a, s),
    }
}

/// Scalar oracle for [`scale_assign`].
pub fn scale_assign_scalar(a: &mut [f32], s: f32) {
    for av in a.iter_mut() {
        *av *= s;
    }
}

// SAFETY: caller must guarantee AVX2 (dispatcher-checked); the single
// `&mut` slice cannot alias anything, and unaligned 8-lane accesses stay
// below `n = a.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn scale_assign_avx2(a: &mut [f32], s: f32) {
    use std::arch::x86_64::*;
    let n = a.len();
    let vs = _mm256_set1_ps(s);
    let ap = a.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        let prod = _mm256_mul_ps(_mm256_loadu_ps(ap.add(i)), vs);
        _mm256_storeu_ps(ap.add(i), prod);
        i += 8;
    }
    scale_assign_scalar(&mut a[i..n], s);
}

// SAFETY: SSE2 is baseline on x86_64; the single `&mut` slice cannot
// alias anything, and unaligned 4-lane accesses stay below `n = a.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn scale_assign_sse2(a: &mut [f32], s: f32) {
    use std::arch::x86_64::*;
    let n = a.len();
    let vs = _mm_set1_ps(s);
    let ap = a.as_mut_ptr();
    let mut i = 0;
    while i + 4 <= n {
        let prod = _mm_mul_ps(_mm_loadu_ps(ap.add(i)), vs);
        _mm_storeu_ps(ap.add(i), prod);
        i += 4;
    }
    scale_assign_scalar(&mut a[i..n], s);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn levels() -> Vec<Level> {
        let max = active_level();
        [Level::Scalar, Level::Sse2, Level::Avx2]
            .into_iter()
            .filter(|l| rank(*l) <= rank(max))
            .collect()
    }

    #[test]
    fn axpy_all_levels_bitwise_equal_with_tail() {
        for n in [0usize, 1, 3, 4, 7, 8, 9, 15, 16, 17, 31, 33, 100] {
            let b: Vec<f32> = (0..n).map(|i| (i as f32) * 0.37 - 3.1).collect();
            let base: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
            let mut want = base.clone();
            axpy_scalar(&mut want, 1.7, &b);
            for l in levels() {
                force_level(Some(l));
                let mut got = base.clone();
                axpy(&mut got, 1.7, &b);
                force_level(None);
                let wb: Vec<u32> = want.iter().map(|x| x.to_bits()).collect();
                let gb: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
                assert_eq!(gb, wb, "axpy level {l:?} diverged at n={n}");
            }
        }
    }

    #[test]
    fn forced_level_is_clamped_to_detected_max() {
        force_level(Some(Level::Avx2));
        let got = active_level();
        force_level(None);
        assert!(rank(got) <= rank(detect()));
    }

    #[test]
    fn scale_and_add_match_scalar() {
        let n = 37;
        let b: Vec<f32> = (0..n).map(|i| (i as f32) * -0.11).collect();
        for l in levels() {
            let mut a: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let mut want = a.clone();
            add_assign_scalar(&mut want, &b);
            scale_assign_scalar(&mut want, 0.25);
            force_level(Some(l));
            add_assign(&mut a, &b);
            scale_assign(&mut a, 0.25);
            force_level(None);
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "level {l:?}"
            );
        }
    }
}
