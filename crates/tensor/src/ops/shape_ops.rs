//! Shape manipulation: reshape, permute, concat, slice, stack, select.

use crate::arena;
use crate::plan;
use crate::shape::{numel, strides};
use crate::tensor::Tensor;

impl Tensor {
    /// View the same data under a new shape (element count must match).
    pub fn reshape(&self, new_shape: &[usize]) -> Tensor {
        assert_eq!(
            self.numel(),
            numel(new_shape),
            "reshape {:?} -> {:?} changes element count",
            self.shape(),
            new_shape
        );
        let t = Tensor::from_op(
            self.to_vec(),
            new_shape,
            vec![self.clone()],
            Box::new(|_, gout| vec![Some(arena::copy_of(gout))]),
        );
        plan::record(&t, plan::Op::Reshape, plan::Attr::None, &[self], |ps| {
            arena::copy_of(&ps[0].data())
        });
        t
    }

    /// Insert a size-1 dimension at `axis`.
    pub fn unsqueeze(&self, axis: usize) -> Tensor {
        let mut s = self.shape().to_vec();
        assert!(axis <= s.len());
        s.insert(axis, 1);
        self.reshape(&s)
    }

    /// Remove a size-1 dimension at `axis`.
    pub fn squeeze(&self, axis: usize) -> Tensor {
        let mut s = self.shape().to_vec();
        assert_eq!(s[axis], 1, "squeeze axis {axis} has size {}", s[axis]);
        s.remove(axis);
        self.reshape(&s)
    }

    /// Permute dimensions (generalized transpose). Materializes the data.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        let nd = self.ndim();
        assert_eq!(perm.len(), nd, "permutation length mismatch");
        let mut seen = vec![false; nd];
        for &p in perm {
            assert!(p < nd && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let in_shape = self.shape().to_vec();
        let out_shape: Vec<usize> = perm.iter().map(|&p| in_shape[p]).collect();
        let in_str = strides(&in_shape);
        let out_str = strides(&out_shape);
        let n = self.numel();
        let gather = {
            let in_str = in_str.clone();
            let out_str = out_str.clone();
            let perm = perm.to_vec();
            move |d: &[f32]| -> Vec<f32> {
                let mut out = arena::zeroed(n);
                for (oi, slot) in out.iter_mut().enumerate() {
                    let mut rem = oi;
                    let mut src = 0usize;
                    for (dim, &os) in out_str.iter().enumerate() {
                        let coord = rem / os;
                        rem %= os;
                        src += coord * in_str[perm[dim]];
                    }
                    *slot = d[src];
                }
                out
            }
        };
        let out = gather(&self.data());
        let perm_owned = perm.to_vec();
        let t = Tensor::from_op(
            out,
            &out_shape,
            vec![self.clone()],
            Box::new(move |node, gout| {
                // Backward permutes the gradient with the inverse permutation.
                let nd = perm_owned.len();
                let mut inv = vec![0usize; nd];
                for (i, &p) in perm_owned.iter().enumerate() {
                    inv[p] = i;
                }
                let parent = &node.op_parents()[0];
                let in_shape = parent.shape();
                let out_shape: Vec<usize> = perm_owned.iter().map(|&p| in_shape[p]).collect();
                let out_str = strides(&out_shape);
                let in_str = strides(in_shape);
                let mut g = arena::zeroed(parent.numel());
                for (oi, &gv) in gout.iter().enumerate() {
                    let mut rem = oi;
                    let mut src = 0usize;
                    for (dim, &os) in out_str.iter().enumerate() {
                        let coord = rem / os;
                        rem %= os;
                        src += coord * in_str[perm_owned[dim]];
                    }
                    g[src] = gv;
                }
                vec![Some(g)]
            }),
        );
        plan::record(
            &t,
            plan::Op::Permute,
            plan::Attr::None,
            &[self],
            move |ps| gather(&ps[0].data()),
        );
        t
    }

    /// Swap two dimensions.
    pub fn transpose(&self, a: usize, b: usize) -> Tensor {
        let mut perm: Vec<usize> = (0..self.ndim()).collect();
        perm.swap(a, b);
        self.permute(&perm)
    }

    /// Concatenate along `axis`. All other dimensions must match.
    pub fn concat(tensors: &[Tensor], axis: usize) -> Tensor {
        assert!(!tensors.is_empty(), "concat of zero tensors");
        let nd = tensors[0].ndim();
        for t in tensors {
            assert_eq!(t.ndim(), nd, "concat rank mismatch");
            for d in 0..nd {
                if d != axis {
                    assert_eq!(
                        t.shape()[d],
                        tensors[0].shape()[d],
                        "concat dim {d} mismatch"
                    );
                }
            }
        }
        let outer: usize = tensors[0].shape()[..axis].iter().product();
        let inner: usize = tensors[0].shape()[axis + 1..].iter().product();
        let ax_total: usize = tensors.iter().map(|t| t.shape()[axis]).sum();
        let mut out_shape = tensors[0].shape().to_vec();
        out_shape[axis] = ax_total;
        let pack = move |parts: &[Tensor]| -> Vec<f32> {
            let mut out = arena::zeroed(outer * ax_total * inner);
            let mut offset = 0usize;
            for t in parts {
                let ax = t.shape()[axis];
                let d = t.data();
                for o in 0..outer {
                    let src = &d[o * ax * inner..(o + 1) * ax * inner];
                    let dst_base = (o * ax_total + offset) * inner;
                    out[dst_base..dst_base + ax * inner].copy_from_slice(src);
                }
                offset += ax;
            }
            out
        };
        let out = pack(tensors);
        let sizes: Vec<usize> = tensors.iter().map(|t| t.shape()[axis]).collect();
        let t = Tensor::from_op(
            out,
            &out_shape,
            tensors.to_vec(),
            Box::new(move |_, gout| {
                let mut grads = Vec::with_capacity(sizes.len());
                let mut offset = 0usize;
                for &ax in &sizes {
                    let mut g = arena::zeroed(outer * ax * inner);
                    for o in 0..outer {
                        let src_base = (o * ax_total + offset) * inner;
                        g[o * ax * inner..(o + 1) * ax * inner]
                            .copy_from_slice(&gout[src_base..src_base + ax * inner]);
                    }
                    grads.push(Some(g));
                    offset += ax;
                }
                grads
            }),
        );
        let refs: Vec<&Tensor> = tensors.iter().collect();
        plan::record(&t, plan::Op::Concat, plan::Attr::None, &refs, move |ps| {
            pack(ps)
        });
        t
    }

    /// Stack tensors of identical shape along a new leading `axis`.
    pub fn stack(tensors: &[Tensor], axis: usize) -> Tensor {
        let unsqueezed: Vec<Tensor> = tensors.iter().map(|t| t.unsqueeze(axis)).collect();
        Tensor::concat(&unsqueezed, axis)
    }

    /// Slice `[start, end)` along `axis`.
    pub fn slice_axis(&self, axis: usize, start: usize, end: usize) -> Tensor {
        let s = self.shape();
        assert!(
            axis < s.len() && start <= end && end <= s[axis],
            "bad slice"
        );
        let outer: usize = s[..axis].iter().product();
        let inner: usize = s[axis + 1..].iter().product();
        let ax = s[axis];
        let width = end - start;
        let mut out_shape = s.to_vec();
        out_shape[axis] = width;
        let take = move |d: &[f32]| -> Vec<f32> {
            let mut out = arena::zeroed(outer * width * inner);
            for o in 0..outer {
                let src_base = (o * ax + start) * inner;
                out[o * width * inner..(o + 1) * width * inner]
                    .copy_from_slice(&d[src_base..src_base + width * inner]);
            }
            out
        };
        let out = take(&self.data());
        let t = Tensor::from_op(
            out,
            &out_shape,
            vec![self.clone()],
            Box::new(move |node, gout| {
                let mut g = arena::zeroed(node.op_parents()[0].numel());
                for o in 0..outer {
                    let dst_base = (o * ax + start) * inner;
                    g[dst_base..dst_base + width * inner]
                        .copy_from_slice(&gout[o * width * inner..(o + 1) * width * inner]);
                }
                vec![Some(g)]
            }),
        );
        plan::record(
            &t,
            plan::Op::SliceAxis,
            plan::Attr::None,
            &[self],
            move |ps| take(&ps[0].data()),
        );
        t
    }

    /// Gather rows along `axis` by index (indices may repeat).
    pub fn index_select(&self, axis: usize, indices: &[usize]) -> Tensor {
        let s = self.shape();
        let outer: usize = s[..axis].iter().product();
        let inner: usize = s[axis + 1..].iter().product();
        let ax = s[axis];
        for &i in indices {
            assert!(i < ax, "index {i} out of bounds for axis of size {ax}");
        }
        let mut out_shape = s.to_vec();
        out_shape[axis] = indices.len();
        let k = indices.len();
        let gather = {
            let idx = indices.to_vec();
            move |d: &[f32]| -> Vec<f32> {
                let mut out = arena::zeroed(outer * k * inner);
                for o in 0..outer {
                    for (j, &i) in idx.iter().enumerate() {
                        let src = (o * ax + i) * inner;
                        let dst = (o * k + j) * inner;
                        out[dst..dst + inner].copy_from_slice(&d[src..src + inner]);
                    }
                }
                out
            }
        };
        let out = gather(&self.data());
        let idx = indices.to_vec();
        let t = Tensor::from_op(
            out,
            &out_shape,
            vec![self.clone()],
            Box::new(move |node, gout| {
                let mut g = arena::zeroed(node.op_parents()[0].numel());
                for o in 0..outer {
                    for (j, &i) in idx.iter().enumerate() {
                        let dst = (o * ax + i) * inner;
                        let src = (o * idx.len() + j) * inner;
                        for t in 0..inner {
                            g[dst + t] += gout[src + t];
                        }
                    }
                }
                vec![Some(g)]
            }),
        );
        plan::record(
            &t,
            plan::Op::IndexSelect,
            plan::Attr::None,
            &[self],
            move |ps| gather(&ps[0].data()),
        );
        t
    }

    /// Broadcast (expand) to `target` shape, materializing the data.
    pub fn broadcast_to(&self, target: &[usize]) -> Tensor {
        let data = super::binary::expand_to(&self.data(), self.shape(), target);
        let from = self.shape().to_vec();
        let tgt = target.to_vec();
        let t = Tensor::from_op(
            data,
            target,
            vec![self.clone()],
            Box::new(move |_, gout| {
                vec![Some(crate::shape::reduce_grad_to_shape(gout, &tgt, &from))]
            }),
        );
        let tgt = target.to_vec();
        plan::record(
            &t,
            plan::Op::BroadcastTo,
            plan::Attr::None,
            &[self],
            move |ps| super::binary::expand_to(&ps[0].data(), ps[0].shape(), &tgt),
        );
        t
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn reshape_roundtrip_backward() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]).requires_grad();
        a.reshape(&[4]).mul_scalar(2.0).sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![2., 2., 2., 2.]);
    }

    #[test]
    fn transpose_2d() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let t = a.transpose(0, 1);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.to_vec(), vec![1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn permute_3d_backward() {
        let a = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]).requires_grad();
        let p = a.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(p.at(&[1, 0, 2]), a.at(&[0, 2, 1]));
        p.sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![1.0; 24]);
    }

    #[test]
    fn concat_axis1() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
        let b = Tensor::from_vec(vec![5., 6.], &[2, 1]);
        let c = Tensor::concat(&[a, b], 1);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.to_vec(), vec![1., 2., 5., 3., 4., 6.]);
    }

    #[test]
    fn concat_backward_splits() {
        let a = Tensor::from_vec(vec![1., 2.], &[1, 2]).requires_grad();
        let b = Tensor::from_vec(vec![3.], &[1, 1]).requires_grad();
        let c = Tensor::concat(&[a.clone(), b.clone()], 1);
        c.mul(&Tensor::from_vec(vec![10., 20., 30.], &[1, 3]))
            .sum_all()
            .backward();
        assert_eq!(a.grad().unwrap(), vec![10., 20.]);
        assert_eq!(b.grad().unwrap(), vec![30.]);
    }

    #[test]
    fn stack_new_axis() {
        let a = Tensor::ones(&[3]);
        let b = Tensor::zeros(&[3]);
        let s = Tensor::stack(&[a, b], 0);
        assert_eq!(s.shape(), &[2, 3]);
    }

    #[test]
    fn slice_middle() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let s = a.slice_axis(1, 1, 3);
        assert_eq!(s.shape(), &[3, 2]);
        assert_eq!(s.to_vec(), vec![1., 2., 5., 6., 9., 10.]);
    }

    #[test]
    fn index_select_repeats_accumulate() {
        let a = Tensor::from_vec(vec![1., 2., 3.], &[3]).requires_grad();
        let g = a.index_select(0, &[0, 0, 2]);
        assert_eq!(g.to_vec(), vec![1., 1., 3.]);
        g.sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![2., 0., 1.]);
    }

    #[test]
    fn broadcast_to_backward_sums() {
        let a = Tensor::from_vec(vec![1., 2.], &[2]).requires_grad();
        let b = a.broadcast_to(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        b.sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![3., 3.]);
    }
}
