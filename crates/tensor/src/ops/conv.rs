//! 1-D (dilated) and 2-D convolutions with hand-written backward passes.
//!
//! Two lowerings are compiled side by side:
//!
//! * a **direct** loop nest ([`Tensor::conv1d_direct`],
//!   [`Tensor::conv2d_direct`]) — the original kernels, kept as the
//!   correctness oracle for the im2col path and as the fast choice for
//!   tiny problems where unfolding overhead dominates;
//! * an **im2col** lowering ([`Tensor::conv1d_im2col`],
//!   [`Tensor::conv2d_im2col`]) that unfolds each batch element into a
//!   `[C_in·K, L_out]` column matrix and reduces the convolution — forward
//!   *and* both backward passes — to the blocked `mm`/`mm_acc` matmul
//!   kernels, whose contiguous inner loops vectorize where the direct
//!   nest's per-tap bounds checks cannot.
//!
//! [`Tensor::conv1d`] / [`Tensor::conv2d`] dispatch between the two with a
//! size heuristic (see [`Conv1dSpec::prefers_im2col`]). The im2col buffer
//! costs `C_in·K·L_out` floats per batch element and is freed before the
//! next element is processed, so peak extra memory is one column matrix
//! regardless of batch size.

use rayon::prelude::*;

use crate::arena;
use crate::ops::matmul::{mm_acc, transpose2d};
use crate::plan;
use crate::simd;
use crate::tensor::{read_pair, Tensor};

/// Hyper-parameters of a 1-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv1dSpec {
    pub stride: usize,
    pub padding: usize,
    pub dilation: usize,
}

impl Default for Conv1dSpec {
    fn default() -> Self {
        Conv1dSpec {
            stride: 1,
            padding: 0,
            dilation: 1,
        }
    }
}

/// Below this many multiply-accumulates per batch element the direct loop
/// wins: the unfold copy plus matmul setup costs more than it saves.
const IM2COL_MIN_FLOPS: usize = 1 << 12;

impl Conv1dSpec {
    /// "Same" padding for odd kernel `k` and the given dilation (stride 1).
    pub fn same(k: usize, dilation: usize) -> Self {
        Conv1dSpec {
            stride: 1,
            padding: dilation * (k - 1) / 2,
            dilation,
        }
    }

    /// Output length for input length `l` and kernel size `k`.
    pub fn out_len(&self, l: usize, k: usize) -> usize {
        let span = self.dilation * (k - 1) + 1;
        assert!(
            l + 2 * self.padding >= span,
            "conv1d input too short: len {l}, padding {}, kernel span {span}",
            self.padding
        );
        (l + 2 * self.padding - span) / self.stride + 1
    }

    /// Whether the im2col lowering is expected to beat the direct loop for
    /// a problem of this shape. Pointwise kernels (`k == 1`) stay direct —
    /// their unfold is a pure copy — as do problems with too little work
    /// to amortize the column buffer.
    pub fn prefers_im2col(&self, cin: usize, cout: usize, k: usize, lo: usize) -> bool {
        k > 1 && cout * cin * k * lo >= IM2COL_MIN_FLOPS
    }
}

/// Hyper-parameters of a 2-D convolution (no dilation; square parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    pub stride: usize,
    pub padding: usize,
}

impl Default for Conv2dSpec {
    fn default() -> Self {
        Conv2dSpec {
            stride: 1,
            padding: 0,
        }
    }
}

impl Conv2dSpec {
    pub fn out_dim(&self, d: usize, k: usize) -> usize {
        assert!(d + 2 * self.padding >= k, "conv2d input too small");
        (d + 2 * self.padding - k) / self.stride + 1
    }

    /// Same heuristic as [`Conv1dSpec::prefers_im2col`], with `K = KH·KW`
    /// and `L_out = H_out·W_out`.
    pub fn prefers_im2col(&self, cin: usize, cout: usize, k: usize, lo: usize) -> bool {
        k > 1 && cout * cin * k * lo >= IM2COL_MIN_FLOPS
    }
}

// ---------------------------------------------------------------------------
// im2col / col2im primitives
// ---------------------------------------------------------------------------

/// Unfold one batch element `x` (`[C_in, L]`, row-major) into `col`
/// (`[C_in·K, L_out]`): `col[(ci·K + kk), o] = x[ci, o·stride + kk·dilation
/// - padding]`, zero outside the input. `col` must be zeroed on entry.
fn im2col1d(
    x: &[f32],
    col: &mut [f32],
    cin: usize,
    l: usize,
    k: usize,
    lo: usize,
    spec: Conv1dSpec,
) {
    for ci in 0..cin {
        let xr = &x[ci * l..(ci + 1) * l];
        for kk in 0..k {
            let row = &mut col[(ci * k + kk) * lo..(ci * k + kk + 1) * lo];
            let tap = kk * spec.dilation;
            // Valid output positions: padding <= o*stride + tap < l + padding.
            let o_min = spec
                .padding
                .saturating_sub(tap)
                .div_ceil(spec.stride)
                .min(lo);
            let o_max = if l + spec.padding > tap {
                (((l + spec.padding - tap - 1) / spec.stride) + 1).min(lo)
            } else {
                0
            };
            if o_min >= o_max {
                continue;
            }
            if spec.stride == 1 {
                let src = o_min + tap - spec.padding;
                row[o_min..o_max].copy_from_slice(&xr[src..src + (o_max - o_min)]);
            } else {
                for (o, rv) in row[o_min..o_max].iter_mut().enumerate() {
                    *rv = xr[(o_min + o) * spec.stride + tap - spec.padding];
                }
            }
        }
    }
}

/// Scatter-add the column-space gradient `gcol` (`[C_in·K, L_out]`) back
/// into the input gradient `gx` (`[C_in, L]`) — the adjoint of [`im2col1d`].
fn col2im1d(
    gcol: &[f32],
    gx: &mut [f32],
    cin: usize,
    l: usize,
    k: usize,
    lo: usize,
    spec: Conv1dSpec,
) {
    for ci in 0..cin {
        let gxr = &mut gx[ci * l..(ci + 1) * l];
        for kk in 0..k {
            let row = &gcol[(ci * k + kk) * lo..(ci * k + kk + 1) * lo];
            let tap = kk * spec.dilation;
            let o_min = spec
                .padding
                .saturating_sub(tap)
                .div_ceil(spec.stride)
                .min(lo);
            let o_max = if l + spec.padding > tap {
                (((l + spec.padding - tap - 1) / spec.stride) + 1).min(lo)
            } else {
                0
            };
            if o_min >= o_max {
                continue;
            }
            if spec.stride == 1 {
                let dst = o_min + tap - spec.padding;
                simd::add_assign(&mut gxr[dst..dst + (o_max - o_min)], &row[o_min..o_max]);
            } else {
                for (o, rv) in row[o_min..o_max].iter().enumerate() {
                    gxr[(o_min + o) * spec.stride + tap - spec.padding] += rv;
                }
            }
        }
    }
}

/// Unfold one batch element `x` (`[C_in, H, W]`) into `col`
/// (`[C_in·KH·KW, H_out·W_out]`). `col` must be zeroed on entry.
#[allow(clippy::too_many_arguments)]
fn im2col2d(
    x: &[f32],
    col: &mut [f32],
    cin: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    ho: usize,
    wo: usize,
    spec: Conv2dSpec,
) {
    let cols = ho * wo;
    for ci in 0..cin {
        let xp = &x[ci * h * w..(ci + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = &mut col
                    [((ci * kh + ky) * kw + kx) * cols..((ci * kh + ky) * kw + kx + 1) * cols];
                let ox_min = spec
                    .padding
                    .saturating_sub(kx)
                    .div_ceil(spec.stride)
                    .min(wo);
                let ox_max = if w + spec.padding > kx {
                    (((w + spec.padding - kx - 1) / spec.stride) + 1).min(wo)
                } else {
                    0
                };
                if ox_min >= ox_max {
                    continue;
                }
                for oy in 0..ho {
                    let iy = oy * spec.stride + ky;
                    if iy < spec.padding || iy - spec.padding >= h {
                        continue;
                    }
                    let xrow = &xp[(iy - spec.padding) * w..(iy - spec.padding + 1) * w];
                    let out = &mut row[oy * wo + ox_min..oy * wo + ox_max];
                    if spec.stride == 1 {
                        let src = ox_min + kx - spec.padding;
                        out.copy_from_slice(&xrow[src..src + (ox_max - ox_min)]);
                    } else {
                        for (ox, rv) in out.iter_mut().enumerate() {
                            *rv = xrow[(ox_min + ox) * spec.stride + kx - spec.padding];
                        }
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col2d`]: scatter-add `gcol` back into `gx` (`[C_in, H, W]`).
#[allow(clippy::too_many_arguments)]
fn col2im2d(
    gcol: &[f32],
    gx: &mut [f32],
    cin: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    ho: usize,
    wo: usize,
    spec: Conv2dSpec,
) {
    let cols = ho * wo;
    for ci in 0..cin {
        let gxp = &mut gx[ci * h * w..(ci + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row =
                    &gcol[((ci * kh + ky) * kw + kx) * cols..((ci * kh + ky) * kw + kx + 1) * cols];
                let ox_min = spec
                    .padding
                    .saturating_sub(kx)
                    .div_ceil(spec.stride)
                    .min(wo);
                let ox_max = if w + spec.padding > kx {
                    (((w + spec.padding - kx - 1) / spec.stride) + 1).min(wo)
                } else {
                    0
                };
                if ox_min >= ox_max {
                    continue;
                }
                for oy in 0..ho {
                    let iy = oy * spec.stride + ky;
                    if iy < spec.padding || iy - spec.padding >= h {
                        continue;
                    }
                    let grow = &mut gxp[(iy - spec.padding) * w..(iy - spec.padding + 1) * w];
                    let src = &row[oy * wo + ox_min..oy * wo + ox_max];
                    if spec.stride == 1 {
                        let dst = ox_min + kx - spec.padding;
                        simd::add_assign(&mut grow[dst..dst + src.len()], src);
                    } else {
                        for (ox, rv) in src.iter().enumerate() {
                            grow[(ox_min + ox) * spec.stride + kx - spec.padding] += rv;
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Raw forward/backward kernels (shared by the autograd wrappers)
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct Conv1dDims {
    b: usize,
    cin: usize,
    l: usize,
    cout: usize,
    k: usize,
    lo: usize,
}

fn conv1d_forward_direct(
    x: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    d: &Conv1dDims,
    spec: Conv1dSpec,
) -> Vec<f32> {
    let (cin, l, cout, k, lo) = (d.cin, d.l, d.cout, d.k, d.lo);
    let mut out = arena::zeroed(d.b * cout * lo);
    out.par_chunks_mut(cout * lo)
        .enumerate()
        .for_each(|(bi, ochunk)| {
            let xb = &x[bi * cin * l..(bi + 1) * cin * l];
            for co in 0..cout {
                let orow = &mut ochunk[co * lo..(co + 1) * lo];
                if let Some(bv) = bias {
                    orow.iter_mut().for_each(|v| *v = bv[co]);
                }
                for ci in 0..cin {
                    let xr = &xb[ci * l..(ci + 1) * l];
                    let wr = &w[(co * cin + ci) * k..(co * cin + ci + 1) * k];
                    for (o, ov) in orow.iter_mut().enumerate() {
                        let base = o * spec.stride;
                        let mut acc = 0f32;
                        for (kk, &wv) in wr.iter().enumerate() {
                            let pos = base + kk * spec.dilation;
                            if pos >= spec.padding && pos - spec.padding < l {
                                acc += wv * xr[pos - spec.padding];
                            }
                        }
                        *ov += acc;
                    }
                }
            }
        });
    out
}

fn conv1d_forward_im2col(
    x: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    d: &Conv1dDims,
    spec: Conv1dSpec,
) -> Vec<f32> {
    let (cin, l, cout, k, lo) = (d.cin, d.l, d.cout, d.k, d.lo);
    let mut out = arena::zeroed(d.b * cout * lo);
    out.par_chunks_mut(cout * lo)
        .enumerate()
        .for_each(|(bi, ochunk)| {
            if let Some(bv) = bias {
                for co in 0..cout {
                    ochunk[co * lo..(co + 1) * lo]
                        .iter_mut()
                        .for_each(|v| *v = bv[co]);
                }
            }
            let mut col = arena::zeroed(cin * k * lo);
            im2col1d(
                &x[bi * cin * l..(bi + 1) * cin * l],
                &mut col,
                cin,
                l,
                k,
                lo,
                spec,
            );
            // W viewed as [C_out, C_in·K] is already contiguous row-major.
            mm_acc(ochunk, w, &col, cout, cin * k, lo);
            arena::recycle(col);
        });
    out
}

/// Backward kernels. `gw`/`gb` accumulation over the batch is serial (the
/// buffers are shared); `gx` is parallel over the batch (disjoint slices).
#[allow(clippy::too_many_arguments)]
fn conv1d_backward_direct(
    x: &[f32],
    w: &[f32],
    gout: &[f32],
    d: &Conv1dDims,
    spec: Conv1dSpec,
    gx: &mut [f32],
    gw: &mut [f32],
    gb: &mut [f32],
) {
    let (b, cin, l, cout, k, lo) = (d.b, d.cin, d.l, d.cout, d.k, d.lo);
    gx.par_chunks_mut(cin * l)
        .enumerate()
        .for_each(|(bi, gxb)| {
            let gob = &gout[bi * cout * lo..(bi + 1) * cout * lo];
            for co in 0..cout {
                let gor = &gob[co * lo..(co + 1) * lo];
                for ci in 0..cin {
                    let wr = &w[(co * cin + ci) * k..(co * cin + ci + 1) * k];
                    let gxr = &mut gxb[ci * l..(ci + 1) * l];
                    for (o, &g) in gor.iter().enumerate() {
                        // aimts-lint: allow(A004, exact-zero skip: zero gradient contributes nothing)
                        if g == 0.0 {
                            continue;
                        }
                        let base = o * spec.stride;
                        for (kk, &wv) in wr.iter().enumerate() {
                            let pos = base + kk * spec.dilation;
                            if pos >= spec.padding && pos - spec.padding < l {
                                gxr[pos - spec.padding] += g * wv;
                            }
                        }
                    }
                }
            }
        });
    for bi in 0..b {
        let xb = &x[bi * cin * l..(bi + 1) * cin * l];
        let gob = &gout[bi * cout * lo..(bi + 1) * cout * lo];
        for co in 0..cout {
            let gor = &gob[co * lo..(co + 1) * lo];
            gb[co] += gor.iter().sum::<f32>();
            for ci in 0..cin {
                let xr = &xb[ci * l..(ci + 1) * l];
                let gwr = &mut gw[(co * cin + ci) * k..(co * cin + ci + 1) * k];
                for (o, &g) in gor.iter().enumerate() {
                    // aimts-lint: allow(A004, exact-zero skip: zero gradient contributes nothing)
                    if g == 0.0 {
                        continue;
                    }
                    let base = o * spec.stride;
                    for (kk, gwv) in gwr.iter_mut().enumerate() {
                        let pos = base + kk * spec.dilation;
                        if pos >= spec.padding && pos - spec.padding < l {
                            *gwv += g * xr[pos - spec.padding];
                        }
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn conv1d_backward_im2col(
    x: &[f32],
    w: &[f32],
    gout: &[f32],
    d: &Conv1dDims,
    spec: Conv1dSpec,
    gx: &mut [f32],
    gw: &mut [f32],
    gb: &mut [f32],
) {
    let (b, cin, l, cout, k, lo) = (d.b, d.cin, d.l, d.cout, d.k, d.lo);
    // grad input: gcol = W^T [C_in·K, C_out] · gout_b [C_out, L_out],
    // then fold columns back with col2im. Parallel over the batch.
    let wt = transpose2d(w, cout, cin * k);
    gx.par_chunks_mut(cin * l)
        .enumerate()
        .for_each(|(bi, gxb)| {
            let gob = &gout[bi * cout * lo..(bi + 1) * cout * lo];
            let mut gcol = arena::zeroed(cin * k * lo);
            mm_acc(&mut gcol, &wt, gob, cin * k, cout, lo);
            col2im1d(&gcol, gxb, cin, l, k, lo, spec);
            arena::recycle(gcol);
        });
    // grad weight: gw += gout_b [C_out, L_out] · col_b^T [L_out, C_in·K].
    let mut col = arena::zeroed(cin * k * lo);
    for bi in 0..b {
        let gob = &gout[bi * cout * lo..(bi + 1) * cout * lo];
        for co in 0..cout {
            gb[co] += gob[co * lo..(co + 1) * lo].iter().sum::<f32>();
        }
        col.fill(0.0);
        im2col1d(
            &x[bi * cin * l..(bi + 1) * cin * l],
            &mut col,
            cin,
            l,
            k,
            lo,
            spec,
        );
        let colt = transpose2d(&col, cin * k, lo);
        mm_acc(gw, gob, &colt, cout, lo, cin * k);
        arena::recycle(colt);
    }
    arena::recycle(col);
    arena::recycle(wt);
}

#[derive(Clone, Copy)]
struct Conv2dDims {
    b: usize,
    cin: usize,
    h: usize,
    w: usize,
    cout: usize,
    kh: usize,
    kw: usize,
    ho: usize,
    wo: usize,
}

fn conv2d_forward_direct(
    x: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    d: &Conv2dDims,
    spec: Conv2dSpec,
) -> Vec<f32> {
    let (cin, h, w_, cout, kh, kw, ho, wo) = (d.cin, d.h, d.w, d.cout, d.kh, d.kw, d.ho, d.wo);
    let mut out = arena::zeroed(d.b * cout * ho * wo);
    out.par_chunks_mut(cout * ho * wo)
        .enumerate()
        .for_each(|(bi, ochunk)| {
            let xb = &x[bi * cin * h * w_..(bi + 1) * cin * h * w_];
            for co in 0..cout {
                let oplane = &mut ochunk[co * ho * wo..(co + 1) * ho * wo];
                if let Some(bv) = bias {
                    oplane.iter_mut().for_each(|v| *v = bv[co]);
                }
                for ci in 0..cin {
                    let xp = &xb[ci * h * w_..(ci + 1) * h * w_];
                    let wp = &w[(co * cin + ci) * kh * kw..(co * cin + ci + 1) * kh * kw];
                    for oy in 0..ho {
                        for ox in 0..wo {
                            let mut acc = 0f32;
                            for ky in 0..kh {
                                let iy = oy * spec.stride + ky;
                                if iy < spec.padding || iy - spec.padding >= h {
                                    continue;
                                }
                                let iy = iy - spec.padding;
                                for kx in 0..kw {
                                    let ix = ox * spec.stride + kx;
                                    if ix < spec.padding || ix - spec.padding >= w_ {
                                        continue;
                                    }
                                    acc += wp[ky * kw + kx] * xp[iy * w_ + (ix - spec.padding)];
                                }
                            }
                            oplane[oy * wo + ox] += acc;
                        }
                    }
                }
            }
        });
    out
}

fn conv2d_forward_im2col(
    x: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    d: &Conv2dDims,
    spec: Conv2dSpec,
) -> Vec<f32> {
    let (cin, h, w_, cout, kh, kw, ho, wo) = (d.cin, d.h, d.w, d.cout, d.kh, d.kw, d.ho, d.wo);
    let cols = ho * wo;
    let mut out = arena::zeroed(d.b * cout * cols);
    out.par_chunks_mut(cout * cols)
        .enumerate()
        .for_each(|(bi, ochunk)| {
            if let Some(bv) = bias {
                for co in 0..cout {
                    ochunk[co * cols..(co + 1) * cols]
                        .iter_mut()
                        .for_each(|v| *v = bv[co]);
                }
            }
            let mut col = arena::zeroed(cin * kh * kw * cols);
            im2col2d(
                &x[bi * cin * h * w_..(bi + 1) * cin * h * w_],
                &mut col,
                cin,
                h,
                w_,
                kh,
                kw,
                ho,
                wo,
                spec,
            );
            mm_acc(ochunk, w, &col, cout, cin * kh * kw, cols);
            arena::recycle(col);
        });
    out
}

#[allow(clippy::too_many_arguments)]
fn conv2d_backward_direct(
    x: &[f32],
    w: &[f32],
    gout: &[f32],
    d: &Conv2dDims,
    spec: Conv2dSpec,
    gx: &mut [f32],
    gw: &mut [f32],
    gb: &mut [f32],
) {
    let (b, cin, h, w_, cout, kh, kw, ho, wo) =
        (d.b, d.cin, d.h, d.w, d.cout, d.kh, d.kw, d.ho, d.wo);
    gx.par_chunks_mut(cin * h * w_)
        .enumerate()
        .for_each(|(bi, gxb)| {
            let gob = &gout[bi * cout * ho * wo..(bi + 1) * cout * ho * wo];
            for co in 0..cout {
                let gop = &gob[co * ho * wo..(co + 1) * ho * wo];
                for ci in 0..cin {
                    let wp = &w[(co * cin + ci) * kh * kw..(co * cin + ci + 1) * kh * kw];
                    let gxp = &mut gxb[ci * h * w_..(ci + 1) * h * w_];
                    for oy in 0..ho {
                        for ox in 0..wo {
                            let g = gop[oy * wo + ox];
                            // aimts-lint: allow(A004, exact-zero skip: zero gradient contributes nothing)
                            if g == 0.0 {
                                continue;
                            }
                            for ky in 0..kh {
                                let iy = oy * spec.stride + ky;
                                if iy < spec.padding || iy - spec.padding >= h {
                                    continue;
                                }
                                let iy = iy - spec.padding;
                                for kx in 0..kw {
                                    let ix = ox * spec.stride + kx;
                                    if ix < spec.padding || ix - spec.padding >= w_ {
                                        continue;
                                    }
                                    gxp[iy * w_ + (ix - spec.padding)] += g * wp[ky * kw + kx];
                                }
                            }
                        }
                    }
                }
            }
        });
    for bi in 0..b {
        let xb = &x[bi * cin * h * w_..(bi + 1) * cin * h * w_];
        let gob = &gout[bi * cout * ho * wo..(bi + 1) * cout * ho * wo];
        for co in 0..cout {
            let gop = &gob[co * ho * wo..(co + 1) * ho * wo];
            gb[co] += gop.iter().sum::<f32>();
            for ci in 0..cin {
                let xp = &xb[ci * h * w_..(ci + 1) * h * w_];
                let gwp = &mut gw[(co * cin + ci) * kh * kw..(co * cin + ci + 1) * kh * kw];
                for oy in 0..ho {
                    for ox in 0..wo {
                        let g = gop[oy * wo + ox];
                        // aimts-lint: allow(A004, exact-zero skip: zero gradient contributes nothing)
                        if g == 0.0 {
                            continue;
                        }
                        for ky in 0..kh {
                            let iy = oy * spec.stride + ky;
                            if iy < spec.padding || iy - spec.padding >= h {
                                continue;
                            }
                            let iy = iy - spec.padding;
                            for kx in 0..kw {
                                let ix = ox * spec.stride + kx;
                                if ix < spec.padding || ix - spec.padding >= w_ {
                                    continue;
                                }
                                gwp[ky * kw + kx] += g * xp[iy * w_ + (ix - spec.padding)];
                            }
                        }
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn conv2d_backward_im2col(
    x: &[f32],
    w: &[f32],
    gout: &[f32],
    d: &Conv2dDims,
    spec: Conv2dSpec,
    gx: &mut [f32],
    gw: &mut [f32],
    gb: &mut [f32],
) {
    let (b, cin, h, w_, cout, kh, kw, ho, wo) =
        (d.b, d.cin, d.h, d.w, d.cout, d.kh, d.kw, d.ho, d.wo);
    let (rows, cols) = (cin * kh * kw, ho * wo);
    let wt = transpose2d(w, cout, rows);
    gx.par_chunks_mut(cin * h * w_)
        .enumerate()
        .for_each(|(bi, gxb)| {
            let gob = &gout[bi * cout * cols..(bi + 1) * cout * cols];
            let mut gcol = arena::zeroed(rows * cols);
            mm_acc(&mut gcol, &wt, gob, rows, cout, cols);
            col2im2d(&gcol, gxb, cin, h, w_, kh, kw, ho, wo, spec);
            arena::recycle(gcol);
        });
    let mut col = arena::zeroed(rows * cols);
    for bi in 0..b {
        let gob = &gout[bi * cout * cols..(bi + 1) * cout * cols];
        for co in 0..cout {
            gb[co] += gob[co * cols..(co + 1) * cols].iter().sum::<f32>();
        }
        col.fill(0.0);
        im2col2d(
            &x[bi * cin * h * w_..(bi + 1) * cin * h * w_],
            &mut col,
            cin,
            h,
            w_,
            kh,
            kw,
            ho,
            wo,
            spec,
        );
        let colt = transpose2d(&col, rows, cols);
        mm_acc(gw, gob, &colt, cout, cols, rows);
        arena::recycle(colt);
    }
    arena::recycle(col);
    arena::recycle(wt);
}

// ---------------------------------------------------------------------------
// Autograd wrappers
// ---------------------------------------------------------------------------

impl Tensor {
    /// 1-D convolution.
    ///
    /// * `self`: `[B, C_in, L]`
    /// * `weight`: `[C_out, C_in, K]`
    /// * `bias`: optional `[C_out]`
    ///
    /// Returns `[B, C_out, L_out]`. Dispatches between the im2col lowering
    /// and the direct loop based on problem size; both lowerings compute
    /// identical values (see `tests/conv_oracle.rs`).
    pub fn conv1d(&self, weight: &Tensor, bias: Option<&Tensor>, spec: Conv1dSpec) -> Tensor {
        let (cin, cout, k) = (self.shape()[1], weight.shape()[0], weight.shape()[2]);
        let lo = spec.out_len(self.shape()[2], k);
        if spec.prefers_im2col(cin, cout, k, lo) {
            self.conv1d_im2col(weight, bias, spec)
        } else {
            self.conv1d_direct(weight, bias, spec)
        }
    }

    /// 1-D convolution via the direct loop nest. Public so tests and
    /// benchmarks can pin the naive oracle path explicitly; model code
    /// should call [`Tensor::conv1d`].
    pub fn conv1d_direct(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: Conv1dSpec,
    ) -> Tensor {
        self.conv1d_with(weight, bias, spec, false)
    }

    /// 1-D convolution via im2col + matmul. Public so tests and benchmarks
    /// can pin the lowering explicitly; model code should call
    /// [`Tensor::conv1d`].
    pub fn conv1d_im2col(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: Conv1dSpec,
    ) -> Tensor {
        self.conv1d_with(weight, bias, spec, true)
    }

    fn conv1d_with(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: Conv1dSpec,
        im2col: bool,
    ) -> Tensor {
        assert_eq!(self.ndim(), 3, "conv1d input must be [B, C_in, L]");
        assert_eq!(weight.ndim(), 3, "conv1d weight must be [C_out, C_in, K]");
        let (b, cin, l) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let (cout, cin_w, k) = (weight.shape()[0], weight.shape()[1], weight.shape()[2]);
        assert_eq!(cin, cin_w, "conv1d channel mismatch");
        if let Some(bs) = bias {
            assert_eq!(bs.shape(), &[cout], "conv1d bias shape");
        }
        let lo = spec.out_len(l, k);
        let dims = Conv1dDims {
            b,
            cin,
            l,
            cout,
            k,
            lo,
        };
        let bvec = bias.map(|t| t.to_vec());
        let out = {
            let (x_ref, w_ref) = read_pair(self, weight);
            let forward = if im2col {
                conv1d_forward_im2col
            } else {
                conv1d_forward_direct
            };
            forward(&x_ref, &w_ref, bvec.as_deref(), &dims, spec)
        };

        let mut parents = vec![self.clone(), weight.clone()];
        if let Some(bs) = bias {
            parents.push(bs.clone());
        }
        let has_bias = bias.is_some();
        let t = Tensor::from_op(
            out,
            &[b, cout, lo],
            parents,
            Box::new(move |node, gout| {
                let (x_ref, w_ref) = read_pair(&node.op_parents()[0], &node.op_parents()[1]);
                let mut gx = arena::zeroed(b * cin * l);
                let mut gw = arena::zeroed(cout * cin * k);
                let mut gb = arena::zeroed(cout);
                let backward = if im2col {
                    conv1d_backward_im2col
                } else {
                    conv1d_backward_direct
                };
                backward(&x_ref, &w_ref, gout, &dims, spec, &mut gx, &mut gw, &mut gb);
                let mut grads = vec![Some(gx), Some(gw)];
                if has_bias {
                    grads.push(Some(gb));
                }
                grads
            }),
        );
        let mut prefs: Vec<&Tensor> = vec![self, weight];
        if let Some(bs) = bias {
            prefs.push(bs);
        }
        // Replay mirrors the eager forward exactly: bias copied out first,
        // then x/w read under `read_pair`, same lowering dispatch.
        plan::record(&t, plan::Op::Conv1d, plan::Attr::None, &prefs, move |ps| {
            let bvec = if has_bias {
                Some(arena::copy_of(&ps[2].data()))
            } else {
                None
            };
            let (x_ref, w_ref) = read_pair(&ps[0], &ps[1]);
            let forward = if im2col {
                conv1d_forward_im2col
            } else {
                conv1d_forward_direct
            };
            let out = forward(&x_ref, &w_ref, bvec.as_deref(), &dims, spec);
            drop((x_ref, w_ref));
            if let Some(bv) = bvec {
                arena::recycle(bv);
            }
            out
        });
        t
    }

    /// 2-D convolution.
    ///
    /// * `self`: `[B, C_in, H, W]`
    /// * `weight`: `[C_out, C_in, KH, KW]`
    /// * `bias`: optional `[C_out]`
    ///
    /// Returns `[B, C_out, H_out, W_out]`. Dispatches between the im2col
    /// lowering and the direct loop based on problem size.
    pub fn conv2d(&self, weight: &Tensor, bias: Option<&Tensor>, spec: Conv2dSpec) -> Tensor {
        let (cin, cout) = (self.shape()[1], weight.shape()[0]);
        let (kh, kw) = (weight.shape()[2], weight.shape()[3]);
        let ho = spec.out_dim(self.shape()[2], kh);
        let wo = spec.out_dim(self.shape()[3], kw);
        if spec.prefers_im2col(cin, cout, kh * kw, ho * wo) {
            self.conv2d_im2col(weight, bias, spec)
        } else {
            self.conv2d_direct(weight, bias, spec)
        }
    }

    /// 2-D convolution via the direct loop nest (naive oracle path).
    pub fn conv2d_direct(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: Conv2dSpec,
    ) -> Tensor {
        self.conv2d_with(weight, bias, spec, false)
    }

    /// 2-D convolution via im2col + matmul.
    pub fn conv2d_im2col(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: Conv2dSpec,
    ) -> Tensor {
        self.conv2d_with(weight, bias, spec, true)
    }

    fn conv2d_with(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: Conv2dSpec,
        im2col: bool,
    ) -> Tensor {
        assert_eq!(self.ndim(), 4, "conv2d input must be [B, C_in, H, W]");
        assert_eq!(
            weight.ndim(),
            4,
            "conv2d weight must be [C_out, C_in, KH, KW]"
        );
        let (b, cin, h, w_) = (
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        );
        let (cout, cin_w, kh, kw) = (
            weight.shape()[0],
            weight.shape()[1],
            weight.shape()[2],
            weight.shape()[3],
        );
        assert_eq!(cin, cin_w, "conv2d channel mismatch");
        if let Some(bs) = bias {
            assert_eq!(bs.shape(), &[cout], "conv2d bias shape");
        }
        let ho = spec.out_dim(h, kh);
        let wo = spec.out_dim(w_, kw);
        let dims = Conv2dDims {
            b,
            cin,
            h,
            w: w_,
            cout,
            kh,
            kw,
            ho,
            wo,
        };
        let bvec = bias.map(|t| t.to_vec());
        let out = {
            let (x_ref, w_ref) = read_pair(self, weight);
            let forward = if im2col {
                conv2d_forward_im2col
            } else {
                conv2d_forward_direct
            };
            forward(&x_ref, &w_ref, bvec.as_deref(), &dims, spec)
        };

        let mut parents = vec![self.clone(), weight.clone()];
        if let Some(bs) = bias {
            parents.push(bs.clone());
        }
        let has_bias = bias.is_some();
        let t = Tensor::from_op(
            out,
            &[b, cout, ho, wo],
            parents,
            Box::new(move |node, gout| {
                let (x_ref, w_ref) = read_pair(&node.op_parents()[0], &node.op_parents()[1]);
                let mut gx = arena::zeroed(b * cin * h * w_);
                let mut gw = arena::zeroed(cout * cin * kh * kw);
                let mut gb = arena::zeroed(cout);
                let backward = if im2col {
                    conv2d_backward_im2col
                } else {
                    conv2d_backward_direct
                };
                backward(&x_ref, &w_ref, gout, &dims, spec, &mut gx, &mut gw, &mut gb);
                let mut grads = vec![Some(gx), Some(gw)];
                if has_bias {
                    grads.push(Some(gb));
                }
                grads
            }),
        );
        let mut prefs: Vec<&Tensor> = vec![self, weight];
        if let Some(bs) = bias {
            prefs.push(bs);
        }
        plan::record(&t, plan::Op::Conv2d, plan::Attr::None, &prefs, move |ps| {
            let bvec = if has_bias {
                Some(arena::copy_of(&ps[2].data()))
            } else {
                None
            };
            let (x_ref, w_ref) = read_pair(&ps[0], &ps[1]);
            let forward = if im2col {
                conv2d_forward_im2col
            } else {
                conv2d_forward_direct
            };
            let out = forward(&x_ref, &w_ref, bvec.as_deref(), &dims, spec);
            drop((x_ref, w_ref));
            if let Some(bv) = bvec {
                arena::recycle(bv);
            }
            out
        });
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn conv1d_identity_kernel() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 4]);
        let w = Tensor::from_vec(vec![1.], &[1, 1, 1]);
        let y = x.conv1d(&w, None, Conv1dSpec::default());
        assert_eq!(y.to_vec(), vec![1., 2., 3., 4.]);
    }

    #[test]
    fn conv1d_moving_sum_with_padding() {
        let x = Tensor::from_vec(vec![1., 2., 3.], &[1, 1, 3]);
        let w = Tensor::from_vec(vec![1., 1., 1.], &[1, 1, 3]);
        let y = x.conv1d(&w, None, Conv1dSpec::same(3, 1));
        assert_eq!(y.to_vec(), vec![3., 6., 5.]);
    }

    #[test]
    fn conv1d_dilation_skips() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4., 5.], &[1, 1, 5]);
        let w = Tensor::from_vec(vec![1., 1.], &[1, 1, 2]);
        let spec = Conv1dSpec {
            stride: 1,
            padding: 0,
            dilation: 2,
        };
        let y = x.conv1d(&w, None, spec);
        // pairs (x[i], x[i+2])
        assert_eq!(y.to_vec(), vec![4., 6., 8.]);
    }

    #[test]
    fn conv1d_stride_and_bias() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 4]);
        let w = Tensor::from_vec(vec![1., 1.], &[1, 1, 2]);
        let b = Tensor::from_vec(vec![10.], &[1]);
        let spec = Conv1dSpec {
            stride: 2,
            padding: 0,
            dilation: 1,
        };
        let y = x.conv1d(&w, Some(&b), spec);
        assert_eq!(y.to_vec(), vec![13., 17.]);
    }

    #[test]
    fn conv1d_backward_shapes_and_bias_grad() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[1, 2, 3]).requires_grad();
        let w = Tensor::from_vec(vec![0.5; 2 * 2 * 2], &[2, 2, 2]).requires_grad();
        let b = Tensor::zeros(&[2]).requires_grad();
        let y = x.conv1d(&w, Some(&b), Conv1dSpec::default());
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().len(), 6);
        assert_eq!(w.grad().unwrap().len(), 8);
        // lo = 2 output positions per channel; gb = 2 per output channel.
        assert_eq!(b.grad().unwrap(), vec![2.0, 2.0]);
    }

    #[test]
    fn conv2d_known_values() {
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]);
        let w = Tensor::from_vec(vec![1., 0., 0., 1.], &[1, 1, 2, 2]);
        let y = x.conv2d(&w, None, Conv2dSpec::default());
        // x[oy,ox] + x[oy+1,ox+1]
        assert_eq!(y.to_vec(), vec![6., 8., 12., 14.]);
    }

    #[test]
    fn conv2d_stride2_downsamples() {
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let w = Tensor::ones(&[1, 1, 2, 2]);
        let y = x.conv2d(
            &w,
            None,
            Conv2dSpec {
                stride: 2,
                padding: 0,
            },
        );
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert!(y.to_vec().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn conv2d_backward_runs() {
        let x = Tensor::ones(&[2, 3, 5, 5]).requires_grad();
        let w = Tensor::full(&[4, 3, 3, 3], 0.1).requires_grad();
        let b = Tensor::zeros(&[4]).requires_grad();
        let y = x.conv2d(
            &w,
            Some(&b),
            Conv2dSpec {
                stride: 1,
                padding: 1,
            },
        );
        assert_eq!(y.shape(), &[2, 4, 5, 5]);
        y.sum_all().backward();
        assert!(x.grad().unwrap().iter().all(|g| g.is_finite()));
        assert_eq!(b.grad().unwrap(), vec![50.0; 4]);
    }

    #[test]
    fn dispatch_picks_im2col_for_encoder_shapes() {
        // hidden=32 channels, L=64, k=3 — the TS-encoder residual block.
        let spec = Conv1dSpec::same(3, 1);
        assert!(spec.prefers_im2col(32, 32, 3, 64));
        // Pointwise kernels and tiny problems stay on the direct loop.
        assert!(!spec.prefers_im2col(32, 32, 1, 64));
        assert!(!spec.prefers_im2col(1, 1, 3, 8));
    }

    #[test]
    fn forced_paths_agree_on_odd_geometry() {
        let x = Tensor::randn(&[2, 3, 11], 5);
        let w = Tensor::randn(&[4, 3, 3], 6);
        let b = Tensor::randn(&[4], 7);
        let spec = Conv1dSpec {
            stride: 2,
            padding: 3,
            dilation: 2,
        };
        let yd = x.conv1d_direct(&w, Some(&b), spec);
        let yi = x.conv1d_im2col(&w, Some(&b), spec);
        assert_eq!(yd.shape(), yi.shape());
        for (a, bv) in yd.to_vec().iter().zip(yi.to_vec()) {
            assert!((a - bv).abs() < 1e-5, "{a} vs {bv}");
        }
    }
}
