//! 1-D (dilated) and 2-D convolutions with hand-written backward passes.

use rayon::prelude::*;

use crate::tensor::Tensor;

/// Hyper-parameters of a 1-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv1dSpec {
    pub stride: usize,
    pub padding: usize,
    pub dilation: usize,
}

impl Default for Conv1dSpec {
    fn default() -> Self {
        Conv1dSpec { stride: 1, padding: 0, dilation: 1 }
    }
}

impl Conv1dSpec {
    /// "Same" padding for odd kernel `k` and the given dilation (stride 1).
    pub fn same(k: usize, dilation: usize) -> Self {
        Conv1dSpec { stride: 1, padding: dilation * (k - 1) / 2, dilation }
    }

    /// Output length for input length `l` and kernel size `k`.
    pub fn out_len(&self, l: usize, k: usize) -> usize {
        let span = self.dilation * (k - 1) + 1;
        assert!(
            l + 2 * self.padding >= span,
            "conv1d input too short: len {l}, padding {}, kernel span {span}",
            self.padding
        );
        (l + 2 * self.padding - span) / self.stride + 1
    }
}

/// Hyper-parameters of a 2-D convolution (no dilation; square parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    pub stride: usize,
    pub padding: usize,
}

impl Default for Conv2dSpec {
    fn default() -> Self {
        Conv2dSpec { stride: 1, padding: 0 }
    }
}

impl Conv2dSpec {
    pub fn out_dim(&self, d: usize, k: usize) -> usize {
        assert!(d + 2 * self.padding >= k, "conv2d input too small");
        (d + 2 * self.padding - k) / self.stride + 1
    }
}

impl Tensor {
    /// 1-D convolution.
    ///
    /// * `self`: `[B, C_in, L]`
    /// * `weight`: `[C_out, C_in, K]`
    /// * `bias`: optional `[C_out]`
    ///
    /// Returns `[B, C_out, L_out]`.
    pub fn conv1d(&self, weight: &Tensor, bias: Option<&Tensor>, spec: Conv1dSpec) -> Tensor {
        assert_eq!(self.ndim(), 3, "conv1d input must be [B, C_in, L]");
        assert_eq!(weight.ndim(), 3, "conv1d weight must be [C_out, C_in, K]");
        let (b, cin, l) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let (cout, cin_w, k) = (weight.shape()[0], weight.shape()[1], weight.shape()[2]);
        assert_eq!(cin, cin_w, "conv1d channel mismatch");
        if let Some(bs) = bias {
            assert_eq!(bs.shape(), &[cout], "conv1d bias shape");
        }
        let lo = spec.out_len(l, k);
        let x_ref = self.data();
        let w_ref = weight.data();
        let (x, w): (&[f32], &[f32]) = (&x_ref, &w_ref);
        let bvec = bias.map(|t| t.to_vec());

        let mut out = vec![0f32; b * cout * lo];
        out.par_chunks_mut(cout * lo).enumerate().for_each(|(bi, ochunk)| {
            let xb = &x[bi * cin * l..(bi + 1) * cin * l];
            for co in 0..cout {
                let orow = &mut ochunk[co * lo..(co + 1) * lo];
                if let Some(bv) = &bvec {
                    orow.iter_mut().for_each(|v| *v = bv[co]);
                }
                for ci in 0..cin {
                    let xr = &xb[ci * l..(ci + 1) * l];
                    let wr = &w[(co * cin + ci) * k..(co * cin + ci + 1) * k];
                    for (o, ov) in orow.iter_mut().enumerate() {
                        let base = o * spec.stride;
                        let mut acc = 0f32;
                        for (kk, &wv) in wr.iter().enumerate() {
                            let pos = base + kk * spec.dilation;
                            if pos >= spec.padding && pos - spec.padding < l {
                                acc += wv * xr[pos - spec.padding];
                            }
                        }
                        *ov += acc;
                    }
                }
            }
        });
        drop((x_ref, w_ref));

        let mut parents = vec![self.clone(), weight.clone()];
        if let Some(bs) = bias {
            parents.push(bs.clone());
        }
        let has_bias = bias.is_some();
        Tensor::from_op(
            out,
            &[b, cout, lo],
            parents,
            Box::new(move |node, gout| {
                let x_ref = node.inner.parents[0].data();
                let w_ref = node.inner.parents[1].data();
                let (x, w): (&[f32], &[f32]) = (&x_ref, &w_ref);
                let mut gx = vec![0f32; b * cin * l];
                let mut gw = vec![0f32; cout * cin * k];
                let mut gb = vec![0f32; cout];
                // grad input: parallel over batch (disjoint slices).
                gx.par_chunks_mut(cin * l).enumerate().for_each(|(bi, gxb)| {
                    let gob = &gout[bi * cout * lo..(bi + 1) * cout * lo];
                    for co in 0..cout {
                        let gor = &gob[co * lo..(co + 1) * lo];
                        for ci in 0..cin {
                            let wr = &w[(co * cin + ci) * k..(co * cin + ci + 1) * k];
                            let gxr = &mut gxb[ci * l..(ci + 1) * l];
                            for (o, &g) in gor.iter().enumerate() {
                                if g == 0.0 {
                                    continue;
                                }
                                let base = o * spec.stride;
                                for (kk, &wv) in wr.iter().enumerate() {
                                    let pos = base + kk * spec.dilation;
                                    if pos >= spec.padding && pos - spec.padding < l {
                                        gxr[pos - spec.padding] += g * wv;
                                    }
                                }
                            }
                        }
                    }
                });
                // grad weight / bias: serial accumulation over batch.
                for bi in 0..b {
                    let xb = &x[bi * cin * l..(bi + 1) * cin * l];
                    let gob = &gout[bi * cout * lo..(bi + 1) * cout * lo];
                    for co in 0..cout {
                        let gor = &gob[co * lo..(co + 1) * lo];
                        gb[co] += gor.iter().sum::<f32>();
                        for ci in 0..cin {
                            let xr = &xb[ci * l..(ci + 1) * l];
                            let gwr = &mut gw[(co * cin + ci) * k..(co * cin + ci + 1) * k];
                            for (o, &g) in gor.iter().enumerate() {
                                if g == 0.0 {
                                    continue;
                                }
                                let base = o * spec.stride;
                                for (kk, gwv) in gwr.iter_mut().enumerate() {
                                    let pos = base + kk * spec.dilation;
                                    if pos >= spec.padding && pos - spec.padding < l {
                                        *gwv += g * xr[pos - spec.padding];
                                    }
                                }
                            }
                        }
                    }
                }
                let mut grads = vec![Some(gx), Some(gw)];
                if has_bias {
                    grads.push(Some(gb));
                }
                grads
            }),
        )
    }

    /// 2-D convolution.
    ///
    /// * `self`: `[B, C_in, H, W]`
    /// * `weight`: `[C_out, C_in, KH, KW]`
    /// * `bias`: optional `[C_out]`
    ///
    /// Returns `[B, C_out, H_out, W_out]`.
    pub fn conv2d(&self, weight: &Tensor, bias: Option<&Tensor>, spec: Conv2dSpec) -> Tensor {
        assert_eq!(self.ndim(), 4, "conv2d input must be [B, C_in, H, W]");
        assert_eq!(weight.ndim(), 4, "conv2d weight must be [C_out, C_in, KH, KW]");
        let (b, cin, h, w_) = (self.shape()[0], self.shape()[1], self.shape()[2], self.shape()[3]);
        let (cout, cin_w, kh, kw) =
            (weight.shape()[0], weight.shape()[1], weight.shape()[2], weight.shape()[3]);
        assert_eq!(cin, cin_w, "conv2d channel mismatch");
        let ho = spec.out_dim(h, kh);
        let wo = spec.out_dim(w_, kw);
        let x_ref = self.data();
        let w_ref = weight.data();
        let (x, w): (&[f32], &[f32]) = (&x_ref, &w_ref);
        let bvec = bias.map(|t| t.to_vec());

        let mut out = vec![0f32; b * cout * ho * wo];
        out.par_chunks_mut(cout * ho * wo).enumerate().for_each(|(bi, ochunk)| {
            let xb = &x[bi * cin * h * w_..(bi + 1) * cin * h * w_];
            for co in 0..cout {
                let oplane = &mut ochunk[co * ho * wo..(co + 1) * ho * wo];
                if let Some(bv) = &bvec {
                    oplane.iter_mut().for_each(|v| *v = bv[co]);
                }
                for ci in 0..cin {
                    let xp = &xb[ci * h * w_..(ci + 1) * h * w_];
                    let wp = &w[(co * cin + ci) * kh * kw..(co * cin + ci + 1) * kh * kw];
                    for oy in 0..ho {
                        for ox in 0..wo {
                            let mut acc = 0f32;
                            for ky in 0..kh {
                                let iy = oy * spec.stride + ky;
                                if iy < spec.padding || iy - spec.padding >= h {
                                    continue;
                                }
                                let iy = iy - spec.padding;
                                for kx in 0..kw {
                                    let ix = ox * spec.stride + kx;
                                    if ix < spec.padding || ix - spec.padding >= w_ {
                                        continue;
                                    }
                                    acc += wp[ky * kw + kx] * xp[iy * w_ + (ix - spec.padding)];
                                }
                            }
                            oplane[oy * wo + ox] += acc;
                        }
                    }
                }
            }
        });
        drop((x_ref, w_ref));

        let mut parents = vec![self.clone(), weight.clone()];
        if let Some(bs) = bias {
            parents.push(bs.clone());
        }
        let has_bias = bias.is_some();
        Tensor::from_op(
            out,
            &[b, cout, ho, wo],
            parents,
            Box::new(move |node, gout| {
                let x_ref = node.inner.parents[0].data();
                let w_ref = node.inner.parents[1].data();
                let (x, w): (&[f32], &[f32]) = (&x_ref, &w_ref);
                let mut gx = vec![0f32; b * cin * h * w_];
                let mut gw = vec![0f32; cout * cin * kh * kw];
                let mut gb = vec![0f32; cout];
                gx.par_chunks_mut(cin * h * w_).enumerate().for_each(|(bi, gxb)| {
                    let gob = &gout[bi * cout * ho * wo..(bi + 1) * cout * ho * wo];
                    for co in 0..cout {
                        let gop = &gob[co * ho * wo..(co + 1) * ho * wo];
                        for ci in 0..cin {
                            let wp = &w[(co * cin + ci) * kh * kw..(co * cin + ci + 1) * kh * kw];
                            let gxp = &mut gxb[ci * h * w_..(ci + 1) * h * w_];
                            for oy in 0..ho {
                                for ox in 0..wo {
                                    let g = gop[oy * wo + ox];
                                    if g == 0.0 {
                                        continue;
                                    }
                                    for ky in 0..kh {
                                        let iy = oy * spec.stride + ky;
                                        if iy < spec.padding || iy - spec.padding >= h {
                                            continue;
                                        }
                                        let iy = iy - spec.padding;
                                        for kx in 0..kw {
                                            let ix = ox * spec.stride + kx;
                                            if ix < spec.padding || ix - spec.padding >= w_ {
                                                continue;
                                            }
                                            gxp[iy * w_ + (ix - spec.padding)] +=
                                                g * wp[ky * kw + kx];
                                        }
                                    }
                                }
                            }
                        }
                    }
                });
                for bi in 0..b {
                    let xb = &x[bi * cin * h * w_..(bi + 1) * cin * h * w_];
                    let gob = &gout[bi * cout * ho * wo..(bi + 1) * cout * ho * wo];
                    for co in 0..cout {
                        let gop = &gob[co * ho * wo..(co + 1) * ho * wo];
                        gb[co] += gop.iter().sum::<f32>();
                        for ci in 0..cin {
                            let xp = &xb[ci * h * w_..(ci + 1) * h * w_];
                            let gwp =
                                &mut gw[(co * cin + ci) * kh * kw..(co * cin + ci + 1) * kh * kw];
                            for oy in 0..ho {
                                for ox in 0..wo {
                                    let g = gop[oy * wo + ox];
                                    if g == 0.0 {
                                        continue;
                                    }
                                    for ky in 0..kh {
                                        let iy = oy * spec.stride + ky;
                                        if iy < spec.padding || iy - spec.padding >= h {
                                            continue;
                                        }
                                        let iy = iy - spec.padding;
                                        for kx in 0..kw {
                                            let ix = ox * spec.stride + kx;
                                            if ix < spec.padding || ix - spec.padding >= w_ {
                                                continue;
                                            }
                                            gwp[ky * kw + kx] +=
                                                g * xp[iy * w_ + (ix - spec.padding)];
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                let mut grads = vec![Some(gx), Some(gw)];
                if has_bias {
                    grads.push(Some(gb));
                }
                grads
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn conv1d_identity_kernel() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 4]);
        let w = Tensor::from_vec(vec![1.], &[1, 1, 1]);
        let y = x.conv1d(&w, None, Conv1dSpec::default());
        assert_eq!(y.to_vec(), vec![1., 2., 3., 4.]);
    }

    #[test]
    fn conv1d_moving_sum_with_padding() {
        let x = Tensor::from_vec(vec![1., 2., 3.], &[1, 1, 3]);
        let w = Tensor::from_vec(vec![1., 1., 1.], &[1, 1, 3]);
        let y = x.conv1d(&w, None, Conv1dSpec::same(3, 1));
        assert_eq!(y.to_vec(), vec![3., 6., 5.]);
    }

    #[test]
    fn conv1d_dilation_skips() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4., 5.], &[1, 1, 5]);
        let w = Tensor::from_vec(vec![1., 1.], &[1, 1, 2]);
        let spec = Conv1dSpec { stride: 1, padding: 0, dilation: 2 };
        let y = x.conv1d(&w, None, spec);
        // pairs (x[i], x[i+2])
        assert_eq!(y.to_vec(), vec![4., 6., 8.]);
    }

    #[test]
    fn conv1d_stride_and_bias() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 4]);
        let w = Tensor::from_vec(vec![1., 1.], &[1, 1, 2]);
        let b = Tensor::from_vec(vec![10.], &[1]);
        let spec = Conv1dSpec { stride: 2, padding: 0, dilation: 1 };
        let y = x.conv1d(&w, Some(&b), spec);
        assert_eq!(y.to_vec(), vec![13., 17.]);
    }

    #[test]
    fn conv1d_backward_shapes_and_bias_grad() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[1, 2, 3]).requires_grad();
        let w = Tensor::from_vec(vec![0.5; 2 * 2 * 2], &[2, 2, 2]).requires_grad();
        let b = Tensor::zeros(&[2]).requires_grad();
        let y = x.conv1d(&w, Some(&b), Conv1dSpec::default());
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().len(), 6);
        assert_eq!(w.grad().unwrap().len(), 8);
        // lo = 2 output positions per channel; gb = 2 per output channel.
        assert_eq!(b.grad().unwrap(), vec![2.0, 2.0]);
    }

    #[test]
    fn conv2d_known_values() {
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]);
        let w = Tensor::from_vec(vec![1., 0., 0., 1.], &[1, 1, 2, 2]);
        let y = x.conv2d(&w, None, Conv2dSpec::default());
        // x[oy,ox] + x[oy+1,ox+1]
        assert_eq!(y.to_vec(), vec![6., 8., 12., 14.]);
    }

    #[test]
    fn conv2d_stride2_downsamples() {
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let w = Tensor::ones(&[1, 1, 2, 2]);
        let y = x.conv2d(&w, None, Conv2dSpec { stride: 2, padding: 0 });
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert!(y.to_vec().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn conv2d_backward_runs() {
        let x = Tensor::ones(&[2, 3, 5, 5]).requires_grad();
        let w = Tensor::full(&[4, 3, 3, 3], 0.1).requires_grad();
        let b = Tensor::zeros(&[4]).requires_grad();
        let y = x.conv2d(&w, Some(&b), Conv2dSpec { stride: 1, padding: 1 });
        assert_eq!(y.shape(), &[2, 4, 5, 5]);
        y.sum_all().backward();
        assert!(x.grad().unwrap().iter().all(|g| g.is_finite()));
        assert_eq!(b.grad().unwrap(), vec![50.0; 4]);
    }
}
