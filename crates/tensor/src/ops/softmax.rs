//! Softmax family, losses, and normalization composites.

use crate::arena;
use crate::plan;
use crate::tensor::Tensor;
use crate::EPS;

/// Row-wise stable softmax kernel shared by the eager op and its replay
/// thunk.
fn softmax_rows(d: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = arena::zeroed(d.len());
    for r in 0..rows {
        let row = &d[r * cols..(r + 1) * cols];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0f32;
        for (o, &x) in out[r * cols..(r + 1) * cols].iter_mut().zip(row) {
            *o = (x - m).exp();
            denom += *o;
        }
        for o in &mut out[r * cols..(r + 1) * cols] {
            *o /= denom;
        }
    }
    out
}

/// Row-wise stable log-softmax kernel shared by the eager op and its
/// replay thunk.
fn log_softmax_rows(d: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = arena::zeroed(d.len());
    for r in 0..rows {
        let row = &d[r * cols..(r + 1) * cols];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
        for (o, &x) in out[r * cols..(r + 1) * cols].iter_mut().zip(row) {
            *o = x - lse;
        }
    }
    out
}

impl Tensor {
    /// Numerically-stable softmax over the last dimension.
    pub fn softmax_last(&self) -> Tensor {
        let s = self.shape();
        let cols = *s.last().expect("softmax on 0-d tensor"); // aimts-lint: allow(A001, 0-d tensors never reach softmax: all callers pass batched activations)
        let rows = self.numel() / cols;
        let out = softmax_rows(&self.data(), rows, cols);
        let t = Tensor::from_op(
            out,
            s,
            vec![self.clone()],
            Box::new(move |node, gout| {
                // dL/dx_i = y_i * (g_i - sum_j g_j y_j)
                let y = node.data();
                let mut g = arena::zeroed(y.len());
                for r in 0..rows {
                    let ys = &y[r * cols..(r + 1) * cols];
                    let gs = &gout[r * cols..(r + 1) * cols];
                    let dot: f32 = ys.iter().zip(gs).map(|(a, b)| a * b).sum();
                    for ((gi, yi), go) in g[r * cols..(r + 1) * cols].iter_mut().zip(ys).zip(gs) {
                        *gi = yi * (go - dot);
                    }
                }
                vec![Some(g)]
            }),
        );
        plan::record(
            &t,
            plan::Op::SoftmaxLast,
            plan::Attr::None,
            &[self],
            move |ps| softmax_rows(&ps[0].data(), rows, cols),
        );
        t
    }

    /// Numerically-stable log-softmax over the last dimension.
    pub fn log_softmax_last(&self) -> Tensor {
        let s = self.shape();
        let cols = *s.last().expect("log_softmax on 0-d tensor"); // aimts-lint: allow(A001, 0-d tensors never reach softmax: all callers pass batched activations)
        let rows = self.numel() / cols;
        let out = log_softmax_rows(&self.data(), rows, cols);
        let t = Tensor::from_op(
            out,
            s,
            vec![self.clone()],
            Box::new(move |node, gout| {
                // dL/dx_i = g_i - softmax(x)_i * sum_j g_j
                let logp = node.data();
                let mut g = arena::zeroed(logp.len());
                for r in 0..rows {
                    let lp = &logp[r * cols..(r + 1) * cols];
                    let gs = &gout[r * cols..(r + 1) * cols];
                    let gsum: f32 = gs.iter().sum();
                    for ((gi, &l), go) in g[r * cols..(r + 1) * cols].iter_mut().zip(lp).zip(gs) {
                        *gi = go - l.exp() * gsum;
                    }
                }
                vec![Some(g)]
            }),
        );
        plan::record(
            &t,
            plan::Op::LogSoftmaxLast,
            plan::Attr::None,
            &[self],
            move |ps| log_softmax_rows(&ps[0].data(), rows, cols),
        );
        t
    }

    /// Negative log-likelihood given `[B, C]` log-probabilities and class
    /// targets; returns the mean over the batch.
    pub fn nll_loss(&self, targets: &[usize]) -> Tensor {
        assert_eq!(self.ndim(), 2, "nll_loss expects [B, C] log-probs");
        let (b, c) = (self.shape()[0], self.shape()[1]);
        assert_eq!(targets.len(), b, "targets length != batch");
        let d = self.data();
        let mut loss = 0f32;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < c, "target {t} out of range for {c} classes");
            loss -= d[r * c + t];
        }
        loss /= b as f32;
        drop(d);
        let tg = targets.to_vec();
        Tensor::from_op(
            vec![loss],
            &[],
            vec![self.clone()],
            Box::new(move |_, gout| {
                let mut g = vec![0f32; b * c];
                let scale = gout[0] / b as f32;
                for (r, &t) in tg.iter().enumerate() {
                    g[r * c + t] = -scale;
                }
                vec![Some(g)]
            }),
        )
    }

    /// Cross-entropy from raw logits `[B, C]` and class targets (mean).
    pub fn cross_entropy(&self, targets: &[usize]) -> Tensor {
        self.log_softmax_last().nll_loss(targets)
    }

    /// [`Tensor::nll_loss`] with the targets carried as a non-differentiable
    /// `[B]` tensor of class indices (exact for labels below 2²⁴). Because
    /// the targets are a graph input rather than a captured constant, this
    /// variant is traceable: a compiled plan re-reads them on every replay.
    pub fn nll_loss_t(&self, targets: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "nll_loss expects [B, C] log-probs");
        let (b, c) = (self.shape()[0], self.shape()[1]);
        assert_eq!(targets.numel(), b, "targets length != batch");
        let forward = move |logp: &Tensor, tg: &Tensor| -> Vec<f32> {
            let (d, td) = crate::read_pair(logp, tg);
            let mut loss = 0f32;
            for (r, &t) in td.iter().enumerate() {
                let t = t as usize;
                assert!(t < c, "target {t} out of range for {c} classes");
                loss -= d[r * c + t];
            }
            loss /= b as f32;
            let mut out = arena::take(1);
            out.push(loss);
            out
        };
        let out = forward(self, targets);
        let t = Tensor::from_op(
            out,
            &[],
            vec![self.clone(), targets.clone()],
            Box::new(move |node, gout| {
                let tg = node.op_parents()[1].data();
                let mut g = arena::zeroed(b * c);
                let scale = gout[0] / b as f32;
                for (r, &t) in tg.iter().enumerate() {
                    g[r * c + (t as usize)] = -scale;
                }
                vec![Some(g), None]
            }),
        );
        plan::record(
            &t,
            plan::Op::NllLoss,
            plan::Attr::None,
            &[self, targets],
            move |ps| forward(&ps[0], &ps[1]),
        );
        t
    }

    /// [`Tensor::cross_entropy`] with tensor-carried targets (traceable —
    /// see [`Tensor::nll_loss_t`]). Arithmetic-identical to the slice
    /// variant for the same labels.
    pub fn cross_entropy_t(&self, targets: &Tensor) -> Tensor {
        self.log_softmax_last().nll_loss_t(targets)
    }

    /// L2-normalize along `axis` so slices have unit Euclidean norm.
    ///
    /// This is the projection onto the unit hypersphere required by the
    /// paper's geodesic mixup (§IV-C.3); it is fully differentiable.
    pub fn l2_normalize(&self, axis: usize) -> Tensor {
        let norm = self.square().sum_axis(axis, true).add_scalar(EPS).sqrt();
        self.div(&norm)
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Tensor::from_vec(vec![1., 2., 3., 1000., 1001., 999.], &[2, 3]);
        let y = a.softmax_last().to_vec();
        let s0: f32 = y[..3].iter().sum();
        let s1: f32 = y[3..].iter().sum();
        assert!((s0 - 1.0).abs() < 1e-5 && (s1 - 1.0).abs() < 1e-5);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let a = Tensor::from_vec(vec![0.1, -0.4, 2.0], &[1, 3]);
        let l1 = a.log_softmax_last().to_vec();
        let l2: Vec<f32> = a.softmax_last().to_vec().iter().map(|x| x.ln()).collect();
        for (x, y) in l1.iter().zip(l2) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let logits = Tensor::from_vec(vec![100., 0., 0., 0., 100., 0.], &[2, 3]);
        let loss = logits.cross_entropy(&[0, 1]);
        assert!(loss.item() < 1e-4);
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let logits = Tensor::zeros(&[4, 5]);
        let loss = logits.cross_entropy(&[0, 1, 2, 3]);
        assert!((loss.item() - (5f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_direction() {
        let logits = Tensor::zeros(&[1, 3]).requires_grad();
        logits.cross_entropy(&[1]).backward();
        let g = logits.grad().unwrap();
        // Gradient pushes target logit up (negative grad) and others down.
        assert!(g[1] < 0.0 && g[0] > 0.0 && g[2] > 0.0);
        assert!((g.iter().sum::<f32>()).abs() < 1e-6);
    }

    #[test]
    fn l2_normalize_unit_norm() {
        let a = Tensor::from_vec(vec![3., 4., 0., 5.], &[2, 2]);
        let n = a.l2_normalize(1);
        let v = n.to_vec();
        assert!(((v[0] * v[0] + v[1] * v[1]).sqrt() - 1.0).abs() < 1e-4);
        assert!(((v[2] * v[2] + v[3] * v[3]).sqrt() - 1.0).abs() < 1e-4);
    }
}
