//! Operator implementations, grouped by family. Every differentiable op
//! installs a hand-written backward closure; all are covered by the
//! finite-difference tests in `tests/grad_checks.rs`.

mod binary;
mod conv;
mod extra;
mod matmul;
mod pool;
mod reduce;
mod shape_ops;
mod softmax;
pub(crate) mod unary;

pub use conv::{Conv1dSpec, Conv2dSpec};
