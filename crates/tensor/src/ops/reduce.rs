//! Reductions: full and per-axis sums, means, max/min.

use crate::arena;
use crate::plan;
use crate::tensor::Tensor;

/// Decompose a shape around `axis` into (outer, axis_len, inner).
fn axis_split(shape: &[usize], axis: usize) -> (usize, usize, usize) {
    assert!(axis < shape.len(), "axis {axis} out of range for {shape:?}");
    let outer: usize = shape[..axis].iter().product();
    let inner: usize = shape[axis + 1..].iter().product();
    (outer, shape[axis], inner)
}

fn reduced_shape(shape: &[usize], axis: usize, keepdim: bool) -> Vec<usize> {
    let mut s = shape.to_vec();
    if keepdim {
        s[axis] = 1;
    } else {
        s.remove(axis);
    }
    s
}

impl Tensor {
    /// Sum of all elements (scalar output).
    pub fn sum_all(&self) -> Tensor {
        let s: f32 = self.data().iter().sum();
        let n = self.numel();
        let shape = self.shape().to_vec();
        let t = Tensor::from_op(
            vec![s],
            &[],
            vec![self.clone()],
            Box::new(move |_, gout| {
                let _ = &shape;
                let mut g = arena::take(n);
                g.resize(n, gout[0]);
                vec![Some(g)]
            }),
        );
        plan::record(&t, plan::Op::SumAll, plan::Attr::None, &[self], |ps| {
            let s: f32 = ps[0].data().iter().sum();
            let mut out = arena::take(1);
            out.push(s);
            out
        });
        t
    }

    /// Mean of all elements (scalar output).
    pub fn mean_all(&self) -> Tensor {
        let n = self.numel() as f32;
        self.sum_all().div_scalar(n)
    }

    /// Sum along `axis`.
    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        let (outer, ax, inner) = axis_split(self.shape(), axis);
        let d = self.data();
        let mut out = arena::zeroed(outer * inner);
        for o in 0..outer {
            for a in 0..ax {
                let base = (o * ax + a) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    out[obase + i] += d[base + i];
                }
            }
        }
        drop(d);
        let oshape = reduced_shape(self.shape(), axis, keepdim);
        let t = Tensor::from_op(
            out,
            &oshape,
            vec![self.clone()],
            Box::new(move |node, gout| {
                let n = node.op_parents()[0].numel();
                let mut g = arena::zeroed(n);
                for o in 0..outer {
                    for a in 0..ax {
                        let base = (o * ax + a) * inner;
                        let obase = o * inner;
                        g[base..base + inner].copy_from_slice(&gout[obase..obase + inner]);
                    }
                }
                vec![Some(g)]
            }),
        );
        plan::record(
            &t,
            plan::Op::SumAxis,
            plan::Attr::Axis {
                axis,
                keep: keepdim,
            },
            &[self],
            move |ps| {
                let d = ps[0].data();
                let mut out = arena::zeroed(outer * inner);
                for o in 0..outer {
                    for a in 0..ax {
                        let base = (o * ax + a) * inner;
                        let obase = o * inner;
                        for i in 0..inner {
                            out[obase + i] += d[base + i];
                        }
                    }
                }
                out
            },
        );
        t
    }

    /// Mean along `axis`.
    pub fn mean_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        let ax = self.shape()[axis] as f32;
        self.sum_axis(axis, keepdim).div_scalar(ax)
    }

    /// Max along `axis`; gradient flows to the (first) arg-max element.
    pub fn max_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        let (outer, ax, inner) = axis_split(self.shape(), axis);
        // Forward scan: strict `>` keeps the first arg-max on ties. The
        // backward closure re-runs the same scan over the parent's data
        // (instead of capturing the indices) so compiled replay sees
        // argmaxes consistent with the replayed values.
        let scan = move |d: &[f32]| -> (Vec<f32>, Vec<usize>) {
            let mut out = arena::take(outer * inner);
            out.resize(outer * inner, f32::NEG_INFINITY);
            let mut arg = vec![0usize; outer * inner];
            for o in 0..outer {
                for a in 0..ax {
                    let base = (o * ax + a) * inner;
                    let obase = o * inner;
                    for i in 0..inner {
                        if d[base + i] > out[obase + i] {
                            out[obase + i] = d[base + i];
                            arg[obase + i] = base + i;
                        }
                    }
                }
            }
            (out, arg)
        };
        let (out, _) = scan(&self.data());
        let oshape = reduced_shape(self.shape(), axis, keepdim);
        let t = Tensor::from_op(
            out,
            &oshape,
            vec![self.clone()],
            Box::new(move |node, gout| {
                let parent = &node.op_parents()[0];
                let n = parent.numel();
                let (mx, arg) = scan(&parent.data());
                arena::recycle(mx);
                let mut g = arena::zeroed(n);
                for (oi, &src) in arg.iter().enumerate() {
                    g[src] += gout[oi];
                }
                vec![Some(g)]
            }),
        );
        plan::record(
            &t,
            plan::Op::MaxAxis,
            plan::Attr::Axis {
                axis,
                keep: keepdim,
            },
            &[self],
            move |ps| scan(&ps[0].data()).0,
        );
        t
    }

    /// Min along `axis`; gradient flows to the (first) arg-min element.
    pub fn min_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        self.neg().max_axis(axis, keepdim).neg()
    }

    /// Maximum element of the whole tensor (non-differentiable helper).
    pub fn max_all_value(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element of the whole tensor (non-differentiable helper).
    pub fn min_all_value(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum along `axis` (non-differentiable).
    pub fn argmax_axis(&self, axis: usize) -> Vec<usize> {
        let (outer, ax, inner) = axis_split(self.shape(), axis);
        let d = self.data();
        let mut arg = vec![0usize; outer * inner];
        let mut best = vec![f32::NEG_INFINITY; outer * inner];
        for o in 0..outer {
            for a in 0..ax {
                let base = (o * ax + a) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    if d[base + i] > best[obase + i] {
                        best[obase + i] = d[base + i];
                        arg[obase + i] = a;
                    }
                }
            }
        }
        arg
    }

    /// Variance along `axis` (population, ddof = 0), differentiable.
    pub fn var_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        let mean = self.mean_axis(axis, true);
        let centered = self.sub(&mean);
        centered.square().mean_axis(axis, keepdim)
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn sum_all_backward() {
        let a = Tensor::from_vec(vec![1., 2., 3.], &[3]).requires_grad();
        let s = a.sum_all();
        assert_eq!(s.item(), 6.0);
        s.backward();
        assert_eq!(a.grad().unwrap(), vec![1., 1., 1.]);
    }

    #[test]
    fn sum_axis_rows_cols() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        assert_eq!(a.sum_axis(0, false).to_vec(), vec![5., 7., 9.]);
        assert_eq!(a.sum_axis(1, false).to_vec(), vec![6., 15.]);
        assert_eq!(a.sum_axis(1, true).shape(), &[2, 1]);
    }

    #[test]
    fn mean_axis_values() {
        let a = Tensor::from_vec(vec![1., 3., 5., 7.], &[2, 2]);
        assert_eq!(a.mean_axis(1, false).to_vec(), vec![2., 6.]);
    }

    #[test]
    fn max_axis_routes_grad_to_argmax() {
        let a = Tensor::from_vec(vec![1., 9., 4., 2.], &[2, 2]).requires_grad();
        let m = a.max_axis(1, false);
        assert_eq!(m.to_vec(), vec![9., 4.]);
        m.sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![0., 1., 1., 0.]);
    }

    #[test]
    fn argmax_per_row() {
        let a = Tensor::from_vec(vec![1., 9., 4., 2., 0., 7.], &[2, 3]);
        assert_eq!(a.argmax_axis(1), vec![1, 2]);
    }

    #[test]
    fn var_axis_known() {
        let a = Tensor::from_vec(vec![1., 3.], &[1, 2]);
        let v = a.var_axis(1, false);
        assert!((v.to_vec()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn middle_axis_sum() {
        let a = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]);
        let s = a.sum_axis(1, false);
        assert_eq!(s.shape(), &[2, 4]);
        assert_eq!(s.to_vec()[0], 0.0 + 4.0 + 8.0);
    }
}
