//! Pooling: 1-D/2-D max pooling and global pools.

use crate::arena;
use crate::plan;
use crate::tensor::Tensor;

impl Tensor {
    /// Max pooling over the last dimension of a `[B, C, L]` tensor with
    /// window `k` and stride `k` (non-overlapping). The tail shorter than
    /// `k` is dropped, matching PyTorch defaults.
    pub fn max_pool1d(&self, k: usize) -> Tensor {
        assert_eq!(self.ndim(), 3, "max_pool1d expects [B, C, L]");
        assert!(k >= 1);
        let (b, c, l) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let lo = l / k;
        assert!(lo >= 1, "max_pool1d window {k} larger than length {l}");
        // Backward re-runs the same scan over the parent (first arg-max on
        // ties via strict `>`), so compiled replay stays consistent with
        // the replayed values instead of a trace-time index capture.
        let scan = move |d: &[f32]| -> (Vec<f32>, Vec<usize>) {
            let mut out = arena::take(b * c * lo);
            out.resize(b * c * lo, f32::NEG_INFINITY);
            let mut arg = vec![0usize; b * c * lo];
            for bc in 0..b * c {
                let row = &d[bc * l..(bc + 1) * l];
                for o in 0..lo {
                    let mut best = f32::NEG_INFINITY;
                    let mut bi = 0usize;
                    for (i, &v) in row.iter().enumerate().take((o + 1) * k).skip(o * k) {
                        if v > best {
                            best = v;
                            bi = i;
                        }
                    }
                    out[bc * lo + o] = best;
                    arg[bc * lo + o] = bc * l + bi;
                }
            }
            (out, arg)
        };
        let (out, _) = scan(&self.data());
        let t = Tensor::from_op(
            out,
            &[b, c, lo],
            vec![self.clone()],
            Box::new(move |node, gout| {
                let parent = &node.op_parents()[0];
                let (mx, arg) = scan(&parent.data());
                arena::recycle(mx);
                let mut g = arena::zeroed(parent.numel());
                for (oi, &src) in arg.iter().enumerate() {
                    g[src] += gout[oi];
                }
                vec![Some(g)]
            }),
        );
        plan::record(
            &t,
            plan::Op::MaxPool1d,
            plan::Attr::None,
            &[self],
            move |ps| scan(&ps[0].data()).0,
        );
        t
    }

    /// Global max pooling over time: `[B, C, L] -> [B, C]`.
    pub fn global_max_pool1d(&self) -> Tensor {
        assert_eq!(self.ndim(), 3, "global_max_pool1d expects [B, C, L]");
        self.max_axis(2, false)
    }

    /// Global average pooling over time: `[B, C, L] -> [B, C]`.
    pub fn global_avg_pool1d(&self) -> Tensor {
        assert_eq!(self.ndim(), 3, "global_avg_pool1d expects [B, C, L]");
        self.mean_axis(2, false)
    }

    /// Non-overlapping 2-D max pooling with square window `k`:
    /// `[B, C, H, W] -> [B, C, H/k, W/k]`.
    pub fn max_pool2d(&self, k: usize) -> Tensor {
        assert_eq!(self.ndim(), 4, "max_pool2d expects [B, C, H, W]");
        let (b, c, h, w) = (
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        );
        let (ho, wo) = (h / k, w / k);
        assert!(ho >= 1 && wo >= 1, "max_pool2d window too large");
        // Same replay-safe argmax-recompute pattern as `max_pool1d`.
        let scan = move |d: &[f32]| -> (Vec<f32>, Vec<usize>) {
            let mut out = arena::take(b * c * ho * wo);
            out.resize(b * c * ho * wo, f32::NEG_INFINITY);
            let mut arg = vec![0usize; b * c * ho * wo];
            for bc in 0..b * c {
                let plane = &d[bc * h * w..(bc + 1) * h * w];
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut best = f32::NEG_INFINITY;
                        let mut bidx = 0usize;
                        for iy in oy * k..(oy + 1) * k {
                            for ix in ox * k..(ox + 1) * k {
                                let v = plane[iy * w + ix];
                                if v > best {
                                    best = v;
                                    bidx = bc * h * w + iy * w + ix;
                                }
                            }
                        }
                        out[bc * ho * wo + oy * wo + ox] = best;
                        arg[bc * ho * wo + oy * wo + ox] = bidx;
                    }
                }
            }
            (out, arg)
        };
        let (out, _) = scan(&self.data());
        let t = Tensor::from_op(
            out,
            &[b, c, ho, wo],
            vec![self.clone()],
            Box::new(move |node, gout| {
                let parent = &node.op_parents()[0];
                let (mx, arg) = scan(&parent.data());
                arena::recycle(mx);
                let mut g = arena::zeroed(parent.numel());
                for (oi, &src) in arg.iter().enumerate() {
                    g[src] += gout[oi];
                }
                vec![Some(g)]
            }),
        );
        plan::record(
            &t,
            plan::Op::MaxPool2d,
            plan::Attr::None,
            &[self],
            move |ps| scan(&ps[0].data()).0,
        );
        t
    }

    /// Global average pooling over space: `[B, C, H, W] -> [B, C]`.
    pub fn global_avg_pool2d(&self) -> Tensor {
        assert_eq!(self.ndim(), 4, "global_avg_pool2d expects [B, C, H, W]");
        let (b, c) = (self.shape()[0], self.shape()[1]);
        let hw = self.shape()[2] * self.shape()[3];
        self.reshape(&[b, c, hw]).mean_axis(2, false)
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn max_pool1d_values_and_grad() {
        let x = Tensor::from_vec(vec![1., 5., 2., 3., 9., 0.], &[1, 1, 6]).requires_grad();
        let y = x.max_pool1d(2);
        assert_eq!(y.to_vec(), vec![5., 3., 9.]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![0., 1., 0., 1., 1., 0.]);
    }

    #[test]
    fn max_pool1d_drops_tail() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4., 5.], &[1, 1, 5]);
        assert_eq!(x.max_pool1d(2).to_vec(), vec![2., 4.]);
    }

    #[test]
    fn global_pools() {
        let x = Tensor::from_vec(vec![1., 3., 2., 8., 4., 6.], &[1, 2, 3]);
        assert_eq!(x.global_max_pool1d().to_vec(), vec![3., 8.]);
        assert_eq!(x.global_avg_pool1d().to_vec(), vec![2., 6.]);
    }

    #[test]
    fn max_pool2d_values() {
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = x.max_pool2d(2);
        assert_eq!(y.to_vec(), vec![5., 7., 13., 15.]);
    }

    #[test]
    fn global_avg_pool2d_mean() {
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = x.global_avg_pool2d();
        assert_eq!(y.shape(), &[2, 3]);
        assert!(y.to_vec().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }
}
