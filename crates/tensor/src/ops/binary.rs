//! Broadcasting element-wise binary operations and scalar variants.

use crate::arena;
use crate::plan;
use crate::shape::{broadcast_shapes, broadcast_strides, numel, reduce_grad_to_shape, strides};
use crate::tensor::{read_pair, Tensor};

/// Materialize `data` (of `shape`) broadcast to `target`.
pub(crate) fn expand_to(data: &[f32], shape: &[usize], target: &[usize]) -> Vec<f32> {
    if shape == target {
        return arena::copy_of(data);
    }
    let bstr = broadcast_strides(shape, target);
    let tstr = strides(target);
    let n = numel(target);
    let nd = target.len();
    let mut out = arena::take(n);
    for i in 0..n {
        let mut rem = i;
        let mut off = 0usize;
        for d in 0..nd {
            let id = rem / tstr[d];
            rem %= tstr[d];
            off += id * bstr[d];
        }
        out.push(data[off]);
    }
    out
}

/// Forward kernel for a broadcasting binary op.
fn zip_broadcast(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> (Vec<f32>, Vec<usize>) {
    let out_shape = broadcast_shapes(a.shape(), b.shape()).unwrap_or_else(|| {
        // aimts-lint: allow(A001, shape mismatch is a caller programming error, caught in op tests)
        panic!(
            "incompatible shapes for binary op: {:?} vs {:?}",
            a.shape(),
            b.shape()
        )
    });
    let (ad, bd) = read_pair(a, b);
    if a.shape() == b.shape() {
        let out = arena::map_collect(ad.len(), ad.iter().zip(bd.iter()).map(|(&x, &y)| f(x, y)));
        return (out, out_shape);
    }
    let ax = expand_to(&ad, a.shape(), &out_shape);
    let bx = expand_to(&bd, b.shape(), &out_shape);
    let out = arena::map_collect(ax.len(), ax.iter().zip(&bx).map(|(&x, &y)| f(x, y)));
    arena::recycle(ax);
    arena::recycle(bx);
    (out, out_shape)
}

/// Trace hook shared by the broadcasting binary ops: the replay thunk
/// re-runs the identical `zip_broadcast` kernel over the parents.
fn record_binary(
    t: &Tensor,
    op: plan::Op,
    a: &Tensor,
    b: &Tensor,
    f: impl Fn(f32, f32) -> f32 + Copy + Send + Sync + 'static,
) {
    plan::record(t, op, plan::Attr::None, &[a, b], move |ps| {
        zip_broadcast(&ps[0], &ps[1], f).0
    });
}

impl Tensor {
    /// Element-wise addition with NumPy broadcasting.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let (out, out_shape) = zip_broadcast(self, other, |x, y| x + y);
        let os = out_shape.clone();
        let t = Tensor::from_op(
            out,
            &out_shape,
            vec![self.clone(), other.clone()],
            Box::new(move |node, gout| {
                let a = &node.op_parents()[0];
                let b = &node.op_parents()[1];
                vec![
                    Some(reduce_grad_to_shape(gout, &os, a.shape())),
                    Some(reduce_grad_to_shape(gout, &os, b.shape())),
                ]
            }),
        );
        record_binary(&t, plan::Op::Add, self, other, |x, y| x + y);
        t
    }

    /// Element-wise subtraction with broadcasting.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        let (out, out_shape) = zip_broadcast(self, other, |x, y| x - y);
        let os = out_shape.clone();
        let t = Tensor::from_op(
            out,
            &out_shape,
            vec![self.clone(), other.clone()],
            Box::new(move |node, gout| {
                let a = &node.op_parents()[0];
                let b = &node.op_parents()[1];
                let neg = arena::map_collect(gout.len(), gout.iter().map(|g| -g));
                let gb = reduce_grad_to_shape(&neg, &os, b.shape());
                arena::recycle(neg);
                vec![Some(reduce_grad_to_shape(gout, &os, a.shape())), Some(gb)]
            }),
        );
        record_binary(&t, plan::Op::Sub, self, other, |x, y| x - y);
        t
    }

    /// Element-wise multiplication with broadcasting.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        let (out, out_shape) = zip_broadcast(self, other, |x, y| x * y);
        let os = out_shape.clone();
        let t = Tensor::from_op(
            out,
            &out_shape,
            vec![self.clone(), other.clone()],
            Box::new(move |node, gout| {
                let a = &node.op_parents()[0];
                let b = &node.op_parents()[1];
                let ax = expand_to(&a.data(), a.shape(), &os);
                let bx = expand_to(&b.data(), b.shape(), &os);
                let ga = arena::map_collect(gout.len(), gout.iter().zip(&bx).map(|(g, y)| g * y));
                let gb = arena::map_collect(gout.len(), gout.iter().zip(&ax).map(|(g, x)| g * x));
                let gra = reduce_grad_to_shape(&ga, &os, a.shape());
                let grb = reduce_grad_to_shape(&gb, &os, b.shape());
                for v in [ax, bx, ga, gb] {
                    arena::recycle(v);
                }
                vec![Some(gra), Some(grb)]
            }),
        );
        record_binary(&t, plan::Op::Mul, self, other, |x, y| x * y);
        t
    }

    /// Element-wise division with broadcasting.
    pub fn div(&self, other: &Tensor) -> Tensor {
        let (out, out_shape) = zip_broadcast(self, other, |x, y| x / y);
        let os = out_shape.clone();
        let t = Tensor::from_op(
            out,
            &out_shape,
            vec![self.clone(), other.clone()],
            Box::new(move |node, gout| {
                let a = &node.op_parents()[0];
                let b = &node.op_parents()[1];
                let ax = expand_to(&a.data(), a.shape(), &os);
                let bx = expand_to(&b.data(), b.shape(), &os);
                let ga = arena::map_collect(gout.len(), gout.iter().zip(&bx).map(|(g, y)| g / y));
                let gb = arena::map_collect(
                    gout.len(),
                    gout.iter()
                        .zip(ax.iter().zip(&bx))
                        .map(|(g, (x, y))| -g * x / (y * y)),
                );
                let gra = reduce_grad_to_shape(&ga, &os, a.shape());
                let grb = reduce_grad_to_shape(&gb, &os, b.shape());
                for v in [ax, bx, ga, gb] {
                    arena::recycle(v);
                }
                vec![Some(gra), Some(grb)]
            }),
        );
        record_binary(&t, plan::Op::Div, self, other, |x, y| x / y);
        t
    }

    /// Element-wise maximum with broadcasting. Gradient routes to the larger
    /// input (ties split to the first argument).
    pub fn maximum(&self, other: &Tensor) -> Tensor {
        let (out, out_shape) = zip_broadcast(self, other, f32::max);
        let os = out_shape.clone();
        let t = Tensor::from_op(
            out,
            &out_shape,
            vec![self.clone(), other.clone()],
            Box::new(move |node, gout| {
                let a = &node.op_parents()[0];
                let b = &node.op_parents()[1];
                let ax = expand_to(&a.data(), a.shape(), &os);
                let bx = expand_to(&b.data(), b.shape(), &os);
                let ga: Vec<f32> = gout
                    .iter()
                    .zip(ax.iter().zip(&bx))
                    .map(|(g, (x, y))| if x >= y { *g } else { 0.0 })
                    .collect();
                let gb: Vec<f32> = gout
                    .iter()
                    .zip(ax.iter().zip(&bx))
                    .map(|(g, (x, y))| if x >= y { 0.0 } else { *g })
                    .collect();
                vec![
                    Some(reduce_grad_to_shape(&ga, &os, a.shape())),
                    Some(reduce_grad_to_shape(&gb, &os, b.shape())),
                ]
            }),
        );
        record_binary(&t, plan::Op::Maximum, self, other, f32::max);
        t
    }

    /// Element-wise minimum with broadcasting (ties to the first argument).
    pub fn minimum(&self, other: &Tensor) -> Tensor {
        let (out, out_shape) = zip_broadcast(self, other, f32::min);
        let os = out_shape.clone();
        let t = Tensor::from_op(
            out,
            &out_shape,
            vec![self.clone(), other.clone()],
            Box::new(move |node, gout| {
                let a = &node.op_parents()[0];
                let b = &node.op_parents()[1];
                let ax = expand_to(&a.data(), a.shape(), &os);
                let bx = expand_to(&b.data(), b.shape(), &os);
                let ga: Vec<f32> = gout
                    .iter()
                    .zip(ax.iter().zip(&bx))
                    .map(|(g, (x, y))| if x <= y { *g } else { 0.0 })
                    .collect();
                let gb: Vec<f32> = gout
                    .iter()
                    .zip(ax.iter().zip(&bx))
                    .map(|(g, (x, y))| if x <= y { 0.0 } else { *g })
                    .collect();
                vec![
                    Some(reduce_grad_to_shape(&ga, &os, a.shape())),
                    Some(reduce_grad_to_shape(&gb, &os, b.shape())),
                ]
            }),
        );
        record_binary(&t, plan::Op::Minimum, self, other, f32::min);
        t
    }

    // ----- scalar variants --------------------------------------------------

    /// `self + s` element-wise.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        let d = self.data();
        let out = arena::map_collect(d.len(), d.iter().map(|x| x + s));
        drop(d);
        let t = Tensor::from_op(
            out,
            self.shape(),
            vec![self.clone()],
            Box::new(|_, gout| vec![Some(arena::copy_of(gout))]),
        );
        plan::record(
            &t,
            plan::Op::AddScalar,
            plan::Attr::Scalar(s),
            &[self],
            move |ps| {
                let d = ps[0].data();
                arena::map_collect(d.len(), d.iter().map(|x| x + s))
            },
        );
        t
    }

    /// `self * s` element-wise.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        let d = self.data();
        let out = arena::map_collect(d.len(), d.iter().map(|x| x * s));
        drop(d);
        let t = Tensor::from_op(
            out,
            self.shape(),
            vec![self.clone()],
            Box::new(move |_, gout| {
                vec![Some(arena::map_collect(
                    gout.len(),
                    gout.iter().map(|g| g * s),
                ))]
            }),
        );
        plan::record(
            &t,
            plan::Op::MulScalar,
            plan::Attr::Scalar(s),
            &[self],
            move |ps| {
                let d = ps[0].data();
                arena::map_collect(d.len(), d.iter().map(|x| x * s))
            },
        );
        t
    }

    /// `self / s` element-wise.
    pub fn div_scalar(&self, s: f32) -> Tensor {
        self.mul_scalar(1.0 / s)
    }

    /// `self * a + b` element-wise (fused affine).
    pub fn affine(&self, a: f32, b: f32) -> Tensor {
        let d = self.data();
        let out = arena::map_collect(d.len(), d.iter().map(|x| x * a + b));
        drop(d);
        let t = Tensor::from_op(
            out,
            self.shape(),
            vec![self.clone()],
            Box::new(move |_, gout| {
                vec![Some(arena::map_collect(
                    gout.len(),
                    gout.iter().map(|g| g * a),
                ))]
            }),
        );
        plan::record(&t, plan::Op::Affine, plan::Attr::None, &[self], move |ps| {
            let d = ps[0].data();
            arena::map_collect(d.len(), d.iter().map(|x| x * a + b))
        });
        t
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn add_same_shape() {
        let a = Tensor::from_vec(vec![1., 2.], &[2]);
        let b = Tensor::from_vec(vec![10., 20.], &[2]);
        assert_eq!(a.add(&b).to_vec(), vec![11., 22.]);
    }

    #[test]
    fn add_broadcast_row() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = Tensor::from_vec(vec![10., 20., 30.], &[3]);
        assert_eq!(a.add(&b).to_vec(), vec![11., 22., 33., 14., 25., 36.]);
    }

    #[test]
    fn mul_broadcast_col_backward() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]).requires_grad();
        let b = Tensor::from_vec(vec![2., 3.], &[2, 1]).requires_grad();
        a.mul(&b).sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![2., 2., 2., 3., 3., 3.]);
        assert_eq!(b.grad().unwrap(), vec![6., 15.]);
    }

    #[test]
    fn div_values() {
        let a = Tensor::from_vec(vec![6., 9.], &[2]);
        let b = Tensor::from_vec(vec![2., 3.], &[2]);
        assert_eq!(a.div(&b).to_vec(), vec![3., 3.]);
    }

    #[test]
    fn maximum_routes_grad() {
        let a = Tensor::from_vec(vec![1., 5.], &[2]).requires_grad();
        let b = Tensor::from_vec(vec![3., 2.], &[2]).requires_grad();
        a.maximum(&b).sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![0., 1.]);
        assert_eq!(b.grad().unwrap(), vec![1., 0.]);
    }

    #[test]
    fn scalar_ops() {
        let a = Tensor::from_vec(vec![1., 2.], &[2]).requires_grad();
        let y = a.affine(2.0, 1.0); // 2x + 1
        assert_eq!(y.to_vec(), vec![3., 5.]);
        y.sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![2., 2.]);
    }

    #[test]
    #[should_panic(expected = "incompatible shapes")]
    fn incompatible_shapes_panic() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4]);
        let _ = a.add(&b);
    }
}
