//! Additional shape/sequence utilities: padding, flipping, cumulative
//! sums, and repetition — rounding out the operator surface for
//! downstream users of the substrate.

use crate::tensor::Tensor;

impl Tensor {
    /// Zero-pad the last dimension by `(left, right)` elements.
    pub fn pad_last(&self, left: usize, right: usize) -> Tensor {
        let s = self.shape();
        let last = *s.last().expect("pad on 0-d tensor"); // aimts-lint: allow(A001, 0-d tensors are rejected at construction by every caller path)
        let rows = self.numel() / last;
        let new_last = last + left + right;
        let d = self.data();
        let mut out = vec![0f32; rows * new_last];
        for r in 0..rows {
            out[r * new_last + left..r * new_last + left + last]
                .copy_from_slice(&d[r * last..(r + 1) * last]);
        }
        drop(d);
        let mut new_shape = s.to_vec();
        let nd = new_shape.len();
        new_shape[nd - 1] = new_last;
        Tensor::from_op(
            out,
            &new_shape,
            vec![self.clone()],
            Box::new(move |node, gout| {
                let n = node.op_parents()[0].numel();
                let last = n / rows;
                let mut g = vec![0f32; n];
                for r in 0..rows {
                    g[r * last..(r + 1) * last]
                        .copy_from_slice(&gout[r * new_last + left..r * new_last + left + last]);
                }
                vec![Some(g)]
            }),
        )
    }

    /// Reverse the last dimension (time reversal).
    pub fn flip_last(&self) -> Tensor {
        let s = self.shape().to_vec();
        let last = *s.last().expect("flip on 0-d tensor"); // aimts-lint: allow(A001, 0-d tensors are rejected at construction by every caller path)
        let rows = self.numel() / last;
        let d = self.data();
        let mut out = vec![0f32; d.len()];
        for r in 0..rows {
            for i in 0..last {
                out[r * last + i] = d[r * last + (last - 1 - i)];
            }
        }
        drop(d);
        Tensor::from_op(
            out,
            &s,
            vec![self.clone()],
            Box::new(move |_, gout| {
                let mut g = vec![0f32; gout.len()];
                for r in 0..rows {
                    for i in 0..last {
                        g[r * last + i] = gout[r * last + (last - 1 - i)];
                    }
                }
                vec![Some(g)]
            }),
        )
    }

    /// Cumulative sum along the last dimension.
    pub fn cumsum_last(&self) -> Tensor {
        let s = self.shape().to_vec();
        let last = *s.last().expect("cumsum on 0-d tensor"); // aimts-lint: allow(A001, 0-d tensors are rejected at construction by every caller path)
        let rows = self.numel() / last;
        let d = self.data();
        let mut out = vec![0f32; d.len()];
        for r in 0..rows {
            let mut acc = 0f32;
            for i in 0..last {
                acc += d[r * last + i];
                out[r * last + i] = acc;
            }
        }
        drop(d);
        Tensor::from_op(
            out,
            &s,
            vec![self.clone()],
            Box::new(move |_, gout| {
                // d out_j / d in_i = 1 for i <= j → reverse cumulative sum.
                let mut g = vec![0f32; gout.len()];
                for r in 0..rows {
                    let mut acc = 0f32;
                    for i in (0..last).rev() {
                        acc += gout[r * last + i];
                        g[r * last + i] = acc;
                    }
                }
                vec![Some(g)]
            }),
        )
    }

    /// Repeat the whole tensor `k` times along a new leading dimension.
    pub fn repeat_rows(&self, k: usize) -> Tensor {
        assert!(k >= 1);
        let mut target = vec![k];
        target.extend_from_slice(self.shape());
        self.unsqueeze(0).broadcast_to(&target)
    }
}

#[cfg(test)]
mod tests {
    use crate::{check_gradients, Tensor};

    #[test]
    fn pad_values_and_grad() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let y = x.pad_last(1, 2);
        assert_eq!(y.shape(), &[2, 5]);
        assert_eq!(y.to_vec(), vec![0., 1., 2., 0., 0., 0., 3., 4., 0., 0.]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![1.0; 4]);
    }

    #[test]
    fn flip_is_involution() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        assert_eq!(x.flip_last().to_vec(), vec![3., 2., 1., 6., 5., 4.]);
        assert_eq!(x.flip_last().flip_last().to_vec(), x.to_vec());
    }

    #[test]
    fn cumsum_known() {
        let x = Tensor::from_vec(vec![1., 2., 3., 10., 20., 30.], &[2, 3]);
        assert_eq!(x.cumsum_last().to_vec(), vec![1., 3., 6., 10., 30., 60.]);
    }

    #[test]
    fn repeat_rows_shape_and_grad() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad();
        let y = x.repeat_rows(3);
        assert_eq!(y.shape(), &[3, 2]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![3.0, 3.0]);
    }

    #[test]
    fn gc_extra_ops() {
        let x = Tensor::randn(&[2, 5], 3);
        check_gradients(
            &|i| i[0].pad_last(2, 1).square().sum_all(),
            std::slice::from_ref(&x),
            1e-2,
            2e-2,
        );
        check_gradients(
            &|i| i[0].flip_last().square().sum_all(),
            std::slice::from_ref(&x),
            1e-2,
            2e-2,
        );
        check_gradients(&|i| i[0].cumsum_last().square().sum_all(), &[x], 1e-2, 2e-2);
    }
}
