//! Element-wise unary operations and activations.

use crate::arena;
use crate::plan;
use crate::tensor::Tensor;

/// Scalar ReLU shared by the eager op and the fused conv→act plan kernel.
#[inline]
pub(crate) fn relu_scalar(x: f32) -> f32 {
    x.max(0.0)
}

/// Scalar GELU (tanh approximation) shared by the eager op and the fused
/// conv→act plan kernel.
#[inline]
pub(crate) fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Build a unary op given forward `f` and derivative-from-input `df`.
/// `f` is `Copy` so the trace hook can capture it for replay without
/// boxing on the eager path.
fn unary(
    t: &Tensor,
    op: plan::Op,
    f: impl Fn(f32) -> f32 + Copy + Send + Sync + 'static,
    df: impl Fn(f32) -> f32 + Send + Sync + 'static,
) -> Tensor {
    let d = t.data();
    let out = arena::map_collect(d.len(), d.iter().map(|&x| f(x)));
    drop(d);
    let y = Tensor::from_op(
        out,
        t.shape(),
        vec![t.clone()],
        Box::new(move |node, gout| {
            let x = node.op_parents()[0].data();
            vec![Some(arena::map_collect(
                gout.len(),
                gout.iter().zip(x.iter()).map(|(g, &xi)| g * df(xi)),
            ))]
        }),
    );
    plan::record(&y, op, plan::Attr::None, &[t], move |ps| {
        let d = ps[0].data();
        arena::map_collect(d.len(), d.iter().map(|&x| f(x)))
    });
    y
}

impl Tensor {
    /// Element-wise negation.
    pub fn neg(&self) -> Tensor {
        self.mul_scalar(-1.0)
    }

    /// Element-wise exponential.
    pub fn exp(&self) -> Tensor {
        let d = self.data();
        let out = arena::map_collect(d.len(), d.iter().map(|x| x.exp()));
        drop(d);
        // d/dx exp(x) = exp(x) = output, so reuse the node's own data.
        let y = Tensor::from_op(
            out,
            self.shape(),
            vec![self.clone()],
            Box::new(|node, gout| {
                let y = node.data();
                vec![Some(arena::map_collect(
                    gout.len(),
                    gout.iter().zip(y.iter()).map(|(g, yi)| g * yi),
                ))]
            }),
        );
        plan::record(&y, plan::Op::Exp, plan::Attr::None, &[self], |ps| {
            let d = ps[0].data();
            arena::map_collect(d.len(), d.iter().map(|x| x.exp()))
        });
        y
    }

    /// Element-wise natural logarithm.
    pub fn ln(&self) -> Tensor {
        unary(self, plan::Op::Ln, |x| x.ln(), |x| 1.0 / x)
    }

    /// Element-wise square root.
    pub fn sqrt(&self) -> Tensor {
        let d = self.data();
        let out = arena::map_collect(d.len(), d.iter().map(|x| x.sqrt()));
        drop(d);
        let y = Tensor::from_op(
            out,
            self.shape(),
            vec![self.clone()],
            Box::new(|node, gout| {
                let y = node.data();
                vec![Some(arena::map_collect(
                    gout.len(),
                    gout.iter()
                        .zip(y.iter())
                        .map(|(g, yi)| g * 0.5 / yi.max(1e-12)),
                ))]
            }),
        );
        plan::record(&y, plan::Op::Sqrt, plan::Attr::None, &[self], |ps| {
            let d = ps[0].data();
            arena::map_collect(d.len(), d.iter().map(|x| x.sqrt()))
        });
        y
    }

    /// Element-wise square.
    pub fn square(&self) -> Tensor {
        unary(self, plan::Op::Square, |x| x * x, |x| 2.0 * x)
    }

    /// Element-wise absolute value (subgradient 0 at 0).
    pub fn abs(&self) -> Tensor {
        unary(self, plan::Op::Abs, f32::abs, |x| {
            if x > 0.0 {
                1.0
            } else if x < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
    }

    /// Element-wise power with a constant exponent.
    pub fn powf(&self, p: f32) -> Tensor {
        unary(
            self,
            plan::Op::Powf,
            move |x| x.powf(p),
            move |x| p * x.powf(p - 1.0),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        unary(self, plan::Op::Relu, relu_scalar, |x| {
            if x > 0.0 {
                1.0
            } else {
                0.0
            }
        })
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&self, alpha: f32) -> Tensor {
        unary(
            self,
            plan::Op::LeakyRelu,
            move |x| if x > 0.0 { x } else { alpha * x },
            move |x| if x > 0.0 { 1.0 } else { alpha },
        )
    }

    /// Gaussian error linear unit (tanh approximation, as used by GPT-style
    /// models; max error vs exact GELU < 1e-3).
    pub fn gelu(&self) -> Tensor {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        unary(self, plan::Op::Gelu, gelu_scalar, |x| {
            let u = C * (x + 0.044715 * x * x * x);
            let t = u.tanh();
            let du = C * (1.0 + 3.0 * 0.044715 * x * x);
            0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
        })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        let d = self.data();
        let out = arena::map_collect(d.len(), d.iter().map(|x| 1.0 / (1.0 + (-x).exp())));
        drop(d);
        let y = Tensor::from_op(
            out,
            self.shape(),
            vec![self.clone()],
            Box::new(|node, gout| {
                let y = node.data();
                vec![Some(arena::map_collect(
                    gout.len(),
                    gout.iter().zip(y.iter()).map(|(g, yi)| g * yi * (1.0 - yi)),
                ))]
            }),
        );
        plan::record(&y, plan::Op::Sigmoid, plan::Attr::None, &[self], |ps| {
            let d = ps[0].data();
            arena::map_collect(d.len(), d.iter().map(|x| 1.0 / (1.0 + (-x).exp())))
        });
        y
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        let d = self.data();
        let out = arena::map_collect(d.len(), d.iter().map(|x| x.tanh()));
        drop(d);
        let y = Tensor::from_op(
            out,
            self.shape(),
            vec![self.clone()],
            Box::new(|node, gout| {
                let y = node.data();
                vec![Some(arena::map_collect(
                    gout.len(),
                    gout.iter().zip(y.iter()).map(|(g, yi)| g * (1.0 - yi * yi)),
                ))]
            }),
        );
        plan::record(&y, plan::Op::Tanh, plan::Attr::None, &[self], |ps| {
            let d = ps[0].data();
            arena::map_collect(d.len(), d.iter().map(|x| x.tanh()))
        });
        y
    }

    /// Clamp into `[lo, hi]` (zero gradient outside the interval).
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        unary(
            self,
            plan::Op::Clamp,
            move |x| x.clamp(lo, hi),
            move |x| if x >= lo && x <= hi { 1.0 } else { 0.0 },
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn exp_ln_roundtrip() {
        let a = Tensor::from_vec(vec![0.5, 1.0, 2.0], &[3]);
        let y = a.exp().ln();
        for (x, y) in a.to_vec().iter().zip(y.to_vec()) {
            assert!(close(*x, y));
        }
    }

    #[test]
    fn relu_forward_backward() {
        let a = Tensor::from_vec(vec![-1.0, 0.5], &[2]).requires_grad();
        let y = a.relu();
        assert_eq!(y.to_vec(), vec![0.0, 0.5]);
        y.sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn sigmoid_midpoint() {
        let y = Tensor::scalar(0.0).sigmoid();
        assert!(close(y.item(), 0.5));
    }

    #[test]
    fn tanh_backward() {
        let a = Tensor::scalar(0.0).requires_grad();
        a.tanh().backward();
        assert!(close(a.grad().unwrap()[0], 1.0));
    }

    #[test]
    fn gelu_values() {
        // GELU(0)=0, GELU(large)≈identity, GELU(-large)≈0.
        assert!(close(Tensor::scalar(0.0).gelu().item(), 0.0));
        assert!(close(Tensor::scalar(5.0).gelu().item(), 5.0));
        assert!(Tensor::scalar(-5.0).gelu().item().abs() < 1e-3);
    }

    #[test]
    fn clamp_gradient_mask() {
        let a = Tensor::from_vec(vec![-2.0, 0.5, 2.0], &[3]).requires_grad();
        a.clamp(-1.0, 1.0).sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn square_and_powf_agree() {
        let a = Tensor::from_vec(vec![1.5, 2.0], &[2]);
        assert_eq!(a.square().to_vec(), a.powf(2.0).to_vec());
    }
}
