//! Matrix multiplication: 2-D, batched 3-D, and 3-D × 2-D.

use rayon::prelude::*;

use crate::arena;
use crate::plan;
use crate::simd;
use crate::tensor::{read_pair, Tensor};

/// `c += a (m×k) · b (k×n)` — cache-friendly ikj kernel. The inner axpy
/// runs at the dispatched SIMD level (bit-identical to scalar — see
/// `crate::simd`).
pub(crate) fn mm_acc(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let crow = &mut c[i * n..(i + 1) * n];
        for p in 0..k {
            let av = a[i * k + p];
            // aimts-lint: allow(A004, exact-zero skip: sparsity fast path, any nonzero must multiply)
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            simd::axpy(crow, av, brow);
        }
    }
}

/// `a (m×k) · b (k×n)` with rows parallelized when large.
pub(crate) fn mm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = arena::zeroed(m * n);
    if m * n * k >= 1 << 16 && m > 1 {
        c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
            for p in 0..k {
                let av = a[i * k + p];
                // aimts-lint: allow(A004, exact-zero skip: sparsity fast path, any nonzero must multiply)
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                simd::axpy(crow, av, brow);
            }
        });
    } else {
        mm_acc(&mut c, a, b, m, k, n);
    }
    c
}

/// Transpose an `r×c` row-major matrix (arena-backed scratch).
pub(crate) fn transpose2d(x: &[f32], r: usize, c: usize) -> Vec<f32> {
    let mut out = arena::zeroed(r * c);
    for i in 0..r {
        for j in 0..c {
            out[j * r + i] = x[i * c + j];
        }
    }
    out
}

impl Tensor {
    /// Matrix product.
    ///
    /// Supported shapes:
    /// * `[m,k] · [k,n] -> [m,n]`
    /// * `[B,m,k] · [B,k,n] -> [B,m,n]`
    /// * `[B,m,k] · [k,n] -> [B,m,n]` (shared right operand)
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        match (self.ndim(), other.ndim()) {
            (2, 2) => self.matmul_2d(other),
            (3, 3) => self.matmul_batched(other),
            (3, 2) => self.matmul_3d_2d(other),
            // aimts-lint: allow(A001, rank mismatch is a caller programming error, covered by matmul_bad_dims test)
            _ => panic!(
                "unsupported matmul ranks: {:?} x {:?}",
                self.shape(),
                other.shape()
            ),
        }
    }

    fn matmul_2d(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
        let (ad, bd) = read_pair(self, other);
        let out = mm(&ad, &bd, m, k, n);
        drop((ad, bd));
        let t = Tensor::from_op(
            out,
            &[m, n],
            vec![self.clone(), other.clone()],
            Box::new(move |node, gout| {
                let (a, b) = read_pair(&node.op_parents()[0], &node.op_parents()[1]);
                // ga = gout · b^T ; gb = a^T · gout
                let bt = transpose2d(&b, k, n);
                let at = transpose2d(&a, m, k);
                let ga = mm(gout, &bt, m, n, k);
                let gb = mm(&at, gout, k, m, n);
                arena::recycle(bt);
                arena::recycle(at);
                vec![Some(ga), Some(gb)]
            }),
        );
        plan::record(
            &t,
            plan::Op::Matmul,
            plan::Attr::None,
            &[self, other],
            move |ps| {
                let (ad, bd) = read_pair(&ps[0], &ps[1]);
                mm(&ad, &bd, m, k, n)
            },
        );
        t
    }

    fn matmul_batched(&self, other: &Tensor) -> Tensor {
        let (bsz, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let (b2, k2, n) = (other.shape()[0], other.shape()[1], other.shape()[2]);
        assert_eq!(bsz, b2, "batched matmul batch dims differ");
        assert_eq!(k, k2, "matmul inner dims differ");
        let (ad_ref, bd_ref) = read_pair(self, other);
        let (ad, bd): (&[f32], &[f32]) = (&ad_ref, &bd_ref);
        let mut out = arena::zeroed(bsz * m * n);
        out.par_chunks_mut(m * n)
            .enumerate()
            .for_each(|(bi, chunk)| {
                mm_acc(
                    chunk,
                    &ad[bi * m * k..(bi + 1) * m * k],
                    &bd[bi * k * n..(bi + 1) * k * n],
                    m,
                    k,
                    n,
                );
            });
        drop((ad_ref, bd_ref));
        let t = Tensor::from_op(
            out,
            &[bsz, m, n],
            vec![self.clone(), other.clone()],
            Box::new(move |node, gout| {
                let (a, b) = read_pair(&node.op_parents()[0], &node.op_parents()[1]);
                let mut ga = arena::zeroed(bsz * m * k);
                let mut gb = arena::zeroed(bsz * k * n);
                for bi in 0..bsz {
                    let go = &gout[bi * m * n..(bi + 1) * m * n];
                    let ab = &a[bi * m * k..(bi + 1) * m * k];
                    let bb = &b[bi * k * n..(bi + 1) * k * n];
                    let bt = transpose2d(bb, k, n);
                    let at = transpose2d(ab, m, k);
                    mm_acc(&mut ga[bi * m * k..(bi + 1) * m * k], go, &bt, m, n, k);
                    mm_acc(&mut gb[bi * k * n..(bi + 1) * k * n], &at, go, k, m, n);
                    arena::recycle(bt);
                    arena::recycle(at);
                }
                vec![Some(ga), Some(gb)]
            }),
        );
        plan::record(
            &t,
            plan::Op::Matmul,
            plan::Attr::None,
            &[self, other],
            move |ps| {
                let (ad_ref, bd_ref) = read_pair(&ps[0], &ps[1]);
                let (ad, bd): (&[f32], &[f32]) = (&ad_ref, &bd_ref);
                let mut out = arena::zeroed(bsz * m * n);
                out.par_chunks_mut(m * n)
                    .enumerate()
                    .for_each(|(bi, chunk)| {
                        mm_acc(
                            chunk,
                            &ad[bi * m * k..(bi + 1) * m * k],
                            &bd[bi * k * n..(bi + 1) * k * n],
                            m,
                            k,
                            n,
                        );
                    });
                out
            },
        );
        t
    }

    fn matmul_3d_2d(&self, other: &Tensor) -> Tensor {
        let (bsz, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul inner dims differ");
        // Fold batch into rows: [B*m, k] · [k, n].
        let (ad, bd) = read_pair(self, other);
        let out = mm(&ad, &bd, bsz * m, k, n);
        drop((ad, bd));
        let t = Tensor::from_op(
            out,
            &[bsz, m, n],
            vec![self.clone(), other.clone()],
            Box::new(move |node, gout| {
                let (a, b) = read_pair(&node.op_parents()[0], &node.op_parents()[1]);
                let bt = transpose2d(&b, k, n);
                let ga = mm(gout, &bt, bsz * m, n, k);
                let at = transpose2d(&a, bsz * m, k);
                let gb = mm(&at, gout, k, bsz * m, n);
                arena::recycle(bt);
                arena::recycle(at);
                vec![Some(ga), Some(gb)]
            }),
        );
        plan::record(
            &t,
            plan::Op::Matmul,
            plan::Attr::None,
            &[self, other],
            move |ps| {
                let (ad, bd) = read_pair(&ps[0], &ps[1]);
                mm(&ad, &bd, bsz * m, k, n)
            },
        );
        t
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn matmul_2d_known() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
        let b = Tensor::from_vec(vec![5., 6., 7., 8.], &[2, 2]);
        assert_eq!(a.matmul(&b).to_vec(), vec![19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_2d_backward() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]).requires_grad();
        let b = Tensor::from_vec(vec![5., 6., 7., 8.], &[2, 2]).requires_grad();
        a.matmul(&b).sum_all().backward();
        // ga = ones · b^T -> rows sum of b columns.
        assert_eq!(a.grad().unwrap(), vec![11., 15., 11., 15.]);
        assert_eq!(b.grad().unwrap(), vec![4., 4., 6., 6.]);
    }

    #[test]
    fn matmul_batched_matches_per_batch() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[2, 2, 3]);
        let b = Tensor::from_vec((0..12).map(|x| (x as f32) * 0.5).collect(), &[2, 3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        // batch 0 manual check: [[0,1,2],[3,4,5]] x [[0,.5],[1,1.5],[2,2.5]]
        let v = c.to_vec();
        assert_eq!(&v[..4], &[5.0, 6.5, 14.0, 20.0]);
    }

    #[test]
    fn matmul_3d_2d_shape() {
        let a = Tensor::ones(&[4, 3, 5]);
        let b = Tensor::ones(&[5, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[4, 3, 2]);
        assert!(c.to_vec().iter().all(|&x| x == 5.0));
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_bad_dims() {
        let _ = Tensor::ones(&[2, 3]).matmul(&Tensor::ones(&[4, 2]));
    }
}
