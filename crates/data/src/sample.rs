//! Core dataset types.

use serde::{Deserialize, Serialize};

/// A multivariate series: `vars[m]` is the series of the m-th variable.
/// Univariate samples have `vars.len() == 1`.
pub type MultiSeries = Vec<Vec<f32>>;

/// One labeled time-series sample (paper Definition 1/2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    pub vars: MultiSeries,
    pub label: usize,
}

impl Sample {
    pub fn new(vars: MultiSeries, label: usize) -> Self {
        debug_assert!(!vars.is_empty());
        Sample { vars, label }
    }

    /// Number of variables `M`.
    pub fn n_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of time steps `T`.
    pub fn len(&self) -> usize {
        self.vars[0].len()
    }

    pub fn is_empty(&self) -> bool {
        self.vars[0].is_empty()
    }
}

/// A train or test split.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Split {
    pub samples: Vec<Sample>,
}

impl Split {
    pub fn new(samples: Vec<Sample>) -> Self {
        Split { samples }
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Labels in sample order.
    pub fn labels(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.label).collect()
    }

    /// Count of samples per class (indexed by label).
    pub fn class_counts(&self, n_classes: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_classes];
        for s in &self.samples {
            counts[s.label] += 1;
        }
        counts
    }
}

/// A named classification dataset with train/test splits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    pub name: String,
    /// Domain tag ("ecg", "motion", "sensor", ...), used to reason about
    /// cross-domain transfer in the experiments.
    pub domain: String,
    pub n_classes: usize,
    pub train: Split,
    pub test: Split,
}

impl Dataset {
    /// Number of variables `M` (from the first train sample).
    pub fn n_vars(&self) -> usize {
        self.train.samples[0].n_vars()
    }

    /// Series length `T` (from the first train sample).
    pub fn series_len(&self) -> usize {
        self.train.samples[0].len()
    }

    /// Strip labels from the training split — the multi-source pre-training
    /// pool is unlabeled (paper §III-B).
    pub fn unlabeled_train(&self) -> Vec<MultiSeries> {
        self.train.samples.iter().map(|s| s.vars.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let tr = Split::new(vec![
            Sample::new(vec![vec![0.0, 1.0, 2.0]], 0),
            Sample::new(vec![vec![2.0, 1.0, 0.0]], 1),
        ]);
        let te = Split::new(vec![Sample::new(vec![vec![0.0, 1.0, 2.0]], 0)]);
        Dataset {
            name: "toy".into(),
            domain: "test".into(),
            n_classes: 2,
            train: tr,
            test: te,
        }
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.n_vars(), 1);
        assert_eq!(d.series_len(), 3);
        assert_eq!(d.train.labels(), vec![0, 1]);
        assert_eq!(d.train.class_counts(2), vec![1, 1]);
        assert_eq!(d.unlabeled_train().len(), 2);
    }
}
