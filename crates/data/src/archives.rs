//! Synthetic archive builders: UCR-like (univariate), UEA-like
//! (multivariate) and a Monash-like unlabeled multi-source pre-training
//! pool. Dataset configurations are deterministic per seed; pool
//! configurations are disjoint from archive configurations (different seed
//! stream), mirroring the paper's out-of-domain pre-training setting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generator::{DatasetSpec, PatternFamily};
use crate::sample::{Dataset, MultiSeries};

/// Build `n` univariate datasets cycling through all pattern families with
/// varied lengths, class counts, and (small) train splits — a stand-in for
/// the UCR archive.
pub fn ucr_like_archive(n: usize, seed: u64) -> Vec<Dataset> {
    let lengths = [64usize, 96, 128];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let family = PatternFamily::ALL[i % PatternFamily::ALL.len()];
            let n_classes = (2 + i / PatternFamily::ALL.len()).min(family.max_classes());
            DatasetSpec {
                name: format!("ucr_like_{:03}_{}", i, family.domain()),
                family,
                n_classes,
                length: lengths[i % lengths.len()],
                n_vars: 1,
                // Label-scarce training splits with substantial noise: the
                // paper's motivating regime (insufficient labeled samples).
                train_per_class: 4 + (i % 3) * 2,
                test_per_class: 30,
                noise: 0.2 + 0.05 * (i % 3) as f32,
                seed: rng.gen(),
            }
            .generate()
        })
        .collect()
}

/// Build `n` multivariate datasets (2–4 variables) — a stand-in for the
/// UEA archive.
pub fn uea_like_archive(n: usize, seed: u64) -> Vec<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x5EA));
    (0..n)
        .map(|i| {
            let family = PatternFamily::ALL[(i * 5 + 3) % PatternFamily::ALL.len()];
            let n_classes = (2 + i % 3).min(family.max_classes());
            DatasetSpec {
                name: format!("uea_like_{:03}_{}", i, family.domain()),
                family,
                n_classes,
                length: 96,
                n_vars: 2 + i % 3,
                train_per_class: 4 + (i % 2) * 2,
                test_per_class: 24,
                noise: 0.25,
                seed: rng.gen(),
            }
            .generate()
        })
        .collect()
}

/// Unlabeled multi-source pre-training pool — a stand-in for the Monash
/// archive (19 datasets across domains; 4 univariate + 15 multivariate).
///
/// Configurations use a seed stream disjoint from [`ucr_like_archive`] /
/// [`uea_like_archive`], so downstream datasets are *not* seen during
/// pre-training (the paper's Paradigm 4 setting).
pub fn monash_like_pool(samples_per_source: usize, seed: u64) -> Vec<MultiSeries> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x30AA5));
    let mut pool = Vec::new();
    for (i, family) in PatternFamily::ALL.iter().enumerate() {
        // One univariate and one multivariate source per family.
        for &n_vars in &[1usize, 1 + (i % 3) + 1] {
            let spec = DatasetSpec {
                name: format!("monash_like_{i}_{n_vars}"),
                family: *family,
                n_classes: family.max_classes().min(3),
                length: [64, 96, 128][i % 3],
                n_vars,
                train_per_class: samples_per_class(samples_per_source, family.max_classes().min(3)),
                test_per_class: 1,
                // Noise level matched to the downstream archives so
                // pre-trained features are tuned to realistic inputs.
                noise: 0.2,
                seed: rng.gen(),
            };
            pool.extend(spec.generate().unlabeled_train());
        }
    }
    pool
}

fn samples_per_class(total: usize, n_classes: usize) -> usize {
    (total / n_classes).max(1)
}

/// The 10 named UEA datasets of the paper's Table II, as synthetic
/// equivalents with comparable variable counts and class counts.
pub fn table2_uea_datasets(seed: u64) -> Vec<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x7AB2));
    let configs: [(&str, PatternFamily, usize, usize); 10] = [
        ("EthanolConcentration(sim)", PatternFamily::ArTexture, 3, 3),
        ("FaceDetection(sim)", PatternFamily::BurstCount, 2, 4),
        ("Handwriting(sim)", PatternFamily::Trajectory, 6, 3),
        ("Heartbeat(sim)", PatternFamily::EcgTWave, 2, 4),
        ("JapaneseVowels(sim)", PatternFamily::SinePhase, 6, 4),
        ("PEMS-SF(sim)", PatternFamily::WalkDrift, 3, 4),
        ("SelfRegulationSCP1(sim)", PatternFamily::SineFreq, 2, 3),
        ("SelfRegulationSCP2(sim)", PatternFamily::ArTexture, 2, 4),
        ("SpokenArabicDigits(sim)", PatternFamily::Chirp, 6, 3),
        ("UWaveGestureLibrary(sim)", PatternFamily::Trajectory, 6, 3),
    ];
    configs
        .iter()
        .map(|(name, family, n_classes, n_vars)| {
            DatasetSpec {
                name: name.to_string(),
                family: *family,
                n_classes: (*n_classes).min(family.max_classes()),
                length: 96,
                n_vars: *n_vars,
                train_per_class: 12,
                test_per_class: 20,
                noise: 0.1,
                seed: rng.gen(),
            }
            .generate()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ucr_like_sizes_and_names() {
        let a = ucr_like_archive(14, 0);
        assert_eq!(a.len(), 14);
        assert!(a.iter().all(|d| d.n_vars() == 1));
        // Names unique.
        let mut names: Vec<&str> = a.iter().map(|d| d.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn ucr_like_covers_multiple_domains() {
        let a = ucr_like_archive(12, 0);
        let mut domains: Vec<&str> = a.iter().map(|d| d.domain.as_str()).collect();
        domains.sort_unstable();
        domains.dedup();
        assert!(domains.len() >= 8, "domains {domains:?}");
    }

    #[test]
    fn uea_like_multivariate() {
        let a = uea_like_archive(6, 0);
        assert!(a.iter().all(|d| d.n_vars() >= 2));
    }

    #[test]
    fn monash_pool_mixes_shapes() {
        let pool = monash_like_pool(6, 0);
        assert!(pool.len() >= 100, "pool {}", pool.len());
        let n_vars: std::collections::HashSet<usize> = pool.iter().map(|s| s.len()).collect();
        assert!(n_vars.len() >= 2, "expected mixed variable counts");
        let lens: std::collections::HashSet<usize> = pool.iter().map(|s| s[0].len()).collect();
        assert!(lens.len() >= 2, "expected mixed lengths");
    }

    #[test]
    fn archives_deterministic() {
        assert_eq!(ucr_like_archive(3, 5), ucr_like_archive(3, 5));
        assert_eq!(monash_like_pool(4, 5), monash_like_pool(4, 5));
    }

    #[test]
    fn table2_has_ten_named_datasets() {
        let ds = table2_uea_datasets(0);
        assert_eq!(ds.len(), 10);
        assert!(ds.iter().any(|d| d.name.contains("Heartbeat")));
        assert!(ds.iter().all(|d| d.n_vars() >= 3));
    }
}
