//! Named synthetic equivalents of the specific datasets the paper uses in
//! its transfer, few-shot, efficiency and case-study experiments
//! (Tables III/V, Figs. 7–9). Each generator preserves the domain
//! characteristic the experiment depends on; see DESIGN.md §2.

use crate::generator::{DatasetSpec, PatternFamily};
use crate::sample::Dataset;

#[allow(clippy::too_many_arguments)]
fn spec(
    name: &str,
    family: PatternFamily,
    n_classes: usize,
    length: usize,
    n_vars: usize,
    train_per_class: usize,
    test_per_class: usize,
    seed: u64,
) -> DatasetSpec {
    DatasetSpec {
        name: name.to_string(),
        family,
        n_classes: n_classes.min(family.max_classes()),
        length,
        n_vars,
        train_per_class,
        test_per_class,
        noise: 0.1,
        seed,
    }
}

/// ECG200 equivalent: healthy vs myocardial-infarction ECG where the class
/// signal is T-wave polarity — the paper's Fig. 2 motivating example.
/// Jitter/slicing can genuinely flip the apparent class.
pub fn ecg200_like(seed: u64) -> Dataset {
    spec(
        "ECG200(sim)",
        PatternFamily::EcgTWave,
        2,
        96,
        1,
        25,
        25,
        seed,
    )
    .generate()
}

/// StarLightCurves equivalent: 3 classes of periodic brightness dips.
/// Used by the Fig. 7c/d efficiency study and the Fig. 9 case study.
pub fn starlight_like(seed: u64) -> Dataset {
    spec(
        "StarLightCurves(sim)",
        PatternFamily::StarDip,
        3,
        128,
        1,
        30,
        60,
        seed,
    )
    .generate()
}

/// Epilepsy equivalent: 2 classes (seizure bursts vs background EEG).
pub fn epilepsy_like(seed: u64) -> Dataset {
    spec(
        "Epilepsy(sim)",
        PatternFamily::BurstCount,
        2,
        128,
        1,
        20,
        40,
        seed,
    )
    .generate()
}

/// FD-B equivalent: bearing-fault impulse trains with 3 fault periods.
pub fn fdb_like(seed: u64) -> Dataset {
    spec(
        "FD-B(sim)",
        PatternFamily::ImpulsePeriod,
        3,
        128,
        1,
        20,
        40,
        seed,
    )
    .generate()
}

/// Gesture equivalent: 6 classes of smooth accelerometer trajectories,
/// 3 variables (x/y/z axes).
pub fn gesture_like(seed: u64) -> Dataset {
    spec(
        "Gesture(sim)",
        PatternFamily::Trajectory,
        6,
        96,
        3,
        12,
        20,
        seed,
    )
    .generate()
}

/// EMG equivalent: 3 classes of muscle-activation burst patterns.
pub fn emg_like(seed: u64) -> Dataset {
    spec(
        "EMG(sim)",
        PatternFamily::BurstCount,
        3,
        128,
        1,
        15,
        30,
        seed,
    )
    .generate()
}

/// SleepEEG equivalent: 5 oscillation-band classes; the single-source
/// pre-training corpus of the paper's Table III baselines, and the
/// workload for the Fig. 8 scalability study (long series supported).
pub fn sleepeeg_like(length: usize, per_class: usize, seed: u64) -> Dataset {
    spec(
        "SleepEEG(sim)",
        PatternFamily::SineFreq,
        5,
        length,
        1,
        per_class,
        per_class,
        seed,
    )
    .generate()
}

/// Handwriting equivalent (few-shot suite): many classes, 3 variables.
pub fn handwriting_like(seed: u64) -> Dataset {
    spec(
        "Handwriting(sim)",
        PatternFamily::Trajectory,
        6,
        96,
        3,
        10,
        20,
        seed,
    )
    .generate()
}

/// RacketSports equivalent (few-shot suite): 4 classes, 6 variables.
pub fn racketsports_like(seed: u64) -> Dataset {
    spec(
        "RacketSports(sim)",
        PatternFamily::BurstCount,
        4,
        64,
        6,
        10,
        20,
        seed,
    )
    .generate()
}

/// SelfRegulationSCP1 equivalent (few-shot suite): 2 classes, 3 variables.
pub fn scp1_like(seed: u64) -> Dataset {
    spec(
        "SelfRegulationSCP1(sim)",
        PatternFamily::SineFreq,
        2,
        128,
        3,
        15,
        30,
        seed,
    )
    .generate()
}

/// AllGestureWiimote{X,Y,Z} equivalents for the Fig. 7a/b parameter study;
/// `axis` ∈ {0,1,2} selects the variable phase like the three UCR datasets.
pub fn allgesture_like(axis: usize, seed: u64) -> Dataset {
    assert!(axis < 3, "axis must be 0 (X), 1 (Y) or 2 (Z)");
    let name = [
        "AllGestureWiimoteX(sim)",
        "AllGestureWiimoteY(sim)",
        "AllGestureWiimoteZ(sim)",
    ][axis];
    spec(
        name,
        PatternFamily::Trajectory,
        6,
        96,
        1,
        10,
        20,
        seed.wrapping_add(axis as u64),
    )
    .generate()
}

/// The 6-dataset few-shot suite of the paper's Table V.
pub fn fewshot_suite(seed: u64) -> Vec<Dataset> {
    vec![
        ecg200_like(seed),
        starlight_like(seed.wrapping_add(1)),
        epilepsy_like(seed.wrapping_add(2)),
        handwriting_like(seed.wrapping_add(3)),
        racketsports_like(seed.wrapping_add(4)),
        scp1_like(seed.wrapping_add(5)),
    ]
}

/// The 4-dataset transfer suite of the paper's Table III.
pub fn transfer_suite(seed: u64) -> Vec<Dataset> {
    vec![
        epilepsy_like(seed),
        fdb_like(seed.wrapping_add(1)),
        gesture_like(seed.wrapping_add(2)),
        emg_like(seed.wrapping_add(3)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_datasets_have_expected_shapes() {
        let e = ecg200_like(0);
        assert_eq!((e.n_classes, e.n_vars(), e.series_len()), (2, 1, 96));
        let g = gesture_like(0);
        assert_eq!((g.n_classes, g.n_vars()), (6, 3));
        let r = racketsports_like(0);
        assert_eq!(r.n_vars(), 6);
    }

    #[test]
    fn sleepeeg_scales_with_request() {
        let d = sleepeeg_like(256, 4, 0);
        assert_eq!(d.series_len(), 256);
        assert_eq!(d.train.len(), 20);
    }

    #[test]
    fn suites_complete() {
        assert_eq!(fewshot_suite(0).len(), 6);
        assert_eq!(transfer_suite(0).len(), 4);
        let names: Vec<String> = fewshot_suite(0).iter().map(|d| d.name.clone()).collect();
        assert!(names.iter().any(|n| n.contains("StarLight")));
    }

    #[test]
    fn allgesture_axes_differ() {
        let x = allgesture_like(0, 0);
        let y = allgesture_like(1, 0);
        assert_ne!(x.train.samples[0].vars, y.train.samples[0].vars);
    }

    #[test]
    #[should_panic(expected = "axis must be")]
    fn allgesture_bad_axis() {
        let _ = allgesture_like(3, 0);
    }
}
