//! Signal primitives composed by the dataset generators.
//!
//! Each primitive is deterministic given the RNG state, so entire archives
//! are reproducible from a single seed.

use rand::rngs::StdRng;
use rand::Rng;

/// One standard normal draw (Box–Muller).
pub fn randn(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Sine wave: `amp * sin(2π freq t / n + phase)`.
pub fn sine(n: usize, freq: f32, phase: f32, amp: f32) -> Vec<f32> {
    (0..n)
        .map(|t| amp * (2.0 * std::f32::consts::PI * freq * t as f32 / n as f32 + phase).sin())
        .collect()
}

/// Square wave with the given number of cycles.
pub fn square(n: usize, freq: f32, phase: f32, amp: f32) -> Vec<f32> {
    sine(n, freq, phase, 1.0)
        .iter()
        .map(|v| if *v >= 0.0 { amp } else { -amp })
        .collect()
}

/// Sawtooth wave.
pub fn sawtooth(n: usize, freq: f32, amp: f32) -> Vec<f32> {
    (0..n)
        .map(|t| {
            let x = (freq * t as f32 / n as f32).fract();
            amp * (2.0 * x - 1.0)
        })
        .collect()
}

/// Linear chirp from `f0` to `f1` cycles across the window.
pub fn chirp(n: usize, f0: f32, f1: f32, amp: f32) -> Vec<f32> {
    (0..n)
        .map(|t| {
            let x = t as f32 / n as f32;
            let phase = 2.0 * std::f32::consts::PI * (f0 * x + 0.5 * (f1 - f0) * x * x);
            amp * phase.sin()
        })
        .collect()
}

/// Gaussian bump centered at `center` (fractional position) with fractional
/// width `width` and the given amplitude.
pub fn gaussian_bump(n: usize, center: f32, width: f32, amp: f32) -> Vec<f32> {
    let c = center * n as f32;
    let w = (width * n as f32).max(1.0);
    (0..n)
        .map(|t| {
            let d = (t as f32 - c) / w;
            amp * (-0.5 * d * d).exp()
        })
        .collect()
}

/// Random walk with per-step drift and noise scale.
pub fn random_walk(n: usize, drift: f32, noise: f32, rng: &mut StdRng) -> Vec<f32> {
    let mut acc = 0f32;
    (0..n)
        .map(|_| {
            acc += drift + noise * randn(rng);
            acc
        })
        .collect()
}

/// AR(1) process `x_t = phi x_{t-1} + e_t`.
pub fn ar1(n: usize, phi: f32, noise: f32, rng: &mut StdRng) -> Vec<f32> {
    let mut prev = 0f32;
    (0..n)
        .map(|_| {
            prev = phi * prev + noise * randn(rng);
            prev
        })
        .collect()
}

/// A synthetic ECG beat train (P wave, QRS complex, T wave per beat).
///
/// `t_polarity = 1.0` gives an upright T wave (healthy); `-1.0` an
/// inverted T wave (myocardial infarction) — the class-defining structure
/// of the paper's ECG200 motivating example (Fig. 2).
pub fn ecg(n: usize, beats: usize, t_polarity: f32, rng: &mut StdRng) -> Vec<f32> {
    let mut out = vec![0f32; n];
    let beat_len = n / beats.max(1);
    for b in 0..beats {
        let start = b * beat_len;
        let jitter = (randn(rng) * 0.01 * beat_len as f32) as i64;
        let at = |frac: f32| -> f32 {
            (start as i64 + (frac * beat_len as f32) as i64 + jitter) as f32 / n as f32
        };
        // P wave: small bump.
        add(
            &mut out,
            &gaussian_bump(n, at(0.15), 0.02 * beat_len as f32 / n as f32, 0.2),
        );
        // Q dip, R spike, S dip.
        add(
            &mut out,
            &gaussian_bump(n, at(0.28), 0.008 * beat_len as f32 / n as f32, -0.2),
        );
        add(
            &mut out,
            &gaussian_bump(n, at(0.32), 0.010 * beat_len as f32 / n as f32, 1.2),
        );
        add(
            &mut out,
            &gaussian_bump(n, at(0.37), 0.008 * beat_len as f32 / n as f32, -0.35),
        );
        // T wave: polarity is the class signal.
        add(
            &mut out,
            &gaussian_bump(
                n,
                at(0.60),
                0.035 * beat_len as f32 / n as f32,
                0.45 * t_polarity,
            ),
        );
    }
    out
}

/// Sum `b` into `a` element-wise.
pub fn add(a: &mut [f32], b: &[f32]) {
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// Add i.i.d. Gaussian noise in place.
pub fn add_noise(x: &mut [f32], sigma: f32, rng: &mut StdRng) {
    for v in x.iter_mut() {
        *v += sigma * randn(rng);
    }
}

/// Burst envelope: mostly quiet with `bursts` high-activity windows of
/// fractional width `width` and amplitude `amp` (EMG / epilepsy building
/// block).
pub fn bursts(n: usize, nbursts: usize, width: f32, amp: f32, rng: &mut StdRng) -> Vec<f32> {
    let mut out = vec![0f32; n];
    for _ in 0..nbursts {
        let center: f32 = rng.gen_range(0.1..0.9);
        let env = gaussian_bump(n, center, width, 1.0);
        for (o, e) in out.iter_mut().zip(&env) {
            *o += amp * e * randn(rng);
        }
    }
    out
}

/// Periodic impulse train with the given period (bearing-fault building
/// block for the FD-B equivalent): sharp decaying spikes.
pub fn impulses(n: usize, period: usize, amp: f32, rng: &mut StdRng) -> Vec<f32> {
    let mut out = vec![0f32; n];
    let mut t = rng.gen_range(0..period.max(1));
    while t < n {
        let a = amp * (1.0 + 0.2 * randn(rng));
        for (k, slot) in out[t..].iter_mut().take(8).enumerate() {
            *slot += a * (-(k as f32) / 2.0).exp();
        }
        t += period.max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn sine_period() {
        let s = sine(100, 1.0, 0.0, 1.0);
        assert!((s[0]).abs() < 1e-6);
        assert!((s[25] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn square_binary_values() {
        let s = square(64, 2.0, 0.0, 3.0);
        assert!(s.iter().all(|&v| v == 3.0 || v == -3.0));
    }

    #[test]
    fn chirp_increases_frequency() {
        let s = chirp(400, 1.0, 10.0, 1.0);
        // Count zero crossings in the first vs last quarter.
        let cross = |w: &[f32]| w.windows(2).filter(|p| p[0] * p[1] < 0.0).count();
        assert!(cross(&s[300..]) > cross(&s[..100]));
    }

    #[test]
    fn gaussian_bump_peak_location() {
        let g = gaussian_bump(100, 0.5, 0.05, 2.0);
        let argmax = g
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!((argmax as i64 - 50).abs() <= 1);
        assert!((g[argmax] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn ecg_t_polarity_flips_t_wave() {
        let mut r1 = rng();
        let mut r2 = rng();
        let healthy = ecg(192, 2, 1.0, &mut r1);
        let mi = ecg(192, 2, -1.0, &mut r2);
        // T wave lives around 60% through each beat: sample there.
        let t_idx = (0.60 * 96.0) as usize;
        assert!(healthy[t_idx] > 0.0);
        assert!(mi[t_idx] < 0.0);
    }

    #[test]
    fn ar1_bounded_for_small_phi() {
        let mut r = rng();
        let s = ar1(1000, 0.5, 1.0, &mut r);
        assert!(s.iter().all(|v| v.abs() < 20.0));
    }

    #[test]
    fn impulses_are_sparse_and_positive_peaks() {
        let mut r = rng();
        let s = impulses(256, 32, 5.0, &mut r);
        let big = s.iter().filter(|v| v.abs() > 1.0).count();
        assert!(big > 4 && big < 128, "big {big}");
    }

    #[test]
    fn bursts_energy_concentrated() {
        let mut r = rng();
        let s = bursts(512, 2, 0.03, 3.0, &mut r);
        let energy: f32 = s.iter().map(|v| v * v).sum();
        assert!(energy > 0.0);
        // Most energy within the top decile of samples.
        let mut e: Vec<f32> = s.iter().map(|v| v * v).collect();
        e.sort_by(f32::total_cmp);
        let top: f32 = e[e.len() - e.len() / 10..].iter().sum();
        assert!(top / energy > 0.5);
    }

    #[test]
    fn random_walk_drifts() {
        let mut r = rng();
        let s = random_walk(500, 0.5, 0.1, &mut r);
        assert!(*s.last().unwrap() > 100.0);
    }
}
