//! Few-shot subsampling of training splits (paper Table V uses 5/15/20%
//! of each training set).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sample::Split;

/// Stratified subsample keeping `fraction` of the split (at least one
/// sample per class that was present). Deterministic per seed.
pub fn few_shot_subset(split: &Split, fraction: f32, seed: u64) -> Split {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Group indices per label.
    let mut by_class: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, s) in split.samples.iter().enumerate() {
        by_class.entry(s.label).or_default().push(i);
    }
    let mut keep = Vec::new();
    for idxs in by_class.values() {
        let k = ((idxs.len() as f32 * fraction).round() as usize)
            .max(1)
            .min(idxs.len());
        // Partial Fisher–Yates to pick k without replacement.
        let mut pool = idxs.clone();
        for j in 0..k {
            let pick = rng.gen_range(j..pool.len());
            pool.swap(j, pick);
        }
        keep.extend_from_slice(&pool[..k]);
    }
    keep.sort_unstable();
    Split::new(keep.into_iter().map(|i| split.samples[i].clone()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::Sample;

    fn split(per_class: usize, classes: usize) -> Split {
        let mut s = Vec::new();
        for c in 0..classes {
            for i in 0..per_class {
                s.push(Sample::new(vec![vec![i as f32; 4]], c));
            }
        }
        Split::new(s)
    }

    #[test]
    fn keeps_requested_fraction() {
        let s = split(20, 3);
        let sub = few_shot_subset(&s, 0.2, 0);
        assert_eq!(sub.len(), 12);
        assert_eq!(sub.class_counts(3), vec![4, 4, 4]);
    }

    #[test]
    fn at_least_one_per_class() {
        let s = split(5, 4);
        let sub = few_shot_subset(&s, 0.01, 0);
        assert_eq!(sub.class_counts(4), vec![1, 1, 1, 1]);
    }

    #[test]
    fn full_fraction_is_identity_size() {
        let s = split(7, 2);
        assert_eq!(few_shot_subset(&s, 1.0, 0).len(), 14);
    }

    #[test]
    fn deterministic() {
        let s = split(30, 2);
        assert_eq!(few_shot_subset(&s, 0.15, 9), few_shot_subset(&s, 0.15, 9));
        assert_ne!(
            few_shot_subset(&s, 0.15, 9).samples,
            few_shot_subset(&s, 0.15, 10).samples
        );
    }
}
