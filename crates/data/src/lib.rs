//! # aimts-data
//!
//! Datasets for the AimTS reproduction.
//!
//! The paper evaluates on the UCR (128 univariate), UEA (30 multivariate)
//! and Monash (19 unlabeled, multi-domain) archives plus five named
//! transfer datasets. Those archives cannot be redistributed here, so this
//! crate provides **synthetic multi-domain archives** whose datasets are
//! generated from parameterized pattern families with class-defining
//! structure and nuisance variation — preserving exactly the properties the
//! paper's claims rest on (cross-domain diversity, shape-defined labels,
//! small training splits). See DESIGN.md §2 for the substitution argument.
//!
//! A loader for the real UCR tab-separated format is included
//! ([`loader::load_ucr_tsv`]) so users with the archives can plug them in.
//!
//! ```
//! use aimts_data::archives::ucr_like_archive;
//! let archive = ucr_like_archive(4, 7);
//! assert_eq!(archive.len(), 4);
//! for ds in &archive {
//!     assert!(ds.train.len() >= ds.n_classes);
//!     assert_eq!(ds.train.samples[0].vars.len(), 1); // univariate
//! }
//! ```

// Library code must propagate errors, not unwrap: dataset loaders reject, never crash on, bad input
// (mirrors aimts-lint rule A001; tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod archives;
pub mod fewshot;
pub mod generator;
pub mod loader;
pub mod preprocess;
pub mod signals;
pub mod special;
pub mod stats;

mod sample;

pub use fewshot::few_shot_subset;
pub use generator::{DatasetSpec, PatternFamily};
pub use preprocess::{repair_missing, repair_missing_dataset, z_normalize, MissingValuePolicy};
pub use sample::{Dataset, MultiSeries, Sample, Split};
