//! Parameterized dataset generators.
//!
//! A [`PatternFamily`] defines *what makes classes differ* (shape
//! structure); a [`DatasetSpec`] instantiates a family into a concrete
//! [`Dataset`] with train/test splits, nuisance variation (random phase,
//! amplitude, offset) and additive noise. Families are chosen to mirror the
//! kinds of class structure found across the UCR/UEA domains.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sample::{Dataset, MultiSeries, Sample, Split};
use crate::signals;

/// The kind of class-defining structure a dataset has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternFamily {
    /// Class k has base frequency proportional to k+1 (sensor-like).
    SineFreq,
    /// Class k shifts the phase by k·2π/C (device-like).
    SinePhase,
    /// Healthy vs inverted-T-wave ECG (2 classes, medicine).
    EcgTWave,
    /// A Gaussian motif whose position depends on the class (spectro-like).
    MotifPosition,
    /// Waveform family per class: sine / square / sawtooth / chirp.
    WaveShape,
    /// Chirp direction and rate per class (audio-like).
    Chirp,
    /// AR(1) texture with class-dependent smoothness (finance-like).
    ArTexture,
    /// Star-light-curve-like periodic dips; class sets dip width/depth.
    StarDip,
    /// Burst activity; class sets the number of bursts (EEG/EMG-like).
    BurstCount,
    /// Periodic fault impulses; class sets the period (machinery-like).
    ImpulsePeriod,
    /// Smooth 2-segment trajectories; class sets turn curvature (motion).
    Trajectory,
    /// Random walk with class-dependent drift (traffic-like).
    WalkDrift,
}

impl PatternFamily {
    /// All families, in a stable order (used to build archives).
    pub const ALL: [PatternFamily; 12] = [
        PatternFamily::SineFreq,
        PatternFamily::SinePhase,
        PatternFamily::EcgTWave,
        PatternFamily::MotifPosition,
        PatternFamily::WaveShape,
        PatternFamily::Chirp,
        PatternFamily::ArTexture,
        PatternFamily::StarDip,
        PatternFamily::BurstCount,
        PatternFamily::ImpulsePeriod,
        PatternFamily::Trajectory,
        PatternFamily::WalkDrift,
    ];

    /// Domain tag used for cross-domain bookkeeping.
    pub fn domain(&self) -> &'static str {
        match self {
            PatternFamily::SineFreq | PatternFamily::SinePhase => "sensor",
            PatternFamily::EcgTWave => "ecg",
            PatternFamily::MotifPosition => "spectro",
            PatternFamily::WaveShape => "device",
            PatternFamily::Chirp => "audio",
            PatternFamily::ArTexture => "finance",
            PatternFamily::StarDip => "astronomy",
            PatternFamily::BurstCount => "eeg",
            PatternFamily::ImpulsePeriod => "machinery",
            PatternFamily::Trajectory => "motion",
            PatternFamily::WalkDrift => "traffic",
        }
    }

    /// Largest class count that stays meaningfully separable.
    pub fn max_classes(&self) -> usize {
        match self {
            PatternFamily::EcgTWave => 2,
            PatternFamily::WaveShape => 4,
            PatternFamily::ArTexture => 3,
            PatternFamily::StarDip => 3,
            PatternFamily::WalkDrift => 3,
            _ => 6,
        }
    }

    /// Generate one variable of one sample of class `class`.
    fn generate_var(&self, class: usize, var: usize, n: usize, rng: &mut StdRng) -> Vec<f32> {
        // Nuisance variation shared by all families.
        let phase_jitter: f32 = rng.gen_range(-0.3..0.3);
        let amp: f32 = rng.gen_range(0.8..1.2);
        // Deterministic per-variable modulation so multivariate channels
        // carry the same class but look different.
        let var_phase = var as f32 * 0.7;
        match self {
            PatternFamily::SineFreq => {
                let freq = (class + 1) as f32 * 2.0 * rng.gen_range(0.95f32..1.05);
                signals::sine(n, freq, phase_jitter + var_phase, amp)
            }
            PatternFamily::SinePhase => {
                let phase = class as f32 * std::f32::consts::TAU / 6.0;
                signals::sine(n, 3.0, phase + 0.15 * phase_jitter + var_phase, amp)
            }
            PatternFamily::EcgTWave => {
                let polarity = if class == 0 { 1.0 } else { -1.0 };
                let beats = 2 + (n / 96).min(2);
                let mut s = signals::ecg(n, beats, polarity, rng);
                for v in s.iter_mut() {
                    *v *= amp;
                }
                s
            }
            PatternFamily::MotifPosition => {
                let center = 0.15
                    + 0.7 * class as f32 / self.max_classes() as f32
                    + rng.gen_range(-0.03f32..0.03);
                let mut s = signals::gaussian_bump(n, center, 0.04, 2.0 * amp);
                let bg = signals::sine(n, 1.0, phase_jitter + var_phase, 0.3);
                signals::add(&mut s, &bg);
                s
            }
            PatternFamily::WaveShape => match class % 4 {
                0 => signals::sine(n, 3.0, phase_jitter + var_phase, amp),
                1 => signals::square(n, 3.0, phase_jitter + var_phase, amp),
                2 => signals::sawtooth(n, 3.0, amp),
                _ => signals::chirp(n, 1.0, 6.0, amp),
            },
            PatternFamily::Chirp => {
                let (f0, f1) = match class % 6 {
                    0 => (1.0, 6.0),
                    1 => (6.0, 1.0),
                    2 => (1.0, 12.0),
                    3 => (12.0, 1.0),
                    4 => (3.0, 3.0),
                    _ => (1.0, 3.0),
                };
                signals::chirp(n, f0, f1, amp)
            }
            PatternFamily::ArTexture => {
                let phi = [0.2f32, 0.7, 0.95][class % 3];
                signals::ar1(n, phi, 0.5, rng)
            }
            PatternFamily::StarDip => {
                let (width, depth) = [(0.02f32, 2.0f32), (0.06, 1.2), (0.10, 0.7)][class % 3];
                let mut s = signals::sine(n, 1.0, phase_jitter, 0.2 * amp);
                let period = n / 3;
                let offset = rng.gen_range(0..period.max(1));
                let mut c = offset;
                while c < n {
                    let dip = signals::gaussian_bump(n, c as f32 / n as f32, width, -depth);
                    signals::add(&mut s, &dip);
                    c += period.max(1);
                }
                s
            }
            PatternFamily::BurstCount => {
                let base = signals::ar1(n, 0.3, 0.1, rng);
                let mut s = signals::bursts(n, class + 1, 0.03, 2.5 * amp, rng);
                signals::add(&mut s, &base);
                s
            }
            PatternFamily::ImpulsePeriod => {
                let period = n / (4 + 3 * class).max(1);
                let mut s = signals::impulses(n, period.max(2), 3.0 * amp, rng);
                let bg = signals::ar1(n, 0.2, 0.15, rng);
                signals::add(&mut s, &bg);
                s
            }
            PatternFamily::Trajectory => {
                // Piecewise smooth arc whose mid-course turn depends on class.
                let turn = (class as f32 / self.max_classes() as f32 - 0.5) * 4.0;
                (0..n)
                    .map(|t| {
                        let x = t as f32 / n as f32;
                        let base = (x * std::f32::consts::PI + var_phase).sin();
                        let bend = turn * (x - 0.5).powi(2);
                        amp * (base + bend) + 0.05 * phase_jitter
                    })
                    .collect()
            }
            PatternFamily::WalkDrift => {
                let drift = [(class as f32) - 1.0, 0.0, 1.0][class % 3] * 0.05;
                signals::random_walk(n, drift, 0.3, rng)
            }
        }
    }
}

/// Full specification of one synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    pub name: String,
    pub family: PatternFamily,
    pub n_classes: usize,
    pub length: usize,
    pub n_vars: usize,
    pub train_per_class: usize,
    pub test_per_class: usize,
    /// Additive observation-noise sigma.
    pub noise: f32,
    pub seed: u64,
}

impl DatasetSpec {
    /// A reasonable default spec for a family.
    pub fn new(name: impl Into<String>, family: PatternFamily, seed: u64) -> Self {
        DatasetSpec {
            name: name.into(),
            family,
            n_classes: 2.min(family.max_classes()),
            length: 96,
            n_vars: 1,
            train_per_class: 10,
            test_per_class: 20,
            noise: 0.1,
            seed,
        }
    }

    /// Generate one sample of `class` with the spec's nuisance settings.
    pub fn generate_sample(&self, class: usize, rng: &mut StdRng) -> MultiSeries {
        assert!(class < self.n_classes);
        (0..self.n_vars)
            .map(|v| {
                let mut s = self.family.generate_var(class, v, self.length, rng);
                signals::add_noise(&mut s, self.noise, rng);
                s
            })
            .collect()
    }

    /// Materialize the dataset (deterministic per seed).
    pub fn generate(&self) -> Dataset {
        assert!(
            self.n_classes <= self.family.max_classes(),
            "{:?} supports at most {} classes",
            self.family,
            self.family.max_classes()
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let split = |per_class: usize, rng: &mut StdRng| -> Split {
            let mut samples = Vec::with_capacity(per_class * self.n_classes);
            for class in 0..self.n_classes {
                for _ in 0..per_class {
                    samples.push(Sample::new(self.generate_sample(class, rng), class));
                }
            }
            // Interleave classes so mini-batches are mixed.
            let mut inter = Vec::with_capacity(samples.len());
            for i in 0..per_class {
                for c in 0..self.n_classes {
                    inter.push(samples[c * per_class + i].clone());
                }
            }
            Split::new(inter)
        };
        let train = split(self.train_per_class, &mut rng);
        let test = split(self.test_per_class, &mut rng);
        Dataset {
            name: self.name.clone(),
            domain: self.family.domain().to_string(),
            n_classes: self.n_classes,
            train,
            test,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let spec = DatasetSpec::new("d", PatternFamily::SineFreq, 3);
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetSpec::new("d", PatternFamily::SineFreq, 3).generate();
        let b = DatasetSpec {
            seed: 4,
            ..DatasetSpec::new("d", PatternFamily::SineFreq, 3)
        }
        .generate();
        assert_ne!(a, b);
    }

    #[test]
    fn split_sizes_and_balance() {
        let spec = DatasetSpec {
            n_classes: 3,
            train_per_class: 5,
            test_per_class: 7,
            ..DatasetSpec::new("d", PatternFamily::MotifPosition, 1)
        };
        let ds = spec.generate();
        assert_eq!(ds.train.len(), 15);
        assert_eq!(ds.test.len(), 21);
        assert_eq!(ds.train.class_counts(3), vec![5, 5, 5]);
    }

    #[test]
    fn multivariate_shapes() {
        let spec = DatasetSpec {
            n_vars: 3,
            ..DatasetSpec::new("m", PatternFamily::SinePhase, 2)
        };
        let ds = spec.generate();
        assert_eq!(ds.n_vars(), 3);
        assert_eq!(ds.series_len(), 96);
        // Channels are modulated differently.
        let s = &ds.train.samples[0];
        assert_ne!(s.vars[0], s.vars[1]);
    }

    #[test]
    fn every_family_generates_finite_data() {
        for (i, fam) in PatternFamily::ALL.iter().enumerate() {
            let spec = DatasetSpec {
                n_classes: fam.max_classes().min(3),
                ..DatasetSpec::new(format!("f{i}"), *fam, i as u64)
            };
            let ds = spec.generate();
            for s in ds.train.samples.iter().chain(&ds.test.samples) {
                for var in &s.vars {
                    assert!(var.iter().all(|v| v.is_finite()), "{fam:?} produced NaN");
                }
            }
        }
    }

    #[test]
    fn classes_are_separable_by_simple_statistic() {
        // Sanity: for SineFreq, zero-crossing counts should separate classes.
        let spec = DatasetSpec {
            n_classes: 2,
            noise: 0.05,
            ..DatasetSpec::new("sep", PatternFamily::SineFreq, 9)
        };
        let ds = spec.generate();
        let crossings = |s: &[f32]| s.windows(2).filter(|w| w[0] * w[1] < 0.0).count();
        let mut per_class = vec![Vec::new(); 2];
        for s in &ds.train.samples {
            per_class[s.label].push(crossings(&s.vars[0]));
        }
        let mean = |v: &[usize]| v.iter().sum::<usize>() as f32 / v.len() as f32;
        assert!(mean(&per_class[1]) > mean(&per_class[0]) * 1.5);
    }

    #[test]
    #[should_panic(expected = "supports at most")]
    fn too_many_classes_rejected() {
        let spec = DatasetSpec {
            n_classes: 5,
            ..DatasetSpec::new("bad", PatternFamily::EcgTWave, 0)
        };
        let _ = spec.generate();
    }
}
