//! Archive/dataset statistics: the quick "what am I working with" summary
//! used by the CLI and notebooks-style exploration.

use crate::sample::Dataset;

/// Summary statistics of one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    pub name: String,
    pub domain: String,
    pub n_classes: usize,
    pub n_vars: usize,
    pub length: usize,
    pub train_size: usize,
    pub test_size: usize,
    /// Smallest per-class training count (label scarcity indicator).
    pub min_class_train: usize,
    /// Global value range over the training split.
    pub value_min: f32,
    pub value_max: f32,
}

impl DatasetStats {
    pub fn of(ds: &Dataset) -> DatasetStats {
        let counts = ds.train.class_counts(ds.n_classes);
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for s in &ds.train.samples {
            for v in &s.vars {
                for &x in v {
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
            }
        }
        DatasetStats {
            name: ds.name.clone(),
            domain: ds.domain.clone(),
            n_classes: ds.n_classes,
            n_vars: ds.n_vars(),
            length: ds.series_len(),
            train_size: ds.train.len(),
            test_size: ds.test.len(),
            min_class_train: counts.into_iter().min().unwrap_or(0),
            value_min: lo,
            value_max: hi,
        }
    }

    /// One-line rendering.
    pub fn render(&self) -> String {
        format!(
            "{:<28} domain={:<10} C={} M={} T={:<4} train={:<4} test={:<4} min/class={} range=[{:.2}, {:.2}]",
            self.name,
            self.domain,
            self.n_classes,
            self.n_vars,
            self.length,
            self.train_size,
            self.test_size,
            self.min_class_train,
            self.value_min,
            self.value_max
        )
    }
}

/// Render a whole archive's statistics table.
pub fn archive_summary(datasets: &[Dataset]) -> String {
    let mut out = String::new();
    for ds in datasets {
        out.push_str(&DatasetStats::of(ds).render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archives::ucr_like_archive;

    #[test]
    fn stats_match_dataset() {
        let ds = &ucr_like_archive(1, 0)[0];
        let st = DatasetStats::of(ds);
        assert_eq!(st.n_classes, ds.n_classes);
        assert_eq!(st.train_size, ds.train.len());
        assert!(st.min_class_train >= 1);
        assert!(st.value_min < st.value_max);
    }

    #[test]
    fn summary_lists_every_dataset() {
        let archive = ucr_like_archive(3, 0);
        let s = archive_summary(&archive);
        assert_eq!(s.lines().count(), 3);
        for ds in &archive {
            assert!(s.contains(&ds.name));
        }
    }
}
