//! Loader for the real UCR archive's tab-separated format, for users who
//! have the archive on disk: each line is `label\tv1\tv2...` and each
//! dataset ships `<Name>_TRAIN.tsv` / `<Name>_TEST.tsv`.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::preprocess::{repair_missing_dataset, MissingValuePolicy};
use crate::sample::{Dataset, Sample, Split};

/// Parse one UCR TSV body into samples with raw (unmapped) labels.
fn parse_tsv(body: &str) -> io::Result<Vec<(i64, Vec<f32>)>> {
    let mut out = Vec::new();
    for (lineno, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(['\t', ',']).filter(|f| !f.is_empty());
        let label: i64 = fields
            .next()
            .ok_or_else(|| bad(lineno, "missing label"))?
            .trim()
            .parse::<f64>()
            .map_err(|e| bad(lineno, &format!("bad label: {e}")))? as i64;
        let values: Result<Vec<f32>, _> = fields.map(|f| f.trim().parse::<f32>()).collect();
        let values = values.map_err(|e| bad(lineno, &format!("bad value: {e}")))?;
        if values.is_empty() {
            return Err(bad(lineno, "no values"));
        }
        out.push((label, values));
    }
    if out.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty TSV"));
    }
    Ok(out)
}

fn bad(lineno: usize, msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("line {}: {msg}", lineno + 1),
    )
}

/// Load a UCR-format dataset from `<dir>/<name>_TRAIN.tsv` and
/// `<dir>/<name>_TEST.tsv` under the default missing-value policy
/// ([`MissingValuePolicy::Reject`]: any `NaN`/`inf` cell is a load error
/// naming its location). Labels are remapped to `0..C-1` consistently
/// across the two splits.
pub fn load_ucr_tsv(dir: &Path, name: &str) -> io::Result<Dataset> {
    load_ucr_tsv_with(dir, name, MissingValuePolicy::default())
}

/// [`load_ucr_tsv`] with an explicit missing-value policy (the UCR archive
/// marks gaps as `NaN`, which `f32` parsing accepts silently).
pub fn load_ucr_tsv_with(
    dir: &Path,
    name: &str,
    missing: MissingValuePolicy,
) -> io::Result<Dataset> {
    let train_raw = parse_tsv(&fs::read_to_string(dir.join(format!("{name}_TRAIN.tsv")))?)?;
    let test_raw = parse_tsv(&fs::read_to_string(dir.join(format!("{name}_TEST.tsv")))?)?;
    // Stable label remap over both splits.
    let mut mapping = BTreeMap::new();
    for (l, _) in train_raw.iter().chain(&test_raw) {
        let next = mapping.len();
        mapping.entry(*l).or_insert(next);
    }
    let build = |raw: Vec<(i64, Vec<f32>)>| -> Split {
        Split::new(
            raw.into_iter()
                .map(|(l, v)| Sample::new(vec![v], mapping[&l]))
                .collect(),
        )
    };
    let mut ds = Dataset {
        name: name.to_string(),
        domain: "ucr".to_string(),
        n_classes: mapping.len(),
        train: build(train_raw),
        test: build(test_raw),
    };
    repair_missing_dataset(&mut ds, missing)?;
    Ok(ds)
}

/// Save a dataset (including multivariate ones) as JSON.
pub fn save_json(path: &Path, ds: &Dataset) -> io::Result<()> {
    let json = serde_json::to_string(ds).map_err(io::Error::other)?;
    fs::write(path, json)
}

/// Load a dataset previously written by [`save_json`] under the default
/// missing-value policy ([`MissingValuePolicy::Reject`]).
pub fn load_json(path: &Path) -> io::Result<Dataset> {
    load_json_with(path, MissingValuePolicy::default())
}

/// [`load_json`] with an explicit missing-value policy.
pub fn load_json_with(path: &Path, missing: MissingValuePolicy) -> io::Result<Dataset> {
    let body = fs::read_to_string(path)?;
    let mut ds: Dataset = serde_json::from_str(&body).map_err(io::Error::other)?;
    if ds.train.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "dataset has no training data",
        ));
    }
    for s in ds.train.samples.iter().chain(&ds.test.samples) {
        if s.label >= ds.n_classes {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "label out of range",
            ));
        }
    }
    repair_missing_dataset(&mut ds, missing)?;
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_multivariate() {
        let ds = crate::archives::uea_like_archive(1, 3).remove(0);
        assert!(ds.n_vars() > 1);
        let path = std::env::temp_dir().join("aimts_ds_roundtrip.json");
        save_json(&path, &ds).unwrap();
        let loaded = load_json(&path).unwrap();
        assert_eq!(ds, loaded);
    }

    #[test]
    fn json_rejects_corrupt_labels() {
        let mut ds = crate::archives::ucr_like_archive(1, 3).remove(0);
        ds.n_classes = 1; // now some labels are out of range
        let path = std::env::temp_dir().join("aimts_ds_bad.json");
        save_json(&path, &ds).unwrap();
        assert!(load_json(&path).is_err());
    }

    #[test]
    fn parse_basic_tsv() {
        let rows = parse_tsv("1\t0.5\t0.75\n-1\t1.0\t2.0\n").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (1, vec![0.5, 0.75]));
        assert_eq!(rows[1].0, -1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_tsv("foo\t1.0\n").is_err());
        assert!(parse_tsv("").is_err());
        assert!(parse_tsv("1\n").is_err());
    }

    #[test]
    fn load_roundtrip_with_label_remap() {
        let dir = std::env::temp_dir().join("aimts_ucr_loader_test");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("Toy_TRAIN.tsv"), "2\t1\t2\t3\n5\t3\t2\t1\n").unwrap();
        fs::write(dir.join("Toy_TEST.tsv"), "5\t0\t0\t0\n").unwrap();
        let ds = load_ucr_tsv(&dir, "Toy").unwrap();
        assert_eq!(ds.n_classes, 2);
        assert_eq!(ds.train.labels(), vec![0, 1]);
        assert_eq!(ds.test.labels(), vec![1]);
        assert_eq!(ds.train.samples[0].vars[0], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_ucr_tsv(Path::new("/nonexistent"), "Nope").is_err());
    }

    #[test]
    fn tsv_with_nan_rejected_by_default_and_imputed_on_request() {
        let dir = std::env::temp_dir().join("aimts_ucr_loader_nan_test");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("Gap_TRAIN.tsv"),
            "1\t1.0\tNaN\t3.0\n2\t4.0\t5.0\t6.0\n",
        )
        .unwrap();
        fs::write(dir.join("Gap_TEST.tsv"), "1\t0.0\t0.0\t0.0\n").unwrap();

        let err = load_ucr_tsv(&dir, "Gap").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("train split") && msg.contains("sample 0") && msg.contains("position 1"),
            "{msg}"
        );

        let ds = load_ucr_tsv_with(&dir, "Gap", MissingValuePolicy::ImputeLinear).unwrap();
        assert_eq!(ds.train.samples[0].vars[0], vec![1.0, 2.0, 3.0]);

        let ds = load_ucr_tsv_with(&dir, "Gap", MissingValuePolicy::ImputeZero).unwrap();
        assert_eq!(ds.train.samples[0].vars[0], vec![1.0, 0.0, 3.0]);
    }

    #[test]
    fn json_with_nan_rejected_by_default_and_imputed_on_request() {
        let mut ds = crate::archives::ucr_like_archive(1, 3).remove(0);
        ds.test.samples[0].vars[0][2] = f32::NAN;
        let path = std::env::temp_dir().join("aimts_ds_nan.json");
        save_json(&path, &ds).unwrap();

        let err = load_json(&path).unwrap_err();
        assert!(err.to_string().contains("test split"), "{err}");

        let repaired = load_json_with(&path, MissingValuePolicy::ImputeLinear).unwrap();
        assert!(repaired.test.samples[0].vars[0][2].is_finite());
    }
}
