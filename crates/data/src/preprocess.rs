//! Pre-processing: per-variable z-normalization, length resampling, and
//! the missing-value policy applied by the loaders.

use std::io;

use crate::sample::{Dataset, MultiSeries, Sample, Split};

/// How loaded data treats missing cells (`NaN`/`±inf`).
///
/// A single non-finite cell survives z-normalization as `NaN` across the
/// whole variable and then poisons every gradient it touches, so the
/// default is to reject it loudly at load time — naming the sample,
/// variable, and position — rather than let it reach training.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MissingValuePolicy {
    /// Error on the first non-finite cell (the default).
    #[default]
    Reject,
    /// Linearly interpolate interior gaps between the nearest finite
    /// neighbours; leading/trailing gaps copy the nearest finite value. A
    /// fully-missing variable becomes all zeros.
    ImputeLinear,
    /// Replace every missing cell with `0.0` (the per-variable mean after
    /// z-normalization).
    ImputeZero,
}

impl MissingValuePolicy {
    /// Parse the CLI spelling: `reject` | `impute-linear` | `impute-zero`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "reject" => Ok(MissingValuePolicy::Reject),
            "impute-linear" => Ok(MissingValuePolicy::ImputeLinear),
            "impute-zero" => Ok(MissingValuePolicy::ImputeZero),
            other => Err(format!(
                "unknown missing-value policy `{other}` \
                 (use reject|impute-linear|impute-zero)"
            )),
        }
    }
}

/// Apply a [`MissingValuePolicy`] to one sample's variables. `row` labels
/// the sample in error messages. Returns the number of cells repaired;
/// under [`MissingValuePolicy::Reject`] any missing cell is an error
/// naming its exact location.
pub fn repair_missing(
    vars: &mut MultiSeries,
    policy: MissingValuePolicy,
    row: usize,
) -> io::Result<usize> {
    let mut repaired = 0usize;
    for (var, series) in vars.iter_mut().enumerate() {
        let missing = series.iter().filter(|v| !v.is_finite()).count();
        if missing == 0 {
            continue;
        }
        match policy {
            MissingValuePolicy::Reject => {
                // `missing > 0` guarantees a hit, but destructure instead
                // of unwrapping so this load path stays panic-free.
                let Some(col) = series.iter().position(|v| !v.is_finite()) else {
                    continue;
                };
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "missing value ({}) at sample {row}, variable {var}, position {col}; \
                         pass an impute policy to repair instead of rejecting",
                        series[col]
                    ),
                ));
            }
            MissingValuePolicy::ImputeZero => {
                for v in series.iter_mut() {
                    if !v.is_finite() {
                        *v = 0.0;
                    }
                }
            }
            MissingValuePolicy::ImputeLinear => impute_linear(series),
        }
        repaired += missing;
    }
    Ok(repaired)
}

/// Apply a [`MissingValuePolicy`] to every sample of both splits.
/// Returns the total number of repaired cells.
pub fn repair_missing_dataset(ds: &mut Dataset, policy: MissingValuePolicy) -> io::Result<usize> {
    let mut total = 0usize;
    for (split_name, split) in [("train", &mut ds.train), ("test", &mut ds.test)] {
        for (row, s) in split.samples.iter_mut().enumerate() {
            total += repair_missing(&mut s.vars, policy, row)
                .map_err(|e| io::Error::new(e.kind(), format!("{split_name} split: {e}")))?;
        }
    }
    Ok(total)
}

/// In-place linear interpolation of non-finite cells between the nearest
/// finite anchors; edges copy the nearest finite value.
fn impute_linear(x: &mut [f32]) {
    let finite: Vec<usize> = (0..x.len()).filter(|&i| x[i].is_finite()).collect();
    if finite.is_empty() {
        x.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    for i in 0..x.len() {
        if x[i].is_finite() {
            continue;
        }
        let prev = finite.iter().rev().find(|&&j| j < i).copied();
        let next = finite.iter().find(|&&j| j > i).copied();
        x[i] = match (prev, next) {
            (Some(p), Some(n)) => {
                let t = (i - p) as f32 / (n - p) as f32;
                x[p] * (1.0 - t) + x[n] * t
            }
            (Some(p), None) => x[p],
            (None, Some(n)) => x[n],
            (None, None) => unreachable!("finite is non-empty"),
        };
    }
}

/// Z-normalize a single series in place (no-op on zero variance).
pub fn z_normalize(x: &mut [f32]) {
    let n = x.len() as f32;
    let mean: f32 = x.iter().sum::<f32>() / n;
    let var: f32 = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let std = var.sqrt();
    if std < 1e-8 {
        for v in x.iter_mut() {
            *v -= mean;
        }
        return;
    }
    for v in x.iter_mut() {
        *v = (*v - mean) / std;
    }
}

/// Z-normalize every variable of a sample.
pub fn z_normalize_sample(vars: &mut MultiSeries) {
    for v in vars.iter_mut() {
        z_normalize(v);
    }
}

/// Z-normalize every sample of a dataset (both splits), in place.
pub fn z_normalize_dataset(ds: &mut Dataset) {
    for split in [&mut ds.train, &mut ds.test] {
        for s in &mut split.samples {
            z_normalize_sample(&mut s.vars);
        }
    }
}

/// Linearly resample every variable of every sample to `target_len`
/// (used to mix sources of different lengths into one pre-training batch).
pub fn resample_split(split: &Split, target_len: usize) -> Split {
    Split::new(
        split
            .samples
            .iter()
            .map(|s| Sample::new(resample_sample(&s.vars, target_len), s.label))
            .collect(),
    )
}

/// Linearly resample a sample's variables to `target_len`.
pub fn resample_sample(vars: &MultiSeries, target_len: usize) -> MultiSeries {
    vars.iter()
        .map(|v| linear_resample(v, target_len))
        .collect()
}

fn linear_resample(x: &[f32], m: usize) -> Vec<f32> {
    assert!(!x.is_empty() && m >= 1);
    if m == 1 {
        return vec![x[0]];
    }
    if x.len() == 1 {
        return vec![x[0]; m];
    }
    let scale = (x.len() - 1) as f32 / (m - 1) as f32;
    (0..m)
        .map(|i| {
            let p = i as f32 * scale;
            let j = p.floor() as usize;
            let frac = p - j as f32;
            if j + 1 >= x.len() {
                x[x.len() - 1]
            } else {
                x[j] * (1.0 - frac) + x[j + 1] * frac
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_normalize_stats() {
        let mut x: Vec<f32> = (0..100).map(|i| i as f32 * 3.0 + 7.0).collect();
        z_normalize(&mut x);
        let mean: f32 = x.iter().sum::<f32>() / 100.0;
        let var: f32 = x.iter().map(|v| v * v).sum::<f32>() / 100.0;
        assert!(mean.abs() < 1e-4);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn z_normalize_constant_series() {
        let mut x = vec![4.0; 10];
        z_normalize(&mut x);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn resample_lengths() {
        let vars = vec![vec![0.0, 1.0, 2.0, 3.0]];
        assert_eq!(resample_sample(&vars, 7)[0].len(), 7);
        assert_eq!(resample_sample(&vars, 2)[0], vec![0.0, 3.0]);
    }

    #[test]
    fn missing_policy_parse() {
        assert_eq!(
            MissingValuePolicy::parse("reject").unwrap(),
            MissingValuePolicy::Reject
        );
        assert_eq!(
            MissingValuePolicy::parse("impute-linear").unwrap(),
            MissingValuePolicy::ImputeLinear
        );
        assert_eq!(
            MissingValuePolicy::parse("impute-zero").unwrap(),
            MissingValuePolicy::ImputeZero
        );
        assert!(MissingValuePolicy::parse("nope").is_err());
    }

    #[test]
    fn reject_names_the_offending_cell() {
        let mut vars = vec![vec![1.0, 2.0], vec![3.0, f32::NAN, 5.0]];
        let err = repair_missing(&mut vars, MissingValuePolicy::Reject, 7).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("sample 7") && msg.contains("variable 1") && msg.contains("position 1"),
            "{msg}"
        );
        // The sample is untouched on error.
        assert!(vars[1][1].is_nan());
    }

    #[test]
    fn impute_zero_replaces_all_nonfinite() {
        let mut vars = vec![vec![1.0, f32::NAN, f32::INFINITY, 4.0]];
        let n = repair_missing(&mut vars, MissingValuePolicy::ImputeZero, 0).unwrap();
        assert_eq!(n, 2);
        assert_eq!(vars[0], vec![1.0, 0.0, 0.0, 4.0]);
    }

    #[test]
    fn impute_linear_interpolates_and_extends() {
        let mut vars = vec![vec![f32::NAN, 1.0, f32::NAN, f32::NAN, 4.0, f32::NAN]];
        let n = repair_missing(&mut vars, MissingValuePolicy::ImputeLinear, 0).unwrap();
        assert_eq!(n, 4);
        assert_eq!(vars[0], vec![1.0, 1.0, 2.0, 3.0, 4.0, 4.0]);
        // A fully-missing variable becomes zeros, not NaNs.
        let mut all_gone = vec![vec![f32::NAN, f32::NEG_INFINITY]];
        repair_missing(&mut all_gone, MissingValuePolicy::ImputeLinear, 0).unwrap();
        assert_eq!(all_gone[0], vec![0.0, 0.0]);
    }

    #[test]
    fn clean_data_is_untouched_by_every_policy() {
        for policy in [
            MissingValuePolicy::Reject,
            MissingValuePolicy::ImputeLinear,
            MissingValuePolicy::ImputeZero,
        ] {
            let mut vars = vec![vec![1.0, -2.0, 3.5]];
            let n = repair_missing(&mut vars, policy, 0).unwrap();
            assert_eq!(n, 0);
            assert_eq!(vars[0], vec![1.0, -2.0, 3.5]);
        }
    }
}
