//! Pre-processing: per-variable z-normalization and length resampling.

use crate::sample::{Dataset, MultiSeries, Sample, Split};

/// Z-normalize a single series in place (no-op on zero variance).
pub fn z_normalize(x: &mut [f32]) {
    let n = x.len() as f32;
    let mean: f32 = x.iter().sum::<f32>() / n;
    let var: f32 = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let std = var.sqrt();
    if std < 1e-8 {
        for v in x.iter_mut() {
            *v -= mean;
        }
        return;
    }
    for v in x.iter_mut() {
        *v = (*v - mean) / std;
    }
}

/// Z-normalize every variable of a sample.
pub fn z_normalize_sample(vars: &mut MultiSeries) {
    for v in vars.iter_mut() {
        z_normalize(v);
    }
}

/// Z-normalize every sample of a dataset (both splits), in place.
pub fn z_normalize_dataset(ds: &mut Dataset) {
    for split in [&mut ds.train, &mut ds.test] {
        for s in &mut split.samples {
            z_normalize_sample(&mut s.vars);
        }
    }
}

/// Linearly resample every variable of every sample to `target_len`
/// (used to mix sources of different lengths into one pre-training batch).
pub fn resample_split(split: &Split, target_len: usize) -> Split {
    Split::new(
        split
            .samples
            .iter()
            .map(|s| Sample::new(resample_sample(&s.vars, target_len), s.label))
            .collect(),
    )
}

/// Linearly resample a sample's variables to `target_len`.
pub fn resample_sample(vars: &MultiSeries, target_len: usize) -> MultiSeries {
    vars.iter()
        .map(|v| linear_resample(v, target_len))
        .collect()
}

fn linear_resample(x: &[f32], m: usize) -> Vec<f32> {
    assert!(!x.is_empty() && m >= 1);
    if m == 1 {
        return vec![x[0]];
    }
    if x.len() == 1 {
        return vec![x[0]; m];
    }
    let scale = (x.len() - 1) as f32 / (m - 1) as f32;
    (0..m)
        .map(|i| {
            let p = i as f32 * scale;
            let j = p.floor() as usize;
            let frac = p - j as f32;
            if j + 1 >= x.len() {
                x[x.len() - 1]
            } else {
                x[j] * (1.0 - frac) + x[j + 1] * frac
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_normalize_stats() {
        let mut x: Vec<f32> = (0..100).map(|i| i as f32 * 3.0 + 7.0).collect();
        z_normalize(&mut x);
        let mean: f32 = x.iter().sum::<f32>() / 100.0;
        let var: f32 = x.iter().map(|v| v * v).sum::<f32>() / 100.0;
        assert!(mean.abs() < 1e-4);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn z_normalize_constant_series() {
        let mut x = vec![4.0; 10];
        z_normalize(&mut x);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn resample_lengths() {
        let vars = vec![vec![0.0, 1.0, 2.0, 3.0]];
        assert_eq!(resample_sample(&vars, 7)[0].len(), 7);
        assert_eq!(resample_sample(&vars, 2)[0], vec![0.0, 3.0]);
    }
}
