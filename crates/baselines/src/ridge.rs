//! One-vs-rest ridge-regression classifier on precomputed features
//! (the classifier half of ROCKET). Closed-form via normal equations
//! solved with Gaussian elimination + partial pivoting.

/// One-vs-rest ridge classifier with feature standardization.
#[derive(Debug, Clone)]
pub struct RidgeClassifier {
    /// `[n_classes][d]` weight rows.
    weights: Vec<Vec<f64>>,
    /// Per-class intercepts.
    intercepts: Vec<f64>,
    /// Feature standardization parameters.
    means: Vec<f64>,
    stds: Vec<f64>,
    pub n_classes: usize,
}

impl RidgeClassifier {
    /// Fit on `features[i]` (length d each) with `labels[i] < n_classes`.
    pub fn fit(features: &[Vec<f32>], labels: &[usize], n_classes: usize, lambda: f64) -> Self {
        assert_eq!(features.len(), labels.len());
        assert!(!features.is_empty(), "ridge fit on empty data");
        let n = features.len();
        let d = features[0].len();
        // Standardize features.
        let mut means = vec![0f64; d];
        let mut stds = vec![0f64; d];
        for f in features {
            assert_eq!(f.len(), d, "ragged feature matrix");
            for (m, &v) in means.iter_mut().zip(f) {
                *m += v as f64;
            }
        }
        for m in &mut means {
            *m /= n as f64;
        }
        for f in features {
            for ((s, m), &v) in stds.iter_mut().zip(&means).zip(f) {
                let dd = v as f64 - *m;
                *s += dd * dd;
            }
        }
        for s in &mut stds {
            *s = (*s / n as f64).sqrt().max(1e-8);
        }
        let x: Vec<Vec<f64>> = features
            .iter()
            .map(|f| {
                f.iter()
                    .zip(means.iter().zip(&stds))
                    .map(|(&v, (m, s))| (v as f64 - m) / s)
                    .collect()
            })
            .collect();

        // Gram matrix G = X^T X + λI (d × d) shared by all classes.
        let mut g = vec![vec![0f64; d]; d];
        for row in &x {
            for (i, &ri) in row.iter().enumerate() {
                // aimts-lint: allow(A004, exact-zero skip: sparsity fast path over one-hot feature rows)
                if ri == 0.0 {
                    continue;
                }
                for (j, gij) in g[i].iter_mut().enumerate().skip(i) {
                    *gij += ri * row[j];
                }
            }
        }
        for i in 0..d {
            let (above, rest) = g.split_at_mut(i);
            let gi = &mut rest[0];
            for (j, upper_row) in above.iter().enumerate() {
                gi[j] = upper_row[i];
            }
            gi[i] += lambda;
        }
        // Right-hand sides: X^T y_c for ±1 targets, one per class.
        let mut rhs = vec![vec![0f64; n_classes]; d];
        for (row, &lab) in x.iter().zip(labels) {
            for c in 0..n_classes {
                let y = if lab == c { 1.0 } else { -1.0 };
                for (r, &v) in rhs.iter_mut().zip(row) {
                    r[c] += v * y;
                }
            }
        }
        let sol = solve_multi(g, rhs); // [d][n_classes]
        let mut weights = vec![vec![0f64; d]; n_classes];
        for (i, row) in sol.iter().enumerate() {
            for c in 0..n_classes {
                weights[c][i] = row[c];
            }
        }
        // Intercept: mean of targets (features standardized to mean 0).
        let mut intercepts = vec![0f64; n_classes];
        for &lab in labels {
            for (c, ic) in intercepts.iter_mut().enumerate() {
                *ic += if lab == c { 1.0 } else { -1.0 };
            }
        }
        for ic in &mut intercepts {
            *ic /= n as f64;
        }
        RidgeClassifier {
            weights,
            intercepts,
            means,
            stds,
            n_classes,
        }
    }

    /// Raw one-vs-rest scores.
    pub fn scores(&self, feature: &[f32]) -> Vec<f64> {
        let x: Vec<f64> = feature
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&v, (m, s))| (v as f64 - m) / s)
            .collect();
        self.weights
            .iter()
            .zip(&self.intercepts)
            .map(|(w, b)| w.iter().zip(&x).map(|(wi, xi)| wi * xi).sum::<f64>() + b)
            .collect()
    }

    /// Predicted class = argmax score.
    pub fn predict(&self, feature: &[f32]) -> usize {
        let s = self.scores(feature);
        s.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap()
    }
}

/// Solve `A X = B` for symmetric positive-definite `A` (d×d) and multiple
/// right-hand sides `B` (d×m), via Gaussian elimination with partial
/// pivoting. Returns X as d×m.
fn solve_multi(mut a: Vec<Vec<f64>>, mut b: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    let d = a.len();
    let m = b[0].len();
    for col in 0..d {
        // Pivot.
        let mut piv = col;
        for r in col + 1..d {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        a.swap(col, piv);
        b.swap(col, piv);
        let diag = a[col][col];
        assert!(diag.abs() > 1e-12, "singular system (increase lambda)");
        for r in col + 1..d {
            let f = a[r][col] / diag;
            // aimts-lint: allow(A004, exact-zero skip: a zero multiplier eliminates nothing)
            if f == 0.0 {
                continue;
            }
            let (upper, lower) = a.split_at_mut(r);
            for (c, v) in lower[0].iter_mut().enumerate().skip(col) {
                *v -= f * upper[col][c];
            }
            let (bu, bl) = b.split_at_mut(r);
            for (c, v) in bl[0].iter_mut().enumerate() {
                *v -= f * bu[col][c];
            }
        }
    }
    // Back substitution.
    let mut x = vec![vec![0f64; m]; d];
    for row in (0..d).rev() {
        for c in 0..m {
            let mut acc = b[row][c];
            for col in row + 1..d {
                acc -= a[row][col] * x[col][c];
            }
            x[row][c] = acc / a[row][row];
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_linear_system() {
        // A = [[2,1],[1,3]], B = [[5],[10]] -> x = [1, 3].
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![vec![5.0], vec![10.0]];
        let x = solve_multi(a, b);
        assert!((x[0][0] - 1.0).abs() < 1e-9);
        assert!((x[1][0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn separates_linearly_separable_classes() {
        // Class = sign of feature 0.
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let x = if i % 2 == 0 { 1.0 } else { -1.0 };
            feats.push(vec![x + 0.01 * i as f32, 0.5]);
            labels.push(if x > 0.0 { 0usize } else { 1 });
        }
        let clf = RidgeClassifier::fit(&feats, &labels, 2, 1e-3);
        assert_eq!(clf.predict(&[2.0, 0.5]), 0);
        assert_eq!(clf.predict(&[-2.0, 0.5]), 1);
    }

    #[test]
    fn multiclass_prediction_in_range() {
        let feats: Vec<Vec<f32>> = (0..30)
            .map(|i| vec![(i % 3) as f32, ((i * 7) % 5) as f32])
            .collect();
        let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let clf = RidgeClassifier::fit(&feats, &labels, 3, 1.0);
        for f in &feats {
            assert!(clf.predict(f) < 3);
        }
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let feats: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32, 7.0]).collect();
        let labels: Vec<usize> = (0..10).map(|i| (i > 4) as usize).collect();
        let clf = RidgeClassifier::fit(&feats, &labels, 2, 1.0);
        assert!(clf.scores(&[3.0, 7.0]).iter().all(|s| s.is_finite()));
    }
}
