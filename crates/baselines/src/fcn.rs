//! A fully-convolutional network trained supervised, case-by-case — the
//! stand-in for the paper's supervised deep baselines (TimesNet, OS-CNN,
//! Crossformer, ...) in Table II.

use aimts_data::preprocess::z_normalize_sample;
use aimts_data::{Dataset, MultiSeries, Split};
use aimts_nn::{Adam, BatchNorm1d, Conv1d, Linear, Module, Optimizer};
use aimts_tensor::ops::Conv1dSpec;
use aimts_tensor::{no_grad, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// FCN: three conv-BN-ReLU blocks → global average pool → linear head.
pub struct FcnClassifier {
    conv1: Conv1d,
    bn1: BatchNorm1d,
    conv2: Conv1d,
    bn2: BatchNorm1d,
    conv3: Conv1d,
    bn3: BatchNorm1d,
    head: Linear,
    pub n_classes: usize,
    pub train_losses: Vec<f32>,
}

impl FcnClassifier {
    /// Build for a dataset with `in_vars` channels.
    pub fn new(in_vars: usize, hidden: usize, n_classes: usize, seed: u64) -> Self {
        FcnClassifier {
            conv1: Conv1d::new(in_vars, hidden, 7, Conv1dSpec::same(7, 1), true, seed),
            bn1: BatchNorm1d::new(hidden),
            conv2: Conv1d::new(
                hidden,
                hidden * 2,
                5,
                Conv1dSpec::same(5, 1),
                true,
                seed + 1,
            ),
            bn2: BatchNorm1d::new(hidden * 2),
            conv3: Conv1d::new(
                hidden * 2,
                hidden,
                3,
                Conv1dSpec::same(3, 1),
                true,
                seed + 2,
            ),
            bn3: BatchNorm1d::new(hidden),
            head: Linear::new(hidden, n_classes, true, seed + 3),
            n_classes,
            train_losses: Vec::new(),
        }
    }

    fn features(&self, x: &Tensor) -> Tensor {
        let h = self.bn1.forward(&self.conv1.forward(x)).relu();
        let h = self.bn2.forward(&self.conv2.forward(&h)).relu();
        let h = self.bn3.forward(&self.conv3.forward(&h)).relu();
        h.global_avg_pool1d()
    }

    fn logits(&self, x: &Tensor) -> Tensor {
        self.head.forward(&self.features(x))
    }

    fn batch_tensor(samples: &[&MultiSeries]) -> Tensor {
        let b = samples.len();
        let m = samples[0].len();
        let t = samples[0][0].len();
        let mut data = Vec::with_capacity(b * m * t);
        for s in samples {
            for v in s.iter() {
                data.extend_from_slice(v);
            }
        }
        Tensor::from_vec(data, &[b, m, t])
    }

    /// Supervised training on the dataset's training split.
    pub fn fit(&mut self, ds: &Dataset, epochs: usize, batch_size: usize, lr: f32, seed: u64) {
        let prepared: Vec<MultiSeries> = ds
            .train
            .samples
            .iter()
            .map(|s| {
                let mut v = s.vars.clone();
                z_normalize_sample(&mut v);
                v
            })
            .collect();
        let labels = ds.train.labels();
        let mut opt = Adam::new(self.parameters(), lr);
        let mut rng = StdRng::seed_from_u64(seed);
        self.set_training(true);
        for _ in 0..epochs {
            let mut idx: Vec<usize> = (0..prepared.len()).collect();
            for i in (1..idx.len()).rev() {
                let j = rng.gen_range(0..=i);
                idx.swap(i, j);
            }
            let mut epoch_loss = 0f32;
            let mut nb = 0usize;
            for chunk in idx.chunks(batch_size.max(2)) {
                if chunk.len() < 2 {
                    continue;
                }
                let samples: Vec<&MultiSeries> = chunk.iter().map(|&i| &prepared[i]).collect();
                let targets: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                let loss = self
                    .logits(&Self::batch_tensor(&samples))
                    .cross_entropy(&targets);
                opt.zero_grad();
                loss.backward();
                opt.step();
                epoch_loss += loss.item();
                nb += 1;
            }
            self.train_losses.push(epoch_loss / nb.max(1) as f32);
        }
        self.set_training(false);
    }

    pub fn predict(&self, split: &Split) -> Vec<usize> {
        no_grad(|| {
            let mut preds = Vec::with_capacity(split.len());
            for chunk in split.samples.chunks(64) {
                let prepared: Vec<MultiSeries> = chunk
                    .iter()
                    .map(|s| {
                        let mut v = s.vars.clone();
                        z_normalize_sample(&mut v);
                        v
                    })
                    .collect();
                let refs: Vec<&MultiSeries> = prepared.iter().collect();
                preds.extend(self.logits(&Self::batch_tensor(&refs)).argmax_axis(1));
            }
            preds
        })
    }

    pub fn evaluate(&self, split: &Split) -> f64 {
        aimts_eval::accuracy(&self.predict(split), &split.labels())
    }
}

impl Module for FcnClassifier {
    fn forward(&self, x: &Tensor) -> Tensor {
        self.logits(x)
    }

    fn named_parameters(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        let p = |s: &str| {
            if prefix.is_empty() {
                s.to_string()
            } else {
                format!("{prefix}.{s}")
            }
        };
        self.conv1.named_parameters(&p("conv1"), out);
        self.bn1.named_parameters(&p("bn1"), out);
        self.conv2.named_parameters(&p("conv2"), out);
        self.bn2.named_parameters(&p("bn2"), out);
        self.conv3.named_parameters(&p("conv3"), out);
        self.bn3.named_parameters(&p("bn3"), out);
        self.head.named_parameters(&p("head"), out);
    }

    fn set_training(&self, training: bool) {
        self.bn1.set_training(training);
        self.bn2.set_training(training);
        self.bn3.set_training(training);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimts_data::generator::{DatasetSpec, PatternFamily};

    #[test]
    fn learns_separable_dataset() {
        let ds = DatasetSpec {
            n_classes: 2,
            train_per_class: 10,
            test_per_class: 10,
            noise: 0.05,
            length: 48,
            ..DatasetSpec::new("fcn", PatternFamily::SineFreq, 17)
        }
        .generate();
        let mut clf = FcnClassifier::new(1, 8, 2, 0);
        clf.fit(&ds, 20, 8, 1e-2, 0);
        let acc = clf.evaluate(&ds.test);
        assert!(acc >= 0.8, "acc {acc}");
        assert!(clf.train_losses.last().unwrap() < &clf.train_losses[0]);
    }

    #[test]
    fn multivariate_input() {
        let ds = DatasetSpec {
            n_vars: 3,
            n_classes: 2,
            length: 32,
            ..DatasetSpec::new("fcn3", PatternFamily::SinePhase, 18)
        }
        .generate();
        let mut clf = FcnClassifier::new(3, 4, 2, 0);
        clf.fit(&ds, 2, 8, 1e-2, 0);
        let preds = clf.predict(&ds.test);
        assert!(preds.iter().all(|&p| p < 2));
    }
}
