//! Contrastive representation-learning baselines sharing one scaffold:
//! TS2Vec, TS-TCC, TNC and T-Loss (paper Table I competitors).
//!
//! Each method defines how a *pair of views* of a sample is built; the
//! scaffold encodes views channel-independently with the same dilated-conv
//! encoder AimTS uses, projects, normalizes, and applies the method's
//! pairwise loss across the batch. All are intentionally scaled-down but
//! structurally faithful (see module docs per method).

use aimts::batch::{batch_indices, encode_channel_independent, samples_to_tensor};
use aimts::{copy_parameters, FineTuneConfig, FineTuned, TsEncoder};
use aimts_augment::Augmentation;
use aimts_data::preprocess::{resample_sample, z_normalize_sample};
use aimts_data::{Dataset, MultiSeries};
use aimts_nn::{Activation, Adam, Mlp, Module, Optimizer};
use aimts_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which baseline objective to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// TS2Vec (Yue et al. 2022): two random overlapping crops of the same
    /// sample are positives (simplified to instance-level contrast over
    /// pooled crop representations).
    Ts2Vec,
    /// TS-TCC (Eldele et al. 2021): a weak view (jitter + scaling) and a
    /// strong view (permutation + jitter) are positives.
    TsTcc,
    /// TNC (Tonekaboni et al. 2021): two *neighboring* windows are
    /// positives; windows from other samples act as non-neighbors.
    Tnc,
    /// T-Loss (Franceschi et al. 2019): triplet logistic loss with a
    /// sub-series of the anchor as positive and other samples' crops as
    /// negatives.
    TLoss,
    /// SoftCLT-like (Lee et al. 2023): two weak views with *soft* positive
    /// assignments — the target distribution over the batch is a softmax
    /// of negative DTW distances between the raw series, so similar
    /// instances are softly attracted instead of hard-labeled negatives.
    SoftClt,
}

impl Method {
    pub fn name(&self) -> &'static str {
        match self {
            Method::Ts2Vec => "TS2Vec",
            Method::TsTcc => "TS-TCC",
            Method::Tnc => "TNC",
            Method::TLoss => "T-Loss",
            Method::SoftClt => "SoftCLT",
        }
    }
}

/// Shared architecture/loss configuration.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    pub hidden: usize,
    pub repr_dim: usize,
    pub proj_dim: usize,
    pub dilations: Vec<usize>,
    pub pretrain_len: usize,
    pub tau: f32,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            hidden: 32,
            repr_dim: 64,
            proj_dim: 32,
            dilations: vec![1, 2, 4],
            pretrain_len: 64,
            tau: 0.2,
        }
    }
}

impl BaselineConfig {
    /// Match an [`aimts::AimTsConfig`]'s encoder so comparisons isolate
    /// the objective.
    pub fn from_aimts(cfg: &aimts::AimTsConfig) -> Self {
        BaselineConfig {
            hidden: cfg.hidden,
            repr_dim: cfg.repr_dim,
            proj_dim: cfg.proj_dim,
            dilations: cfg.dilations.clone(),
            pretrain_len: cfg.pretrain_len,
            tau: 0.2,
        }
    }

    /// Tiny settings for tests.
    pub fn tiny() -> Self {
        BaselineConfig {
            hidden: 8,
            repr_dim: 16,
            proj_dim: 8,
            dilations: vec![1, 2],
            pretrain_len: 32,
            tau: 0.2,
        }
    }
}

/// A contrastive baseline: encoder + projection head + method objective.
pub struct ContrastiveBaseline {
    pub method: Method,
    pub cfg: BaselineConfig,
    pub encoder: TsEncoder,
    proj: Mlp,
    seed: u64,
}

impl ContrastiveBaseline {
    pub fn new(method: Method, cfg: BaselineConfig, seed: u64) -> Self {
        let encoder = TsEncoder::new(cfg.hidden, cfg.repr_dim, &cfg.dilations, seed);
        let proj = Mlp::new(
            &[cfg.repr_dim, cfg.repr_dim, cfg.proj_dim],
            Activation::Gelu,
            seed.wrapping_add(500),
        );
        ContrastiveBaseline {
            method,
            cfg,
            encoder,
            proj,
            seed,
        }
    }

    fn prepare(&self, s: &MultiSeries) -> MultiSeries {
        let mut v = resample_sample(s, self.cfg.pretrain_len);
        z_normalize_sample(&mut v);
        v
    }

    /// Build the two views of one prepared sample for this method.
    fn make_views(&self, s: &MultiSeries, rng: &mut StdRng) -> (MultiSeries, MultiSeries) {
        let t = s[0].len();
        match self.method {
            Method::Ts2Vec => {
                // Two random crops covering >= 50% each (overlap likely).
                let crop = |rng: &mut StdRng| {
                    let w = rng.gen_range(t / 2..=t.max(2) - 1).max(2);
                    let start = rng.gen_range(0..=t - w);
                    let out: MultiSeries = s
                        .iter()
                        .map(|v| aimts_augment::linear_resample(&v[start..start + w], t))
                        .collect();
                    out
                };
                (crop(rng), crop(rng))
            }
            Method::TsTcc => {
                let weak1 = Augmentation::Jitter { sigma: 0.05 };
                let weak2 = Augmentation::Scaling { sigma: 0.1 };
                let strong1 = Augmentation::Permutation { segments: 4 };
                let strong2 = Augmentation::Jitter { sigma: 0.2 };
                let weak = weak2.apply_multivariate(&weak1.apply_multivariate(s, rng), rng);
                let strong = strong2.apply_multivariate(&strong1.apply_multivariate(s, rng), rng);
                (weak, strong)
            }
            Method::Tnc => {
                // Adjacent half-windows of the same sample = neighborhood.
                let w = (t / 2).max(2);
                let start = rng.gen_range(0..=t - w);
                // Neighbor window shifted by up to w/2, clamped in range.
                let shift = rng.gen_range(0..=w / 2);
                let nstart = (start + shift).min(t - w);
                let win = |a: usize| -> MultiSeries {
                    s.iter()
                        .map(|v| aimts_augment::linear_resample(&v[a..a + w], t))
                        .collect()
                };
                (win(start), win(nstart))
            }
            Method::SoftClt => {
                // Two weak views: light jitter + scaling.
                let j = Augmentation::Jitter { sigma: 0.05 };
                let sc = Augmentation::Scaling { sigma: 0.1 };
                (
                    sc.apply_multivariate(&j.apply_multivariate(s, rng), rng),
                    sc.apply_multivariate(&j.apply_multivariate(s, rng), rng),
                )
            }
            Method::TLoss => {
                // Anchor = random crop; positive = sub-crop of the anchor.
                let aw = rng.gen_range((2 * t / 3).max(2)..=t.max(3) - 1).max(2);
                let astart = rng.gen_range(0..=t - aw);
                let pw = rng.gen_range((aw / 2).max(2)..=aw.max(3) - 1).max(2);
                let pstart = astart + rng.gen_range(0..=aw - pw);
                let cut = |a: usize, w: usize| -> MultiSeries {
                    s.iter()
                        .map(|v| aimts_augment::linear_resample(&v[a..a + w], t))
                        .collect()
                };
                (cut(astart, aw), cut(pstart, pw))
            }
        }
    }

    /// Project + normalize a batch of encoded views.
    fn project(&self, samples: &[&MultiSeries]) -> Tensor {
        let x = samples_to_tensor(samples);
        let r = encode_channel_independent(&self.encoder, &x);
        self.proj.forward(&r).l2_normalize(1)
    }

    /// Per-batch loss: InfoNCE for TS2Vec / TS-TCC / TNC, triplet logistic
    /// for T-Loss, soft-target cross-entropy for SoftCLT.
    fn batch_loss(&self, a: &Tensor, b: &Tensor, soft_targets: Option<&Tensor>) -> Tensor {
        let n = a.shape()[0];
        match self.method {
            Method::SoftClt => {
                // -Σ_i Σ_j T_ij log softmax_j(sim(a_i, b_j)/τ), averaged.
                let t = soft_targets.expect("SoftCLT requires soft targets");
                let logp = a
                    .matmul(&b.transpose(0, 1))
                    .div_scalar(self.cfg.tau)
                    .log_softmax_last();
                logp.mul(t).sum_axis(1, false).neg().mean_all()
            }
            Method::TLoss => {
                // -log σ(a·p) - Σ_{j≠i} log σ(-a·n_j), averaged.
                let s = a.matmul(&b.transpose(0, 1)); // [N,N]
                let mut eye = vec![0f32; n * n];
                for i in 0..n {
                    eye[i * n + i] = 1.0;
                }
                let id = Tensor::from_vec(eye, &[n, n]);
                let not_id = Tensor::ones(&[n, n]).sub(&id);
                let pos = s.mul(&id).sum_axis(1, false); // a_i · p_i
                let pos_term = pos.sigmoid().add_scalar(1e-8).ln().neg();
                let neg_term = s
                    .neg()
                    .sigmoid()
                    .add_scalar(1e-8)
                    .ln()
                    .mul(&not_id)
                    .sum_axis(1, false)
                    .neg()
                    .div_scalar((n - 1).max(1) as f32);
                pos_term.add(&neg_term).mean_all()
            }
            _ => {
                // Symmetric InfoNCE between the two view sets.
                let s = a.matmul(&b.transpose(0, 1)).div_scalar(self.cfg.tau);
                let mut eye = vec![0f32; n * n];
                for i in 0..n {
                    eye[i * n + i] = 1.0;
                }
                let id = Tensor::from_vec(eye, &[n, n]);
                let pos = s.mul(&id).sum_axis(1, false);
                let l_ab = pos.sub(&s.exp().sum_axis(1, false).ln()).neg();
                let st = s.transpose(0, 1);
                let l_ba = pos.sub(&st.exp().sum_axis(1, false).ln()).neg();
                l_ab.add(&l_ba).mean_all().mul_scalar(0.5)
            }
        }
    }

    /// Pre-train on an unlabeled pool; returns the final-epoch mean loss.
    pub fn pretrain(
        &mut self,
        pool: &[MultiSeries],
        epochs: usize,
        batch_size: usize,
        lr: f32,
        seed: u64,
    ) -> f32 {
        assert!(pool.len() >= 2);
        let prepared: Vec<MultiSeries> = pool.iter().map(|s| self.prepare(s)).collect();
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for (i, s) in prepared.iter().enumerate() {
            groups.entry(s.len()).or_default().push(i);
        }
        let mut params = self.encoder.parameters();
        params.extend(self.proj.parameters());
        let mut opt = Adam::new(params, lr);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut last = f32::NAN;
        for _ in 0..epochs {
            let mut total = 0f32;
            let mut nb = 0usize;
            for idxs in groups.values() {
                for batch in batch_indices(idxs.len(), batch_size, &mut rng) {
                    let mut va = Vec::with_capacity(batch.len());
                    let mut vb = Vec::with_capacity(batch.len());
                    for &k in &batch {
                        let (a, b) = self.make_views(&prepared[idxs[k]], &mut rng);
                        va.push(a);
                        vb.push(b);
                    }
                    let ra = self.project(&va.iter().collect::<Vec<_>>());
                    let rb = self.project(&vb.iter().collect::<Vec<_>>());
                    let soft = (self.method == Method::SoftClt).then(|| {
                        soft_targets(
                            &batch
                                .iter()
                                .map(|&k| &prepared[idxs[k]])
                                .collect::<Vec<_>>(),
                        )
                    });
                    let loss = self.batch_loss(&ra, &rb, soft.as_ref());
                    opt.zero_grad();
                    loss.backward();
                    opt.step();
                    total += loss.item();
                    nb += 1;
                }
            }
            last = total / nb.max(1) as f32;
        }
        last
    }

    /// Fine-tune a copy of the encoder + fresh head on a target dataset.
    pub fn fine_tune(&self, ds: &Dataset, fcfg: &FineTuneConfig) -> FineTuned {
        let fresh = TsEncoder::new(
            self.cfg.hidden,
            self.cfg.repr_dim,
            &self.cfg.dilations,
            self.seed,
        );
        copy_parameters(&self.encoder, &fresh);
        FineTuned::from_encoder(fresh, self.cfg.repr_dim, ds, fcfg)
    }
}

/// Soft assignment matrix for SoftCLT: row-softmax of negative DTW
/// distances between the raw (prepared) series, flattened over variables.
fn soft_targets(samples: &[&MultiSeries]) -> Tensor {
    let n = samples.len();
    let flat: Vec<Vec<f32>> = samples.iter().map(|s| s.concat()).collect();
    let mut d = vec![0f32; n * n];
    for i in 0..n {
        for j in i + 1..n {
            let dist = crate::nn1::dtw(&flat[i], &flat[j], 0.1);
            d[i * n + j] = dist;
            d[j * n + i] = dist;
        }
    }
    // Row-stable softmax of -d / scale, scale = mean off-diagonal distance.
    let mean_d = d.iter().sum::<f32>() / ((n * n - n).max(1) as f32);
    let scale = mean_d.max(1e-6);
    let mut t = vec![0f32; n * n];
    for i in 0..n {
        let row = &d[i * n..(i + 1) * n];
        let mx = row.iter().map(|x| -x / scale).fold(f32::MIN, f32::max);
        let mut denom = 0f32;
        for (j, &dist) in row.iter().enumerate() {
            let e = (-dist / scale - mx).exp();
            t[i * n + j] = e;
            denom += e;
        }
        for j in 0..n {
            t[i * n + j] /= denom;
        }
    }
    Tensor::from_vec(t, &[n, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimts_data::archives::monash_like_pool;
    use aimts_data::generator::{DatasetSpec, PatternFamily};

    fn pool() -> Vec<MultiSeries> {
        monash_like_pool(2, 0).into_iter().take(12).collect()
    }

    #[test]
    fn all_methods_pretrain_with_finite_loss() {
        for m in [
            Method::Ts2Vec,
            Method::TsTcc,
            Method::Tnc,
            Method::TLoss,
            Method::SoftClt,
        ] {
            let mut b = ContrastiveBaseline::new(m, BaselineConfig::tiny(), 1);
            let loss = b.pretrain(&pool(), 1, 4, 5e-3, 0);
            assert!(loss.is_finite(), "{} loss not finite", m.name());
        }
    }

    #[test]
    fn ts2vec_loss_decreases() {
        let mut b = ContrastiveBaseline::new(Method::Ts2Vec, BaselineConfig::tiny(), 2);
        let p = pool();
        let first = b.pretrain(&p, 1, 4, 2e-3, 0);
        let later = b.pretrain(&p, 3, 4, 2e-3, 1);
        assert!(later < first, "loss did not decrease: {first} -> {later}");
    }

    #[test]
    fn views_preserve_shape() {
        let b = ContrastiveBaseline::new(Method::Tnc, BaselineConfig::tiny(), 3);
        let s: MultiSeries = vec![(0..32).map(|i| i as f32).collect(), vec![1.0; 32]];
        let mut rng = StdRng::seed_from_u64(0);
        let (a, c) = b.make_views(&s, &mut rng);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].len(), 32);
        assert_eq!(c[0].len(), 32);
    }

    #[test]
    fn soft_targets_rows_normalized_and_diag_dominant() {
        let a: MultiSeries = vec![vec![0.0; 16]];
        let b: MultiSeries = vec![(0..16).map(|i| i as f32).collect()];
        let c: MultiSeries = vec![vec![0.1; 16]];
        let t = super::soft_targets(&[&a, &b, &c]);
        let v = t.to_vec();
        for i in 0..3 {
            let row: f32 = v[i * 3..(i + 1) * 3].iter().sum();
            assert!((row - 1.0).abs() < 1e-5);
            for j in 0..3 {
                assert!(v[i * 3 + i] >= v[i * 3 + j], "diagonal must dominate");
            }
        }
        // a is closer to c than to b: weight(a,b) < weight(a,c).
        assert!(v[1] < v[2], "d(a,b) > d(a,c) should give smaller weight");
    }

    #[test]
    fn fine_tune_end_to_end() {
        let mut b = ContrastiveBaseline::new(Method::TsTcc, BaselineConfig::tiny(), 4);
        b.pretrain(&pool(), 1, 4, 5e-3, 0);
        let ds = DatasetSpec {
            n_classes: 2,
            noise: 0.05,
            length: 48,
            ..DatasetSpec::new("t", PatternFamily::SineFreq, 7)
        }
        .generate();
        let tuned = b.fine_tune(
            &ds,
            &FineTuneConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        let acc = tuned.evaluate(&ds.test);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn fine_tune_does_not_mutate_baseline() {
        let b = ContrastiveBaseline::new(Method::TLoss, BaselineConfig::tiny(), 5);
        let before = b.encoder.parameters()[0].to_vec();
        let ds = DatasetSpec::new("t", PatternFamily::SinePhase, 8).generate();
        let _ = b.fine_tune(
            &ds,
            &FineTuneConfig {
                epochs: 2,
                ..Default::default()
            },
        );
        assert_eq!(before, b.encoder.parameters()[0].to_vec());
    }
}
