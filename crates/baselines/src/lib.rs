//! # aimts-baselines
//!
//! Re-implementations of the baselines AimTS is compared against,
//! organized by the paper's three paradigms:
//!
//! * **Case-by-case representation learning** (Table I):
//!   [`ContrastiveBaseline`] with [`Method::Ts2Vec`], [`Method::TsTcc`],
//!   [`Method::Tnc`] and [`Method::TLoss`] — faithful-in-structure,
//!   scaled-down versions sharing the same encoder substrate as AimTS so
//!   comparisons isolate the *learning objective*.
//! * **Case-by-case supervised / classical** (Table II):
//!   [`FcnClassifier`] (stand-in for the TimesNet/OS-CNN class of
//!   supervised deep models), [`RocketClassifier`] (random convolution
//!   kernels + ridge), and [`OneNn`] (1-NN with Euclidean or DTW).
//! * **Multi-source foundation models** (Tables IV/V): [`MomentLike`]
//!   (masked-reconstruction pre-training) and [`UnitsLike`] (supervised
//!   multi-task pre-training).
//!
//! Every baseline exposes the same two-phase API as AimTS where
//! applicable: `pretrain` on a pool, then `fine_tune` on a target
//! [`aimts_data::Dataset`] returning an [`aimts::FineTuned`].

pub mod contrastive;
pub mod fcn;
pub mod fft;
pub mod foundation;
pub mod nn1;
pub mod ridge;
pub mod rocket;
pub mod tfc;

pub use contrastive::{BaselineConfig, ContrastiveBaseline, Method};
pub use fcn::FcnClassifier;
pub use foundation::{MomentLike, UnitsLike};
pub use nn1::{Metric, OneNn};
pub use ridge::RidgeClassifier;
pub use rocket::{Rocket, RocketClassifier};
pub use tfc::{TfcBaseline, TfcFineTuned};
