//! ROCKET (Dempster et al. 2020): random convolutional kernels + PPV/max
//! features + ridge classifier. One of the paper's classical Table II
//! baselines; also exceptionally fast, making it the reference point for
//! the efficiency comparison.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use aimts_data::preprocess::z_normalize;
use aimts_data::{Dataset, MultiSeries, Split};

use crate::ridge::RidgeClassifier;

/// One random convolution kernel.
#[derive(Debug, Clone)]
struct Kernel {
    weights: Vec<f32>,
    bias: f32,
    dilation: usize,
    padding: bool,
}

/// The random-kernel transform.
#[derive(Debug, Clone)]
pub struct Rocket {
    kernels: Vec<Kernel>,
}

impl Rocket {
    /// Sample `n_kernels` kernels as in the original paper: lengths from
    /// {7, 9, 11}, centered N(0,1) weights, bias U(−1, 1), exponential
    /// dilation relative to `ref_len`, padding on/off at random.
    pub fn new(n_kernels: usize, ref_len: usize, seed: u64) -> Self {
        assert!(n_kernels >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let kernels = (0..n_kernels)
            .map(|_| {
                let len = [7usize, 9, 11][rng.gen_range(0..3usize)];
                let mut weights: Vec<f32> = (0..len)
                    .map(|_| {
                        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                        let u2: f32 = rng.gen_range(0.0..1.0);
                        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
                    })
                    .collect();
                let mean = weights.iter().sum::<f32>() / len as f32;
                weights.iter_mut().for_each(|w| *w -= mean);
                let max_exp = ((ref_len.max(len + 1) - 1) as f32 / (len - 1) as f32).log2();
                let dilation = 2f32.powf(rng.gen_range(0.0..max_exp.max(0.01))) as usize;
                Kernel {
                    weights,
                    bias: rng.gen_range(-1.0..1.0),
                    dilation: dilation.max(1),
                    padding: rng.gen_bool(0.5),
                }
            })
            .collect();
        Rocket { kernels }
    }

    /// Number of features produced per series (2 per kernel: PPV + max).
    pub fn n_features(&self) -> usize {
        2 * self.kernels.len()
    }

    /// Transform one univariate series into its feature vector.
    pub fn transform_series(&self, x: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.n_features());
        for k in &self.kernels {
            let klen = k.weights.len();
            let span = (klen - 1) * k.dilation;
            let pad = if k.padding { span / 2 } else { 0 };
            let n = x.len() + 2 * pad;
            if n <= span {
                // Series shorter than the dilated kernel: neutral features.
                out.push(0.0);
                out.push(k.bias);
                continue;
            }
            let mut ppv = 0usize;
            let mut mx = f32::NEG_INFINITY;
            let count = n - span;
            for start in 0..count {
                let mut acc = k.bias;
                for (wi, &w) in k.weights.iter().enumerate() {
                    let pos = start + wi * k.dilation;
                    if pos >= pad && pos - pad < x.len() {
                        acc += w * x[pos - pad];
                    }
                }
                if acc > 0.0 {
                    ppv += 1;
                }
                mx = mx.max(acc);
            }
            out.push(ppv as f32 / count as f32);
            out.push(mx);
        }
        out
    }

    /// Transform a multivariate sample: per-variable features averaged
    /// (simple multivariate extension; the original is univariate).
    pub fn transform_sample(&self, vars: &MultiSeries) -> Vec<f32> {
        let mut acc = vec![0f32; self.n_features()];
        for v in vars {
            let mut z = v.clone();
            z_normalize(&mut z);
            for (a, f) in acc.iter_mut().zip(self.transform_series(&z)) {
                *a += f;
            }
        }
        let m = vars.len() as f32;
        acc.iter_mut().for_each(|a| *a /= m);
        acc
    }
}

/// ROCKET transform + ridge classifier, fitted case-by-case.
pub struct RocketClassifier {
    pub rocket: Rocket,
    ridge: Option<RidgeClassifier>,
}

impl RocketClassifier {
    pub fn new(n_kernels: usize, ref_len: usize, seed: u64) -> Self {
        RocketClassifier {
            rocket: Rocket::new(n_kernels, ref_len, seed),
            ridge: None,
        }
    }

    /// Fit the ridge head on the dataset's training split.
    pub fn fit(&mut self, ds: &Dataset) {
        let feats: Vec<Vec<f32>> = ds
            .train
            .samples
            .iter()
            .map(|s| self.rocket.transform_sample(&s.vars))
            .collect();
        self.ridge = Some(RidgeClassifier::fit(
            &feats,
            &ds.train.labels(),
            ds.n_classes,
            1.0,
        ));
    }

    /// Predict labels for a split.
    pub fn predict(&self, split: &Split) -> Vec<usize> {
        let ridge = self.ridge.as_ref().expect("call fit() before predict()");
        split
            .samples
            .iter()
            .map(|s| ridge.predict(&self.rocket.transform_sample(&s.vars)))
            .collect()
    }

    /// Accuracy on a split.
    pub fn evaluate(&self, split: &Split) -> f64 {
        aimts_eval::accuracy(&self.predict(split), &split.labels())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimts_data::generator::{DatasetSpec, PatternFamily};

    #[test]
    fn feature_count_and_ranges() {
        let r = Rocket::new(20, 100, 0);
        assert_eq!(r.n_features(), 40);
        let x: Vec<f32> = (0..100).map(|i| (i as f32 * 0.1).sin()).collect();
        let f = r.transform_series(&x);
        assert_eq!(f.len(), 40);
        // PPV features at even indices in [0, 1].
        for i in (0..40).step_by(2) {
            assert!((0.0..=1.0).contains(&f[i]), "ppv {}", f[i]);
        }
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_per_seed() {
        let x: Vec<f32> = (0..50).map(|i| i as f32).collect();
        let a = Rocket::new(10, 50, 3).transform_series(&x);
        let b = Rocket::new(10, 50, 3).transform_series(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn classifies_separable_dataset_well() {
        let ds = DatasetSpec {
            n_classes: 2,
            train_per_class: 15,
            test_per_class: 15,
            noise: 0.05,
            length: 64,
            ..DatasetSpec::new("r", PatternFamily::SineFreq, 11)
        }
        .generate();
        let mut clf = RocketClassifier::new(100, 64, 0);
        clf.fit(&ds);
        let acc = clf.evaluate(&ds.test);
        assert!(acc >= 0.9, "rocket should nail sine frequencies, got {acc}");
    }

    #[test]
    fn handles_short_series() {
        let r = Rocket::new(10, 100, 0);
        let f = r.transform_series(&[1.0, 2.0, 3.0]);
        assert_eq!(f.len(), 20);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn multivariate_transform_averages() {
        let r = Rocket::new(5, 32, 0);
        let v: Vec<f32> = (0..32).map(|i| (i as f32 * 0.3).sin()).collect();
        let same = r.transform_sample(&vec![v.clone(), v.clone()]);
        let single = r.transform_sample(&vec![v]);
        for (a, b) in same.iter().zip(&single) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
