//! Foundation-model stand-ins for the multi-source adaptation paradigm
//! (paper Table IV/V competitors):
//!
//! * [`MomentLike`] — masked-reconstruction pre-training in the spirit of
//!   MOMENT (Goswami et al. 2024): random contiguous spans of each series
//!   are zeroed and a decoder reconstructs them from the pooled encoder
//!   representation. Scaled down: the decoder is a linear map from the
//!   pooled representation back to the series.
//! * [`UnitsLike`] — supervised multi-task pre-training in the spirit of
//!   UniTS (Gao et al. 2024): one shared encoder with one classification
//!   head per pre-training dataset, trained jointly on labeled sources.

use aimts::batch::{batch_indices, encode_channel_independent, samples_to_tensor};
use aimts::{copy_parameters, FineTuneConfig, FineTuned, TsEncoder};
use aimts_data::preprocess::{resample_sample, z_normalize_sample};
use aimts_data::{Dataset, MultiSeries};
use aimts_nn::{Adam, Linear, Module, Optimizer};
use aimts_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shared encoder settings for the foundation stand-ins.
#[derive(Debug, Clone)]
pub struct FoundationConfig {
    pub hidden: usize,
    pub repr_dim: usize,
    pub dilations: Vec<usize>,
    pub pretrain_len: usize,
}

impl Default for FoundationConfig {
    fn default() -> Self {
        FoundationConfig {
            hidden: 32,
            repr_dim: 64,
            dilations: vec![1, 2, 4],
            pretrain_len: 64,
        }
    }
}

impl FoundationConfig {
    pub fn tiny() -> Self {
        FoundationConfig {
            hidden: 8,
            repr_dim: 16,
            dilations: vec![1, 2],
            pretrain_len: 32,
        }
    }
}

/// Masked-reconstruction foundation model (MOMENT-like).
pub struct MomentLike {
    pub cfg: FoundationConfig,
    pub encoder: TsEncoder,
    decoder: Linear,
    seed: u64,
}

impl MomentLike {
    pub fn new(cfg: FoundationConfig, seed: u64) -> Self {
        let encoder = TsEncoder::new(cfg.hidden, cfg.repr_dim, &cfg.dilations, seed);
        let decoder = Linear::new(cfg.repr_dim, cfg.pretrain_len, true, seed.wrapping_add(42));
        MomentLike {
            cfg,
            encoder,
            decoder,
            seed,
        }
    }

    /// Pre-train by reconstructing masked spans; returns final mean MSE.
    pub fn pretrain(
        &mut self,
        pool: &[MultiSeries],
        epochs: usize,
        batch_size: usize,
        lr: f32,
        seed: u64,
    ) -> f32 {
        // Channel-independent: every variable becomes its own row.
        let mut rows: Vec<Vec<f32>> = Vec::new();
        for s in pool {
            let mut v = resample_sample(s, self.cfg.pretrain_len);
            z_normalize_sample(&mut v);
            rows.extend(v);
        }
        assert!(rows.len() >= 2, "pool too small");
        let t = self.cfg.pretrain_len;
        let mut params = self.encoder.parameters();
        params.extend(self.decoder.parameters());
        let mut opt = Adam::new(params, lr);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut last = f32::NAN;
        for _ in 0..epochs {
            let mut total = 0f32;
            let mut nb = 0usize;
            for batch in batch_indices(rows.len(), batch_size, &mut rng) {
                let b = batch.len();
                let mut data = Vec::with_capacity(b * t);
                let mut target = Vec::with_capacity(b * t);
                let mut mask = Vec::with_capacity(b * t);
                for &i in &batch {
                    let row = &rows[i];
                    // Mask a contiguous span of ~25%.
                    let w = (t / 4).max(1);
                    let start = rng.gen_range(0..=t - w);
                    for (j, &v) in row.iter().enumerate() {
                        let masked = j >= start && j < start + w;
                        data.push(if masked { 0.0 } else { v });
                        target.push(v);
                        mask.push(if masked { 1.0 } else { 0.0 });
                    }
                }
                let x = Tensor::from_vec(data, &[b, 1, t]);
                let y = Tensor::from_vec(target, &[b, t]);
                let m = Tensor::from_vec(mask, &[b, t]);
                let repr = self.encoder.encode_rows(&x);
                let recon = self.decoder.forward(&repr); // [b, t]
                let masked_count = m.to_vec().iter().sum::<f32>().max(1.0);
                let loss = recon
                    .sub(&y)
                    .square()
                    .mul(&m)
                    .sum_all()
                    .div_scalar(masked_count);
                opt.zero_grad();
                loss.backward();
                opt.step();
                total += loss.item();
                nb += 1;
            }
            last = total / nb.max(1) as f32;
        }
        last
    }

    /// Fine-tune a copy of the encoder on a target dataset.
    pub fn fine_tune(&self, ds: &Dataset, fcfg: &FineTuneConfig) -> FineTuned {
        let fresh = TsEncoder::new(
            self.cfg.hidden,
            self.cfg.repr_dim,
            &self.cfg.dilations,
            self.seed,
        );
        copy_parameters(&self.encoder, &fresh);
        FineTuned::from_encoder(fresh, self.cfg.repr_dim, ds, fcfg)
    }
}

/// Supervised multi-task foundation model (UniTS-like).
pub struct UnitsLike {
    pub cfg: FoundationConfig,
    pub encoder: TsEncoder,
    seed: u64,
}

impl UnitsLike {
    pub fn new(cfg: FoundationConfig, seed: u64) -> Self {
        let encoder = TsEncoder::new(cfg.hidden, cfg.repr_dim, &cfg.dilations, seed);
        UnitsLike { cfg, encoder, seed }
    }

    /// Jointly train the shared encoder with per-dataset heads on labeled
    /// sources; returns the final mean cross-entropy.
    pub fn pretrain(
        &mut self,
        sources: &[&Dataset],
        epochs: usize,
        batch_size: usize,
        lr: f32,
        seed: u64,
    ) -> f32 {
        assert!(!sources.is_empty());
        let heads: Vec<Linear> = sources
            .iter()
            .enumerate()
            .map(|(i, d)| {
                Linear::new(
                    self.cfg.repr_dim,
                    d.n_classes,
                    true,
                    seed.wrapping_add(i as u64),
                )
            })
            .collect();
        // Prepared per-source training data.
        let prepared: Vec<Vec<MultiSeries>> = sources
            .iter()
            .map(|d| {
                d.train
                    .samples
                    .iter()
                    .map(|s| {
                        let mut v = resample_sample(&s.vars, self.cfg.pretrain_len);
                        z_normalize_sample(&mut v);
                        v
                    })
                    .collect()
            })
            .collect();
        let mut params = self.encoder.parameters();
        for h in &heads {
            params.extend(h.parameters());
        }
        let mut opt = Adam::new(params, lr);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut last = f32::NAN;
        for _ in 0..epochs {
            let mut total = 0f32;
            let mut nb = 0usize;
            for (di, d) in sources.iter().enumerate() {
                let labels = d.train.labels();
                for batch in batch_indices(prepared[di].len(), batch_size, &mut rng) {
                    let samples: Vec<&MultiSeries> =
                        batch.iter().map(|&i| &prepared[di][i]).collect();
                    let targets: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
                    let x = samples_to_tensor(&samples);
                    let repr = encode_channel_independent(&self.encoder, &x);
                    let loss = heads[di].forward(&repr).cross_entropy(&targets);
                    opt.zero_grad();
                    loss.backward();
                    opt.step();
                    total += loss.item();
                    nb += 1;
                }
            }
            last = total / nb.max(1) as f32;
        }
        last
    }

    /// Fine-tune a copy of the encoder on a target dataset.
    pub fn fine_tune(&self, ds: &Dataset, fcfg: &FineTuneConfig) -> FineTuned {
        let fresh = TsEncoder::new(
            self.cfg.hidden,
            self.cfg.repr_dim,
            &self.cfg.dilations,
            self.seed,
        );
        copy_parameters(&self.encoder, &fresh);
        FineTuned::from_encoder(fresh, self.cfg.repr_dim, ds, fcfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimts_data::archives::{monash_like_pool, ucr_like_archive};

    #[test]
    fn moment_like_reconstruction_loss_decreases() {
        let mut m = MomentLike::new(FoundationConfig::tiny(), 0);
        let pool: Vec<MultiSeries> = monash_like_pool(2, 0).into_iter().take(12).collect();
        let first = m.pretrain(&pool, 1, 8, 5e-3, 0);
        let later = m.pretrain(&pool, 4, 8, 5e-3, 1);
        assert!(first.is_finite() && later.is_finite());
        assert!(later < first, "mse did not decrease: {first} -> {later}");
    }

    #[test]
    fn units_like_pretrains_and_finetunes() {
        let sources = ucr_like_archive(2, 0);
        let refs: Vec<&Dataset> = sources.iter().collect();
        let mut u = UnitsLike::new(FoundationConfig::tiny(), 0);
        let loss = u.pretrain(&refs, 1, 8, 5e-3, 0);
        assert!(loss.is_finite());
        let tuned = u.fine_tune(
            &sources[0],
            &FineTuneConfig {
                epochs: 2,
                ..Default::default()
            },
        );
        let acc = tuned.evaluate(&sources[0].test);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn moment_finetune_does_not_mutate() {
        let m = MomentLike::new(FoundationConfig::tiny(), 1);
        let before = m.encoder.parameters()[0].to_vec();
        let ds = &ucr_like_archive(1, 1)[0];
        let _ = m.fine_tune(
            ds,
            &FineTuneConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        assert_eq!(before, m.encoder.parameters()[0].to_vec());
    }
}
