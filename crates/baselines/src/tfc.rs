//! TF-C-like baseline (Zhang et al. 2022, a Table III competitor):
//! time–frequency consistency pre-training. A time view (jittered series)
//! and a frequency view (perturbed magnitude spectrum) of the same sample
//! are embedded by two encoders and aligned with a symmetric InfoNCE —
//! structurally the paper's series-image loss with the image modality
//! replaced by the frequency modality.

use aimts::batch::{batch_indices, encode_channel_independent, samples_to_tensor};
use aimts::TsEncoder;
use aimts_data::preprocess::{resample_sample, z_normalize_sample};
use aimts_data::{Dataset, MultiSeries, Split};
use aimts_nn::{Activation, Adam, Mlp, Module, Optimizer};
use aimts_tensor::{no_grad, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::contrastive::BaselineConfig;
use crate::fft::magnitude_spectrum;

/// Time–frequency consistency baseline.
pub struct TfcBaseline {
    pub cfg: BaselineConfig,
    pub time_encoder: TsEncoder,
    pub freq_encoder: TsEncoder,
    time_proj: Mlp,
    freq_proj: Mlp,
}

impl TfcBaseline {
    pub fn new(cfg: BaselineConfig, seed: u64) -> Self {
        let time_encoder = TsEncoder::new(cfg.hidden, cfg.repr_dim, &cfg.dilations, seed);
        let freq_encoder = TsEncoder::new(
            cfg.hidden,
            cfg.repr_dim,
            &cfg.dilations,
            seed.wrapping_add(7),
        );
        let time_proj = Mlp::new(
            &[cfg.repr_dim, cfg.repr_dim, cfg.proj_dim],
            Activation::Gelu,
            seed.wrapping_add(100),
        );
        let freq_proj = Mlp::new(
            &[cfg.repr_dim, cfg.repr_dim, cfg.proj_dim],
            Activation::Gelu,
            seed.wrapping_add(200),
        );
        TfcBaseline {
            cfg,
            time_encoder,
            freq_encoder,
            time_proj,
            freq_proj,
        }
    }

    fn prepare(&self, s: &MultiSeries) -> MultiSeries {
        let mut v = resample_sample(s, self.cfg.pretrain_len);
        z_normalize_sample(&mut v);
        v
    }

    /// Frequency view: per-variable magnitude spectrum with a random band
    /// removed and light spectral noise.
    fn freq_view(&self, s: &MultiSeries, rng: &mut StdRng) -> MultiSeries {
        s.iter()
            .map(|v| {
                let mut spec = magnitude_spectrum(v);
                let f = spec.len();
                // Remove a random band (~12%).
                let w = (f / 8).max(1);
                let start = rng.gen_range(0..f.saturating_sub(w).max(1));
                for b in spec[start..(start + w).min(f)].iter_mut() {
                    *b = 0.0;
                }
                for b in spec.iter_mut() {
                    *b += 0.01 * (rng.gen::<f32>() - 0.5);
                }
                spec
            })
            .collect()
    }

    /// Time view: light jitter.
    fn time_view(&self, s: &MultiSeries, rng: &mut StdRng) -> MultiSeries {
        s.iter()
            .map(|v| {
                v.iter()
                    .map(|x| x + 0.05 * (rng.gen::<f32>() - 0.5))
                    .collect()
            })
            .collect()
    }

    fn cross_loss(&self, t: &Tensor, f: &Tensor, tau: f32) -> Tensor {
        let n = t.shape()[0];
        let s = t.matmul(&f.transpose(0, 1)).div_scalar(tau);
        let mut eye = vec![0f32; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let id = Tensor::from_vec(eye, &[n, n]);
        let pos = s.mul(&id).sum_axis(1, false);
        let l_tf = pos.sub(&s.exp().sum_axis(1, false).ln()).neg();
        let l_ft = pos
            .sub(&s.transpose(0, 1).exp().sum_axis(1, false).ln())
            .neg();
        l_tf.add(&l_ft).mean_all().mul_scalar(0.5)
    }

    /// Pre-train on an unlabeled pool; returns the final-epoch mean loss.
    pub fn pretrain(
        &mut self,
        pool: &[MultiSeries],
        epochs: usize,
        batch_size: usize,
        lr: f32,
        seed: u64,
    ) -> f32 {
        assert!(pool.len() >= 2);
        let prepared: Vec<MultiSeries> = pool.iter().map(|s| self.prepare(s)).collect();
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for (i, s) in prepared.iter().enumerate() {
            groups.entry(s.len()).or_default().push(i);
        }
        let mut params = self.time_encoder.parameters();
        params.extend(self.freq_encoder.parameters());
        params.extend(self.time_proj.parameters());
        params.extend(self.freq_proj.parameters());
        let mut opt = Adam::new(params, lr);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut last = f32::NAN;
        for _ in 0..epochs {
            let mut total = 0f32;
            let mut nb = 0usize;
            for idxs in groups.values() {
                for batch in batch_indices(idxs.len(), batch_size, &mut rng) {
                    let tviews: Vec<MultiSeries> = batch
                        .iter()
                        .map(|&k| self.time_view(&prepared[idxs[k]], &mut rng))
                        .collect();
                    let fviews: Vec<MultiSeries> = batch
                        .iter()
                        .map(|&k| self.freq_view(&prepared[idxs[k]], &mut rng))
                        .collect();
                    let tb = samples_to_tensor(&tviews.iter().collect::<Vec<_>>());
                    let fb = samples_to_tensor(&fviews.iter().collect::<Vec<_>>());
                    let tr = encode_channel_independent(&self.time_encoder, &tb);
                    let fr = encode_channel_independent(&self.freq_encoder, &fb);
                    let tz = self.time_proj.forward(&tr).l2_normalize(1);
                    let fz = self.freq_proj.forward(&fr).l2_normalize(1);
                    let loss = self.cross_loss(&tz, &fz, self.cfg.tau);
                    opt.zero_grad();
                    loss.backward();
                    opt.step();
                    total += loss.item();
                    nb += 1;
                }
            }
            last = total / nb.max(1) as f32;
        }
        last
    }

    /// Joint time+frequency representation of a batch of samples.
    fn joint_repr(&self, samples: &[&MultiSeries]) -> Tensor {
        let t = samples_to_tensor(samples);
        let tr = encode_channel_independent(&self.time_encoder, &t);
        let fviews: Vec<MultiSeries> = samples
            .iter()
            .map(|s| s.iter().map(|v| magnitude_spectrum(v)).collect())
            .collect();
        let fb = samples_to_tensor(&fviews.iter().collect::<Vec<_>>());
        let fr = encode_channel_independent(&self.freq_encoder, &fb);
        Tensor::concat(&[tr, fr], 1)
    }

    /// Fine-tune both encoders plus a classifier head on concatenated
    /// time+frequency representations (TF-C's downstream protocol).
    pub fn fine_tune(&self, ds: &Dataset, epochs: usize, lr: f32, seed: u64) -> TfcFineTuned {
        let fresh = TfcBaseline::new(self.cfg.clone(), seed);
        aimts::copy_parameters(&self.time_encoder, &fresh.time_encoder);
        aimts::copy_parameters(&self.freq_encoder, &fresh.freq_encoder);
        let head = Mlp::new(
            &[2 * self.cfg.repr_dim, self.cfg.repr_dim, ds.n_classes],
            Activation::Gelu,
            seed.wrapping_add(300),
        );
        let prepared: Vec<MultiSeries> = ds
            .train
            .samples
            .iter()
            .map(|s| {
                let mut v = s.vars.clone();
                z_normalize_sample(&mut v);
                v
            })
            .collect();
        let labels = ds.train.labels();
        let mut params = head.parameters();
        params.extend(fresh.time_encoder.parameters());
        params.extend(fresh.freq_encoder.parameters());
        let mut opt = Adam::new(params, lr);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..epochs {
            for batch in batch_indices(prepared.len(), 8, &mut rng) {
                let samples: Vec<&MultiSeries> = batch.iter().map(|&i| &prepared[i]).collect();
                let targets: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
                let logits = head.forward(&fresh.joint_repr(&samples));
                let loss = logits.cross_entropy(&targets);
                opt.zero_grad();
                loss.backward();
                opt.step();
            }
        }
        TfcFineTuned { model: fresh, head }
    }
}

/// A fine-tuned TF-C task model.
pub struct TfcFineTuned {
    model: TfcBaseline,
    head: Mlp,
}

impl TfcFineTuned {
    pub fn predict(&self, split: &Split) -> Vec<usize> {
        no_grad(|| {
            let mut preds = Vec::with_capacity(split.len());
            for chunk in split.samples.chunks(64) {
                let prepared: Vec<MultiSeries> = chunk
                    .iter()
                    .map(|s| {
                        let mut v = s.vars.clone();
                        z_normalize_sample(&mut v);
                        v
                    })
                    .collect();
                let refs: Vec<&MultiSeries> = prepared.iter().collect();
                preds.extend(
                    self.head
                        .forward(&self.model.joint_repr(&refs))
                        .argmax_axis(1),
                );
            }
            preds
        })
    }

    pub fn evaluate(&self, split: &Split) -> f64 {
        aimts_eval::accuracy(&self.predict(split), &split.labels())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimts_data::archives::monash_like_pool;
    use aimts_data::generator::{DatasetSpec, PatternFamily};

    #[test]
    fn pretrain_loss_finite_and_decreases() {
        let mut tfc = TfcBaseline::new(BaselineConfig::tiny(), 0);
        let pool: Vec<MultiSeries> = monash_like_pool(2, 0).into_iter().take(12).collect();
        let first = tfc.pretrain(&pool, 1, 4, 5e-3, 0);
        let later = tfc.pretrain(&pool, 3, 4, 5e-3, 1);
        assert!(first.is_finite());
        assert!(later < first, "{first} -> {later}");
    }

    #[test]
    fn finetune_beats_chance_on_frequency_classes() {
        // Frequency classes are exactly what the frequency view captures.
        let ds = DatasetSpec {
            n_classes: 2,
            train_per_class: 10,
            test_per_class: 15,
            noise: 0.05,
            length: 64,
            ..DatasetSpec::new("tfc", PatternFamily::SineFreq, 3)
        }
        .generate();
        let mut tfc = TfcBaseline::new(BaselineConfig::tiny(), 1);
        tfc.pretrain(&ds.unlabeled_train(), 2, 8, 5e-3, 1);
        let tuned = tfc.fine_tune(&ds, 15, 1e-3, 1);
        let acc = tuned.evaluate(&ds.test);
        assert!(acc > 0.6, "tfc got {acc}");
    }

    #[test]
    fn finetune_does_not_mutate_pretrained() {
        let tfc = TfcBaseline::new(BaselineConfig::tiny(), 2);
        let before = tfc.time_encoder.parameters()[0].to_vec();
        let ds = DatasetSpec::new("t", PatternFamily::SinePhase, 5).generate();
        let _ = tfc.fine_tune(&ds, 1, 1e-3, 2);
        assert_eq!(before, tfc.time_encoder.parameters()[0].to_vec());
    }
}
