//! 1-nearest-neighbour classifiers with Euclidean distance or DTW
//! (Sakoe–Chiba band) — the classical reference points for TSC.

use aimts_data::preprocess::z_normalize_sample;
use aimts_data::{Dataset, MultiSeries, Split};

/// Distance metric for [`OneNn`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Metric {
    Euclidean,
    /// DTW with a warping window of `band` (fraction of series length).
    Dtw {
        band: f32,
    },
}

/// 1-NN classifier (lazy: stores the normalized training split).
pub struct OneNn {
    metric: Metric,
    train: Vec<(MultiSeries, usize)>,
}

impl OneNn {
    pub fn fit(ds: &Dataset, metric: Metric) -> Self {
        let train = ds
            .train
            .samples
            .iter()
            .map(|s| {
                let mut v = s.vars.clone();
                z_normalize_sample(&mut v);
                (v, s.label)
            })
            .collect();
        OneNn { metric, train }
    }

    fn distance(&self, a: &MultiSeries, b: &MultiSeries) -> f32 {
        assert_eq!(a.len(), b.len(), "variable count mismatch");
        a.iter()
            .zip(b)
            .map(|(x, y)| match self.metric {
                Metric::Euclidean => euclidean(x, y),
                Metric::Dtw { band } => dtw(x, y, band),
            })
            .sum()
    }

    pub fn predict_one(&self, vars: &MultiSeries) -> usize {
        let mut q = vars.clone();
        z_normalize_sample(&mut q);
        self.train
            .iter()
            .map(|(t, lab)| (self.distance(&q, t), *lab))
            .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
            .map(|(_, lab)| lab)
            .expect("empty training set")
    }

    pub fn predict(&self, split: &Split) -> Vec<usize> {
        split
            .samples
            .iter()
            .map(|s| self.predict_one(&s.vars))
            .collect()
    }

    pub fn evaluate(&self, split: &Split) -> f64 {
        aimts_eval::accuracy(&self.predict(split), &split.labels())
    }
}

fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    a[..n]
        .iter()
        .zip(&b[..n])
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

/// Dynamic time warping with a Sakoe–Chiba band (fraction of length).
pub fn dtw(a: &[f32], b: &[f32], band: f32) -> f32 {
    let n = a.len();
    let m = b.len();
    assert!(n > 0 && m > 0);
    let w = ((n.max(m) as f32 * band.clamp(0.0, 1.0)) as usize)
        .max(n.abs_diff(m))
        .max(1);
    let inf = f32::INFINITY;
    let mut prev = vec![inf; m + 1];
    let mut cur = vec![inf; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        cur.fill(inf);
        let lo = i.saturating_sub(w).max(1);
        let hi = (i + w).min(m);
        for j in lo..=hi {
            let cost = (a[i - 1] - b[j - 1]).powi(2);
            let best = prev[j].min(cur[j - 1]).min(prev[j - 1]);
            cur[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m].sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimts_data::generator::{DatasetSpec, PatternFamily};

    #[test]
    fn dtw_identical_is_zero() {
        let x = vec![1.0, 2.0, 3.0, 2.0];
        assert_eq!(dtw(&x, &x, 0.1), 0.0);
    }

    #[test]
    fn dtw_absorbs_time_shift_better_than_euclidean() {
        let a: Vec<f32> = (0..50).map(|i| ((i as f32) * 0.3).sin()).collect();
        let b: Vec<f32> = (0..50).map(|i| ((i as f32 + 3.0) * 0.3).sin()).collect();
        assert!(dtw(&a, &b, 0.2) < euclidean(&a, &b));
    }

    #[test]
    fn dtw_handles_unequal_lengths() {
        let a = vec![0.0, 1.0, 0.0];
        let b = vec![0.0, 0.5, 1.0, 0.5, 0.0];
        assert!(dtw(&a, &b, 1.0).is_finite());
    }

    #[test]
    fn one_nn_classifies_separable_data() {
        let ds = DatasetSpec {
            n_classes: 2,
            train_per_class: 10,
            test_per_class: 10,
            noise: 0.05,
            ..DatasetSpec::new("nn", PatternFamily::MotifPosition, 13)
        }
        .generate();
        for metric in [Metric::Euclidean, Metric::Dtw { band: 0.1 }] {
            let clf = OneNn::fit(&ds, metric);
            let acc = clf.evaluate(&ds.test);
            assert!(acc >= 0.8, "{metric:?} acc {acc}");
        }
    }

    #[test]
    fn predictions_match_split_len() {
        let ds = DatasetSpec::new("nn2", PatternFamily::SineFreq, 14).generate();
        let clf = OneNn::fit(&ds, Metric::Euclidean);
        assert_eq!(clf.predict(&ds.test).len(), ds.test.len());
    }
}
