//! A small radix-2 FFT used by the TF-C baseline's frequency view.

use std::f32::consts::PI;

/// In-place iterative radix-2 Cooley–Tukey FFT over complex pairs
/// `(re, im)`. Length must be a power of two.
pub fn fft_inplace(re: &mut [f32], im: &mut [f32]) {
    let n = re.len();
    assert_eq!(n, im.len());
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / len as f32;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut cur_r = 1.0f32;
            let mut cur_i = 0.0f32;
            for k in 0..len / 2 {
                let a = start + k;
                let b = start + k + len / 2;
                let tr = re[b] * cur_r - im[b] * cur_i;
                let ti = re[b] * cur_i + im[b] * cur_r;
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
                let nr = cur_r * wr - cur_i * wi;
                cur_i = cur_r * wi + cur_i * wr;
                cur_r = nr;
            }
        }
        len <<= 1;
    }
}

/// Magnitude spectrum of a real series: zero-pad to the next power of two,
/// FFT, return the first half's magnitudes (length `next_pow2 / 2`).
pub fn magnitude_spectrum(x: &[f32]) -> Vec<f32> {
    assert!(!x.is_empty());
    let n = x.len().next_power_of_two().max(2);
    let mut re = vec![0f32; n];
    let mut im = vec![0f32; n];
    re[..x.len()].copy_from_slice(x);
    fft_inplace(&mut re, &mut im);
    (0..n / 2)
        .map(|k| (re[k] * re[k] + im[k] * im[k]).sqrt() / n as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![0f32; 8];
        x[0] = 1.0;
        let s = magnitude_spectrum(&x);
        assert_eq!(s.len(), 4);
        assert!(s.iter().all(|&v| (v - 1.0 / 8.0).abs() < 1e-6));
    }

    #[test]
    fn pure_tone_peaks_at_its_frequency() {
        let n = 64;
        let freq = 5;
        let x: Vec<f32> = (0..n)
            .map(|t| (2.0 * PI * freq as f32 * t as f32 / n as f32).sin())
            .collect();
        let s = magnitude_spectrum(&x);
        let argmax = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(argmax, freq);
    }

    #[test]
    fn parseval_energy_preserved() {
        let x: Vec<f32> = (0..32).map(|t| ((t * 7) % 5) as f32 - 2.0).collect();
        let mut re = x.clone();
        let mut im = vec![0f32; 32];
        fft_inplace(&mut re, &mut im);
        let time_energy: f32 = x.iter().map(|v| v * v).sum();
        let freq_energy: f32 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum::<f32>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-2 * time_energy.max(1.0));
    }

    #[test]
    fn non_power_of_two_input_padded() {
        let x = vec![1.0f32; 10];
        let s = magnitude_spectrum(&x);
        assert_eq!(s.len(), 8); // padded to 16.
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_odd_length() {
        let mut re = vec![0f32; 6];
        let mut im = vec![0f32; 6];
        fft_inplace(&mut re, &mut im);
    }
}
