//! Command implementations for `aimts-cli`.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use aimts::{
    AimTs, AimTsConfig, CheckpointPolicy, Executor, FineTuneConfig, HealthPolicy, PretrainConfig,
};
use aimts_data::archives::{monash_like_pool, ucr_like_archive, uea_like_archive};
use aimts_data::loader::load_ucr_tsv_with;
use aimts_data::special;
use aimts_data::{Dataset, MissingValuePolicy};
use aimts_eval::ConfusionMatrix;
use aimts_imaging::{render_sample, ImageConfig};

use crate::args::Args;

pub const USAGE: &str = "aimts-cli — AimTS (ICDE 2025) reproduction CLI

USAGE:
  aimts-cli generate --archive <ucr|uea> [--n 4] [--seed 42] --out <dir>
      Generate a synthetic archive and write univariate datasets as UCR TSVs.
  aimts-cli pretrain [--pool-per-source 8] [--epochs 2] [--lr 0.001]
                     [--hidden 16] [--repr 32] [--seed 3407] [--workers 0]
                     [--checkpoint-dir <dir>] [--checkpoint-every 1]
                     [--keep-last 3] [--resume <ckpt.aimts|dir>]
                     [--clip-norm <f32>] [--max-bad-steps 5]
                     [--max-rollbacks 2] [--executor eager|compiled]
                     --out <ckpt.json>
      Multi-source pre-train AimTS on a Monash-like pool, save a checkpoint.
      --workers 0 (default) resolves the data-parallel thread count from the
      AIMTS_THREADS environment variable, then available cores; 1 is serial.
      --checkpoint-dir enables fault-tolerant training checkpoints
      (ckpt-NNNNNN.aimts: params + Adam moments + scheduler + RNG stream,
      CRC32-checked, written atomically) every --checkpoint-every epochs,
      keeping the newest --keep-last. --resume restores such a checkpoint
      (or the newest one in a directory) and continues the interrupted run
      bit-exactly; it must use the same --seed and worker topology.
      Self-healing knobs: --clip-norm enables global-norm gradient clipping
      (off by default); a non-finite loss or gradient always skips the step;
      --max-bad-steps consecutive skips roll back to the last good epoch
      boundary, and training aborts only after --max-rollbacks rollbacks.
      --executor compiled traces each step shape once and replays it as a
      flat compiled plan (bit-identical to eager, lower per-step overhead).
  aimts-cli finetune --ckpt <ckpt.json> --data-dir <dir> --name <Dataset>
                     [--epochs 40] [--hidden 16] [--repr 32]
                     [--missing-values reject|impute-linear|impute-zero]
                     [--clip-norm <f32>] [--executor eager|compiled]
      Fine-tune a checkpoint on a UCR-TSV dataset; prints accuracy + confusion.
      --missing-values controls NaN/inf cells in the TSV: reject (default)
      fails the load naming the exact cell; the impute policies repair gaps
      by linear interpolation or zero-filling before training.
  aimts-cli demo --dataset <ecg200|starlight|epilepsy|fdb|gesture|emg>
                 [--epochs 40] [--seed 3407] [--executor eager|compiled]
      Fine-tune from random init on a built-in synthetic dataset.
  aimts-cli render --dataset <name as in demo> [--index 0] --out <img.ppm>
      Render a sample as the RGB line chart the image encoder sees.
  aimts-cli info --archive <ucr|uea> [--n 4] [--seed 42]
      Print summary statistics of a synthetic archive.
  aimts-cli export-json --dataset <name as in demo> [--seed 3407] --out <ds.json>
      Export a built-in dataset (incl. multivariate) as a JSON file that
      `aimts_data::loader::load_json` reads back.
  aimts-cli help
";

/// Parse `--executor eager|compiled` (default eager).
fn executor(args: &Args) -> Result<Executor, String> {
    match args.str_or("executor", "eager") {
        "eager" => Ok(Executor::Eager),
        "compiled" => Ok(Executor::Compiled),
        other => Err(format!("unknown executor `{other}` (use eager|compiled)")),
    }
}

fn model_config(args: &Args) -> Result<AimTsConfig, String> {
    let hidden = args.parse_or("hidden", 16usize)?;
    let repr = args.parse_or("repr", 32usize)?;
    Ok(AimTsConfig {
        hidden,
        repr_dim: repr,
        proj_dim: (repr / 2).max(4),
        ..AimTsConfig::default()
    })
}

fn named_dataset(name: &str, seed: u64) -> Result<Dataset, String> {
    Ok(match name {
        "ecg200" => special::ecg200_like(seed),
        "starlight" => special::starlight_like(seed),
        "epilepsy" => special::epilepsy_like(seed),
        "fdb" => special::fdb_like(seed),
        "gesture" => special::gesture_like(seed),
        "emg" => special::emg_like(seed),
        other => return Err(format!("unknown dataset `{other}`")),
    })
}

/// `generate`: write a synthetic archive to disk in UCR TSV format.
pub fn generate(args: &Args) -> Result<(), String> {
    let archive = args.str_or("archive", "ucr");
    let n = args.parse_or("n", 4usize)?;
    let seed = args.parse_or("seed", 42u64)?;
    let out = PathBuf::from(args.required("out")?);
    fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    let datasets = match archive {
        "ucr" => ucr_like_archive(n, seed),
        "uea" => uea_like_archive(n, seed),
        other => return Err(format!("unknown archive `{other}` (use ucr|uea)")),
    };
    for ds in &datasets {
        if ds.n_vars() != 1 {
            println!(
                "skipping `{}` (multivariate; the UCR TSV format is univariate)",
                ds.name
            );
            continue;
        }
        for (split, suffix) in [(&ds.train, "TRAIN"), (&ds.test, "TEST")] {
            let mut body = String::new();
            for s in &split.samples {
                write!(body, "{}", s.label).unwrap();
                for v in &s.vars[0] {
                    write!(body, "\t{v}").unwrap();
                }
                body.push('\n');
            }
            let path = out.join(format!("{}_{suffix}.tsv", ds.name));
            fs::write(&path, body).map_err(|e| e.to_string())?;
        }
        println!(
            "wrote `{}`: {} train / {} test, {} classes, length {}",
            ds.name,
            ds.train.len(),
            ds.test.len(),
            ds.n_classes,
            ds.series_len()
        );
    }
    Ok(())
}

/// Resolve `--resume`: a file is used as-is; a directory means "the newest
/// `ckpt-*.aimts` inside it".
fn resolve_resume(path: PathBuf) -> Result<PathBuf, String> {
    if path.is_dir() {
        aimts::latest_checkpoint(&path)
            .map_err(|e| format!("scanning {} failed: {e}", path.display()))?
            .ok_or_else(|| format!("no ckpt-*.aimts checkpoints in {}", path.display()))
    } else {
        Ok(path)
    }
}

/// `pretrain`: multi-source pre-training to a JSON checkpoint.
pub fn pretrain(args: &Args) -> Result<(), String> {
    let per_source = args.parse_or("pool-per-source", 8usize)?;
    let epochs = args.parse_or("epochs", 2usize)?;
    let lr = args.parse_or("lr", 1e-3f32)?;
    let seed = args.parse_or("seed", 3407u64)?;
    let workers = args.parse_or("workers", 0usize)?;
    let out = PathBuf::from(args.required("out")?);
    let cfg = model_config(args)?;
    let checkpoint = CheckpointPolicy {
        dir: args.get("checkpoint-dir").map(PathBuf::from),
        every: args.parse_or("checkpoint-every", 1usize)?,
        keep_last: args.parse_or("keep-last", 3usize)?,
        resume_from: match args.get("resume") {
            Some(p) => Some(resolve_resume(PathBuf::from(p))?),
            None => None,
        },
    };
    if let Some(from) = &checkpoint.resume_from {
        println!("resuming from {}", from.display());
    }
    let health = HealthPolicy {
        clip_norm: args.parse_opt("clip-norm")?,
        max_bad_steps: args.parse_or("max-bad-steps", HealthPolicy::default().max_bad_steps)?,
        max_rollbacks: args.parse_or("max-rollbacks", HealthPolicy::default().max_rollbacks)?,
        ..HealthPolicy::default()
    };

    let pool = monash_like_pool(per_source, 0);
    println!(
        "pre-training pool: {} unlabeled multi-domain samples",
        pool.len()
    );
    let mut model = AimTs::new(cfg, seed);
    println!("model: {} parameters", model.num_parameters());
    let report = model
        .pretrain(
            &pool,
            &PretrainConfig {
                epochs,
                batch_size: 8,
                lr,
                seed,
                workers,
                checkpoint,
                health,
                executor: executor(args)?,
                ..PretrainConfig::default()
            },
        )
        .map_err(|e| format!("pre-training failed: {e}"))?;
    println!(
        "done: {} steps on {} worker(s), loss per epoch {:?} (proto {:.3}, series-image {:.3})",
        report.steps,
        report.workers,
        report.epoch_losses,
        report.final_proto_loss,
        report.final_si_loss
    );
    println!("{}", report.health);
    model.save(&out).map_err(|e| e.to_string())?;
    println!("checkpoint saved to {}", out.display());
    Ok(())
}

fn finetune_and_report(
    model: &AimTs,
    ds: &Dataset,
    epochs: usize,
    health: HealthPolicy,
    executor: Executor,
) -> Result<(), String> {
    println!(
        "dataset `{}`: {} train / {} test, {} classes, {} vars x {} steps",
        ds.name,
        ds.train.len(),
        ds.test.len(),
        ds.n_classes,
        ds.n_vars(),
        ds.series_len()
    );
    let fcfg = FineTuneConfig {
        epochs,
        batch_size: 8,
        health,
        executor,
        ..FineTuneConfig::default()
    };
    let tuned = model.fine_tune(ds, &fcfg);
    if !tuned.health.is_clean() {
        println!("{}", tuned.health);
    }
    let preds = tuned.predict(&ds.test);
    let cm = ConfusionMatrix::new(&preds, &ds.test.labels(), ds.n_classes);
    println!(
        "\ntest accuracy: {:.3}   macro-F1: {:.3}",
        cm.accuracy(),
        cm.macro_f1()
    );
    println!("\n{}", cm.render());
    Ok(())
}

/// Parse the fine-tuning health knobs shared by `finetune` and `demo`.
fn health_policy(args: &Args) -> Result<HealthPolicy, String> {
    Ok(HealthPolicy {
        clip_norm: args.parse_opt("clip-norm")?,
        ..HealthPolicy::default()
    })
}

/// `finetune`: load checkpoint + UCR-TSV dataset, fine-tune, report.
pub fn finetune(args: &Args) -> Result<(), String> {
    let ckpt = PathBuf::from(args.required("ckpt")?);
    let dir = PathBuf::from(args.required("data-dir")?);
    let name = args.required("name")?;
    let epochs = args.parse_or("epochs", 40usize)?;
    let missing = MissingValuePolicy::parse(args.str_or("missing-values", "reject"))?;
    let cfg = model_config(args)?;

    let mut model = AimTs::new(cfg, 3407);
    model.load(&ckpt).map_err(|e| {
        format!(
            "loading {} failed: {e} (check --hidden/--repr match)",
            ckpt.display()
        )
    })?;
    let ds = load_ucr_tsv_with(Path::new(&dir), name, missing).map_err(|e| e.to_string())?;
    finetune_and_report(&model, &ds, epochs, health_policy(args)?, executor(args)?)
}

/// `demo`: built-in synthetic dataset, fine-tune from random init.
pub fn demo(args: &Args) -> Result<(), String> {
    let name = args.str_or("dataset", "ecg200");
    let epochs = args.parse_or("epochs", 40usize)?;
    let seed = args.parse_or("seed", 3407u64)?;
    let ds = named_dataset(name, seed)?;
    let model = AimTs::new(model_config(args)?, seed);
    finetune_and_report(&model, &ds, epochs, health_policy(args)?, executor(args)?)
}

/// `info`: print archive summary statistics.
pub fn info(args: &Args) -> Result<(), String> {
    let archive = args.str_or("archive", "ucr");
    let n = args.parse_or("n", 4usize)?;
    let seed = args.parse_or("seed", 42u64)?;
    let datasets = match archive {
        "ucr" => ucr_like_archive(n, seed),
        "uea" => uea_like_archive(n, seed),
        other => return Err(format!("unknown archive `{other}` (use ucr|uea)")),
    };
    print!("{}", aimts_data::stats::archive_summary(&datasets));
    Ok(())
}

/// `export-json`: write a built-in dataset as JSON (supports multivariate).
pub fn export_json(args: &Args) -> Result<(), String> {
    let name = args.str_or("dataset", "gesture");
    let seed = args.parse_or("seed", 3407u64)?;
    let out = PathBuf::from(args.required("out")?);
    let ds = named_dataset(name, seed)?;
    aimts_data::loader::save_json(&out, &ds).map_err(|e| e.to_string())?;
    println!(
        "exported `{}` ({} train / {} test, {} vars) to {}",
        ds.name,
        ds.train.len(),
        ds.test.len(),
        ds.n_vars(),
        out.display()
    );
    Ok(())
}

/// `render`: write one sample's RGB line chart as a PPM image.
pub fn render(args: &Args) -> Result<(), String> {
    let name = args.str_or("dataset", "ecg200");
    let index = args.parse_or("index", 0usize)?;
    let seed = args.parse_or("seed", 3407u64)?;
    let out = PathBuf::from(args.required("out")?);
    let ds = named_dataset(name, seed)?;
    let sample = ds
        .train
        .samples
        .get(index)
        .ok_or_else(|| format!("index {index} out of range (train has {})", ds.train.len()))?;
    let cfg = ImageConfig {
        standardize: false,
        ..ImageConfig::default()
    };
    let img = render_sample(&sample.vars, &cfg);
    let mut f = fs::File::create(&out).map_err(|e| e.to_string())?;
    writeln!(f, "P6\n{} {}\n255", img.width, img.height).map_err(|e| e.to_string())?;
    let hw = img.height * img.width;
    let mut bytes = Vec::with_capacity(hw * 3);
    for i in 0..hw {
        for c in 0..3 {
            bytes.push((img.data[c * hw + i] * 255.0) as u8);
        }
    }
    f.write_all(&bytes).map_err(|e| e.to_string())?;
    println!(
        "rendered sample {index} of `{}` (label {}) to {} ({}x{})",
        ds.name,
        sample.label,
        out.display(),
        img.width,
        img.height
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(pairs: &[(&str, &str)]) -> Args {
        let flat: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        Args::parse(&flat).unwrap()
    }

    #[test]
    fn generate_then_finetune_roundtrip() {
        let dir = std::env::temp_dir().join("aimts_cli_test_data");
        let _ = fs::remove_dir_all(&dir);
        generate(&args(&[
            ("archive", "ucr"),
            ("n", "1"),
            ("out", dir.to_str().unwrap()),
        ]))
        .unwrap();
        // The first ucr-like dataset is univariate and must exist on disk.
        let entries: Vec<_> = fs::read_dir(&dir).unwrap().collect();
        assert!(entries.len() >= 2, "expected TRAIN and TEST files");
    }

    #[test]
    fn pretrain_demo_render_commands_run() {
        let ckpt = std::env::temp_dir().join("aimts_cli_test_ckpt.json");
        pretrain(&args(&[
            ("pool-per-source", "2"),
            ("epochs", "1"),
            ("hidden", "8"),
            ("repr", "16"),
            ("workers", "2"),
            ("out", ckpt.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(ckpt.exists());

        demo(&args(&[
            ("dataset", "ecg200"),
            ("epochs", "1"),
            ("hidden", "8"),
            ("repr", "16"),
        ]))
        .unwrap();

        let ppm = std::env::temp_dir().join("aimts_cli_test.ppm");
        render(&args(&[
            ("dataset", "starlight"),
            ("out", ppm.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(ppm.exists());
    }

    #[test]
    fn pretrain_checkpoint_flags_roundtrip() {
        let dir = std::env::temp_dir().join("aimts_cli_test_ckpt_dir");
        let _ = fs::remove_dir_all(&dir);
        let out = std::env::temp_dir().join("aimts_cli_test_resume.json");
        let base = [
            ("pool-per-source", "2"),
            ("epochs", "2"),
            ("hidden", "8"),
            ("repr", "16"),
            ("workers", "1"),
            ("checkpoint-dir", dir.to_str().unwrap()),
        ];
        let mut first: Vec<(&str, &str)> = base.to_vec();
        first.push(("out", out.to_str().unwrap()));
        pretrain(&args(&first)).unwrap();
        assert!(
            dir.join("ckpt-000002.aimts").exists(),
            "final-epoch checkpoint missing"
        );

        // Resuming a finished run from the directory (latest checkpoint)
        // is a no-op train that still writes the JSON output.
        let _ = fs::remove_file(&out);
        let mut resumed: Vec<(&str, &str)> = base.to_vec();
        resumed.push(("resume", dir.to_str().unwrap()));
        resumed.push(("out", out.to_str().unwrap()));
        pretrain(&args(&resumed)).unwrap();
        assert!(out.exists());

        // A wrong seed is rejected with a clean error, not a panic.
        let mut bad: Vec<(&str, &str)> = base.to_vec();
        bad.push(("resume", dir.to_str().unwrap()));
        bad.push(("seed", "9999"));
        bad.push(("out", out.to_str().unwrap()));
        assert!(pretrain(&args(&bad)).is_err());
    }

    #[test]
    fn executor_flag_parses_and_runs() {
        let ckpt = std::env::temp_dir().join("aimts_cli_exec_ckpt.json");
        pretrain(&args(&[
            ("pool-per-source", "2"),
            ("epochs", "1"),
            ("hidden", "8"),
            ("repr", "16"),
            ("workers", "1"),
            ("executor", "compiled"),
            ("out", ckpt.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(ckpt.exists());

        demo(&args(&[
            ("dataset", "ecg200"),
            ("epochs", "1"),
            ("hidden", "8"),
            ("repr", "16"),
            ("executor", "compiled"),
        ]))
        .unwrap();

        // An unknown executor errors cleanly instead of panicking.
        let bad = std::env::temp_dir().join("aimts_cli_exec_bad.json");
        assert!(pretrain(&args(&[
            ("executor", "jit"),
            ("out", bad.to_str().unwrap()),
        ]))
        .is_err());
    }

    #[test]
    fn pretrain_health_flags_parse_and_run() {
        let ckpt = std::env::temp_dir().join("aimts_cli_health_ckpt.json");
        pretrain(&args(&[
            ("pool-per-source", "2"),
            ("epochs", "1"),
            ("hidden", "8"),
            ("repr", "16"),
            ("workers", "1"),
            ("clip-norm", "0.25"),
            ("max-bad-steps", "3"),
            ("max-rollbacks", "1"),
            ("out", ckpt.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(ckpt.exists());
        // A malformed clip-norm errors cleanly instead of panicking.
        let mut bad = std::env::temp_dir().join("aimts_cli_health_bad.json");
        bad.set_extension("json");
        assert!(pretrain(&args(&[
            ("clip-norm", "not-a-number"),
            ("out", bad.to_str().unwrap()),
        ]))
        .is_err());
    }

    #[test]
    fn finetune_missing_values_flag() {
        let dir = std::env::temp_dir().join("aimts_cli_missing_data");
        fs::create_dir_all(&dir).unwrap();
        let mk_row = |label: usize, base: f32, gap: bool| {
            let mut s = format!("{label}");
            for t in 0..8 {
                if gap && t == 3 {
                    s.push_str("\tNaN");
                } else {
                    s.push_str(&format!("\t{}", base + t as f32 * 0.1));
                }
            }
            s.push('\n');
            s
        };
        let train = mk_row(0, 0.0, true) + &mk_row(0, 0.1, false) + &mk_row(1, 5.0, false);
        let test = mk_row(0, 0.05, false) + &mk_row(1, 5.1, false);
        fs::write(dir.join("Gap_TRAIN.tsv"), train).unwrap();
        fs::write(dir.join("Gap_TEST.tsv"), test).unwrap();

        let cfg = model_config(&args(&[("hidden", "8"), ("repr", "16")])).unwrap();
        let ckpt = std::env::temp_dir().join("aimts_cli_missing_ckpt.json");
        AimTs::new(cfg, 1).save(&ckpt).unwrap();

        let base = [
            ("ckpt", ckpt.to_str().unwrap()),
            ("data-dir", dir.to_str().unwrap()),
            ("name", "Gap"),
            ("epochs", "1"),
            ("hidden", "8"),
            ("repr", "16"),
        ];
        // Default policy rejects the NaN cell with a precise error.
        let err = finetune(&args(&base)).unwrap_err();
        assert!(
            err.contains("sample 0") && err.contains("position 3"),
            "{err}"
        );
        // Imputation repairs the gap and the run completes.
        let mut ok: Vec<(&str, &str)> = base.to_vec();
        ok.push(("missing-values", "impute-linear"));
        finetune(&args(&ok)).unwrap();
        // Unknown policies error cleanly.
        let mut bad: Vec<(&str, &str)> = base.to_vec();
        bad.push(("missing-values", "drop"));
        assert!(finetune(&args(&bad)).is_err());
    }

    #[test]
    fn export_json_roundtrip() {
        let out = std::env::temp_dir().join("aimts_cli_export.json");
        export_json(&args(&[
            ("dataset", "gesture"),
            ("out", out.to_str().unwrap()),
        ]))
        .unwrap();
        let ds = aimts_data::loader::load_json(&out).unwrap();
        assert!(ds.n_vars() > 1);
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        assert!(generate(&args(&[("archive", "nope"), ("out", "/tmp/x")])).is_err());
        assert!(demo(&args(&[("dataset", "nope")])).is_err());
        assert!(named_dataset("gesture", 0).is_ok());
    }
}
