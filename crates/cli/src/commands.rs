//! Command implementations for `aimts-cli`.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use aimts::{
    AimTs, AimTsConfig, CheckpointPolicy, Executor, FineTuneConfig, FineTuned, HealthPolicy,
    PretrainConfig,
};
use aimts_data::archives::{monash_like_pool, ucr_like_archive, uea_like_archive};
use aimts_data::loader::load_ucr_tsv_with;
use aimts_data::special;
use aimts_data::{Dataset, MissingValuePolicy};
use aimts_eval::ConfusionMatrix;
use aimts_imaging::{render_sample, ImageConfig};
use aimts_serve::{
    run_loadgen, write_report, BatchPolicy, LoadgenConfig, ModelRegistry, NetPolicy, Server,
};

use crate::args::Args;

pub const USAGE: &str = "aimts-cli — AimTS (ICDE 2025) reproduction CLI

USAGE:
  aimts-cli generate --archive <ucr|uea> [--n 4] [--seed 42] --out <dir>
      Generate a synthetic archive and write univariate datasets as UCR TSVs.
  aimts-cli pretrain [--pool-per-source 8] [--epochs 2] [--lr 0.001]
                     [--hidden 16] [--repr 32] [--seed 3407] [--workers 0]
                     [--checkpoint-dir <dir>] [--checkpoint-every 1]
                     [--keep-last 3] [--resume <ckpt.aimts|dir>]
                     [--clip-norm <f32>] [--max-bad-steps 5]
                     [--max-rollbacks 2] [--executor eager|compiled]
                     --out <ckpt.json>
      Multi-source pre-train AimTS on a Monash-like pool, save a checkpoint.
      --workers 0 (default) resolves the data-parallel thread count from the
      AIMTS_THREADS environment variable, then available cores; 1 is serial.
      --checkpoint-dir enables fault-tolerant training checkpoints
      (ckpt-NNNNNN.aimts: params + Adam moments + scheduler + RNG stream,
      CRC32-checked, written atomically) every --checkpoint-every epochs,
      keeping the newest --keep-last. --resume restores such a checkpoint
      (or the newest one in a directory) and continues the interrupted run
      bit-exactly; it must use the same --seed and worker topology.
      Self-healing knobs: --clip-norm enables global-norm gradient clipping
      (off by default); a non-finite loss or gradient always skips the step;
      --max-bad-steps consecutive skips roll back to the last good epoch
      boundary, and training aborts only after --max-rollbacks rollbacks.
      --executor compiled traces each step shape once and replays it as a
      flat compiled plan (bit-identical to eager, lower per-step overhead).
  aimts-cli finetune --ckpt <ckpt.json> --data-dir <dir> --name <Dataset>
                     [--epochs 40] [--hidden 16] [--repr 32]
                     [--missing-values reject|impute-linear|impute-zero]
                     [--clip-norm <f32>] [--executor eager|compiled]
      Fine-tune a checkpoint on a UCR-TSV dataset; prints accuracy + confusion.
      --missing-values controls NaN/inf cells in the TSV: reject (default)
      fails the load naming the exact cell; the impute policies repair gaps
      by linear interpolation or zero-filling before training.
  aimts-cli demo --dataset <ecg200|starlight|epilepsy|fdb|gesture|emg>
                 [--epochs 40] [--seed 3407] [--executor eager|compiled]
      Fine-tune from random init on a built-in synthetic dataset.
  aimts-cli render --dataset <name as in demo> [--index 0] --out <img.ppm>
      Render a sample as the RGB line chart the image encoder sees.
  aimts-cli info --archive <ucr|uea> [--n 4] [--seed 42]
      Print summary statistics of a synthetic archive.
  aimts-cli export-json --dataset <name as in demo> [--seed 3407] --out <ds.json>
      Export a built-in dataset (incl. multivariate) as a JSON file that
      `aimts_data::loader::load_json` reads back.
  aimts-cli serve [--model <bundle.aimts>] [--addr 127.0.0.1:7878]
                  [--dataset ecg200] [--epochs 5] [--max-batch 64]
                  [--max-delay-us 2000] [--queue-cap 4096]
                  [--admission-timeout-ms 1000] [--default-deadline-ms <ms>]
                  [--max-inflight 2] [--inference-threads 1]
                  [--breaker-threshold 3] [--breaker-cooldown-ms 500]
                  [--read-timeout-ms 30000] [--write-timeout-ms 10000]
                  [--max-frame-bytes 1048576] [--executor eager|compiled]
      Start the micro-batching inference server on a JSON-lines TCP socket.
      --model loads a serving bundle (write one with `demo --save-bundle` or
      `finetune --save-bundle`); without it a demo model is trained in
      process on --dataset first. Overload protection: a full queue sheds
      with a typed `overloaded` reply (after --admission-timeout-ms of
      back-pressure; low-priority requests shed early and never block),
      requests past their deadline answer `deadline_exceeded`, and
      --breaker-threshold consecutive inference panics trip a circuit
      breaker that rejects with `circuit_open` until --breaker-cooldown-ms
      elapses. The frontend drops clients that idle past the read/write
      timeouts or send a line over --max-frame-bytes (typed
      `frame_too_large` reply first). One JSON object per line:
        {\"series\": [[...], ...], \"deadline_ms\": 50,
         \"priority\": \"high|normal|low\", \"model\": \"name\"}   classify
        {\"cmd\":\"metrics\"}                   latency/overload snapshot
        {\"cmd\":\"models\"}                    list registry slots
        {\"cmd\":\"swap\",\"path\":\"new.aimts\"[,\"model\":\"name\"]}  hot-swap
        {\"cmd\":\"shutdown\"}                  drain, answer, then stop
  aimts-cli loadgen [--model <bundle.aimts>] [--dataset ecg200]
                    [--requests 10000] [--clients 4] [--epochs 5]
                    [--deadline-ms <ms>] [--min-sheds 0]
                    [--max-batch 64] [--max-delay-us 2000]
                    [--queue-cap 4096] [--admission-timeout-ms 1000]
                    [--max-inflight 2] [--inference-threads 1]
                    [--executor eager|compiled]
      Drive the in-process server with synthetic load and write latency
      percentiles + throughput + overload outcomes (shed / deadline /
      failed / lost) to bench_results/serve_load.json. Fails if any
      accepted request was lost, or fewer than --min-sheds submissions
      were shed (saturation smoke tests assert sheds happen).
      `demo` and `finetune` accept --save-bundle <path> to produce the
      serving bundle both commands load with --model.
  aimts-cli help
";

/// Parse `--executor eager|compiled` (default eager).
fn executor(args: &Args) -> Result<Executor, String> {
    match args.str_or("executor", "eager") {
        "eager" => Ok(Executor::Eager),
        "compiled" => Ok(Executor::Compiled),
        other => Err(format!("unknown executor `{other}` (use eager|compiled)")),
    }
}

fn model_config(args: &Args) -> Result<AimTsConfig, String> {
    let hidden = args.parse_or("hidden", 16usize)?;
    let repr = args.parse_or("repr", 32usize)?;
    Ok(AimTsConfig {
        hidden,
        repr_dim: repr,
        proj_dim: (repr / 2).max(4),
        ..AimTsConfig::default()
    })
}

fn named_dataset(name: &str, seed: u64) -> Result<Dataset, String> {
    Ok(match name {
        "ecg200" => special::ecg200_like(seed),
        "starlight" => special::starlight_like(seed),
        "epilepsy" => special::epilepsy_like(seed),
        "fdb" => special::fdb_like(seed),
        "gesture" => special::gesture_like(seed),
        "emg" => special::emg_like(seed),
        other => return Err(format!("unknown dataset `{other}`")),
    })
}

/// `generate`: write a synthetic archive to disk in UCR TSV format.
pub fn generate(args: &Args) -> Result<(), String> {
    let archive = args.str_or("archive", "ucr");
    let n = args.parse_or("n", 4usize)?;
    let seed = args.parse_or("seed", 42u64)?;
    let out = PathBuf::from(args.required("out")?);
    fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    let datasets = match archive {
        "ucr" => ucr_like_archive(n, seed),
        "uea" => uea_like_archive(n, seed),
        other => return Err(format!("unknown archive `{other}` (use ucr|uea)")),
    };
    for ds in &datasets {
        if ds.n_vars() != 1 {
            println!(
                "skipping `{}` (multivariate; the UCR TSV format is univariate)",
                ds.name
            );
            continue;
        }
        for (split, suffix) in [(&ds.train, "TRAIN"), (&ds.test, "TEST")] {
            let mut body = String::new();
            for s in &split.samples {
                write!(body, "{}", s.label).unwrap();
                for v in &s.vars[0] {
                    write!(body, "\t{v}").unwrap();
                }
                body.push('\n');
            }
            let path = out.join(format!("{}_{suffix}.tsv", ds.name));
            fs::write(&path, body).map_err(|e| e.to_string())?;
        }
        println!(
            "wrote `{}`: {} train / {} test, {} classes, length {}",
            ds.name,
            ds.train.len(),
            ds.test.len(),
            ds.n_classes,
            ds.series_len()
        );
    }
    Ok(())
}

/// Resolve `--resume`: a file is used as-is; a directory means "the newest
/// `ckpt-*.aimts` inside it".
fn resolve_resume(path: PathBuf) -> Result<PathBuf, String> {
    if path.is_dir() {
        aimts::latest_checkpoint(&path)
            .map_err(|e| format!("scanning {} failed: {e}", path.display()))?
            .ok_or_else(|| format!("no ckpt-*.aimts checkpoints in {}", path.display()))
    } else {
        Ok(path)
    }
}

/// `pretrain`: multi-source pre-training to a JSON checkpoint.
pub fn pretrain(args: &Args) -> Result<(), String> {
    let per_source = args.parse_or("pool-per-source", 8usize)?;
    let epochs = args.parse_or("epochs", 2usize)?;
    let lr = args.parse_or("lr", 1e-3f32)?;
    let seed = args.parse_or("seed", 3407u64)?;
    let workers = args.parse_or("workers", 0usize)?;
    let out = PathBuf::from(args.required("out")?);
    let cfg = model_config(args)?;
    let checkpoint = CheckpointPolicy {
        dir: args.get("checkpoint-dir").map(PathBuf::from),
        every: args.parse_or("checkpoint-every", 1usize)?,
        keep_last: args.parse_or("keep-last", 3usize)?,
        resume_from: match args.get("resume") {
            Some(p) => Some(resolve_resume(PathBuf::from(p))?),
            None => None,
        },
    };
    if let Some(from) = &checkpoint.resume_from {
        println!("resuming from {}", from.display());
    }
    let health = HealthPolicy {
        clip_norm: args.parse_opt("clip-norm")?,
        max_bad_steps: args.parse_or("max-bad-steps", HealthPolicy::default().max_bad_steps)?,
        max_rollbacks: args.parse_or("max-rollbacks", HealthPolicy::default().max_rollbacks)?,
        ..HealthPolicy::default()
    };

    let pool = monash_like_pool(per_source, 0);
    println!(
        "pre-training pool: {} unlabeled multi-domain samples",
        pool.len()
    );
    let mut model = AimTs::new(cfg, seed);
    println!("model: {} parameters", model.num_parameters());
    let report = model
        .pretrain(
            &pool,
            &PretrainConfig {
                epochs,
                batch_size: 8,
                lr,
                seed,
                workers,
                checkpoint,
                health,
                executor: executor(args)?,
                ..PretrainConfig::default()
            },
        )
        .map_err(|e| format!("pre-training failed: {e}"))?;
    println!(
        "done: {} steps on {} worker(s), loss per epoch {:?} (proto {:.3}, series-image {:.3})",
        report.steps,
        report.workers,
        report.epoch_losses,
        report.final_proto_loss,
        report.final_si_loss
    );
    println!("{}", report.health);
    model.save(&out).map_err(|e| e.to_string())?;
    println!("checkpoint saved to {}", out.display());
    Ok(())
}

fn finetune_and_report(
    model: &AimTs,
    ds: &Dataset,
    epochs: usize,
    health: HealthPolicy,
    executor: Executor,
) -> Result<FineTuned, String> {
    println!(
        "dataset `{}`: {} train / {} test, {} classes, {} vars x {} steps",
        ds.name,
        ds.train.len(),
        ds.test.len(),
        ds.n_classes,
        ds.n_vars(),
        ds.series_len()
    );
    let fcfg = FineTuneConfig {
        epochs,
        batch_size: 8,
        health,
        executor,
        ..FineTuneConfig::default()
    };
    let tuned = model.fine_tune(ds, &fcfg);
    if !tuned.health.is_clean() {
        println!("{}", tuned.health);
    }
    let preds = tuned.predict(&ds.test);
    let cm = ConfusionMatrix::new(&preds, &ds.test.labels(), ds.n_classes);
    println!(
        "\ntest accuracy: {:.3}   macro-F1: {:.3}",
        cm.accuracy(),
        cm.macro_f1()
    );
    println!("\n{}", cm.render());
    Ok(tuned)
}

/// Honor `--save-bundle <path>`: persist a self-describing serving bundle
/// (`aimts-cli serve --model <path>` loads it back).
fn maybe_save_bundle(tuned: &FineTuned, args: &Args) -> Result<(), String> {
    if let Some(path) = args.get("save-bundle") {
        let path = PathBuf::from(path);
        tuned
            .save_bundle(&path)
            .map_err(|e| format!("saving bundle to {} failed: {e}", path.display()))?;
        println!("serving bundle written to {}", path.display());
    }
    Ok(())
}

/// Parse the fine-tuning health knobs shared by `finetune` and `demo`.
fn health_policy(args: &Args) -> Result<HealthPolicy, String> {
    Ok(HealthPolicy {
        clip_norm: args.parse_opt("clip-norm")?,
        ..HealthPolicy::default()
    })
}

/// `finetune`: load checkpoint + UCR-TSV dataset, fine-tune, report.
pub fn finetune(args: &Args) -> Result<(), String> {
    let ckpt = PathBuf::from(args.required("ckpt")?);
    let dir = PathBuf::from(args.required("data-dir")?);
    let name = args.required("name")?;
    let epochs = args.parse_or("epochs", 40usize)?;
    let missing = MissingValuePolicy::parse(args.str_or("missing-values", "reject"))?;
    let cfg = model_config(args)?;

    let mut model = AimTs::new(cfg, 3407);
    model.load(&ckpt).map_err(|e| {
        format!(
            "loading {} failed: {e} (check --hidden/--repr match)",
            ckpt.display()
        )
    })?;
    let ds = load_ucr_tsv_with(Path::new(&dir), name, missing).map_err(|e| e.to_string())?;
    let tuned = finetune_and_report(&model, &ds, epochs, health_policy(args)?, executor(args)?)?;
    maybe_save_bundle(&tuned, args)
}

/// `demo`: built-in synthetic dataset, fine-tune from random init.
pub fn demo(args: &Args) -> Result<(), String> {
    let name = args.str_or("dataset", "ecg200");
    let epochs = args.parse_or("epochs", 40usize)?;
    let seed = args.parse_or("seed", 3407u64)?;
    let ds = named_dataset(name, seed)?;
    let model = AimTs::new(model_config(args)?, seed);
    let tuned = finetune_and_report(&model, &ds, epochs, health_policy(args)?, executor(args)?)?;
    maybe_save_bundle(&tuned, args)
}

/// `info`: print archive summary statistics.
pub fn info(args: &Args) -> Result<(), String> {
    let archive = args.str_or("archive", "ucr");
    let n = args.parse_or("n", 4usize)?;
    let seed = args.parse_or("seed", 42u64)?;
    let datasets = match archive {
        "ucr" => ucr_like_archive(n, seed),
        "uea" => uea_like_archive(n, seed),
        other => return Err(format!("unknown archive `{other}` (use ucr|uea)")),
    };
    print!("{}", aimts_data::stats::archive_summary(&datasets));
    Ok(())
}

/// `export-json`: write a built-in dataset as JSON (supports multivariate).
pub fn export_json(args: &Args) -> Result<(), String> {
    let name = args.str_or("dataset", "gesture");
    let seed = args.parse_or("seed", 3407u64)?;
    let out = PathBuf::from(args.required("out")?);
    let ds = named_dataset(name, seed)?;
    aimts_data::loader::save_json(&out, &ds).map_err(|e| e.to_string())?;
    println!(
        "exported `{}` ({} train / {} test, {} vars) to {}",
        ds.name,
        ds.train.len(),
        ds.test.len(),
        ds.n_vars(),
        out.display()
    );
    Ok(())
}

/// Parse the micro-batching and overload knobs shared by `serve` and
/// `loadgen`.
fn batch_policy(args: &Args) -> Result<BatchPolicy, String> {
    let defaults = BatchPolicy::default();
    let policy = BatchPolicy {
        max_batch: args.parse_or("max-batch", defaults.max_batch)?,
        max_delay: std::time::Duration::from_micros(args.parse_or("max-delay-us", 2_000u64)?),
        queue_cap: args.parse_or("queue-cap", defaults.queue_cap)?,
        admission_timeout: std::time::Duration::from_millis(args.parse_or(
            "admission-timeout-ms",
            defaults.admission_timeout.as_millis() as u64,
        )?),
        default_deadline: args
            .parse_opt::<u64>("default-deadline-ms")?
            .map(std::time::Duration::from_millis),
        max_inflight_batches: args.parse_or("max-inflight", defaults.max_inflight_batches)?,
        inference_threads: args.parse_or("inference-threads", defaults.inference_threads)?,
        breaker_threshold: args.parse_or("breaker-threshold", defaults.breaker_threshold)?,
        breaker_cooldown: std::time::Duration::from_millis(args.parse_or(
            "breaker-cooldown-ms",
            defaults.breaker_cooldown.as_millis() as u64,
        )?),
    };
    if policy.max_batch == 0 || policy.queue_cap == 0 {
        return Err("--max-batch and --queue-cap must be >= 1".to_string());
    }
    if policy.max_inflight_batches == 0 || policy.inference_threads == 0 {
        return Err("--max-inflight and --inference-threads must be >= 1".to_string());
    }
    if policy.breaker_threshold == 0 {
        return Err("--breaker-threshold must be >= 1".to_string());
    }
    Ok(policy)
}

/// Parse the frontend hardening knobs for `serve`.
fn net_policy(args: &Args) -> Result<NetPolicy, String> {
    let defaults = NetPolicy::default();
    Ok(NetPolicy {
        read_timeout: std::time::Duration::from_millis(
            args.parse_or("read-timeout-ms", defaults.read_timeout.as_millis() as u64)?,
        ),
        write_timeout: std::time::Duration::from_millis(args.parse_or(
            "write-timeout-ms",
            defaults.write_timeout.as_millis() as u64,
        )?),
        max_frame: args.parse_or("max-frame-bytes", defaults.max_frame)?,
    })
}

/// Build the model registry for `serve`/`loadgen`: load `--model <bundle>`
/// when given, otherwise fine-tune a demo model in process on `--dataset`.
fn serve_registry(args: &Args) -> Result<ModelRegistry, String> {
    let executor = executor(args)?;
    if let Some(path) = args.get("model") {
        let path = PathBuf::from(path);
        return ModelRegistry::from_bundle(&path, executor)
            .map_err(|e| format!("loading bundle {} failed: {e}", path.display()));
    }
    let name = args.str_or("dataset", "ecg200");
    let seed = args.parse_or("seed", 3407u64)?;
    let epochs = args.parse_or("epochs", 5usize)?;
    let ds = named_dataset(name, seed)?;
    println!("no --model given; fine-tuning a demo model on `{name}` ({epochs} epochs)...");
    let model = AimTs::new(model_config(args)?, seed);
    let tuned = model.fine_tune(
        &ds,
        &FineTuneConfig {
            epochs,
            batch_size: 8,
            executor,
            ..FineTuneConfig::default()
        },
    );
    Ok(ModelRegistry::from_tuned(
        &tuned,
        executor,
        &format!("demo:{name}"),
    ))
}

/// `serve`: micro-batching inference server on a JSON-lines TCP socket.
pub fn serve(args: &Args) -> Result<(), String> {
    let policy = batch_policy(args)?;
    let net = net_policy(args)?;
    let registry = serve_registry(args)?;
    let addr = args.str_or("addr", "127.0.0.1:7878");
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let server = std::sync::Arc::new(Server::start(registry, policy));
    println!(
        "serving generation {} on {addr} (max_batch {}, max_delay {:?}, queue_cap {}, \
         admission_timeout {:?}, inflight {}, workers {})",
        server.registry().generation(),
        policy.max_batch,
        policy.max_delay,
        policy.queue_cap,
        policy.admission_timeout,
        policy.max_inflight_batches,
        policy.inference_threads
    );
    println!("send {{\"cmd\":\"shutdown\"}} on a connection to stop (drains, then exits)");
    let connections = aimts_serve::net::serve_tcp(std::sync::Arc::clone(&server), listener, net)
        .map_err(|e| format!("serve loop failed: {e}"))?;
    server.shutdown();
    let snap = server.metrics();
    println!(
        "served {} request(s) over {connections} connection(s); p50 {}us p95 {}us p99 {}us",
        snap.completed, snap.latency.p50_us, snap.latency.p95_us, snap.latency.p99_us
    );
    Ok(())
}

/// `loadgen`: drive the in-process server with synthetic load and write
/// `bench_results/serve_load.json`.
pub fn loadgen(args: &Args) -> Result<(), String> {
    let policy = batch_policy(args)?;
    let cfg = LoadgenConfig {
        requests: args.parse_or("requests", 10_000usize)?,
        clients: args.parse_or("clients", 4usize)?,
        deadline_ms: args.parse_opt("deadline-ms")?,
    };
    let min_sheds = args.parse_or("min-sheds", 0u64)?;
    if cfg.requests == 0 || cfg.clients == 0 {
        return Err("--requests and --clients must be >= 1".to_string());
    }
    let name = args.str_or("dataset", "ecg200");
    let seed = args.parse_or("seed", 3407u64)?;
    let pool: Vec<_> = named_dataset(name, seed)?
        .test
        .samples
        .iter()
        .map(|s| s.vars.clone())
        .collect();
    let registry = serve_registry(args)?;
    let server = Server::start(registry, policy);
    println!(
        "loadgen: {} requests from {} client(s), pool of {} samples",
        cfg.requests,
        cfg.clients,
        pool.len()
    );
    let report = run_loadgen(&server, &pool, &cfg);
    server.shutdown();
    let path = write_report(&report);
    println!(
        "completed {}/{} (shed {}, deadline {}, failed {}, errors {}, lost {}) \
         in {:.2}s — {:.0} req/s, mean batch {:.1}",
        report.completed,
        report.requests,
        report.shed,
        report.deadline_exceeded,
        report.inference_failures,
        report.errors,
        report.lost,
        report.wall_s,
        report.throughput_rps,
        report.mean_batch
    );
    println!(
        "latency p50 {}us  p95 {}us  p99 {}us  max {}us; queue wait p50 {}us p99 {}us",
        report.p50_us,
        report.p95_us,
        report.p99_us,
        report.max_latency_us,
        report.queue_p50_us,
        report.queue_p99_us
    );
    println!("report written to {}", path.display());
    // Shed and expired requests are legitimate overload outcomes; a lost
    // request — accepted but never answered — is a drain-contract bug.
    if report.lost > 0 {
        return Err(format!(
            "lost requests: {} accepted but never answered",
            report.lost
        ));
    }
    if report.shed < min_sheds {
        return Err(format!(
            "expected at least {min_sheds} shed request(s) under this load, saw {}",
            report.shed
        ));
    }
    Ok(())
}

/// `render`: write one sample's RGB line chart as a PPM image.
pub fn render(args: &Args) -> Result<(), String> {
    let name = args.str_or("dataset", "ecg200");
    let index = args.parse_or("index", 0usize)?;
    let seed = args.parse_or("seed", 3407u64)?;
    let out = PathBuf::from(args.required("out")?);
    let ds = named_dataset(name, seed)?;
    let sample = ds
        .train
        .samples
        .get(index)
        .ok_or_else(|| format!("index {index} out of range (train has {})", ds.train.len()))?;
    let cfg = ImageConfig {
        standardize: false,
        ..ImageConfig::default()
    };
    let img = render_sample(&sample.vars, &cfg);
    let mut f = fs::File::create(&out).map_err(|e| e.to_string())?;
    writeln!(f, "P6\n{} {}\n255", img.width, img.height).map_err(|e| e.to_string())?;
    let hw = img.height * img.width;
    let mut bytes = Vec::with_capacity(hw * 3);
    for i in 0..hw {
        for c in 0..3 {
            bytes.push((img.data[c * hw + i] * 255.0) as u8);
        }
    }
    f.write_all(&bytes).map_err(|e| e.to_string())?;
    println!(
        "rendered sample {index} of `{}` (label {}) to {} ({}x{})",
        ds.name,
        sample.label,
        out.display(),
        img.width,
        img.height
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(pairs: &[(&str, &str)]) -> Args {
        let flat: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        Args::parse(&flat).unwrap()
    }

    #[test]
    fn generate_then_finetune_roundtrip() {
        let dir = std::env::temp_dir().join("aimts_cli_test_data");
        let _ = fs::remove_dir_all(&dir);
        generate(&args(&[
            ("archive", "ucr"),
            ("n", "1"),
            ("out", dir.to_str().unwrap()),
        ]))
        .unwrap();
        // The first ucr-like dataset is univariate and must exist on disk.
        let entries: Vec<_> = fs::read_dir(&dir).unwrap().collect();
        assert!(entries.len() >= 2, "expected TRAIN and TEST files");
    }

    #[test]
    fn pretrain_demo_render_commands_run() {
        let ckpt = std::env::temp_dir().join("aimts_cli_test_ckpt.json");
        pretrain(&args(&[
            ("pool-per-source", "2"),
            ("epochs", "1"),
            ("hidden", "8"),
            ("repr", "16"),
            ("workers", "2"),
            ("out", ckpt.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(ckpt.exists());

        demo(&args(&[
            ("dataset", "ecg200"),
            ("epochs", "1"),
            ("hidden", "8"),
            ("repr", "16"),
        ]))
        .unwrap();

        let ppm = std::env::temp_dir().join("aimts_cli_test.ppm");
        render(&args(&[
            ("dataset", "starlight"),
            ("out", ppm.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(ppm.exists());
    }

    #[test]
    fn pretrain_checkpoint_flags_roundtrip() {
        let dir = std::env::temp_dir().join("aimts_cli_test_ckpt_dir");
        let _ = fs::remove_dir_all(&dir);
        let out = std::env::temp_dir().join("aimts_cli_test_resume.json");
        let base = [
            ("pool-per-source", "2"),
            ("epochs", "2"),
            ("hidden", "8"),
            ("repr", "16"),
            ("workers", "1"),
            ("checkpoint-dir", dir.to_str().unwrap()),
        ];
        let mut first: Vec<(&str, &str)> = base.to_vec();
        first.push(("out", out.to_str().unwrap()));
        pretrain(&args(&first)).unwrap();
        assert!(
            dir.join("ckpt-000002.aimts").exists(),
            "final-epoch checkpoint missing"
        );

        // Resuming a finished run from the directory (latest checkpoint)
        // is a no-op train that still writes the JSON output.
        let _ = fs::remove_file(&out);
        let mut resumed: Vec<(&str, &str)> = base.to_vec();
        resumed.push(("resume", dir.to_str().unwrap()));
        resumed.push(("out", out.to_str().unwrap()));
        pretrain(&args(&resumed)).unwrap();
        assert!(out.exists());

        // A wrong seed is rejected with a clean error, not a panic.
        let mut bad: Vec<(&str, &str)> = base.to_vec();
        bad.push(("resume", dir.to_str().unwrap()));
        bad.push(("seed", "9999"));
        bad.push(("out", out.to_str().unwrap()));
        assert!(pretrain(&args(&bad)).is_err());
    }

    #[test]
    fn executor_flag_parses_and_runs() {
        let ckpt = std::env::temp_dir().join("aimts_cli_exec_ckpt.json");
        pretrain(&args(&[
            ("pool-per-source", "2"),
            ("epochs", "1"),
            ("hidden", "8"),
            ("repr", "16"),
            ("workers", "1"),
            ("executor", "compiled"),
            ("out", ckpt.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(ckpt.exists());

        demo(&args(&[
            ("dataset", "ecg200"),
            ("epochs", "1"),
            ("hidden", "8"),
            ("repr", "16"),
            ("executor", "compiled"),
        ]))
        .unwrap();

        // An unknown executor errors cleanly instead of panicking.
        let bad = std::env::temp_dir().join("aimts_cli_exec_bad.json");
        assert!(pretrain(&args(&[
            ("executor", "jit"),
            ("out", bad.to_str().unwrap()),
        ]))
        .is_err());
    }

    #[test]
    fn pretrain_health_flags_parse_and_run() {
        let ckpt = std::env::temp_dir().join("aimts_cli_health_ckpt.json");
        pretrain(&args(&[
            ("pool-per-source", "2"),
            ("epochs", "1"),
            ("hidden", "8"),
            ("repr", "16"),
            ("workers", "1"),
            ("clip-norm", "0.25"),
            ("max-bad-steps", "3"),
            ("max-rollbacks", "1"),
            ("out", ckpt.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(ckpt.exists());
        // A malformed clip-norm errors cleanly instead of panicking.
        let mut bad = std::env::temp_dir().join("aimts_cli_health_bad.json");
        bad.set_extension("json");
        assert!(pretrain(&args(&[
            ("clip-norm", "not-a-number"),
            ("out", bad.to_str().unwrap()),
        ]))
        .is_err());
    }

    #[test]
    fn finetune_missing_values_flag() {
        let dir = std::env::temp_dir().join("aimts_cli_missing_data");
        fs::create_dir_all(&dir).unwrap();
        let mk_row = |label: usize, base: f32, gap: bool| {
            let mut s = format!("{label}");
            for t in 0..8 {
                if gap && t == 3 {
                    s.push_str("\tNaN");
                } else {
                    s.push_str(&format!("\t{}", base + t as f32 * 0.1));
                }
            }
            s.push('\n');
            s
        };
        let train = mk_row(0, 0.0, true) + &mk_row(0, 0.1, false) + &mk_row(1, 5.0, false);
        let test = mk_row(0, 0.05, false) + &mk_row(1, 5.1, false);
        fs::write(dir.join("Gap_TRAIN.tsv"), train).unwrap();
        fs::write(dir.join("Gap_TEST.tsv"), test).unwrap();

        let cfg = model_config(&args(&[("hidden", "8"), ("repr", "16")])).unwrap();
        let ckpt = std::env::temp_dir().join("aimts_cli_missing_ckpt.json");
        AimTs::new(cfg, 1).save(&ckpt).unwrap();

        let base = [
            ("ckpt", ckpt.to_str().unwrap()),
            ("data-dir", dir.to_str().unwrap()),
            ("name", "Gap"),
            ("epochs", "1"),
            ("hidden", "8"),
            ("repr", "16"),
        ];
        // Default policy rejects the NaN cell with a precise error.
        let err = finetune(&args(&base)).unwrap_err();
        assert!(
            err.contains("sample 0") && err.contains("position 3"),
            "{err}"
        );
        // Imputation repairs the gap and the run completes.
        let mut ok: Vec<(&str, &str)> = base.to_vec();
        ok.push(("missing-values", "impute-linear"));
        finetune(&args(&ok)).unwrap();
        // Unknown policies error cleanly.
        let mut bad: Vec<(&str, &str)> = base.to_vec();
        bad.push(("missing-values", "drop"));
        assert!(finetune(&args(&bad)).is_err());
    }

    #[test]
    fn export_json_roundtrip() {
        let out = std::env::temp_dir().join("aimts_cli_export.json");
        export_json(&args(&[
            ("dataset", "gesture"),
            ("out", out.to_str().unwrap()),
        ]))
        .unwrap();
        let ds = aimts_data::loader::load_json(&out).unwrap();
        assert!(ds.n_vars() > 1);
    }

    #[test]
    fn batch_policy_flags_parse() {
        let p = batch_policy(&args(&[
            ("max-batch", "8"),
            ("max-delay-us", "500"),
            ("queue-cap", "32"),
        ]))
        .unwrap();
        assert_eq!(p.max_batch, 8);
        assert_eq!(p.max_delay, std::time::Duration::from_micros(500));
        assert_eq!(p.queue_cap, 32);
        // Defaults apply when flags are absent; zero values error cleanly.
        assert_eq!(batch_policy(&args(&[])).unwrap().max_batch, 64);
        assert!(batch_policy(&args(&[("max-batch", "0")])).is_err());
        assert!(batch_policy(&args(&[("queue-cap", "0")])).is_err());
        // A missing bundle errors cleanly instead of panicking.
        assert!(serve_registry(&args(&[("model", "/nonexistent/x.aimts")])).is_err());
    }

    #[test]
    fn overload_flags_parse() {
        let p = batch_policy(&args(&[
            ("admission-timeout-ms", "0"),
            ("default-deadline-ms", "25"),
            ("max-inflight", "3"),
            ("inference-threads", "2"),
            ("breaker-threshold", "5"),
            ("breaker-cooldown-ms", "100"),
        ]))
        .unwrap();
        assert_eq!(p.admission_timeout, std::time::Duration::ZERO);
        assert_eq!(
            p.default_deadline,
            Some(std::time::Duration::from_millis(25))
        );
        assert_eq!(p.max_inflight_batches, 3);
        assert_eq!(p.inference_threads, 2);
        assert_eq!(p.breaker_threshold, 5);
        assert_eq!(p.breaker_cooldown, std::time::Duration::from_millis(100));
        // No deadline unless asked for; zero thread counts error cleanly.
        assert_eq!(batch_policy(&args(&[])).unwrap().default_deadline, None);
        assert!(batch_policy(&args(&[("inference-threads", "0")])).is_err());
        assert!(batch_policy(&args(&[("max-inflight", "0")])).is_err());
        assert!(batch_policy(&args(&[("breaker-threshold", "0")])).is_err());

        let n = net_policy(&args(&[
            ("read-timeout-ms", "250"),
            ("write-timeout-ms", "125"),
            ("max-frame-bytes", "4096"),
        ]))
        .unwrap();
        assert_eq!(n.read_timeout, std::time::Duration::from_millis(250));
        assert_eq!(n.write_timeout, std::time::Duration::from_millis(125));
        assert_eq!(n.max_frame, 4096);
        assert_eq!(net_policy(&args(&[])).unwrap().max_frame, 1 << 20);
    }

    #[test]
    fn loadgen_saturation_sheds_without_losing_accepted_requests() {
        let bundle = std::env::temp_dir().join("aimts_cli_saturation_bundle.aimts");
        let _ = fs::remove_file(&bundle);
        demo(&args(&[
            ("dataset", "ecg200"),
            ("epochs", "1"),
            ("hidden", "8"),
            ("repr", "16"),
            ("save-bundle", bundle.to_str().unwrap()),
        ]))
        .unwrap();
        // Try-admit semantics (zero admission timeout) against a tiny
        // queue: sheds must happen, accepted requests must all answer.
        loadgen(&args(&[
            ("model", bundle.to_str().unwrap()),
            ("dataset", "ecg200"),
            ("requests", "400"),
            ("clients", "8"),
            ("max-batch", "4"),
            ("queue-cap", "2"),
            ("admission-timeout-ms", "0"),
            ("min-sheds", "1"),
        ]))
        .unwrap();
    }

    #[test]
    fn save_bundle_then_loadgen_roundtrip() {
        let bundle = std::env::temp_dir().join("aimts_cli_demo_bundle.aimts");
        let _ = fs::remove_file(&bundle);
        demo(&args(&[
            ("dataset", "ecg200"),
            ("epochs", "1"),
            ("hidden", "8"),
            ("repr", "16"),
            ("save-bundle", bundle.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(bundle.exists());

        // Drive the served model with a small load; every request must
        // complete (loadgen errors otherwise).
        loadgen(&args(&[
            ("model", bundle.to_str().unwrap()),
            ("dataset", "ecg200"),
            ("requests", "64"),
            ("clients", "2"),
            ("max-batch", "8"),
        ]))
        .unwrap();
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        assert!(generate(&args(&[("archive", "nope"), ("out", "/tmp/x")])).is_err());
        assert!(demo(&args(&[("dataset", "nope")])).is_err());
        assert!(named_dataset("gesture", 0).is_ok());
    }
}
