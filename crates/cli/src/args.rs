//! Minimal `--key value` argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed `--key value` arguments.
#[derive(Debug, Default, Clone)]
pub struct Args {
    map: BTreeMap<String, String>,
}

impl Args {
    /// Parse a flag list; every flag must start with `--` and take a value.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut map = BTreeMap::new();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let key = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected `--flag`, got `{flag}`"))?;
            let value = it
                .next()
                .ok_or_else(|| format!("flag `--{key}` needs a value"))?;
            map.insert(key.to_string(), value.clone());
        }
        Ok(Args { map })
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(|s| s.as_str())
    }

    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required flag `--{key}`"))
    }

    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value `{v}` for `--{key}`")),
        }
    }

    /// Parse an optional flag: `None` when absent, `Err` on a bad value.
    pub fn parse_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value `{v}` for `--{key}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let a = Args::parse(&s(&["--n", "4", "--seed", "42"])).unwrap();
        assert_eq!(a.get("n"), Some("4"));
        assert_eq!(a.parse_or("seed", 0u64).unwrap(), 42);
        assert_eq!(a.parse_or("missing", 7usize).unwrap(), 7);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(Args::parse(&s(&["n", "4"])).is_err());
        assert!(Args::parse(&s(&["--n"])).is_err());
        let a = Args::parse(&s(&["--n", "x"])).unwrap();
        assert!(a.parse_or("n", 1usize).is_err());
    }

    #[test]
    fn required_errors_when_absent() {
        let a = Args::parse(&s(&[])).unwrap();
        assert!(a.required("out").is_err());
    }

    #[test]
    fn parse_opt_absent_present_and_invalid() {
        let a = Args::parse(&s(&["--clip-norm", "5.0", "--bad", "x"])).unwrap();
        assert_eq!(a.parse_opt::<f32>("clip-norm").unwrap(), Some(5.0));
        assert_eq!(a.parse_opt::<f32>("missing").unwrap(), None);
        assert!(a.parse_opt::<f32>("bad").is_err());
    }
}
