//! `aimts-cli` — command-line workflows for the AimTS reproduction.
//!
//! ```text
//! aimts-cli generate  --archive ucr --n 4 --seed 42 --out ./data
//! aimts-cli pretrain  --pool-per-source 8 --epochs 2 --out ./ckpt.json
//! aimts-cli finetune  --ckpt ./ckpt.json --data-dir ./data --name ucr_like_000_sensor
//! aimts-cli demo      --dataset ecg200
//! aimts-cli render    --dataset starlight --index 0 --out ./sample.ppm
//! ```
//!
//! Argument parsing is deliberately dependency-free (`--key value` pairs).

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    let args = match args::Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => commands::generate(&args),
        "pretrain" => commands::pretrain(&args),
        "finetune" => commands::finetune(&args),
        "demo" => commands::demo(&args),
        "render" => commands::render(&args),
        "info" => commands::info(&args),
        "export-json" => commands::export_json(&args),
        "serve" => commands::serve(&args),
        "loadgen" => commands::loadgen(&args),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
