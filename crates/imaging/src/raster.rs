//! Minimal RGB rasterizer: Bresenham lines and plus-shaped markers.

/// A channel-major RGB canvas with values in `[0, 1]`.
pub struct Canvas {
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl Canvas {
    pub fn new(h: usize, w: usize) -> Self {
        Canvas {
            h,
            w,
            data: vec![0f32; 3 * h * w],
        }
    }

    /// Set a pixel to `color` (saturating at 1.0 per channel).
    pub fn put(&mut self, y: usize, x: usize, color: [f32; 3]) {
        if y >= self.h || x >= self.w {
            return;
        }
        let hw = self.h * self.w;
        for (c, &v) in color.iter().enumerate() {
            let px = &mut self.data[c * hw + y * self.w + x];
            *px = (*px + v).min(1.0);
        }
    }

    /// Bresenham line between two pixels (inclusive).
    pub fn line(&mut self, y0: usize, x0: usize, y1: usize, x1: usize, color: [f32; 3]) {
        let (mut x0, mut y0) = (x0 as i64, y0 as i64);
        let (x1, y1) = (x1 as i64, y1 as i64);
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            if y0 >= 0 && x0 >= 0 {
                self.put(y0 as usize, x0 as usize, color);
            }
            if x0 == x1 && y0 == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x0 += sx;
            }
            if e2 <= dx {
                err += dx;
                y0 += sy;
            }
        }
    }

    /// Plus-shaped marker approximating the paper's `*` glyph.
    pub fn marker(&mut self, y: usize, x: usize, color: [f32; 3]) {
        self.put(y, x, color);
        if y >= 1 {
            self.put(y - 1, x, color);
        }
        self.put(y + 1, x, color);
        if x >= 1 {
            self.put(y, x - 1, color);
        }
        self.put(y, x + 1, color);
    }

    pub fn into_data(self) -> Vec<f32> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_saturates() {
        let mut c = Canvas::new(4, 4);
        c.put(1, 1, [0.8, 0.0, 0.0]);
        c.put(1, 1, [0.8, 0.0, 0.0]);
        assert_eq!(c.data[5], 1.0);
    }

    #[test]
    fn put_out_of_bounds_ignored() {
        let mut c = Canvas::new(2, 2);
        c.put(5, 5, [1.0, 1.0, 1.0]);
        assert!(c.into_data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn horizontal_line_covers_row() {
        let mut c = Canvas::new(4, 8);
        c.line(2, 0, 2, 7, [0.0, 1.0, 0.0]);
        let data = c.into_data();
        let hw = 32;
        for x in 0..8 {
            assert_eq!(data[hw + 2 * 8 + x], 1.0);
        }
    }

    #[test]
    fn diagonal_line_connects() {
        let mut c = Canvas::new(8, 8);
        c.line(0, 0, 7, 7, [0.0, 0.0, 1.0]);
        let data = c.into_data();
        let hw = 64;
        for i in 0..8 {
            assert_eq!(data[2 * hw + i * 8 + i], 1.0);
        }
    }

    #[test]
    fn marker_cross_shape() {
        let mut c = Canvas::new(5, 5);
        c.marker(2, 2, [1.0, 0.0, 0.0]);
        let d = c.into_data();
        assert_eq!(d[2 * 5 + 2], 1.0);
        assert_eq!(d[5 + 2], 1.0);
        assert_eq!(d[3 * 5 + 2], 1.0);
        assert_eq!(d[2 * 5 + 1], 1.0);
        assert_eq!(d[2 * 5 + 3], 1.0);
        assert_eq!(d[0], 0.0);
    }
}
