//! # aimts-imaging
//!
//! Conversion of time-series samples into RGB line-chart images, as used by
//! AimTS's series-image contrastive learning (paper §IV-C.1):
//!
//! * each variable is plotted as a line chart in its own square sub-image,
//!   x-axis = timestamps, y-axis = values;
//! * observed points are marked with a `*`-like marker and connected by
//!   straight line segments;
//! * each variable gets a distinct color and the sub-images are stitched
//!   into one square-ish grid;
//! * the final image is standardized per channel before entering the image
//!   encoder.
//!
//! The rasterizer is a small, dependency-free scanline renderer (Bresenham
//! polylines + plus-shaped markers) producing `[3, H, W]` row-major `f32`
//! buffers ready to wrap in a tensor.
//!
//! ```
//! use aimts_imaging::{render_sample, ImageConfig};
//! let var: Vec<f32> = (0..50).map(|i| (i as f32 * 0.3).sin()).collect();
//! let img = render_sample(&[var], &ImageConfig::default());
//! assert_eq!(img.height, 64);
//! assert_eq!(img.width, 64);
//! assert_eq!(img.data.len(), 3 * 64 * 64);
//! ```

mod raster;

pub use raster::Canvas;

/// Distinct colors assigned to variables, cycled when M > 8.
/// (Values are linear RGB in [0, 1].)
pub const PALETTE: [[f32; 3]; 8] = [
    [0.12, 0.47, 0.71], // blue
    [1.00, 0.50, 0.05], // orange
    [0.17, 0.63, 0.17], // green
    [0.84, 0.15, 0.16], // red
    [0.58, 0.40, 0.74], // purple
    [0.55, 0.34, 0.29], // brown
    [0.89, 0.47, 0.76], // pink
    [0.09, 0.75, 0.81], // cyan
];

/// Rendering configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageConfig {
    /// Side length of each per-variable sub-image (pixels).
    pub cell: usize,
    /// Maximum number of grid columns when stitching sub-images.
    pub max_cols: usize,
    /// Draw `*` markers at (subsampled) observation points.
    pub markers: bool,
    /// Standardize the final image per channel (zero mean, unit variance).
    pub standardize: bool,
    /// Fractional margin inside each sub-image.
    pub margin: f32,
}

impl Default for ImageConfig {
    fn default() -> Self {
        ImageConfig {
            cell: 64,
            max_cols: 4,
            markers: true,
            standardize: true,
            margin: 0.06,
        }
    }
}

impl ImageConfig {
    /// Smaller images for fast tests/benches.
    pub fn small() -> Self {
        ImageConfig {
            cell: 32,
            ..Default::default()
        }
    }
}

/// A rendered RGB image: channel-major `[3, height, width]` data.
#[derive(Debug, Clone, PartialEq)]
pub struct RgbImage {
    pub height: usize,
    pub width: usize,
    pub data: Vec<f32>,
}

impl RgbImage {
    /// Pixel accessor `(channel, y, x)`.
    pub fn at(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data[c * self.height * self.width + y * self.width + x]
    }

    /// Mean per channel (diagnostics / tests).
    pub fn channel_means(&self) -> [f32; 3] {
        let hw = self.height * self.width;
        let mut out = [0f32; 3];
        for (c, slot) in out.iter_mut().enumerate() {
            *slot = self.data[c * hw..(c + 1) * hw].iter().sum::<f32>() / hw as f32;
        }
        out
    }
}

/// Grid layout for `m` variables: (rows, cols).
pub fn grid_layout(m: usize, max_cols: usize) -> (usize, usize) {
    assert!(m >= 1);
    let cols = (m as f32).sqrt().ceil() as usize;
    let cols = cols.clamp(1, max_cols.max(1));
    let rows = m.div_ceil(cols);
    (rows, cols)
}

/// Render a multivariate sample (`vars[m]` = the m-th variable's series)
/// into one stitched RGB image (paper `Image(X_i)`).
///
/// Each variable is min–max scaled inside its own sub-image — the paper
/// notes each variable has a distinct scale and is plotted separately.
pub fn render_sample(vars: &[Vec<f32>], cfg: &ImageConfig) -> RgbImage {
    assert!(
        !vars.is_empty(),
        "cannot render a sample with zero variables"
    );
    let m = vars.len();
    let (rows, cols) = grid_layout(m, cfg.max_cols);
    let (h, w) = (rows * cfg.cell, cols * cfg.cell);
    let mut canvas = Canvas::new(h, w);

    for (vi, series) in vars.iter().enumerate() {
        assert!(!series.is_empty(), "variable {vi} is empty");
        let color = PALETTE[vi % PALETTE.len()];
        let gy = (vi / cols) * cfg.cell;
        let gx = (vi % cols) * cfg.cell;
        draw_variable(&mut canvas, series, color, gy, gx, cfg);
    }

    let mut img = RgbImage {
        height: h,
        width: w,
        data: canvas.into_data(),
    };
    if cfg.standardize {
        standardize(&mut img);
    }
    img
}

/// Per-channel standardization to zero mean / unit variance.
pub fn standardize(img: &mut RgbImage) {
    let hw = img.height * img.width;
    for c in 0..3 {
        let ch = &mut img.data[c * hw..(c + 1) * hw];
        let mean: f32 = ch.iter().sum::<f32>() / hw as f32;
        let var: f32 = ch.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / hw as f32;
        let std = var.sqrt().max(1e-6);
        for v in ch.iter_mut() {
            *v = (*v - mean) / std;
        }
    }
}

fn draw_variable(
    canvas: &mut Canvas,
    series: &[f32],
    color: [f32; 3],
    oy: usize,
    ox: usize,
    cfg: &ImageConfig,
) {
    let cell = cfg.cell;
    let margin = ((cell as f32) * cfg.margin) as usize;
    let plot = cell - 2 * margin;
    assert!(plot >= 2, "cell too small for margin");

    // Min–max scale this variable into the sub-image.
    let (lo, hi) = series
        .iter()
        .fold((f32::MAX, f32::MIN), |(l, h), &v| (l.min(v), h.max(v)));
    let range = (hi - lo).max(1e-6);
    let n = series.len();
    let to_px = |t: usize, v: f32| -> (usize, usize) {
        let x = if n == 1 {
            0
        } else {
            (t as f32 / (n - 1) as f32 * (plot - 1) as f32) as usize
        };
        let yfrac = (v - lo) / range;
        // y axis points up: invert.
        let y = ((1.0 - yfrac) * (plot - 1) as f32) as usize;
        (oy + margin + y, ox + margin + x)
    };

    // Polyline.
    let mut prev = to_px(0, series[0]);
    for (t, &v) in series.iter().enumerate().skip(1) {
        let cur = to_px(t, v);
        canvas.line(prev.0, prev.1, cur.0, cur.1, color);
        prev = cur;
    }
    // Markers: subsample so dense series do not become solid blocks.
    if cfg.markers {
        let step = (n / 16).max(1);
        for t in (0..n).step_by(step) {
            let (y, x) = to_px(t, series[t]);
            canvas.marker(y, x, color);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.2).sin()).collect()
    }

    #[test]
    fn univariate_is_one_cell() {
        let img = render_sample(&[sine(40)], &ImageConfig::default());
        assert_eq!((img.height, img.width), (64, 64));
    }

    #[test]
    fn grid_layouts() {
        assert_eq!(grid_layout(1, 4), (1, 1));
        assert_eq!(grid_layout(2, 4), (1, 2));
        assert_eq!(grid_layout(3, 4), (2, 2));
        assert_eq!(grid_layout(4, 4), (2, 2));
        assert_eq!(grid_layout(5, 4), (2, 3));
        assert_eq!(grid_layout(9, 4), (3, 3));
        assert_eq!(grid_layout(17, 4), (5, 4)); // clamped to 4 cols
    }

    #[test]
    fn multivariate_stitches_grid() {
        let vars: Vec<Vec<f32>> = (0..3).map(|_| sine(20)).collect();
        let img = render_sample(&vars, &ImageConfig::default());
        assert_eq!((img.height, img.width), (128, 128));
    }

    #[test]
    fn unstandardized_image_has_ink() {
        let cfg = ImageConfig {
            standardize: false,
            ..Default::default()
        };
        let img = render_sample(&[sine(40)], &cfg);
        let nonzero = img.data.iter().filter(|&&v| v > 0.0).count();
        assert!(nonzero > 50, "expected drawn pixels, got {nonzero}");
        assert!(img.data.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn variables_use_distinct_colors() {
        let cfg = ImageConfig {
            standardize: false,
            ..Default::default()
        };
        let img = render_sample(&[sine(20), sine(20)], &cfg);
        // Variable 0 occupies left cell: dominant blue; variable 1 orange.
        let hw = img.height * img.width;
        let mut left = [0f32; 3];
        let mut right = [0f32; 3];
        for c in 0..3 {
            for y in 0..img.height {
                for x in 0..img.width {
                    let v = img.data[c * hw + y * img.width + x];
                    if x < 64 {
                        left[c] += v;
                    } else {
                        right[c] += v;
                    }
                }
            }
        }
        assert!(left[2] > left[0], "left cell should be blue-dominant");
        assert!(
            right[0] > right[2],
            "right cell should be red/orange-dominant"
        );
    }

    #[test]
    fn standardized_channels_zero_mean() {
        let img = render_sample(&[sine(50)], &ImageConfig::default());
        for m in img.channel_means() {
            assert!(m.abs() < 1e-4, "channel mean {m}");
        }
    }

    #[test]
    fn constant_series_renders_flat_line() {
        let img = render_sample(
            &[vec![5.0; 30]],
            &ImageConfig {
                standardize: false,
                ..Default::default()
            },
        );
        // All ink on a single row band.
        let hw = img.height * img.width;
        let mut rows_with_ink = std::collections::HashSet::new();
        for y in 0..img.height {
            for x in 0..img.width {
                if img.data[2 * hw + y * img.width + x] > 0.0 {
                    rows_with_ink.insert(y);
                }
            }
        }
        assert!(
            rows_with_ink.len() <= 4,
            "flat series spread over {rows_with_ink:?}"
        );
    }

    #[test]
    fn deterministic() {
        let a = render_sample(&[sine(33)], &ImageConfig::default());
        let b = render_sample(&[sine(33)], &ImageConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "zero variables")]
    fn empty_sample_panics() {
        let _ = render_sample(&[], &ImageConfig::default());
    }
}
