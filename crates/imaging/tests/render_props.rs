//! Property-based tests for the line-chart rasterizer.

use aimts_imaging::{grid_layout, render_sample, ImageConfig};
use proptest::prelude::*;

fn var() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1000f32..1000f32, 1..200)
}

proptest! {
    #[test]
    fn render_is_deterministic(v in var()) {
        let cfg = ImageConfig::default();
        prop_assert_eq!(render_sample(std::slice::from_ref(&v), &cfg), render_sample(&[v], &cfg));
    }

    #[test]
    fn raw_pixels_bounded(v in var()) {
        let cfg = ImageConfig { standardize: false, ..ImageConfig::default() };
        let img = render_sample(&[v], &cfg);
        prop_assert!(img.data.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn standardized_channels_centered(v in var()) {
        let img = render_sample(&[v], &ImageConfig::default());
        for m in img.channel_means() {
            prop_assert!(m.abs() < 1e-3);
        }
        prop_assert!(img.data.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn multivariate_dimensions_match_grid(n_vars in 1usize..9, len in 2usize..50) {
        let vars: Vec<Vec<f32>> =
            (0..n_vars).map(|i| (0..len).map(|t| (t + i) as f32).collect()).collect();
        let cfg = ImageConfig::small();
        let img = render_sample(&vars, &cfg);
        let (rows, cols) = grid_layout(n_vars, cfg.max_cols);
        prop_assert_eq!(img.height, rows * cfg.cell);
        prop_assert_eq!(img.width, cols * cfg.cell);
    }

    #[test]
    fn grid_layout_covers_all_variables(m in 1usize..40, max_cols in 1usize..8) {
        let (rows, cols) = grid_layout(m, max_cols);
        prop_assert!(rows * cols >= m, "{rows}x{cols} < {m}");
        prop_assert!(cols <= max_cols.max(1));
        // No fully empty row.
        prop_assert!((rows - 1) * cols < m);
    }

    #[test]
    fn rendering_has_ink_for_nonconstant_series(len in 8usize..100) {
        let v: Vec<f32> = (0..len).map(|t| (t as f32 * 0.5).sin()).collect();
        let cfg = ImageConfig { standardize: false, ..ImageConfig::default() };
        let img = render_sample(&[v], &cfg);
        let ink = img.data.iter().filter(|&&p| p > 0.0).count();
        prop_assert!(ink >= len.min(60), "only {ink} lit pixels");
    }
}
