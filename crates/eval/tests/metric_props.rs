//! Property-based tests for the evaluation statistics.

use aimts_eval::{accuracy, avg_ranks, num_top1, rank_row, sample_beta, CdAnalysis, Summary};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn acc_row(k: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, k..=k)
}

proptest! {
    /// Ranks always sum to k(k+1)/2 regardless of ties.
    #[test]
    fn ranks_sum_invariant(row in acc_row(6)) {
        let r = rank_row(&row);
        let expected = 6.0 * 7.0 / 2.0;
        prop_assert!((r.iter().sum::<f64>() - expected).abs() < 1e-9);
    }

    /// The best value gets rank 1 (possibly shared upward under ties).
    #[test]
    fn best_value_has_best_rank(row in acc_row(5)) {
        let r = rank_row(&row);
        let best_idx = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        for (i, ri) in r.iter().enumerate() {
            prop_assert!(r[best_idx] <= *ri + 1e-12, "idx {i}");
        }
    }

    /// Average ranks lie in [1, k].
    #[test]
    fn avg_ranks_bounded(matrix in prop::collection::vec(acc_row(4), 1..20)) {
        for r in avg_ranks(&matrix) {
            prop_assert!((1.0..=4.0).contains(&r));
        }
    }

    /// Sole-win counts sum to at most the number of datasets.
    #[test]
    fn top1_bounded(matrix in prop::collection::vec(acc_row(4), 1..20)) {
        let wins: usize = num_top1(&matrix).iter().sum();
        prop_assert!(wins <= matrix.len());
    }

    /// Accuracy is symmetric under consistent permutation of both inputs.
    #[test]
    fn accuracy_permutation_invariant(labels in prop::collection::vec(0usize..4, 5..30)) {
        let preds: Vec<usize> = labels.iter().map(|l| (l + 1) % 4).collect();
        let a1 = accuracy(&preds, &labels);
        let mut idx: Vec<usize> = (0..labels.len()).collect();
        idx.reverse();
        let preds2: Vec<usize> = idx.iter().map(|&i| preds[i]).collect();
        let labels2: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
        prop_assert_eq!(a1, accuracy(&preds2, &labels2));
    }

    /// Summary bounds: min <= mean <= max, std >= 0.
    #[test]
    fn summary_ordering(xs in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let s = Summary::of(&xs);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std >= 0.0);
    }

    /// Beta samples always land in [0, 1] for any positive parameters.
    #[test]
    fn beta_in_range(a in 0.05f64..5.0, b in 0.05f64..5.0, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let x = sample_beta(a, b, &mut rng);
            prop_assert!((0.0..=1.0).contains(&x));
        }
    }

    /// The CD analysis never produces a negative critical difference and
    /// its groups only contain valid method indices.
    #[test]
    fn cd_analysis_well_formed(matrix in prop::collection::vec(acc_row(4), 2..15)) {
        let cd = CdAnalysis::new(&["a", "b", "c", "d"], &matrix);
        prop_assert!(cd.critical_difference > 0.0);
        prop_assert!((0.0..=1.0).contains(&cd.p_value));
        for g in &cd.groups {
            prop_assert!(g.iter().all(|&i| i < 4));
            prop_assert!(g.len() >= 2);
        }
    }
}
