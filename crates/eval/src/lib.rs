//! # aimts-eval
//!
//! Evaluation machinery for the AimTS experiments: the paper's metrics
//! (accuracy, average accuracy, average rank with ties, Num-Top-1), the
//! Friedman test + Nemenyi critical-difference analysis behind Fig. 6's CD
//! diagrams, an ASCII CD-diagram renderer, result-table formatting, and
//! the Beta/Gamma samplers needed by the geodesic mixup (`λ ~ Beta(γ, γ)`).

pub mod cd;
pub mod confusion;
pub mod stats;
pub mod table;

mod metrics;

pub use cd::{render_cd_diagram, CdAnalysis};
pub use confusion::ConfusionMatrix;
pub use metrics::{accuracy, avg_accuracy, avg_ranks, num_top1, rank_row};
pub use stats::{sample_beta, sample_gamma, Summary};
pub use table::ResultTable;
