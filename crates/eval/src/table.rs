//! Plain-text result tables in the layout the paper's tables use
//! (datasets as rows, methods as columns, summary rows at the bottom).

use crate::metrics::{avg_accuracy, avg_ranks, num_top1};

/// A dataset × method accuracy table with the paper's three summary rows.
#[derive(Debug, Clone, Default)]
pub struct ResultTable {
    pub title: String,
    pub methods: Vec<String>,
    pub rows: Vec<(String, Vec<f64>)>,
}

impl ResultTable {
    pub fn new(title: impl Into<String>, methods: &[&str]) -> Self {
        ResultTable {
            title: title.into(),
            methods: methods.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one dataset row; `accs` aligned with `methods`.
    pub fn push_row(&mut self, dataset: impl Into<String>, accs: Vec<f64>) {
        assert_eq!(accs.len(), self.methods.len(), "row width mismatch");
        self.rows.push((dataset.into(), accs));
    }

    /// The accuracy matrix (datasets × methods).
    pub fn matrix(&self) -> Vec<Vec<f64>> {
        self.rows.iter().map(|(_, r)| r.clone()).collect()
    }

    /// Per-method average accuracy.
    pub fn avg_acc(&self) -> Vec<f64> {
        let m = self.matrix();
        (0..self.methods.len())
            .map(|j| avg_accuracy(&m.iter().map(|r| r[j]).collect::<Vec<_>>()))
            .collect()
    }

    /// Per-method average rank.
    pub fn avg_rank(&self) -> Vec<f64> {
        avg_ranks(&self.matrix())
    }

    /// Per-method sole-win counts.
    pub fn top1(&self) -> Vec<usize> {
        num_top1(&self.matrix())
    }

    /// Render in a fixed-width layout with Avg. ACC / Avg. Rank /
    /// Num.Top-1 summary rows.
    pub fn render(&self) -> String {
        let name_w = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .chain([self.title.len(), 10])
            .max()
            .unwrap_or(10)
            .max("Num.Top-1".len());
        let col_w = self
            .methods
            .iter()
            .map(|m| m.len())
            .max()
            .unwrap_or(6)
            .max(6)
            + 2;

        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format!("{:<name_w$}", ""));
        for m in &self.methods {
            out.push_str(&format!("{m:>col_w$}"));
        }
        out.push('\n');
        for (name, accs) in &self.rows {
            out.push_str(&format!("{name:<name_w$}"));
            for a in accs {
                out.push_str(&format!("{:>col_w$.3}", a));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<name_w$}", "Avg. ACC"));
        for a in self.avg_acc() {
            out.push_str(&format!("{a:>col_w$.3}"));
        }
        out.push('\n');
        out.push_str(&format!("{:<name_w$}", "Avg. Rank"));
        for r in self.avg_rank() {
            out.push_str(&format!("{r:>col_w$.3}"));
        }
        out.push('\n');
        out.push_str(&format!("{:<name_w$}", "Num.Top-1"));
        for t in self.top1() {
            out.push_str(&format!("{t:>col_w$}"));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ResultTable {
        let mut t = ResultTable::new("Toy", &["A", "B"]);
        t.push_row("d1", vec![0.9, 0.8]);
        t.push_row("d2", vec![0.7, 0.8]);
        t
    }

    #[test]
    fn summaries() {
        let t = toy();
        let acc = t.avg_acc();
        assert!((acc[0] - 0.8).abs() < 1e-12);
        assert_eq!(t.top1(), vec![1, 1]);
        assert_eq!(t.avg_rank(), vec![1.5, 1.5]);
    }

    #[test]
    fn render_contains_everything() {
        let s = toy().render();
        assert!(s.contains("Toy"));
        assert!(s.contains("d1") && s.contains("d2"));
        assert!(s.contains("Avg. ACC") && s.contains("Avg. Rank") && s.contains("Num.Top-1"));
        assert!(s.contains("0.900"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        toy().push_row("bad", vec![1.0]);
    }
}
