//! Statistics helpers: summary stats and Gamma/Beta sampling.
//!
//! The geodesic mixup draws `λ ~ Beta(γ, γ)` (paper Eq. 9). We sample Beta
//! via two Gamma draws using the Marsaglia–Tsang method, keeping `rand` as
//! the only randomness dependency.

use rand::rngs::StdRng;
use rand::Rng;

/// Mean / standard deviation / min / max of a slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "summary of empty slice");
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            mean,
            std: var.sqrt(),
            min,
            max,
        }
    }
}

fn randn(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Sample `Gamma(shape, 1)` via Marsaglia–Tsang (2000); for `shape < 1`
/// uses the boost `Gamma(shape+1) * U^(1/shape)`.
pub fn sample_gamma(shape: f64, rng: &mut StdRng) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = randn(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Sample `Beta(a, b)` as `Ga / (Ga + Gb)`.
pub fn sample_beta(a: f64, b: f64, rng: &mut StdRng) -> f64 {
    let ga = sample_gamma(a, rng);
    let gb = sample_gamma(b, rng);
    // aimts-lint: allow(A004, exact-zero guard against 0/0; any nonzero sum divides fine)
    if ga + gb == 0.0 {
        0.5
    } else {
        ga / (ga + gb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn summary_known() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut r = rng();
        for shape in [0.5, 1.0, 3.0, 9.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| sample_gamma(shape, &mut r)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "shape {shape} mean {mean}"
            );
        }
    }

    #[test]
    fn beta_in_unit_interval() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = sample_beta(0.1, 0.1, &mut r);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn beta_symmetric_mean_half() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| sample_beta(0.5, 0.5, &mut r)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn beta_small_gamma_is_bimodal() {
        // γ = 0.1 concentrates mass near 0 and 1 (paper's default mixup).
        let mut r = rng();
        let n = 10_000;
        let extreme = (0..n)
            .map(|_| sample_beta(0.1, 0.1, &mut r))
            .filter(|x| *x < 0.1 || *x > 0.9)
            .count();
        assert!(extreme as f64 / n as f64 > 0.6);
    }
}
