//! Friedman test + Nemenyi critical-difference analysis and the ASCII CD
//! diagram behind the paper's Fig. 6 (Demšar 2006).

use crate::metrics::avg_ranks;

/// Critical values `q_α` of the studentized range statistic divided by
/// √2, for α = 0.05, indexed by the number of methods k (2..=20).
const Q_ALPHA_05: [f64; 19] = [
    1.960, 2.343, 2.569, 2.728, 2.850, 2.949, 3.031, 3.102, 3.164, 3.219, 3.268, 3.313, 3.354,
    3.391, 3.426, 3.458, 3.489, 3.517, 3.544,
];

/// Result of a Friedman + Nemenyi analysis over an accuracy matrix.
#[derive(Debug, Clone)]
pub struct CdAnalysis {
    pub methods: Vec<String>,
    /// Average rank per method (lower = better).
    pub avg_ranks: Vec<f64>,
    /// Nemenyi critical difference at α = 0.05.
    pub critical_difference: f64,
    /// Friedman chi-square statistic.
    pub friedman_chi2: f64,
    /// p-value of the Friedman test (chi-square approximation).
    pub p_value: f64,
    /// Number of datasets N.
    pub n_datasets: usize,
    /// Maximal groups of methods whose ranks differ by less than the CD
    /// (the horizontal bars of a CD diagram), as index lists sorted by rank.
    pub groups: Vec<Vec<usize>>,
}

impl CdAnalysis {
    /// Run the analysis on a dataset × method accuracy matrix.
    pub fn new(methods: &[&str], acc_matrix: &[Vec<f64>]) -> CdAnalysis {
        let k = methods.len();
        assert!((2..=20).contains(&k), "CD analysis supports 2..=20 methods");
        assert!(!acc_matrix.is_empty(), "need at least one dataset");
        let n = acc_matrix.len();
        let ranks = avg_ranks(acc_matrix);

        // Friedman chi-square.
        let kf = k as f64;
        let nf = n as f64;
        let sum_sq: f64 = ranks.iter().map(|r| r * r).sum();
        let chi2 = 12.0 * nf / (kf * (kf + 1.0)) * (sum_sq - kf * (kf + 1.0).powi(2) / 4.0);
        let p = 1.0 - chi2_cdf(chi2.max(0.0), (k - 1) as f64);

        // Nemenyi CD.
        let q = Q_ALPHA_05[k - 2];
        let cd = q * (kf * (kf + 1.0) / (6.0 * nf)).sqrt();

        // Maximal indistinguishable groups: sort by rank, slide a window.
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| ranks[a].partial_cmp(&ranks[b]).unwrap());
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for i in 0..k {
            let mut grp = vec![order[i]];
            for &j in &order[i + 1..] {
                if ranks[j] - ranks[order[i]] <= cd {
                    grp.push(j);
                }
            }
            if grp.len() > 1 {
                // Keep only maximal groups.
                let dominated = groups.iter().any(|g| grp.iter().all(|m| g.contains(m)));
                if !dominated {
                    groups.push(grp);
                }
            }
        }

        CdAnalysis {
            methods: methods.iter().map(|s| s.to_string()).collect(),
            avg_ranks: ranks,
            critical_difference: cd,
            friedman_chi2: chi2,
            p_value: p,
            n_datasets: n,
            groups,
        }
    }

    /// True if two methods are statistically indistinguishable at α=0.05.
    pub fn connected(&self, a: usize, b: usize) -> bool {
        (self.avg_ranks[a] - self.avg_ranks[b]).abs() <= self.critical_difference
    }
}

/// Render the analysis as a text CD diagram (best method at the top).
pub fn render_cd_diagram(cd: &CdAnalysis) -> String {
    let mut order: Vec<usize> = (0..cd.methods.len()).collect();
    order.sort_by(|&a, &b| cd.avg_ranks[a].partial_cmp(&cd.avg_ranks[b]).unwrap());

    let mut out = String::new();
    out.push_str(&format!(
        "CD diagram (Nemenyi, alpha=0.05): CD = {:.3}, Friedman chi2 = {:.2} (p = {:.4}), N = {}\n",
        cd.critical_difference, cd.friedman_chi2, cd.p_value, cd.n_datasets
    ));
    let width = 50usize;
    let max_rank = cd.methods.len() as f64;
    for &i in &order {
        let pos = ((cd.avg_ranks[i] - 1.0) / (max_rank - 1.0).max(1e-9) * (width - 1) as f64)
            .round() as usize;
        let mut line = vec![b' '; width];
        line[pos.min(width - 1)] = b'*';
        out.push_str(&format!(
            "{:>24} {:5.3} |{}|\n",
            cd.methods[i],
            cd.avg_ranks[i],
            String::from_utf8(line).unwrap()
        ));
    }
    if cd.groups.is_empty() {
        out.push_str("all methods pairwise distinguishable\n");
    } else {
        for g in &cd.groups {
            let names: Vec<&str> = g.iter().map(|&i| cd.methods[i].as_str()).collect();
            out.push_str(&format!("not distinguishable: {}\n", names.join(" ~ ")));
        }
    }
    out
}

/// Chi-square CDF via the regularized lower incomplete gamma P(k/2, x/2).
fn chi2_cdf(x: f64, dof: f64) -> f64 {
    lower_gamma_regularized(dof / 2.0, x / 2.0)
}

/// Regularized lower incomplete gamma (Numerical Recipes gser/gcf).
fn lower_gamma_regularized(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series expansion.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..200 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-12 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for the upper tail.
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..200 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-12 {
                break;
            }
        }
        1.0 - (-x + a * x.ln() - ln_gamma(a)).exp() * h
    }
}

/// Lanczos log-gamma.
fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5 - (x + 0.5) * (x + 5.5).ln();
    let mut ser = 1.000000000190015;
    for c in COEF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi2_cdf_known_values() {
        // chi2(1): P(X <= 3.841) ≈ 0.95.
        assert!((chi2_cdf(3.841, 1.0) - 0.95).abs() < 1e-3);
        // chi2(5): P(X <= 11.07) ≈ 0.95.
        assert!((chi2_cdf(11.07, 5.0) - 0.95).abs() < 1e-3);
        assert_eq!(chi2_cdf(0.0, 3.0), 0.0);
    }

    #[test]
    fn ln_gamma_known() {
        // Γ(5) = 24.
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
        // Γ(0.5) = sqrt(π).
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn clear_winner_detected() {
        // Method 0 always best on 30 datasets; methods distinguishable.
        let m: Vec<Vec<f64>> = (0..30).map(|_| vec![0.95, 0.5, 0.4]).collect();
        let cd = CdAnalysis::new(&["A", "B", "C"], &m);
        assert!(cd.avg_ranks[0] < cd.avg_ranks[1]);
        assert!(cd.p_value < 0.01, "p {}", cd.p_value);
        assert!(!cd.connected(0, 2));
    }

    #[test]
    fn identical_methods_not_distinguishable() {
        let m: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![0.5 + 0.01 * (i % 2) as f64; 3])
            .collect();
        let cd = CdAnalysis::new(&["A", "B", "C"], &m);
        assert!(cd.p_value > 0.5);
        assert!(cd.connected(0, 1) && cd.connected(1, 2));
        assert!(!cd.groups.is_empty());
    }

    #[test]
    fn cd_decreases_with_more_datasets() {
        let small: Vec<Vec<f64>> = (0..5).map(|_| vec![0.9, 0.8]).collect();
        let large: Vec<Vec<f64>> = (0..100).map(|_| vec![0.9, 0.8]).collect();
        let a = CdAnalysis::new(&["A", "B"], &small);
        let b = CdAnalysis::new(&["A", "B"], &large);
        assert!(b.critical_difference < a.critical_difference);
    }

    #[test]
    fn render_includes_all_methods() {
        let m: Vec<Vec<f64>> = (0..8).map(|_| vec![0.9, 0.7, 0.8]).collect();
        let cd = CdAnalysis::new(&["AimTS", "TNC", "TS2Vec"], &m);
        let s = render_cd_diagram(&cd);
        assert!(s.contains("AimTS") && s.contains("TNC") && s.contains("TS2Vec"));
        assert!(s.contains("CD ="));
    }
}
