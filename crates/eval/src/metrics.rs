//! Classification metrics used across the paper's tables.

/// Fraction of predictions equal to the labels.
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
    assert!(!pred.is_empty(), "accuracy of empty predictions");
    let hits = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / pred.len() as f64
}

/// Mean accuracy over datasets (paper "Avg. ACC").
pub fn avg_accuracy(accs: &[f64]) -> f64 {
    assert!(!accs.is_empty());
    accs.iter().sum::<f64>() / accs.len() as f64
}

/// Competition ranks (1 = best = highest value) with ties averaged,
/// matching Demšar (2006) as used by the paper's "Avg. Rank".
pub fn rank_row(values: &[f64]) -> Vec<f64> {
    let k = values.len();
    let mut idx: Vec<usize> = (0..k).collect();
    idx.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).unwrap());
    let mut ranks = vec![0f64; k];
    let mut i = 0;
    while i < k {
        let mut j = i;
        while j + 1 < k && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for &pos in &idx[i..=j] {
            ranks[pos] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Average rank per method over a dataset × method accuracy matrix.
pub fn avg_ranks(acc_matrix: &[Vec<f64>]) -> Vec<f64> {
    assert!(!acc_matrix.is_empty());
    let k = acc_matrix[0].len();
    let mut sums = vec![0f64; k];
    for row in acc_matrix {
        assert_eq!(row.len(), k, "ragged accuracy matrix");
        for (s, r) in sums.iter_mut().zip(rank_row(row)) {
            *s += r;
        }
    }
    for s in &mut sums {
        *s /= acc_matrix.len() as f64;
    }
    sums
}

/// Number of datasets where each method is the *sole* best (paper
/// "Num.Top-1" excludes shared first places).
pub fn num_top1(acc_matrix: &[Vec<f64>]) -> Vec<usize> {
    assert!(!acc_matrix.is_empty());
    let k = acc_matrix[0].len();
    let mut counts = vec![0usize; k];
    for row in acc_matrix {
        let best = row.iter().copied().fold(f64::MIN, f64::max);
        let winners: Vec<usize> = (0..k).filter(|&i| (row[i] - best).abs() < 1e-12).collect();
        if winners.len() == 1 {
            counts[winners[0]] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(accuracy(&[0, 0, 0], &[0, 1, 2]), 1.0 / 3.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_rejects_mismatch() {
        let _ = accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn ranks_simple() {
        assert_eq!(rank_row(&[0.9, 0.7, 0.8]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn ranks_with_ties_averaged() {
        // 0.9 -> 1; two 0.8s share ranks 2 and 3 -> 2.5 each; 0.1 -> 4.
        assert_eq!(rank_row(&[0.9, 0.8, 0.8, 0.1]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn avg_ranks_matrix() {
        let m = vec![vec![0.9, 0.5], vec![0.4, 0.6]];
        assert_eq!(avg_ranks(&m), vec![1.5, 1.5]);
    }

    #[test]
    fn num_top1_excludes_shared_wins() {
        let m = vec![
            vec![0.9, 0.9], // shared -> nobody
            vec![0.8, 0.7], // method 0
            vec![0.1, 0.7], // method 1
        ];
        assert_eq!(num_top1(&m), vec![1, 1]);
    }
}
