//! Confusion matrices and per-class precision / recall / F1 — beyond the
//! paper's accuracy-based metrics, useful when inspecting individual
//! downstream tasks.

/// A `C × C` confusion matrix: `m[truth][pred]` counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    pub n_classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Build from predictions and ground truth.
    pub fn new(pred: &[usize], truth: &[usize], n_classes: usize) -> Self {
        assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
        let mut counts = vec![0usize; n_classes * n_classes];
        for (&p, &t) in pred.iter().zip(truth) {
            assert!(p < n_classes && t < n_classes, "label out of range");
            counts[t * n_classes + p] += 1;
        }
        ConfusionMatrix { n_classes, counts }
    }

    /// Count at `(truth, pred)`.
    pub fn at(&self, truth: usize, pred: usize) -> usize {
        self.counts[truth * self.n_classes + pred]
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.n_classes).map(|c| self.at(c, c)).sum();
        correct as f64 / self.total().max(1) as f64
    }

    /// Per-class precision (0 when the class was never predicted).
    pub fn precision(&self) -> Vec<f64> {
        (0..self.n_classes)
            .map(|c| {
                let predicted: usize = (0..self.n_classes).map(|t| self.at(t, c)).sum();
                if predicted == 0 {
                    0.0
                } else {
                    self.at(c, c) as f64 / predicted as f64
                }
            })
            .collect()
    }

    /// Per-class recall (0 when the class never occurs).
    pub fn recall(&self) -> Vec<f64> {
        (0..self.n_classes)
            .map(|c| {
                let actual: usize = (0..self.n_classes).map(|p| self.at(c, p)).sum();
                if actual == 0 {
                    0.0
                } else {
                    self.at(c, c) as f64 / actual as f64
                }
            })
            .collect()
    }

    /// Per-class F1.
    pub fn f1(&self) -> Vec<f64> {
        self.precision()
            .iter()
            .zip(self.recall())
            .map(|(&p, r)| {
                // aimts-lint: allow(A004, exact-zero guard against 0/0 in the F1 harmonic mean)
                if p + r == 0.0 {
                    0.0
                } else {
                    2.0 * p * r / (p + r)
                }
            })
            .collect()
    }

    /// Macro-averaged F1.
    pub fn macro_f1(&self) -> f64 {
        let f = self.f1();
        f.iter().sum::<f64>() / f.len() as f64
    }

    /// Fixed-width rendering (rows = truth, cols = prediction).
    pub fn render(&self) -> String {
        let mut out = String::from("truth \\ pred");
        for c in 0..self.n_classes {
            out.push_str(&format!("{c:>7}"));
        }
        out.push('\n');
        for t in 0..self.n_classes {
            out.push_str(&format!("{t:>12}"));
            for p in 0..self.n_classes {
                out.push_str(&format!("{:>7}", self.at(t, p)));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> ConfusionMatrix {
        // truth:  0 0 0 1 1 2
        // pred:   0 0 1 1 1 0
        ConfusionMatrix::new(&[0, 0, 1, 1, 1, 0], &[0, 0, 0, 1, 1, 2], 3)
    }

    #[test]
    fn counts_and_accuracy() {
        let cm = m();
        assert_eq!(cm.at(0, 0), 2);
        assert_eq!(cm.at(0, 1), 1);
        assert_eq!(cm.at(2, 0), 1);
        assert_eq!(cm.total(), 6);
        assert!((cm.accuracy() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1() {
        let cm = m();
        let p = cm.precision();
        let r = cm.recall();
        // class 0: predicted 3 times, 2 correct.
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-12);
        // class 0: occurs 3 times, 2 recovered.
        assert!((r[0] - 2.0 / 3.0).abs() < 1e-12);
        // class 2: never predicted.
        assert_eq!(p[2], 0.0);
        assert_eq!(cm.f1()[2], 0.0);
        assert!(cm.macro_f1() > 0.0);
    }

    #[test]
    fn perfect_predictions() {
        let cm = ConfusionMatrix::new(&[0, 1, 2], &[0, 1, 2], 3);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
    }

    #[test]
    fn render_contains_counts() {
        let s = m().render();
        assert!(s.contains("truth"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_labels() {
        let _ = ConfusionMatrix::new(&[5], &[0], 3);
    }
}
