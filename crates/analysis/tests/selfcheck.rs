//! Self-check: the live workspace must lint clean. This is the same
//! invariant CI enforces via `cargo run -p aimts-lint -- check`; keeping
//! it as a test means `cargo test` alone catches regressions.

#[test]
fn workspace_is_clean() {
    let manifest_dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = aimts_lint::find_workspace_root(&manifest_dir).expect("workspace root");
    let (diags, inspected) = aimts_lint::check_workspace(&root).expect("workspace must lint");
    assert!(
        inspected > 50,
        "suspiciously few files inspected ({inspected}); walker broken?"
    );
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        diags.is_empty(),
        "workspace has {} unsuppressed diagnostic(s):\n{}",
        diags.len(),
        rendered.join("\n")
    );
}
