//! Self-checks: the live workspace must lint clean, and every rule must
//! be load-bearing against its fixture. These are the same invariants CI
//! enforces via `cargo run -p aimts-lint -- check`; keeping them as
//! tests means `cargo test` alone catches regressions.

use std::path::PathBuf;

/// (rule, fixture that must fire it) — one entry per enforced rule.
const RULE_FIXTURES: &[(&str, &str)] = &[
    ("A001", "a001_panic.rs"),
    ("A002", "a002_lock_order.rs"),
    ("A003", "a003_time.rs"),
    ("A004", "a004_float_eq.rs"),
    ("A005", "a005_discard.rs"),
    ("A006", "a006_unsafe_safety.rs"),
    ("A007", "a007_hot_access.rs"),
    ("A008", "a008_guard_channel.rs"),
    ("A009", "a009_unwind_mut.rs"),
    ("A010", "a010_responder.rs"),
    ("A011", "a011_dropped_error.rs"),
    ("A012", "a012_storage_misuse.rs"),
];

fn fixture(name: &str) -> Vec<PathBuf> {
    vec![PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)]
}

/// Every rule is load-bearing: its fixture fires it when enabled and
/// goes silent (for that rule) when only that rule is disabled. A rule
/// whose implementation regressed to a no-op fails the first half; a
/// rule whose firings actually come from another rule fails the second.
#[test]
fn each_rule_is_load_bearing_against_its_fixture() {
    for (rule, name) in RULE_FIXTURES {
        let on = aimts_lint::check_paths(&fixture(name)).expect("fixture must lint");
        assert!(
            on.iter().any(|d| d.rule == *rule),
            "{name} no longer fires {rule}; the rule regressed to a no-op"
        );
        let scope = aimts_lint::rules::Scope::all().without(rule);
        let off = aimts_lint::check_paths_scoped(&fixture(name), scope).expect("fixture must lint");
        assert!(
            !off.iter().any(|d| d.rule == *rule),
            "{name} still reports {rule} with the rule disabled"
        );
    }
}

/// Every suppression in the workspace carries a reason — a reasonless
/// pragma surfaces as A000, which the clean-workspace check below treats
/// like any other diagnostic. This test exists to name the policy.
#[test]
fn workspace_suppressions_all_carry_reasons() {
    let manifest_dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = aimts_lint::find_workspace_root(&manifest_dir).expect("workspace root");
    let (diags, _) = aimts_lint::check_workspace(&root).expect("workspace must lint");
    let meta: Vec<String> = diags
        .iter()
        .filter(|d| d.rule == "A000")
        .map(|d| d.to_string())
        .collect();
    assert!(
        meta.is_empty(),
        "suppression hygiene violations:\n{}",
        meta.join("\n")
    );
}

#[test]
fn workspace_is_clean() {
    let manifest_dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = aimts_lint::find_workspace_root(&manifest_dir).expect("workspace root");
    let (diags, inspected) = aimts_lint::check_workspace(&root).expect("workspace must lint");
    assert!(
        inspected > 50,
        "suspiciously few files inspected ({inspected}); walker broken?"
    );
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        diags.is_empty(),
        "workspace has {} unsuppressed diagnostic(s):\n{}",
        diags.len(),
        rendered.join("\n")
    );
}
