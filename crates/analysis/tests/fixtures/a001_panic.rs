// Fixture: every A001 trigger form, plus test code that must NOT fire.

pub fn load(bytes: Option<&[u8]>) -> &[u8] {
    bytes.unwrap()
}

pub fn decode(x: Result<u32, String>) -> u32 {
    x.expect("decode failed")
}

pub fn unreachable_branch() {
    panic!("boom");
}

pub fn unfinished() {
    todo!()
}

#[cfg(test)]
mod tests {
    #[test]
    fn fine_here() {
        let v: Option<u8> = Some(1);
        v.unwrap();
        panic!("tests may panic");
    }
}
