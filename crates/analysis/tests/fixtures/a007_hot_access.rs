// Fixture: raw access to a hot buffer outside the aliasing-tally guard
// scope (A007), next to sanctioned access from the cell's own impl and
// its guards, and one suppressed migration shim.

pub struct Sneaky {
    buf: UnsafeCell<Vec<f32>>,
}

impl Sneaky {
    pub fn bad_peek(&self) -> *mut Vec<f32> {
        self.buf.get()
    }
}

pub struct HotCell {
    buf: UnsafeCell<Vec<f32>>,
}

impl HotCell {
    pub fn ok_inside_cell(&self) -> *mut Vec<f32> {
        self.buf.get()
    }
}

pub struct HotReadGuard<'a> {
    cell: &'a HotCell,
}

impl HotReadGuard<'_> {
    pub fn ok_inside_guard(&self) -> *const Vec<f32> {
        self.cell.buf.get()
    }
}

pub struct Audited {
    buf: UnsafeCell<Vec<f32>>,
}

impl Audited {
    pub fn suppressed(&self) -> *mut Vec<f32> {
        self.buf.get() // aimts-lint: allow(A007, fixture: audited shim kept until the guard migration lands)
    }
}
