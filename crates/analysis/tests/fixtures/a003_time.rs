// Fixture: wall-clock and entropy sources that break bit-exact resume.

use std::time::{Instant, SystemTime};

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn wall() -> SystemTime {
    SystemTime::now()
}

pub fn rng() -> StdRng {
    StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _t = Instant::now();
    }
}
