// Fixture: silently discarded values (A005) next to an explicit borrow
// discard, which is the blessed closure-capture idiom and stays clean.

pub fn swallow(tx: &Sender<u32>) {
    let _ = tx.send(1);
}

pub fn capture_only(shape: &[usize]) -> impl Fn() + '_ {
    move || {
        let _ = &shape;
    }
}
