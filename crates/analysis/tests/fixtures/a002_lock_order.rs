// Fixture: overlapping tensor-lock guards with no id ordering (A002),
// next to patterns that are fine (sequential, dropped, ordered).

pub fn bad_overlapping_lets(a: &Tensor, b: &Tensor) -> f32 {
    let ga = a.data();
    let gb = b.data();
    ga[0] + gb[0]
}

pub fn bad_same_expression(a: &Tensor, b: &Tensor) -> f32 {
    dot(&a.data(), &b.data())
}

pub fn ok_sequential(a: &Tensor, b: &Tensor) -> f32 {
    let x = sum(&a.data());
    let y = sum(&b.data());
    x + y
}

pub fn ok_dropped(a: &Tensor, b: &Tensor) -> f32 {
    let ga = a.data();
    let x = ga[0];
    drop(ga);
    let gb = b.data();
    x + gb[0]
}

pub fn ok_ordered(a: &Tensor, b: &Tensor) -> f32 {
    let (ga, gb) = read_pair(a, b);
    ga[0] + gb[0]
}
