// Fixture: lock guards held across channel boundaries or catch_unwind
// (A008), next to drop-before-send and scope-confined patterns, and one
// suppressed single-consumer queue.

pub fn bad_send_while_locked(m: &Mutex<Vec<u8>>, tx: &Sender<u8>) {
    let g = m.lock();
    tx.send(g[0]).ok();
}

pub fn bad_recv_while_locked(m: &Mutex<Vec<u8>>, rx: &Receiver<u8>) {
    let g = m.lock();
    rx.recv().ok();
    drop(g);
}

pub fn bad_unwind_while_locked(m: &Mutex<Vec<u8>>) -> bool {
    let g = m.lock();
    let r = catch_unwind(|| compute());
    drop(g);
    r.is_ok()
}

pub fn ok_drop_first(m: &Mutex<Vec<u8>>, tx: &Sender<u8>) {
    let g = m.lock();
    let v = g[0];
    drop(g);
    tx.send(v).ok();
}

pub fn ok_scope_confined(m: &Mutex<Vec<u8>>, tx: &Sender<u8>) {
    let v = {
        let g = m.lock();
        g[0]
    };
    tx.send(v).ok();
}

pub fn suppressed(m: &Mutex<Vec<u8>>, rx: &Receiver<u8>) {
    let g = m.lock();
    rx.recv().ok(); // aimts-lint: allow(A008, fixture: no other thread ever takes this mutex, so blocking while holding it cannot deadlock)
    drop(g);
}
