// Fixture: every admitted request must flow to exactly one respond-like
// sink on every path (A010): a leak on the fallthrough path, a double
// answer, clean linear / branching / delegating handlers, and one
// suppressed legacy fire-and-forget path.

pub fn bad_leak_on_error(req: Request, ok: bool) {
    if ok {
        req.reply.send(Ok(1)).ok();
    }
}

pub fn bad_double_answer(req: Request) {
    req.reply.send(Ok(1)).ok();
    req.reply.send(Ok(2)).ok();
}

pub fn ok_linear(req: Request) {
    req.reply.send(Ok(1)).ok();
}

pub fn ok_both_arms(req: Request, ok: bool) {
    if ok {
        req.reply.send(Ok(1)).ok();
    } else {
        req.reply.send(Err(2)).ok();
    }
}

pub fn ok_delegated(req: Request, tx: &Sender<Request>) {
    tx.send(req).ok();
}

pub fn suppressed(req: Request, ok: bool) { // aimts-lint: allow(A010, fixture: legacy fire-and-forget path, scheduled for removal with the v1 client)
    if ok {
        req.reply.send(Ok(1)).ok();
    }
}
