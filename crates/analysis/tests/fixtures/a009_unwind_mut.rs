// Fixture: catch_unwind over a closure capturing `&mut` with no
// post-unwind re-assertion (A009), next to a re-asserting caller, a
// shared-capture closure that needs none, and one suppressed site.

pub fn bad_no_reassert(acc: &mut Vec<f32>) -> bool {
    let r = catch_unwind(AssertUnwindSafe(|| step(&mut *acc)));
    r.is_ok()
}

pub fn ok_reasserts(acc: &mut Vec<f32>) -> bool {
    let r = catch_unwind(AssertUnwindSafe(|| step(&mut *acc)));
    if r.is_err() {
        assert_invariants(acc);
    }
    r.is_ok()
}

pub fn ok_shared_capture(acc: &Vec<f32>) -> usize {
    let r = catch_unwind(AssertUnwindSafe(|| acc.len()));
    r.unwrap_or(0)
}

pub fn suppressed(acc: &mut Vec<f32>) -> bool {
    let r = catch_unwind(AssertUnwindSafe(|| step(&mut *acc))); // aimts-lint: allow(A009, fixture: the caller discards acc and rebuilds it from the checkpoint on error)
    r.is_ok()
}
