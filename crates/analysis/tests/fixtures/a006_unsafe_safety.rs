// Fixture: `unsafe` without a `// SAFETY:` comment (A006) in all three
// site kinds, next to documented sites (including a comment bridged over
// an attribute line) and one suppressed legacy site.

pub struct Wrapper(*mut f32);

unsafe impl Send for Wrapper {}

pub unsafe fn bad_fn(p: *const f32) -> f32 {
    *p
}

pub fn bad_block(p: *const f32) -> f32 {
    unsafe { *p }
}

// SAFETY: the caller's borrow keeps the allocation alive and the pointer
// non-null and aligned for the duration of the read.
pub unsafe fn ok_documented_fn(p: *const f32) -> f32 {
    *p
}

pub fn ok_documented_block(p: *const f32) -> f32 {
    // SAFETY: `p` comes from a live slice held by the caller.
    unsafe { *p }
}

// SAFETY: the wrapped pointer is only dereferenced on the owning thread;
// the attribute line below must not break this justification.
#[allow(dead_code)]
unsafe impl Sync for Wrapper {}

pub fn suppressed(p: *const f32) -> f32 {
    unsafe { *p } // aimts-lint: allow(A006, fixture: legacy site pending the pointer-provenance audit)
}
