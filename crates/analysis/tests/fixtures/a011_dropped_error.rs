// Fixture: typed error values constructed and silently dropped (A011),
// next to returned / bound / propagated constructions and one suppressed
// layout probe.

pub fn bad_dropped_variant(flag: bool) {
    if flag {
        TrainError::Diverged;
    }
}

pub fn bad_dropped_err() {
    Err(3);
}

pub fn ok_returned() -> Result<(), TrainError> {
    return Err(TrainError::Diverged);
}

pub fn ok_bound(flag: bool) -> Result<(), TrainError> {
    let e = TrainError::Diverged;
    if flag {
        return Err(e);
    }
    Ok(())
}

pub fn suppressed() {
    CheckpointError::Corrupt; // aimts-lint: allow(A011, fixture: constructor probe exercising the enum layout)
}
