// Fixture: gradient-flow APIs on a frozen-inference path (A012):
// `Storage::Shared` construction and `.backward()` calls, next to the
// inference-safe alternatives and one suppressed parity-test reference.

pub fn bad_shared_storage(data: Vec<f32>) -> Tensor {
    Tensor::with_storage(data, Storage::Shared)
}

pub fn bad_backward(loss: &Tensor) {
    loss.backward();
}

pub fn ok_hot_storage(data: Vec<f32>) -> Tensor {
    Tensor::with_storage(data, Storage::Hot)
}

pub fn ok_forward(model: &Model, x: &Tensor) -> Tensor {
    model.forward(x)
}

pub fn suppressed(loss: &Tensor) {
    loss.backward(); // aimts-lint: allow(A012, fixture: reference gradient path used only by the train-parity test, never served)
}
