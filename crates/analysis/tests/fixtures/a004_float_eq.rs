// Fixture: exact float comparisons (A004) next to integer ones (fine).

pub fn is_zero(x: f32) -> bool {
    x == 0.0
}

pub fn not_one(x: f64) -> bool {
    1.0 != x
}

pub fn is_nan_wrong(x: f32) -> bool {
    x == f32::NAN
}

pub fn int_compare_is_fine(n: usize) -> bool {
    n == 3
}
