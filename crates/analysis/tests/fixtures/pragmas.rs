// Fixture: suppression-pragma hygiene. One valid trailing pragma, one
// valid own-line pragma, one reasonless pragma (A000), one unknown rule
// (A000), and one unused suppression (A000).

pub fn suppressed_trailing(x: Option<u8>) -> u8 {
    x.unwrap() // aimts-lint: allow(A001, fixture: caller checked is_some)
}

pub fn suppressed_own_line() {
    // aimts-lint: allow(A001, fixture: sentinel branch is unreachable)
    panic!("never runs");
}

pub fn reasonless(x: Option<u8>) -> u8 {
    x.unwrap() // aimts-lint: allow(A001)
}

pub fn unknown_rule(x: Option<u8>) -> u8 {
    x.unwrap() // aimts-lint: allow(Z999, not a rule)
}

pub fn unused() -> u32 {
    let n = 1; // aimts-lint: allow(A005, nothing discarded here)
    n + 1
}
