//! Golden-diagnostics tests: each fixture file must produce exactly the
//! expected rule firings, and the rendered output must match
//! `tests/fixtures/expected.txt` byte for byte.

use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn rules_for(name: &str) -> Vec<String> {
    let diags = aimts_lint::check_paths(&[fixture(name)]).expect("fixture must lint");
    diags.into_iter().map(|d| d.rule).collect()
}

#[test]
fn a001_fixture_fires_per_site() {
    assert_eq!(rules_for("a001_panic.rs"), vec!["A001"; 4]);
}

#[test]
fn a002_fixture_fires_per_bad_fn() {
    assert_eq!(rules_for("a002_lock_order.rs"), vec!["A002"; 2]);
}

#[test]
fn a003_fixture_fires_per_site() {
    assert_eq!(rules_for("a003_time.rs"), vec!["A003"; 3]);
}

#[test]
fn a004_fixture_fires_per_site() {
    assert_eq!(rules_for("a004_float_eq.rs"), vec!["A004"; 3]);
}

#[test]
fn a005_fixture_fires_once() {
    assert_eq!(rules_for("a005_discard.rs"), vec!["A005"; 1]);
}

#[test]
fn a006_fixture_fires_per_unjustified_site() {
    // One bare `unsafe impl`, one bare `unsafe fn`, one bare block; the
    // documented, attribute-bridged, and suppressed sites stay silent.
    assert_eq!(rules_for("a006_unsafe_safety.rs"), vec!["A006"; 3]);
}

#[test]
fn a007_fixture_fires_outside_guard_impls() {
    // Only `Sneaky::bad_peek`; HotCell and *Guard impls are sanctioned.
    assert_eq!(rules_for("a007_hot_access.rs"), vec!["A007"; 1]);
}

#[test]
fn a008_fixture_fires_per_held_boundary() {
    // send, recv, and catch_unwind each crossed with a live guard; the
    // drop-first and scope-confined variants stay silent.
    assert_eq!(rules_for("a008_guard_channel.rs"), vec!["A008"; 3]);
}

#[test]
fn a009_fixture_fires_without_reassertion() {
    assert_eq!(rules_for("a009_unwind_mut.rs"), vec!["A009"; 1]);
}

#[test]
fn a010_fixture_fires_on_leak_and_double_answer() {
    assert_eq!(rules_for("a010_responder.rs"), vec!["A010"; 2]);
}

#[test]
fn a011_fixture_fires_per_dropped_ctor() {
    assert_eq!(rules_for("a011_dropped_error.rs"), vec!["A011"; 2]);
}

#[test]
fn a012_fixture_fires_per_grad_api() {
    assert_eq!(rules_for("a012_storage_misuse.rs"), vec!["A012"; 2]);
}

#[test]
fn pragma_fixture_fires_meta_and_unsuppressed() {
    // Two valid suppressions absorb their targets. The reasonless and
    // unknown-rule pragmas each surface as A000 *and* leave their line's
    // A001 unsuppressed; the unused pragma surfaces as A000 alone.
    assert_eq!(
        rules_for("pragmas.rs"),
        vec!["A000", "A001", "A000", "A001", "A000"]
    );
}

#[test]
fn rendered_diagnostics_match_golden() {
    let names = [
        "a001_panic.rs",
        "a002_lock_order.rs",
        "a003_time.rs",
        "a004_float_eq.rs",
        "a005_discard.rs",
        "a006_unsafe_safety.rs",
        "a007_hot_access.rs",
        "a008_guard_channel.rs",
        "a009_unwind_mut.rs",
        "a010_responder.rs",
        "a011_dropped_error.rs",
        "a012_storage_misuse.rs",
        "pragmas.rs",
    ];
    let mut rendered = String::new();
    for name in names {
        let diags = aimts_lint::check_paths(&[fixture(name)]).expect("fixture must lint");
        for d in diags {
            // Strip the machine-specific path prefix for a stable golden.
            let line = format!("{d}\n");
            let tail = line
                .split_once("tests/fixtures/")
                .map(|(_, t)| t.to_string())
                .unwrap_or(line);
            rendered.push_str(&tail);
        }
    }
    let expected = std::fs::read_to_string(fixture("expected.txt")).expect("golden file");
    assert_eq!(rendered, expected, "diagnostics drifted from golden");
}

#[test]
fn json_output_is_wellformed_per_fixture() {
    let diags = aimts_lint::check_paths(&[fixture("a001_panic.rs")]).expect("fixture must lint");
    let j = aimts_lint::to_json(&diags);
    assert!(j.starts_with('[') && j.ends_with(']'));
    assert_eq!(j.matches("\"rule\":\"A001\"").count(), 4);
}
