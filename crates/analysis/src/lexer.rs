//! A minimal Rust lexer: just enough fidelity for line/col-accurate
//! token-pattern rules — comments, strings (including raw and byte
//! forms), char-vs-lifetime disambiguation, and numeric literals with
//! suffixes. The vendored dependencies are API shims, so a real parse
//! via `syn` is off the table; every rule in this crate works on the
//! token stream produced here.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including `_` and raw `r#ident`).
    Ident,
    /// Numeric literal, suffix included (`1_000u32`, `2.5f32`, `1e-3`).
    Num,
    /// String literal of any form (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte-character literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'_`).
    Lifetime,
    /// Punctuation, multi-character operators kept whole (`==`, `::`).
    Punct,
}

/// One code token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }

    /// Whether this numeric literal is a float (`1.0`, `1e-3`, `2f32`).
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokenKind::Num {
            return false;
        }
        let t = &self.text;
        if t.starts_with("0x") || t.starts_with("0o") || t.starts_with("0b") {
            return false;
        }
        if t.contains('.') || t.ends_with("f32") || t.ends_with("f64") {
            return true;
        }
        // A real exponent has a digit (or signed digit) after the e/E —
        // this keeps `3usize` (which merely contains an `e`) an integer.
        let b = t.as_bytes();
        b.iter().enumerate().any(|(i, &c)| {
            matches!(c, b'e' | b'E')
                && (b.get(i + 1).is_some_and(u8::is_ascii_digit)
                    || (matches!(b.get(i + 1), Some(b'+') | Some(b'-'))
                        && b.get(i + 2).is_some_and(u8::is_ascii_digit)))
        })
    }
}

/// One comment (text includes the `//` / `/*` markers).
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    /// True when a code token precedes the comment on the same line.
    pub trailing: bool,
    /// Index into the token stream of the first token *after* this
    /// comment (== `tokens.len()` when the comment is last).
    pub next_token_index: usize,
}

/// Result of lexing one file.
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

const PUNCTS3: &[&str] = &["..=", "<<=", ">>=", "..."];
const PUNCTS2: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=", "-=", "*=", "/=", "%=", "^=",
    "&=", "|=", "<<", ">>",
];

struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            b: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.b.get(self.pos + ahead).unwrap_or(&0)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.b.len()
    }

    /// Advance one byte, tracking line/col (UTF-8 continuation bytes do
    /// not advance the column).
    fn step(&mut self) {
        let c = self.b[self.pos];
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if c & 0xC0 != 0x80 {
            self.col += 1;
        }
    }

    fn step_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.at_end() {
                break;
            }
            self.step();
        }
    }

    fn slice_from(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.b[start..self.pos]).into_owned()
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Does a raw-string opener (`r"` / `r#…#"` / `br…`) start at the cursor?
/// Returns the number of `#`s if so.
fn raw_string_hashes(cur: &Cursor) -> Option<usize> {
    let mut off = 0;
    if cur.peek(0) == b'b' {
        off += 1;
    }
    if cur.peek(off) != b'r' {
        return None;
    }
    off += 1;
    let mut hashes = 0;
    while cur.peek(off + hashes) == b'#' {
        hashes += 1;
    }
    if cur.peek(off + hashes) == b'"' {
        Some(hashes)
    } else {
        None
    }
}

/// Lex `src` into code tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut tokens: Vec<Token> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();
    let mut last_code_line: u32 = 0;
    // Comments seen before the next token; patched once it arrives.
    let mut open_comments: Vec<usize> = Vec::new();

    while !cur.at_end() {
        let c = cur.peek(0);
        if c.is_ascii_whitespace() {
            cur.step();
            continue;
        }
        let (line, col) = (cur.line, cur.col);
        let start = cur.pos;

        // Comments.
        if c == b'/' && cur.peek(1) == b'/' {
            while !cur.at_end() && cur.peek(0) != b'\n' {
                cur.step();
            }
            open_comments.push(comments.len());
            comments.push(Comment {
                text: cur.slice_from(start),
                line,
                trailing: line == last_code_line,
                next_token_index: usize::MAX,
            });
            continue;
        }
        if c == b'/' && cur.peek(1) == b'*' {
            cur.step_n(2);
            let mut depth = 1usize;
            while !cur.at_end() && depth > 0 {
                if cur.peek(0) == b'/' && cur.peek(1) == b'*' {
                    depth += 1;
                    cur.step_n(2);
                } else if cur.peek(0) == b'*' && cur.peek(1) == b'/' {
                    depth -= 1;
                    cur.step_n(2);
                } else {
                    cur.step();
                }
            }
            open_comments.push(comments.len());
            comments.push(Comment {
                text: cur.slice_from(start),
                line,
                trailing: line == last_code_line,
                next_token_index: usize::MAX,
            });
            continue;
        }

        let mut push = |kind: TokenKind, text: String, tokens: &mut Vec<Token>| {
            for k in open_comments.drain(..) {
                comments[k].next_token_index = tokens.len();
            }
            tokens.push(Token {
                kind,
                text,
                line,
                col,
            });
            last_code_line = line;
        };

        // Raw strings (r"…", r#"…"#, br"…").
        if (c == b'r' || c == b'b') && raw_string_hashes(&cur).is_some() {
            let hashes = raw_string_hashes(&cur).unwrap_or(0);
            // Consume prefix + hashes + opening quote.
            while cur.peek(0) != b'"' && !cur.at_end() {
                cur.step();
            }
            cur.step(); // opening "
            loop {
                if cur.at_end() {
                    break;
                }
                if cur.peek(0) == b'"' {
                    let mut ok = true;
                    for h in 0..hashes {
                        if cur.peek(1 + h) != b'#' {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        cur.step_n(1 + hashes);
                        break;
                    }
                }
                cur.step();
            }
            push(TokenKind::Str, cur.slice_from(start), &mut tokens);
            continue;
        }

        // Byte string / byte char.
        if c == b'b' && (cur.peek(1) == b'"' || cur.peek(1) == b'\'') {
            let quote = cur.peek(1);
            cur.step_n(2);
            while !cur.at_end() && cur.peek(0) != quote {
                if cur.peek(0) == b'\\' {
                    cur.step();
                }
                cur.step();
            }
            cur.step();
            let kind = if quote == b'"' {
                TokenKind::Str
            } else {
                TokenKind::Char
            };
            push(kind, cur.slice_from(start), &mut tokens);
            continue;
        }

        // Identifier / keyword (incl. raw `r#ident`).
        if is_ident_start(c) {
            if c == b'r' && cur.peek(1) == b'#' && is_ident_start(cur.peek(2)) {
                cur.step_n(2);
            }
            while !cur.at_end() && is_ident_continue(cur.peek(0)) {
                cur.step();
            }
            push(TokenKind::Ident, cur.slice_from(start), &mut tokens);
            continue;
        }

        // Number.
        if c.is_ascii_digit() {
            cur.step();
            if c == b'0' && matches!(cur.peek(0), b'x' | b'o' | b'b') {
                cur.step();
                while !cur.at_end() && (cur.peek(0).is_ascii_alphanumeric() || cur.peek(0) == b'_')
                {
                    cur.step();
                }
            } else {
                while cur.peek(0).is_ascii_digit() || cur.peek(0) == b'_' {
                    cur.step();
                }
                // Fraction only when followed by a digit (`1.max(2)` and
                // `0..n` stay integers).
                if cur.peek(0) == b'.' && cur.peek(1).is_ascii_digit() {
                    cur.step();
                    while cur.peek(0).is_ascii_digit() || cur.peek(0) == b'_' {
                        cur.step();
                    }
                }
                // Exponent.
                if matches!(cur.peek(0), b'e' | b'E')
                    && (cur.peek(1).is_ascii_digit()
                        || (matches!(cur.peek(1), b'+' | b'-') && cur.peek(2).is_ascii_digit()))
                {
                    cur.step_n(2);
                    while cur.peek(0).is_ascii_digit() || cur.peek(0) == b'_' {
                        cur.step();
                    }
                }
                // Type suffix (f32, u64, usize, …).
                while is_ident_continue(cur.peek(0)) {
                    cur.step();
                }
            }
            push(TokenKind::Num, cur.slice_from(start), &mut tokens);
            continue;
        }

        // String.
        if c == b'"' {
            cur.step();
            while !cur.at_end() && cur.peek(0) != b'"' {
                if cur.peek(0) == b'\\' {
                    cur.step();
                }
                cur.step();
            }
            cur.step();
            push(TokenKind::Str, cur.slice_from(start), &mut tokens);
            continue;
        }

        // Char literal vs lifetime.
        if c == b'\'' {
            if cur.peek(1) == b'\\' {
                cur.step_n(2); // ' and backslash
                cur.step(); // escaped char
                while !cur.at_end() && cur.peek(0) != b'\'' {
                    cur.step(); // \u{…}
                }
                cur.step();
                push(TokenKind::Char, cur.slice_from(start), &mut tokens);
            } else if is_ident_start(cur.peek(1)) || cur.peek(1).is_ascii_digit() {
                // 'x' is a char only when a closing quote follows the
                // (possibly multi-byte) character; otherwise a lifetime.
                let mut w = 1;
                if cur.peek(1) >= 0x80 {
                    while cur.peek(1 + w) & 0xC0 == 0x80 {
                        w += 1;
                    }
                }
                if cur.peek(1 + w) == b'\'' {
                    cur.step_n(2 + w);
                    push(TokenKind::Char, cur.slice_from(start), &mut tokens);
                } else {
                    cur.step();
                    while is_ident_continue(cur.peek(0)) {
                        cur.step();
                    }
                    push(TokenKind::Lifetime, cur.slice_from(start), &mut tokens);
                }
            } else {
                cur.step();
                push(TokenKind::Punct, cur.slice_from(start), &mut tokens);
            }
            continue;
        }

        // Punctuation: longest known operator first.
        let rest = &cur.b[cur.pos..];
        let mut matched = 1usize;
        for p in PUNCTS3 {
            if rest.starts_with(p.as_bytes()) {
                matched = 3;
                break;
            }
        }
        if matched == 1 {
            for p in PUNCTS2 {
                if rest.starts_with(p.as_bytes()) {
                    matched = 2;
                    break;
                }
            }
        }
        cur.step_n(matched);
        push(TokenKind::Punct, cur.slice_from(start), &mut tokens);
    }

    Lexed { tokens, comments }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            texts("let x == y != z::w;"),
            vec!["let", "x", "==", "y", "!=", "z", "::", "w", ";"]
        );
    }

    #[test]
    fn comments_are_not_tokens() {
        let l = lex("a // panic!()\n/* unwrap() */ b");
        assert_eq!(l.tokens.len(), 2);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].trailing);
        assert!(!l.comments[1].trailing);
        assert_eq!(l.comments[1].next_token_index, 1);
    }

    #[test]
    fn strings_hide_contents() {
        let l = lex(r#"let s = "panic!() .unwrap()";"#);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            1
        );
        assert!(!l.tokens.iter().any(|t| t.is_ident("panic")));
    }

    #[test]
    fn raw_strings() {
        let l = lex(r###"let s = r#"a "quoted" b"#; x"###);
        assert!(l.tokens.iter().any(|t| t.is_ident("x")));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            1
        );
    }

    #[test]
    fn char_vs_lifetime() {
        let l = lex("fn f<'a>(x: &'a u8) { let c = 'y'; let n = '\\n'; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            2
        );
    }

    #[test]
    fn float_detection() {
        let l = lex("1.0 2 0x1F 1e-3 2f32 3usize 1.max(2) 0..4");
        let floats: Vec<bool> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.is_float_literal())
            .collect();
        // 1.0, 2, 0x1F, 1e-3, 2f32, 3usize, 1, 2, 0, 4
        assert_eq!(
            floats,
            vec![true, false, false, true, true, false, false, false, false, false]
        );
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("a\n  b");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner */ still comment */ b");
        assert_eq!(l.tokens.len(), 2, "only `a` and `b` are code");
        assert_eq!(l.comments.len(), 1, "nesting folds into one comment");
        assert!(l.comments[0].text.contains("inner"));
        assert!(l.comments[0].text.contains("still comment"));
    }

    #[test]
    fn block_comment_spans_lines() {
        let l = lex("a /* one\ntwo\nthree */ b");
        assert_eq!(l.comments[0].line, 1, "comment anchors at its opener");
        assert_eq!(l.comments[0].text.matches('\n').count(), 2);
        assert_eq!(l.tokens[1].line, 3, "`b` sits on the closing line");
    }

    #[test]
    fn macro_bodies_are_lexed_not_skipped() {
        // Rules scan macro bodies like any other code: a `panic!` or
        // `.unwrap()` inside `macro_rules!` is still a finding.
        let l = lex("macro_rules! m { ($x:expr) => { $x.unwrap() } } m!(q);");
        assert!(l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(l.tokens.iter().any(|t| t.is_ident("macro_rules")));
        assert!(l.tokens.iter().any(|t| t.is_ident("q")));
    }

    #[test]
    fn raw_identifiers_are_idents_not_raw_strings() {
        // `r#match` must not be mistaken for a raw-string opener `r#"`.
        let l = lex("let r#match = r#fn; tail");
        assert!(l.tokens.iter().any(|t| t.is_ident("tail")));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            0
        );
    }

    #[test]
    fn byte_and_raw_byte_strings_hide_contents() {
        let l = lex(r###"let a = b"panic!()"; let c = br#"x.unwrap()"#; tail"###);
        assert!(l.tokens.iter().any(|t| t.is_ident("tail")));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            2
        );
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("panic")));
    }

    #[test]
    fn escaped_char_literals_do_not_open_strings() {
        let l = lex(r"let q = '\''; let s = '\\'; tail");
        assert!(l.tokens.iter().any(|t| t.is_ident("tail")));
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            2
        );
    }

    #[test]
    fn lifetimes_in_turbofish_and_loop_labels() {
        let l = lex("f::<'a, u8>(); 'outer: loop { break 'outer; }");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            3,
            "one turbofish lifetime plus the label at both sites"
        );
        assert!(!l.tokens.iter().any(|t| t.kind == TokenKind::Char));
    }
}
