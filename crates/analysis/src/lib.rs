//! `aimts-lint` — a self-contained static analyzer for the AimTS
//! workspace. No dependencies (the vendored crates are API shims), so it
//! carries its own minimal Rust lexer and walks the tree with `std::fs`.
//!
//! Entry points: [`check_workspace`] lints every in-scope `.rs` file under
//! the workspace root with path-derived rule scopes; [`check_paths`] lints
//! explicitly named files with the full rule pack (used for fixtures).

pub mod ast;
pub mod flow;
pub mod lexer;
pub mod rules;
pub mod scan;

use rules::{Diagnostic, Scope};
use scan::SourceFile;
use std::path::{Path, PathBuf};

/// Directories never descended into during the workspace walk.
const SKIP_DIRS: &[&str] = &[
    "vendor", "target", "tests", "benches", "examples", "fixtures", ".git",
];

/// Locate the workspace root by walking up from `start` to the first
/// directory holding a `Cargo.toml` that declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn lint_one(path: &Path, display: &str, scope: Scope) -> Result<Vec<Diagnostic>, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{display}: cannot read: {e}"))?;
    let sf = SourceFile::parse(display, &src);
    Ok(rules::check_file(&sf, scope))
}

/// Lint the whole workspace rooted at `root`. Files are linted in
/// parallel (`AIMTS_THREADS` controls the worker count); diagnostics come
/// back globally sorted by (file, line, col, rule) so output is
/// byte-stable regardless of scheduling.
pub fn check_workspace(root: &Path) -> Result<(Vec<Diagnostic>, usize), String> {
    let mut files = Vec::new();
    walk(root, &mut files);
    let scoped: Vec<(PathBuf, String, Scope)> = files
        .into_iter()
        .filter_map(|path| {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            Scope::for_rel_path(&rel).map(|scope| (path.clone(), rel, scope))
        })
        .collect();
    let inspected = scoped.len();
    let workers = aimts::parallel::worker_count(0).min(inspected.max(1));
    let per_file = aimts::parallel::parallel_map(&scoped, workers, |_, (path, rel, scope)| {
        lint_one(path, rel, *scope)
    });
    let mut diags = Vec::new();
    for r in per_file {
        diags.extend(r?);
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    Ok((diags, inspected))
}

/// Lint explicitly listed files with every rule enabled.
pub fn check_paths(paths: &[PathBuf]) -> Result<Vec<Diagnostic>, String> {
    check_paths_scoped(paths, Scope::all())
}

/// Lint explicitly listed files under a caller-chosen [`Scope`]. The
/// fixture self-check uses this to prove each rule is load-bearing
/// (fires enabled, silent with only that rule disabled).
pub fn check_paths_scoped(paths: &[PathBuf], scope: Scope) -> Result<Vec<Diagnostic>, String> {
    let mut diags = Vec::new();
    for path in paths {
        let display = path.to_string_lossy().replace('\\', "/");
        diags.extend(lint_one(path, &display, scope)?);
    }
    Ok(diags)
}

/// Render diagnostics as a JSON array (hand-rolled — no serde here).
pub fn to_json(diags: &[Diagnostic]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let items: Vec<String> = diags
        .iter()
        .map(|d| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"message\":\"{}\",\"hint\":\"{}\"}}",
                esc(&d.file),
                d.line,
                d.col,
                esc(&d.rule),
                esc(&d.message),
                esc(&d.hint)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes() {
        let d = Diagnostic {
            file: "a.rs".to_string(),
            line: 3,
            col: 7,
            rule: "A001".to_string(),
            message: "`panic!` in \"library\" code".to_string(),
            hint: "h".to_string(),
        };
        let j = to_json(&[d]);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\\\"library\\\""));
        assert!(j.contains("\"line\":3"));
    }

    #[test]
    fn json_empty_is_empty_array() {
        assert_eq!(to_json(&[]), "[]");
    }
}
