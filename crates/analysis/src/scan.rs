//! Per-file source model built on the lexer: suppression pragmas,
//! `#[cfg(test)]`/`#[test]` region detection, and function extents.
//!
//! Suppression pragma grammar (one per comment):
//!
//! ```text
//! // aimts-lint: allow(A001, reason the invariant holds here)
//! ```
//!
//! A trailing pragma suppresses diagnostics on its own line; a pragma on
//! a line of its own suppresses the next code line. The reason is
//! mandatory — a reasonless pragma is itself a diagnostic (A000), and so
//! is a pragma that never matches anything.

use crate::lexer::{lex, Token, TokenKind};

/// A parsed `aimts-lint: allow(...)` pragma.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rule: String,
    pub reason: String,
    /// Line the pragma comment sits on.
    pub line: u32,
    /// Line whose diagnostics it suppresses (0 = nothing follows).
    pub target: u32,
}

/// A function item with a body.
#[derive(Debug, Clone)]
pub struct FnExtent {
    pub name: String,
    pub line: u32,
    /// Token index of the `fn` keyword (the signature starts here).
    pub sig: usize,
    /// Token-index range of the body, inclusive of both braces.
    pub body: (usize, usize),
}

/// Everything the rules need to know about one file.
pub struct SourceFile {
    /// Display path used in diagnostics.
    pub name: String,
    pub tokens: Vec<Token>,
    pub suppressions: Vec<Suppression>,
    /// Malformed pragmas: (line, problem).
    pub pragma_errors: Vec<(u32, String)>,
    /// Line ranges (inclusive) of `#[cfg(test)]` / `#[test]` items.
    test_spans: Vec<(u32, u32)>,
    pub fns: Vec<FnExtent>,
    /// Every source line covered by a comment, with whether the comment
    /// mentions a safety invariant (`SAFETY` / `# Safety`). Multi-line
    /// block comments contribute one entry per covered line.
    pub comment_lines: Vec<(u32, bool)>,
}

impl SourceFile {
    pub fn parse(name: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let mut suppressions = Vec::new();
        let mut pragma_errors = Vec::new();
        for c in &lexed.comments {
            // Pragmas live in plain comments only; doc comments merely
            // *document* the syntax and must not parse as pragmas.
            if ["///", "//!", "/**", "/*!"]
                .iter()
                .any(|p| c.text.starts_with(p))
            {
                continue;
            }
            // The tool name immediately followed by a colon is the pragma
            // trigger; bare prose mentions of `aimts-lint` are ignored.
            let Some(at) = c.text.find(concat!("aimts-lint", ":")) else {
                continue;
            };
            let target = if c.trailing {
                c.line
            } else {
                lexed.tokens.get(c.next_token_index).map_or(0, |t| t.line)
            };
            match parse_pragma(&c.text[at..]) {
                Ok((rule, reason)) => suppressions.push(Suppression {
                    rule,
                    reason,
                    line: c.line,
                    target,
                }),
                Err(msg) => pragma_errors.push((c.line, msg)),
            }
        }
        let mut comment_lines = Vec::new();
        for c in &lexed.comments {
            let has_safety = c.text.contains("SAFETY") || c.text.contains("# Safety");
            let span = c.text.matches('\n').count() as u32;
            for l in c.line..=c.line + span {
                comment_lines.push((l, has_safety));
            }
        }
        let test_spans = find_test_spans(&lexed.tokens);
        let fns = find_fns(&lexed.tokens);
        SourceFile {
            name: name.to_string(),
            tokens: lexed.tokens,
            suppressions,
            pragma_errors,
            test_spans,
            fns,
            comment_lines,
        }
    }

    /// Whether `line` falls inside test-only code.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }
}

/// Parse `aimts-lint: allow(RULE, reason)` starting at `aimts-lint`.
fn parse_pragma(text: &str) -> Result<(String, String), String> {
    let Some(open) = text.find("allow(") else {
        return Err("expected `allow(RULE, reason)` after `aimts-lint:`".to_string());
    };
    let Some(close) = text.rfind(')') else {
        return Err("unclosed `allow(` pragma".to_string());
    };
    if close <= open + 6 {
        return Err("empty `allow()` pragma".to_string());
    }
    let inner = &text[open + 6..close];
    let Some((rule, reason)) = inner.split_once(',') else {
        return Err(format!(
            "suppression of `{}` carries no reason; write `allow({}, why the invariant holds)`",
            inner.trim(),
            inner.trim()
        ));
    };
    let rule = rule.trim().to_string();
    let reason = reason.trim().to_string();
    if !crate::rules::is_known_rule(&rule) {
        return Err(format!("unknown rule `{rule}` in suppression"));
    }
    if reason.is_empty() {
        return Err(format!("suppression of `{rule}` carries an empty reason"));
    }
    Ok((rule, reason))
}

/// Is the attribute body (tokens strictly between `[` and `]`) a marker
/// for test-only code? Recognizes `#[test]`, `#[proptest]`, and
/// `#[cfg(...)]` forms that mention `test` un-negated.
fn attr_is_test(body: &[Token]) -> bool {
    let Some(first) = body.first() else {
        return false;
    };
    if first.is_ident("test") || first.is_ident("proptest") {
        return true;
    }
    if first.is_ident("cfg") {
        let mentions_test = body.iter().any(|t| t.is_ident("test"));
        let negated = body.iter().any(|t| t.is_ident("not"));
        return mentions_test && !negated;
    }
    false
}

/// Token index just past the end of the attribute whose `[` is at `open`.
fn attr_end(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct("[") {
            depth += 1;
        } else if tokens[i].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    tokens.len() - 1
}

/// Token index of the last token of the item starting at `i` (either the
/// terminating `;` or the matching close brace of its body).
fn item_end(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("(") {
            paren += 1;
        } else if t.is_punct(")") {
            paren -= 1;
        } else if t.is_punct("[") {
            bracket += 1;
        } else if t.is_punct("]") {
            bracket -= 1;
        } else if t.is_punct(";") && paren == 0 && bracket == 0 {
            return j;
        } else if t.is_punct("{") && paren == 0 && bracket == 0 {
            return match_brace(tokens, j);
        }
        j += 1;
    }
    tokens.len() - 1
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].is_punct("{") {
            depth += 1;
        } else if tokens[j].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    tokens.len() - 1
}

fn find_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut pending = false;
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && i + 1 < tokens.len() && tokens[i + 1].is_punct("[") {
            let end = attr_end(tokens, i + 1);
            if attr_is_test(&tokens[i + 2..end]) {
                pending = true;
            }
            i = end + 1;
            continue;
        }
        if pending {
            let end = item_end(tokens, i);
            spans.push((tokens[i].line, tokens[end].line));
            pending = false;
            i = end + 1;
            continue;
        }
        i += 1;
    }
    spans
}

fn find_fns(tokens: &[Token]) -> Vec<FnExtent> {
    let mut fns = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("fn") || i + 1 >= tokens.len() {
            continue;
        }
        if tokens[i + 1].kind != TokenKind::Ident {
            continue; // `fn(usize) -> T` function-pointer type
        }
        // Find the body `{` (or `;` for a bodyless trait method).
        let mut j = i + 2;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let body = loop {
            if j >= tokens.len() {
                break None;
            }
            let t = &tokens[j];
            if t.is_punct("(") {
                paren += 1;
            } else if t.is_punct(")") {
                paren -= 1;
            } else if t.is_punct("[") {
                bracket += 1;
            } else if t.is_punct("]") {
                bracket -= 1;
            } else if paren == 0 && bracket == 0 {
                if t.is_punct(";") {
                    break None;
                }
                if t.is_punct("{") {
                    break Some((j, match_brace(tokens, j)));
                }
            }
            j += 1;
        };
        if let Some(body) = body {
            fns.push(FnExtent {
                name: tokens[i + 1].text.clone(),
                line: tokens[i].line,
                sig: i,
                body,
            });
        }
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_trailing_and_own_line() {
        let src = "fn f() {\n\
                   let x = 1; // aimts-lint: allow(A005, checked above)\n\
                   // aimts-lint: allow(A001, invariant: y is finite)\n\
                   let y = 2;\n\
                   }";
        let sf = SourceFile::parse("x.rs", src);
        assert_eq!(sf.suppressions.len(), 2);
        assert_eq!(sf.suppressions[0].rule, "A005");
        assert_eq!(sf.suppressions[0].target, 2);
        assert_eq!(sf.suppressions[1].rule, "A001");
        assert_eq!(sf.suppressions[1].target, 4);
        assert!(sf.pragma_errors.is_empty());
    }

    #[test]
    fn pragma_without_reason_is_an_error() {
        let sf = SourceFile::parse("x.rs", "// aimts-lint: allow(A001)\nfn f() {}");
        assert!(sf.suppressions.is_empty());
        assert_eq!(sf.pragma_errors.len(), 1);
        assert!(sf.pragma_errors[0].1.contains("reason"));
    }

    #[test]
    fn doc_comments_are_not_pragmas() {
        let src = "/// Write `// aimts-lint: allow(A001, why)` above the line.\n\
                   //! Same for `aimts-lint: allow(RULE)` examples.\n\
                   fn f() {}";
        let sf = SourceFile::parse("x.rs", src);
        assert!(sf.suppressions.is_empty());
        assert!(sf.pragma_errors.is_empty());
    }

    #[test]
    fn prose_mention_without_colon_is_not_a_pragma() {
        let src = "// This mirrors aimts-lint rule A001 (tests are exempt).\nfn f() {}";
        let sf = SourceFile::parse("x.rs", src);
        assert!(sf.suppressions.is_empty());
        assert!(sf.pragma_errors.is_empty());
    }

    #[test]
    fn pragma_unknown_rule_is_an_error() {
        let sf = SourceFile::parse("x.rs", "// aimts-lint: allow(Z999, whatever)\n");
        assert_eq!(sf.pragma_errors.len(), 1);
        assert!(sf.pragma_errors[0].1.contains("unknown rule"));
    }

    #[test]
    fn cfg_test_mod_is_a_test_span() {
        let src = "pub fn lib_code() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn helper() { x.unwrap(); }\n\
                   }\n\
                   pub fn more_lib() {}";
        let sf = SourceFile::parse("x.rs", src);
        assert!(!sf.in_test(1));
        assert!(sf.in_test(3));
        assert!(sf.in_test(4));
        assert!(!sf.in_test(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let sf = SourceFile::parse("x.rs", "#[cfg(not(test))]\nfn shipped() {}\n");
        assert!(!sf.in_test(2));
    }

    #[test]
    fn test_attr_fn_is_a_test_span() {
        let src = "fn lib() {}\n#[test]\nfn check() {\n  boom();\n}\n";
        let sf = SourceFile::parse("x.rs", src);
        assert!(!sf.in_test(1));
        assert!(sf.in_test(4));
    }

    #[test]
    fn fn_extents_found() {
        let src = "impl T {\n  fn a(&self) -> u8 { 1 }\n}\nfn b(x: [u8; 3]) { () }\ntrait Q { fn sig(&self); }";
        let sf = SourceFile::parse("x.rs", src);
        let names: Vec<_> = sf.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
