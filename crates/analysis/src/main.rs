//! CLI for the workspace-invariant analyzer.
//!
//! ```text
//! aimts-lint check [--format human|json] [FILES...]
//! aimts-lint rules
//! ```
//!
//! `check` with no files lints the whole workspace (path-scoped rules);
//! with explicit files it applies the full rule pack to each. Exit codes:
//! 0 clean, 1 diagnostics found, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: aimts-lint check [--format human|json] [FILES...]");
    eprintln!("       aimts-lint rules");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            for r in aimts_lint::rules::CATALOG {
                println!("{}  {}", r.id, r.summary);
                println!("      fix: {}", r.hint);
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let mut format = "human".to_string();
            let mut files: Vec<PathBuf> = Vec::new();
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--format" => {
                        let Some(f) = args.get(i + 1) else {
                            return usage();
                        };
                        if f != "human" && f != "json" {
                            return usage();
                        }
                        format = f.clone();
                        i += 2;
                    }
                    other => {
                        files.push(PathBuf::from(other));
                        i += 1;
                    }
                }
            }
            let result = if files.is_empty() {
                let cwd = match std::env::current_dir() {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("aimts-lint: cannot determine cwd: {e}");
                        return ExitCode::from(2);
                    }
                };
                let Some(root) = aimts_lint::find_workspace_root(&cwd) else {
                    eprintln!("aimts-lint: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                };
                aimts_lint::check_workspace(&root).map(|(d, n)| (d, Some(n)))
            } else {
                aimts_lint::check_paths(&files).map(|d| (d, None))
            };
            let (diags, inspected) = match result {
                Ok(x) => x,
                Err(e) => {
                    eprintln!("aimts-lint: {e}");
                    return ExitCode::from(2);
                }
            };
            if format == "json" {
                println!("{}", aimts_lint::to_json(&diags));
            } else {
                for d in &diags {
                    println!("{d}");
                }
                match inspected {
                    Some(n) => eprintln!(
                        "aimts-lint: {} diagnostic(s) across {n} file(s)",
                        diags.len()
                    ),
                    None => eprintln!("aimts-lint: {} diagnostic(s)", diags.len()),
                }
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
