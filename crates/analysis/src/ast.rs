//! A lightweight structural layer over the token stream: `impl` extents,
//! `unsafe` sites, a statement/block tree, and `match`-arm splitting.
//!
//! This is deliberately not a full parser — the vendored dependencies are
//! API shims, so `syn` is unavailable — but it recovers exactly the
//! structure the dataflow rules (A006–A012) need: which braces open
//! blocks, where statements begin and end, and which tokens belong to
//! which `match` arm. Everything is expressed as index ranges into the
//! flat token stream so rules can mix structural and token-pattern
//! matching freely.

use crate::lexer::{Token, TokenKind};

/// Index of the `}` matching the `{` at `open` (or the last token when
/// the file is truncated mid-block).
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].is_punct("{") {
            depth += 1;
        } else if tokens[j].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

// ---------------------------------------------------------------------
// impl extents
// ---------------------------------------------------------------------

/// One `impl` item: the implementing type's final path segment and the
/// token range of the body (inclusive of both braces).
#[derive(Debug, Clone)]
pub struct ImplExtent {
    /// Last identifier of the implemented type (`HotReadGuard` for
    /// `impl Deref for HotReadGuard<'_>`).
    pub type_name: String,
    pub body: (usize, usize),
}

impl ImplExtent {
    pub fn contains(&self, index: usize) -> bool {
        self.body.0 <= index && index <= self.body.1
    }
}

/// Skip a generic parameter list starting at the `<` at `i`; returns the
/// index just past the matching `>`. `<<`/`>>` count double.
pub(crate) fn skip_generics(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct("<<") {
            depth += 2;
        } else if t.is_punct(">") {
            depth -= 1;
        } else if t.is_punct(">>") {
            depth -= 2;
        }
        j += 1;
        if depth <= 0 {
            break;
        }
    }
    j
}

/// Every `impl` item in the file with a resolvable body.
pub fn impls(tokens: &[Token]) -> Vec<ImplExtent> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < tokens.len() && tokens[j].is_punct("<") {
            j = skip_generics(tokens, j);
        }
        // Scan the type position: the segment after `for` wins (trait
        // impls), otherwise the first segment. Idents after a `<` are
        // generic arguments, not the type's own name.
        let mut name = String::new();
        let mut in_args = 0i32;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct("{") || t.is_ident("where") {
                break;
            }
            if t.is_punct("<") {
                in_args += 1;
            } else if t.is_punct(">") {
                in_args -= 1;
            } else if t.is_ident("for") && in_args == 0 {
                name.clear();
            } else if t.kind == TokenKind::Ident && in_args == 0 {
                name = t.text.clone();
            }
            j += 1;
        }
        if j < tokens.len() && tokens[j].is_punct("{") {
            let close = match_brace(tokens, j);
            out.push(ImplExtent {
                type_name: name,
                body: (j, close),
            });
            // Nested impls don't occur; continue past the header only so
            // fns inside the body are still visible to other passes.
        }
        i = j + 1;
    }
    out
}

// ---------------------------------------------------------------------
// unsafe sites
// ---------------------------------------------------------------------

/// What an `unsafe` keyword introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    Block,
    Fn,
    Impl,
}

/// One `unsafe` keyword with its token index.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub kind: UnsafeKind,
    pub index: usize,
}

/// Every `unsafe` keyword in the file, classified by what follows it.
pub fn unsafe_sites(tokens: &[Token]) -> Vec<UnsafeSite> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("unsafe") {
            continue;
        }
        let kind = match tokens.get(i + 1) {
            Some(t) if t.is_punct("{") => UnsafeKind::Block,
            Some(t) if t.is_ident("fn") || t.is_ident("extern") => UnsafeKind::Fn,
            Some(t) if t.is_ident("impl") || t.is_ident("trait") => UnsafeKind::Impl,
            _ => UnsafeKind::Block,
        };
        out.push(UnsafeSite { kind, index: i });
    }
    out
}

// ---------------------------------------------------------------------
// Statement / block tree
// ---------------------------------------------------------------------

/// A braced block: token indices of both braces plus its statements.
#[derive(Debug)]
pub struct Block {
    pub open: usize,
    pub close: usize,
    pub stmts: Vec<Stmt>,
}

/// One statement: its inclusive token range and the depth-0 child blocks
/// inside it (an `if`'s arms, a `match`'s body, a `let`-initializer
/// block, a struct literal's braces, …) in source order.
#[derive(Debug)]
pub struct Stmt {
    pub first: usize,
    pub last: usize,
    pub blocks: Vec<Block>,
}

/// Parse the block whose `{` sits at `open` into a statement tree.
///
/// Statements end at a depth-0 `;`, or after a depth-0 child block that
/// is not continued by `else` / an operator / a `;` (i.e. control-flow
/// statements end at their closing brace). Parentheses and brackets
/// shield their contents, so closure bodies and array literals stay flat
/// inside their statement.
pub fn parse_block(tokens: &[Token], open: usize) -> Block {
    let close = match_brace(tokens, open);
    let mut stmts = Vec::new();
    let mut i = open + 1;
    while i < close {
        let first = i;
        let mut blocks = Vec::new();
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut j = i;
        let mut end = None;
        while j < close {
            let t = &tokens[j];
            if t.is_punct("(") {
                paren += 1;
            } else if t.is_punct(")") {
                paren -= 1;
            } else if t.is_punct("[") {
                bracket += 1;
            } else if t.is_punct("]") {
                bracket -= 1;
            } else if paren <= 0 && bracket <= 0 {
                if t.is_punct(";") {
                    end = Some(j);
                    break;
                }
                if t.is_punct("{") {
                    let b = parse_block(tokens, j);
                    j = b.close;
                    blocks.push(b);
                    let continues = tokens.get(j + 1).is_some_and(|n| {
                        n.is_ident("else")
                            || n.is_punct(".")
                            || n.is_punct("?")
                            || n.is_punct(";")
                            || n.is_punct(",")
                    });
                    if !continues {
                        end = Some(j);
                        break;
                    }
                }
            }
            j += 1;
        }
        let last = end.unwrap_or_else(|| close.saturating_sub(1).max(first));
        stmts.push(Stmt {
            first,
            last,
            blocks,
        });
        i = last + 1;
    }
    Block { open, close, stmts }
}

// ---------------------------------------------------------------------
// match arms
// ---------------------------------------------------------------------

/// One `match` arm: pattern-and-guard tokens, body tokens, and whether
/// the body is a braced block.
#[derive(Debug)]
pub struct Arm {
    /// Inclusive range of the pattern (including any `if` guard).
    pub pat: (usize, usize),
    /// Inclusive range of the body (braces included for block bodies).
    pub body: (usize, usize),
    pub block_body: bool,
}

/// Split the body of a `match` (braces at `open`/`close`) into arms.
pub fn match_arms(tokens: &[Token], open: usize, close: usize) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut i = open + 1;
    while i < close {
        let pat_start = i;
        // Find the `=>` at depth 0; struct patterns are skipped whole.
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut j = i;
        let mut arrow = None;
        while j < close {
            let t = &tokens[j];
            if t.is_punct("(") {
                paren += 1;
            } else if t.is_punct(")") {
                paren -= 1;
            } else if t.is_punct("[") {
                bracket += 1;
            } else if t.is_punct("]") {
                bracket -= 1;
            } else if paren <= 0 && bracket <= 0 {
                if t.is_punct("{") {
                    j = match_brace(tokens, j);
                } else if t.is_punct("=>") {
                    arrow = Some(j);
                    break;
                }
            }
            j += 1;
        }
        let Some(arrow) = arrow else {
            break;
        };
        let body_start = arrow + 1;
        if tokens.get(body_start).is_some_and(|t| t.is_punct("{")) {
            let body_close = match_brace(tokens, body_start);
            arms.push(Arm {
                pat: (pat_start, arrow.saturating_sub(1)),
                body: (body_start, body_close),
                block_body: true,
            });
            i = body_close + 1;
            if i < close && tokens[i].is_punct(",") {
                i += 1;
            }
        } else {
            // Expression body: runs to the next depth-0 `,` (or the end
            // of the match body). Embedded blocks are skipped whole.
            let mut paren = 0i32;
            let mut bracket = 0i32;
            let mut j = body_start;
            let mut body_end = close.saturating_sub(1);
            let mut comma = false;
            while j < close {
                let t = &tokens[j];
                if t.is_punct("(") {
                    paren += 1;
                } else if t.is_punct(")") {
                    paren -= 1;
                } else if t.is_punct("[") {
                    bracket += 1;
                } else if t.is_punct("]") {
                    bracket -= 1;
                } else if paren <= 0 && bracket <= 0 {
                    if t.is_punct("{") {
                        j = match_brace(tokens, j);
                    } else if t.is_punct(",") {
                        body_end = j.saturating_sub(1);
                        comma = true;
                        break;
                    }
                }
                j += 1;
            }
            arms.push(Arm {
                pat: (pat_start, arrow.saturating_sub(1)),
                body: (body_start, body_end),
                block_body: false,
            });
            i = body_end + if comma { 2 } else { 1 };
        }
    }
    arms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).tokens
    }

    fn texts(tokens: &[Token], range: (usize, usize)) -> String {
        tokens[range.0..=range.1]
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ")
    }

    #[test]
    fn impl_names_trait_and_inherent() {
        let t = toks("impl Foo { fn a() {} } impl ops::Deref for BarGuard<'_> { }");
        let im = impls(&t);
        assert_eq!(im.len(), 2);
        assert_eq!(im[0].type_name, "Foo");
        assert_eq!(im[1].type_name, "BarGuard");
    }

    #[test]
    fn impl_with_generics() {
        let t = toks("impl<T: Clone> Wrapper<T> { fn g() {} }");
        let im = impls(&t);
        assert_eq!(im.len(), 1);
        assert_eq!(im[0].type_name, "Wrapper");
    }

    #[test]
    fn unsafe_site_kinds() {
        let t = toks("unsafe impl Send for X {} unsafe fn f() {} fn g() { unsafe { h(); } }");
        let sites = unsafe_sites(&t);
        let kinds: Vec<UnsafeKind> = sites.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![UnsafeKind::Impl, UnsafeKind::Fn, UnsafeKind::Block]
        );
    }

    #[test]
    fn stmts_split_on_semicolons_and_blocks() {
        let t = toks("{ let a = 1; if c { x(); } else { y(); } let b = Foo { q: 2 }; }");
        let b = parse_block(&t, 0);
        assert_eq!(b.stmts.len(), 3);
        // The if/else statement owns two child blocks.
        assert_eq!(b.stmts[1].blocks.len(), 2);
        // The struct literal's braces are a child block of the let.
        assert_eq!(b.stmts[2].blocks.len(), 1);
        assert!(texts(&t, (b.stmts[2].first, b.stmts[2].last)).ends_with(';'));
    }

    #[test]
    fn closure_bodies_stay_flat() {
        let t = toks("{ v.iter().map(|x| { x + 1 }).sum::<u32>(); }");
        let b = parse_block(&t, 0);
        assert_eq!(b.stmts.len(), 1);
        // The braces sit inside parens, so they are not a child block.
        assert!(b.stmts[0].blocks.is_empty());
    }

    #[test]
    fn block_terminated_statement_ends_without_semicolon() {
        let t = toks("{ loop { step(); } cleanup(); }");
        let b = parse_block(&t, 0);
        assert_eq!(b.stmts.len(), 2);
        assert_eq!(b.stmts[0].blocks.len(), 1);
    }

    #[test]
    fn match_arms_split_expr_and_block_bodies() {
        let t = toks("match v { Some((_, m)) => m.push(r), None => { g.push(r); } }");
        let body_open = 2; // `{` after `match v`
        assert!(t[body_open].is_punct("{"));
        let arms = match_arms(&t, body_open, match_brace(&t, body_open));
        assert_eq!(arms.len(), 2);
        assert!(!arms[0].block_body);
        assert!(arms[1].block_body);
        assert!(texts(&t, arms[0].pat).starts_with("Some"));
        assert_eq!(texts(&t, arms[0].body), "m . push ( r )");
    }

    #[test]
    fn match_arm_guard_stays_in_pattern() {
        let t = toks("match v { Ok(_) if x > 0 => a(), Err(e) => b(e), }");
        let arms = match_arms(&t, 2, match_brace(&t, 2));
        assert_eq!(arms.len(), 2);
        assert!(texts(&t, arms[0].pat).contains("if x > 0"));
    }

    #[test]
    fn nested_match_inside_arm_block() {
        let t = toks("match a { X => { match b { Y => c(), _ => d(), } } _ => e(), }");
        let arms = match_arms(&t, 2, match_brace(&t, 2));
        assert_eq!(arms.len(), 2);
    }
}
