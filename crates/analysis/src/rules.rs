//! The rule pack: workspace invariants encoded as token-pattern rules.
//!
//! | id   | invariant                                                        |
//! |------|------------------------------------------------------------------|
//! | A000 | (meta) malformed or unused suppression pragmas                   |
//! | A001 | no `panic!`/`unwrap()`/`expect()`/`todo!` in library code of the |
//! |      | `tensor`/`nn`/`core`/`data` crates                               |
//! | A002 | multi-guard lock acquisitions must be id-ordered                 |
//! | A003 | no wall-clock / entropy sources outside `bench`/`cli`            |
//! | A004 | no `==`/`!=` between float expressions outside tests             |
//! | A005 | no `let _ =` discards (silently dropped `Result`s)               |
//! | A006 | every `unsafe` block/fn/impl carries a `// SAFETY:` comment      |
//! | A007 | no raw Hot-storage (`UnsafeCell` buffer) access outside guards   |
//! | A008 | no guard held across channel `send`/`recv` or `catch_unwind`     |
//! | A009 | `catch_unwind` capturing `&mut` must re-assert state after       |
//! | A010 | request handles answered exactly once on every path              |
//! | A011 | typed error values must not be constructed and dropped           |
//! | A012 | no gradient-capable storage APIs on frozen inference paths       |
//!
//! A001–A005 are token-pattern rules; A006/A007/A011 use the structural
//! layer in [`crate::ast`]; A008/A010 are intraprocedural dataflow in
//! [`crate::flow`].
//!
//! Every rule can be suppressed per line with
//! `// aimts-lint: allow(RULE, reason)`; see [`crate::scan`].

use crate::lexer::{Token, TokenKind};
use crate::scan::SourceFile;

/// One catalog entry, used by `aimts-lint rules` and the docs.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
    pub hint: &'static str,
}

pub const CATALOG: &[RuleInfo] = &[
    RuleInfo {
        id: "A000",
        summary: "suppression pragmas must parse, carry a reason, and match a diagnostic",
        hint: "write `// aimts-lint: allow(RULE, reason)` on (or right above) the offending line",
    },
    RuleInfo {
        id: "A001",
        summary: "no panic!/unwrap()/expect()/todo! in non-test library code of tensor/nn/core/data",
        hint: "propagate a typed error (CheckpointError/TrainError) or allow with the invariant that makes the panic unreachable",
    },
    RuleInfo {
        id: "A002",
        summary: "functions holding two or more tensor-internal lock guards must acquire them in id order",
        hint: "acquire via aimts_tensor::read_pair (id-ordered), drop() the earlier guard first, or allow with a reason",
    },
    RuleInfo {
        id: "A003",
        summary: "no Instant::now/SystemTime::now/entropy-seeded RNGs outside bench/cli",
        hint: "thread a seed or step counter through instead; bit-exact resume depends on it",
    },
    RuleInfo {
        id: "A004",
        summary: "no ==/!= between float expressions outside tests",
        hint: "compare with an epsilon, use total_cmp, or allow when exact-zero is the intended sentinel",
    },
    RuleInfo {
        id: "A005",
        summary: "no `let _ =` discards in non-test code",
        hint: "handle the value, call .ok() to discard a Result explicitly, or allow with a reason",
    },
    RuleInfo {
        id: "A006",
        summary: "every unsafe block/fn/impl must carry a `// SAFETY:` comment naming the invariant",
        hint: "write `// SAFETY: <why this cannot alias or trigger UB>` directly above the unsafe keyword (attributes may sit between)",
    },
    RuleInfo {
        id: "A007",
        summary: "no raw Hot-storage buffer access (`.buf.get()`) outside HotCell or its guard impls",
        hint: "go through HotCell::read()/write() so the debug aliasing tally observes the access",
    },
    RuleInfo {
        id: "A008",
        summary: "no lock/DataGuard guard held across a channel send/recv or catch_unwind boundary",
        hint: "drop or scope the guard before the blocking call, or allow with the reason the wait cannot deadlock",
    },
    RuleInfo {
        id: "A009",
        summary: "catch_unwind closures capturing `&mut` must re-assert state after the unwind",
        hint: "assert/debug_assert the mutated invariant (or abort/resume_unwind) after catch_unwind returns",
    },
    RuleInfo {
        id: "A010",
        summary: "every admitted request handle must be answered exactly once on all paths",
        hint: "send exactly one reply (`req.reply.send(..)`) or move the request onward; early returns must answer first",
    },
    RuleInfo {
        id: "A011",
        summary: "typed error values must not be constructed and silently dropped",
        hint: "return or propagate the constructed error; a bare `SomeError::X;` statement does nothing",
    },
    RuleInfo {
        id: "A012",
        summary: "no gradient-capable storage APIs (Storage::Shared, .backward()) on frozen inference paths",
        hint: "inference clones are frozen Hot storage; keep training-only APIs out of serve and infer",
    },
];

pub fn is_known_rule(id: &str) -> bool {
    CATALOG.iter().any(|r| r.id == id)
}

pub(crate) fn hint_for(id: &str) -> &'static str {
    CATALOG.iter().find(|r| r.id == id).map_or("", |r| r.hint)
}

/// Which rules apply to a file (derived from its workspace-relative path).
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    pub a001: bool,
    pub a002: bool,
    pub a003: bool,
    pub a004: bool,
    pub a005: bool,
    pub a006: bool,
    pub a007: bool,
    pub a008: bool,
    pub a009: bool,
    pub a010: bool,
    pub a011: bool,
    pub a012: bool,
}

impl Scope {
    /// Every rule on — used for explicitly listed files and fixtures.
    pub fn all() -> Scope {
        Scope {
            a001: true,
            a002: true,
            a003: true,
            a004: true,
            a005: true,
            a006: true,
            a007: true,
            a008: true,
            a009: true,
            a010: true,
            a011: true,
            a012: true,
        }
    }

    /// This scope with one rule switched off. The fixture self-check
    /// uses it to prove every rule is load-bearing: each fixture must
    /// fire with the rule on and go silent with only that rule off.
    pub fn without(mut self, rule: &str) -> Scope {
        match rule {
            "A001" => self.a001 = false,
            "A002" => self.a002 = false,
            "A003" => self.a003 = false,
            "A004" => self.a004 = false,
            "A005" => self.a005 = false,
            "A006" => self.a006 = false,
            "A007" => self.a007 = false,
            "A008" => self.a008 = false,
            "A009" => self.a009 = false,
            "A010" => self.a010 = false,
            "A011" => self.a011 = false,
            "A012" => self.a012 = false,
            _ => {}
        }
        self
    }

    /// Scope for a workspace-relative path, or `None` when the file is
    /// outside the linted set (vendored shims, build output, test dirs —
    /// integration tests are test code by definition).
    pub fn for_rel_path(rel: &str) -> Option<Scope> {
        let parts: Vec<&str> = rel.split(['/', '\\']).collect();
        if parts.iter().any(|p| {
            matches!(
                *p,
                "vendor" | "target" | "tests" | "benches" | "examples" | "fixtures" | ".git"
            )
        }) {
            return None;
        }
        if !rel.ends_with(".rs") {
            return None;
        }
        let krate = match parts.first() {
            Some(&"crates") if parts.len() > 1 => parts[1],
            Some(&"src") => "aimts-repro",
            _ => return None,
        };
        Some(Scope {
            a001: matches!(krate, "tensor" | "nn" | "core" | "data"),
            a002: true,
            a003: !matches!(krate, "bench" | "cli"),
            a004: true,
            a005: true,
            a006: true,
            a007: krate == "tensor",
            a008: true,
            a009: true,
            a010: krate == "serve",
            a011: true,
            a012: krate == "serve" || (krate == "core" && rel.ends_with("infer.rs")),
        })
    }
}

/// One finding, pointing at a file:line:col with a fix hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub rule: String,
    pub message: String,
    pub hint: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {} (hint: {})",
            self.file, self.line, self.col, self.rule, self.message, self.hint
        )
    }
}

fn diag(sf: &SourceFile, tok: &Token, rule: &str, message: String) -> Diagnostic {
    Diagnostic {
        file: sf.name.clone(),
        line: tok.line,
        col: tok.col,
        rule: rule.to_string(),
        message,
        hint: hint_for(rule).to_string(),
    }
}

/// Run every in-scope rule on a file, apply suppressions, and report
/// pragma hygiene (A000). Diagnostics come back sorted by position.
pub fn check_file(sf: &SourceFile, scope: Scope) -> Vec<Diagnostic> {
    let mut raw = Vec::new();
    if scope.a001 {
        a001_panic_free(sf, &mut raw);
    }
    if scope.a002 {
        a002_lock_order(sf, &mut raw);
    }
    if scope.a003 {
        a003_determinism(sf, &mut raw);
    }
    if scope.a004 {
        a004_float_eq(sf, &mut raw);
    }
    if scope.a005 {
        a005_discard(sf, &mut raw);
    }
    if scope.a006 {
        a006_safety_comments(sf, &mut raw);
    }
    if scope.a007 {
        a007_hot_access(sf, &mut raw);
    }
    if scope.a008 {
        crate::flow::check_guard_boundaries(sf, &mut raw);
    }
    if scope.a009 {
        a009_unwind_mut(sf, &mut raw);
    }
    if scope.a010 {
        crate::flow::check_responder_protocol(sf, &mut raw);
    }
    if scope.a011 {
        a011_dropped_error(sf, &mut raw);
    }
    if scope.a012 {
        a012_storage_misuse(sf, &mut raw);
    }

    let mut used = vec![false; sf.suppressions.len()];
    raw.retain(|d| {
        let hit = sf
            .suppressions
            .iter()
            .position(|s| s.target == d.line && s.rule == d.rule);
        match hit {
            Some(k) => {
                used[k] = true;
                false
            }
            None => true,
        }
    });

    for (line, msg) in &sf.pragma_errors {
        raw.push(Diagnostic {
            file: sf.name.clone(),
            line: *line,
            col: 1,
            rule: "A000".to_string(),
            message: msg.clone(),
            hint: hint_for("A000").to_string(),
        });
    }
    for (k, s) in sf.suppressions.iter().enumerate() {
        if !used[k] {
            raw.push(Diagnostic {
                file: sf.name.clone(),
                line: s.line,
                col: 1,
                rule: "A000".to_string(),
                message: format!(
                    "suppression of `{}` never matched a diagnostic; remove it",
                    s.rule
                ),
                hint: hint_for("A000").to_string(),
            });
        }
    }

    raw.sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    raw
}

// ---------------------------------------------------------------------
// A001 — panic-freedom in library code
// ---------------------------------------------------------------------

fn a001_panic_free(sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    let t = &sf.tokens;
    for i in 0..t.len() {
        if sf.in_test(t[i].line) {
            continue;
        }
        if t[i].kind == TokenKind::Ident
            && matches!(t[i].text.as_str(), "panic" | "todo" | "unimplemented")
            && i + 1 < t.len()
            && t[i + 1].is_punct("!")
        {
            out.push(diag(
                sf,
                &t[i],
                "A001",
                format!("`{}!` in library code", t[i].text),
            ));
        }
        if t[i].is_punct(".")
            && i + 2 < t.len()
            && t[i + 1].kind == TokenKind::Ident
            && matches!(t[i + 1].text.as_str(), "unwrap" | "expect")
            && t[i + 2].is_punct("(")
        {
            out.push(diag(
                sf,
                &t[i + 1],
                "A001",
                format!("`.{}()` in library code", t[i + 1].text),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// A002 — lock-order discipline
// ---------------------------------------------------------------------

/// Guard-acquiring methods with no arguments (`x.data()`, `l.read()`, …).
const ACQ_METHODS: &[&str] = &["data", "read", "write", "lock"];
/// Guard-acquiring helper functions (`read_lock(&x)`, …).
const ACQ_HELPERS: &[&str] = &["read_lock", "write_lock", "mutex_lock"];
/// Idioms that prove the function orders its acquisitions.
const ORDER_EVIDENCE: &[&str] = &[
    "read_pair",
    "write_pair",
    "acquire_ordered",
    "sort_by_key",
    "sort_unstable_by_key",
];

pub(crate) struct Acquisition {
    pub(crate) receiver: String,
    /// Index (within the statement slice) of the closing `)` of the call.
    pub(crate) end: usize,
    line: u32,
    col: u32,
}

/// Render the receiver chain ending just before the `.` at `dot`
/// (e.g. `node.op_parents()[0]` for `node.op_parents()[0].data()`).
fn receiver_before(stmt: &[Token], dot: usize) -> String {
    let mut k = dot as isize - 1;
    let start;
    loop {
        if k < 0 {
            start = 0;
            break;
        }
        let t = &stmt[k as usize];
        if t.is_punct(")") || t.is_punct("]") {
            // Walk back to the matching opener.
            let close = if t.is_punct(")") { ")" } else { "]" };
            let open = if t.is_punct(")") { "(" } else { "[" };
            let mut depth = 0usize;
            while k >= 0 {
                if stmt[k as usize].is_punct(close) {
                    depth += 1;
                } else if stmt[k as usize].is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k -= 1;
            }
            k -= 1;
            continue;
        }
        if t.kind == TokenKind::Ident || t.kind == TokenKind::Num {
            // Keep walking when joined by `.` or `::`.
            if k >= 1 && (stmt[k as usize - 1].is_punct(".") || stmt[k as usize - 1].is_punct("::"))
            {
                k -= 2;
                continue;
            }
            start = k as usize;
            break;
        }
        start = k as usize + 1;
        break;
    }
    stmt[start..dot]
        .iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join("")
}

/// All guard acquisitions inside one statement.
fn acquisitions(stmt: &[Token]) -> Vec<Acquisition> {
    acquisitions_with(stmt, ACQ_METHODS, ACQ_HELPERS)
}

/// Guard acquisitions matching a caller-supplied method/helper list
/// (A002 and A008 track different primitive sets).
pub(crate) fn acquisitions_with(
    stmt: &[Token],
    methods: &[&str],
    helpers: &[&str],
) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for j in 0..stmt.len() {
        if stmt[j].is_punct(".")
            && j + 3 < stmt.len()
            && stmt[j + 1].kind == TokenKind::Ident
            && methods.contains(&stmt[j + 1].text.as_str())
            && stmt[j + 2].is_punct("(")
            && stmt[j + 3].is_punct(")")
        {
            out.push(Acquisition {
                receiver: receiver_before(stmt, j),
                end: j + 3,
                line: stmt[j + 1].line,
                col: stmt[j + 1].col,
            });
        }
        if stmt[j].kind == TokenKind::Ident
            && helpers.contains(&stmt[j].text.as_str())
            && j + 1 < stmt.len()
            && stmt[j + 1].is_punct("(")
            // A helper is a free function; `.lock(` / `Mutex::lock(`
            // would otherwise double-match when a name is in both lists.
            && !(j > 0 && (stmt[j - 1].is_punct(".") || stmt[j - 1].is_punct("::")))
        {
            // Receiver is the argument list, leading `&` stripped.
            let mut depth = 0usize;
            let mut end = j + 1;
            for (k, t) in stmt.iter().enumerate().skip(j + 1) {
                if t.is_punct("(") {
                    depth += 1;
                } else if t.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                }
            }
            let receiver: String = stmt[j + 2..end]
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join("")
                .trim_start_matches('&')
                .to_string();
            out.push(Acquisition {
                receiver,
                end,
                line: stmt[j].line,
                col: stmt[j].col,
            });
        }
    }
    out
}

struct LiveGuard {
    binding: String,
    receiver: String,
    depth: i32,
}

fn a002_lock_order(sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    for f in &sf.fns {
        if sf.in_test(f.line) {
            continue;
        }
        let body = &sf.tokens[f.body.0..=f.body.1];
        // The ordered-acquisition primitives themselves, and functions
        // that demonstrably order their guards, are exempt.
        if matches!(
            f.name.as_str(),
            "read_pair" | "write_pair" | "acquire_ordered"
        ) || body
            .iter()
            .any(|t| t.kind == TokenKind::Ident && ORDER_EVIDENCE.contains(&t.text.as_str()))
        {
            continue;
        }

        let mut live: Vec<LiveGuard> = Vec::new();
        let mut depth = 0i32;
        let mut stmt_start = 0usize;
        let mut reported = false;
        for j in 0..body.len() {
            let t = &body[j];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                live.retain(|g| g.depth <= depth);
            }
            if !t.is_punct(";") && j + 1 != body.len() {
                continue;
            }
            let mut stmt = &body[stmt_start..=j];
            stmt_start = j + 1;
            // A statement slice can start at a block brace; trim so the
            // `let`-binding check below sees the statement's first token.
            while stmt
                .first()
                .is_some_and(|t| t.is_punct("{") || t.is_punct("}"))
            {
                stmt = &stmt[1..];
            }
            let acqs = acquisitions(stmt);
            if acqs.is_empty() {
                // `drop(name)` releases a tracked guard early.
                for k in 0..stmt.len().saturating_sub(3) {
                    if stmt[k].is_ident("drop")
                        && stmt[k + 1].is_punct("(")
                        && stmt[k + 2].kind == TokenKind::Ident
                        && stmt[k + 3].is_punct(")")
                    {
                        live.retain(|g| g.binding != stmt[k + 2].text);
                    }
                }
                continue;
            }
            // Distinct receivers that could be held at once in this
            // statement: everything still live plus this statement's own.
            let mut held: Vec<&str> = live.iter().map(|g| g.receiver.as_str()).collect();
            for a in &acqs {
                if !held.contains(&a.receiver.as_str()) {
                    held.push(&a.receiver);
                }
            }
            if held.len() >= 2 && !reported {
                let first = &acqs[0];
                out.push(Diagnostic {
                    file: sf.name.clone(),
                    line: first.line,
                    col: first.col,
                    rule: "A002".to_string(),
                    message: format!(
                        "`{}` holds lock guards on `{}` and `{}` with no id order",
                        f.name, held[0], held[1]
                    ),
                    hint: hint_for("A002").to_string(),
                });
                reported = true; // one report per function is enough
            }
            // A bare `let g = recv.data();` keeps its guard live.
            if stmt.first().is_some_and(|t| t.is_ident("let")) && acqs.len() == 1 {
                let a = &acqs[0];
                // The acquisition must be the whole initializer: its `)`
                // is the last token before the `;`.
                let last_code = stmt.len().saturating_sub(2);
                if a.end == last_code {
                    let mut name_idx = 1;
                    if stmt.get(1).is_some_and(|t| t.is_ident("mut")) {
                        name_idx = 2;
                    }
                    if let Some(name) = stmt.get(name_idx) {
                        if name.kind == TokenKind::Ident {
                            live.push(LiveGuard {
                                binding: name.text.clone(),
                                receiver: a.receiver.clone(),
                                depth,
                            });
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// A003 — determinism (no wall clocks, no entropy)
// ---------------------------------------------------------------------

fn a003_determinism(sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    let t = &sf.tokens;
    for i in 0..t.len() {
        if sf.in_test(t[i].line) {
            continue;
        }
        if t[i].kind == TokenKind::Ident
            && matches!(t[i].text.as_str(), "Instant" | "SystemTime")
            && i + 2 < t.len()
            && t[i + 1].is_punct("::")
            && t[i + 2].is_ident("now")
        {
            out.push(diag(
                sf,
                &t[i],
                "A003",
                format!("wall-clock read `{}::now` in deterministic code", t[i].text),
            ));
        }
        if t[i].kind == TokenKind::Ident
            && matches!(t[i].text.as_str(), "from_entropy" | "thread_rng")
        {
            out.push(diag(
                sf,
                &t[i],
                "A003",
                format!("entropy-seeded RNG `{}` in deterministic code", t[i].text),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// A004 — float equality
// ---------------------------------------------------------------------

/// Is the operand beginning (for RHS) or ending (for LHS) at the tokens
/// around index `i` evidently a float? Checks literals (with optional
/// leading `-`) and `f32::`/`f64::` associated constants.
fn float_rhs(t: &[Token], i: usize) -> bool {
    let Some(first) = t.get(i) else { return false };
    if first.is_float_literal() {
        return true;
    }
    if first.is_punct("-") && t.get(i + 1).is_some_and(|x| x.is_float_literal()) {
        return true;
    }
    (first.is_ident("f32") || first.is_ident("f64"))
        && t.get(i + 1).is_some_and(|x| x.is_punct("::"))
}

fn float_lhs(t: &[Token], i: usize) -> bool {
    let Some(last) = (i > 0).then(|| &t[i - 1]) else {
        return false;
    };
    if last.is_float_literal() {
        return true;
    }
    // `f32::NAN == x` — constant path ends with the const name.
    i >= 3
        && last.kind == TokenKind::Ident
        && t[i - 2].is_punct("::")
        && (t[i - 3].is_ident("f32") || t[i - 3].is_ident("f64"))
}

fn a004_float_eq(sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    let t = &sf.tokens;
    for i in 0..t.len() {
        if !(t[i].is_punct("==") || t[i].is_punct("!=")) || sf.in_test(t[i].line) {
            continue;
        }
        if float_lhs(t, i) || float_rhs(t, i + 1) {
            out.push(diag(
                sf,
                &t[i],
                "A004",
                format!("float `{}` comparison", t[i].text),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// A005 — silent discards
// ---------------------------------------------------------------------

fn a005_discard(sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    let t = &sf.tokens;
    for i in 0..t.len() {
        if !t[i].is_ident("let") || sf.in_test(t[i].line) {
            continue;
        }
        if i + 3 < t.len()
            && t[i + 1].is_ident("_")
            && t[i + 2].is_punct("=")
            && !t[i + 3].is_punct("&")
        // `let _ = &x;` is a borrow, not a discard
        {
            out.push(diag(
                sf,
                &t[i],
                "A005",
                "`let _ =` silently discards a value".to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// A006 — SAFETY comments on unsafe code
// ---------------------------------------------------------------------

fn a006_safety_comments(sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    let t = &sf.tokens;
    let sites = crate::ast::unsafe_sites(t);
    if sites.is_empty() {
        return;
    }
    // Lines whose first token is `#` — attribute lines bridge the upward
    // walk from an `unsafe fn` to the comment above its attributes.
    let mut attr_lines = Vec::new();
    let mut prev_line = 0u32;
    for tok in t.iter() {
        if tok.line != prev_line {
            if tok.is_punct("#") {
                attr_lines.push(tok.line);
            }
            prev_line = tok.line;
        }
    }
    let comment_on = |line: u32| sf.comment_lines.iter().find(|(l, _)| *l == line).copied();
    for site in sites {
        let tok = &t[site.index];
        if sf.in_test(tok.line) {
            continue;
        }
        let mut justified = comment_on(tok.line).is_some_and(|(_, s)| s);
        let mut cur = tok.line.saturating_sub(1);
        while !justified && cur > 0 {
            match comment_on(cur) {
                Some((_, true)) => justified = true,
                Some((_, false)) => cur -= 1,
                None if attr_lines.contains(&cur) => cur -= 1,
                None => break,
            }
        }
        if !justified {
            let what = match site.kind {
                crate::ast::UnsafeKind::Block => "unsafe block",
                crate::ast::UnsafeKind::Fn => "unsafe fn",
                crate::ast::UnsafeKind::Impl => "unsafe impl",
            };
            out.push(diag(
                sf,
                tok,
                "A006",
                format!("{what} without a `// SAFETY:` comment"),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// A007 — Hot-storage buffer access stays inside guard scopes
// ---------------------------------------------------------------------

fn a007_hot_access(sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    let t = &sf.tokens;
    let impls = crate::ast::impls(t);
    for i in 0..t.len() {
        if !(t[i].is_punct(".")
            && i + 3 < t.len()
            && t[i + 1].is_ident("get")
            && t[i + 2].is_punct("(")
            && t[i + 3].is_punct(")"))
            || sf.in_test(t[i].line)
        {
            continue;
        }
        let recv = receiver_before(t, i);
        if !(recv == "buf" || recv.ends_with(".buf")) {
            continue;
        }
        // The cell's own impl and its guards are where the aliasing
        // tally lives; everyone else must go through them.
        let sanctioned = impls.iter().any(|im| {
            im.contains(i) && (im.type_name == "HotCell" || im.type_name.contains("Guard"))
        });
        if !sanctioned {
            out.push(diag(
                sf,
                &t[i + 1],
                "A007",
                format!("raw Hot-storage access `{recv}.get()` outside an aliasing-guard scope"),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// A009 — post-unwind state re-assertion
// ---------------------------------------------------------------------

fn a009_unwind_mut(sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    let t = &sf.tokens;
    for f in &sf.fns {
        if sf.in_test(f.line) {
            continue;
        }
        let (b0, b1) = f.body;
        let mut i = b0;
        while i <= b1 {
            if !(t[i].is_ident("catch_unwind") && t.get(i + 1).is_some_and(|x| x.is_punct("("))) {
                i += 1;
                continue;
            }
            let mut depth = 0i32;
            let mut close = i + 1;
            for (k, tok) in t.iter().enumerate().take(b1 + 1).skip(i + 1) {
                if tok.is_punct("(") {
                    depth += 1;
                } else if tok.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
            }
            let captures_mut = (i..close)
                .any(|k| t[k].is_punct("&") && t.get(k + 1).is_some_and(|x| x.is_ident("mut")));
            if captures_mut {
                // After the unwind is observed, the mutated state must be
                // re-asserted (or the process must not continue).
                let reasserts = (close..=b1).any(|k| {
                    t[k].kind == TokenKind::Ident
                        && (t[k].text.contains("assert")
                            || t[k].text.contains("poison")
                            || t[k].text == "abort"
                            || t[k].text == "resume_unwind")
                });
                if !reasserts {
                    out.push(diag(
                        sf,
                        &t[i],
                        "A009",
                        format!(
                            "`catch_unwind` in `{}` captures `&mut` state with no post-unwind re-assertion",
                            f.name
                        ),
                    ));
                }
            }
            i = close + 1;
        }
    }
}

// ---------------------------------------------------------------------
// A011 — typed error values constructed and dropped
// ---------------------------------------------------------------------

fn a011_dropped_error(sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    for f in &sf.fns {
        if sf.in_test(f.line) {
            continue;
        }
        let block = crate::ast::parse_block(&sf.tokens, f.body.0);
        a011_visit(sf, &block, out);
    }
}

fn a011_visit(sf: &SourceFile, block: &crate::ast::Block, out: &mut Vec<Diagnostic>) {
    let t = &sf.tokens;
    for s in &block.stmts {
        for b in &s.blocks {
            a011_visit(sf, b, out);
        }
        let first = &t[s.first];
        if first.kind != TokenKind::Ident || !t[s.last].is_punct(";") {
            continue;
        }
        let is_ctor = (first.text == "Err" && t.get(s.first + 1).is_some_and(|x| x.is_punct("(")))
            || (first.text.ends_with("Error")
                && t.get(s.first + 1).is_some_and(|x| x.is_punct("::")));
        if !is_ctor {
            continue;
        }
        // Used values flow somewhere: assignment, `?`, or a return.
        let used = (s.first..=s.last)
            .any(|k| t[k].is_punct("=") || t[k].is_punct("?") || t[k].is_ident("return"));
        if !used {
            out.push(diag(
                sf,
                first,
                "A011",
                format!("error value `{}…` constructed and dropped", first.text),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// A012 — frozen inference paths stay gradient-free
// ---------------------------------------------------------------------

fn a012_storage_misuse(sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    let t = &sf.tokens;
    for i in 0..t.len() {
        if sf.in_test(t[i].line) {
            continue;
        }
        if t[i].is_ident("Storage")
            && i + 2 < t.len()
            && t[i + 1].is_punct("::")
            && t[i + 2].is_ident("Shared")
        {
            out.push(diag(
                sf,
                &t[i],
                "A012",
                "gradient-capable `Storage::Shared` on a frozen-inference path".to_string(),
            ));
        }
        if t[i].is_punct(".")
            && i + 2 < t.len()
            && t[i + 1].is_ident("backward")
            && t[i + 2].is_punct("(")
        {
            out.push(diag(
                sf,
                &t[i + 1],
                "A012",
                "`.backward()` on a frozen-inference path".to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Diagnostic> {
        let sf = SourceFile::parse("t.rs", src);
        check_file(&sf, Scope::all())
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn a001_flags_panics_and_unwraps() {
        let d = check("fn f(x: Option<u8>) -> u8 { x.unwrap(); x.expect(\"y\"); panic!(\"z\") }");
        assert_eq!(rules_of(&d), vec!["A001", "A001", "A001"]);
    }

    #[test]
    fn a001_skips_tests_and_lookalikes() {
        assert!(check("#[test]\nfn t() { x.unwrap(); }").is_empty());
        assert!(check("fn f(l: &L) { l.read().unwrap_or_else(e); }").is_empty());
    }

    #[test]
    fn a002_flags_unordered_pairs() {
        let d = check("fn f(a: &T, b: &T) { let ga = a.data(); let gb = b.data(); }");
        assert_eq!(rules_of(&d), vec!["A002"]);
        // Two in one expression count too.
        let d = check("fn f(a: &T, b: &T) { mm(&a.data(), &b.data()); }");
        assert_eq!(rules_of(&d), vec!["A002"]);
    }

    #[test]
    fn a002_accepts_ordered_or_sequential() {
        // Evidence of ordering.
        assert!(check("fn f(a: &T, b: &T) { let (x, y) = read_pair(a, b); }").is_empty());
        // Sequential temporaries never overlap.
        assert!(check("fn f(a: &T, b: &T) { g(&a.data()); g(&b.data()); }").is_empty());
        // drop() releases the first guard.
        assert!(
            check("fn f(a: &T, b: &T) { let ga = a.data(); drop(ga); let gb = b.data(); }")
                .is_empty()
        );
        // A guard scoped to an inner block dies at the close brace.
        assert!(
            check("fn f(a: &T, b: &T) { { let ga = a.data(); } let gb = b.data(); }").is_empty()
        );
        // Same receiver twice is re-entrancy, not an ordering problem.
        assert!(check("fn f(a: &T) { let g1 = a.data(); let g2 = a.data(); }").is_empty());
    }

    #[test]
    fn a003_flags_clocks_and_entropy() {
        let d = check("fn f() { let t = Instant::now(); let r = StdRng::from_entropy(); }");
        assert_eq!(rules_of(&d), vec!["A003", "A003"]);
    }

    #[test]
    fn a004_flags_float_eq() {
        let d = check("fn f(x: f32) -> bool { x == 0.5 || 1.0 != x || x == f32::NAN }");
        assert_eq!(rules_of(&d), vec!["A004", "A004", "A004"]);
        assert!(check("fn f(x: u8) -> bool { x == 3 }").is_empty());
    }

    #[test]
    fn a005_flags_discards() {
        let d = check("fn f() { let _ = fallible(); }");
        assert_eq!(rules_of(&d), vec!["A005"]);
        assert!(check("fn f(x: &str) { let _ = &x; }").is_empty());
    }

    #[test]
    fn suppression_silences_and_tracks_use() {
        let d = check("fn f() { let _ = g(); // aimts-lint: allow(A005, best-effort cleanup)\n}");
        assert!(d.is_empty(), "{d:?}");
        // Unused pragma is itself a diagnostic.
        let d = check("fn f() { // aimts-lint: allow(A005, nothing here)\nlet x = 1; }");
        assert_eq!(rules_of(&d), vec!["A000"]);
    }

    #[test]
    fn scope_gates_rules() {
        let sf = SourceFile::parse("t.rs", "fn f(x: Option<u8>) { x.unwrap(); }");
        let s = Scope {
            a001: false,
            ..Scope::all()
        };
        assert!(check_file(&sf, s).is_empty());
    }

    #[test]
    fn a006_unsafe_requires_safety_comment() {
        let d = check("fn f(p: *const u8) -> u8 { unsafe { *p } }");
        assert_eq!(rules_of(&d), vec!["A006"]);
        let ok = "fn f(p: *const u8) -> u8 {\n// SAFETY: p is valid for reads by contract\nunsafe { *p } }";
        assert!(check(ok).is_empty());
        // Attribute lines bridge the upward walk for unsafe fns.
        let attr = "// SAFETY: caller verified the avx2 feature\n#[target_feature(enable = \"avx2\")]\nunsafe fn k() {}";
        assert!(check(attr).is_empty());
        // A blank line between comment and unsafe breaks the association.
        let stale = "// SAFETY: stale, detached\n\nfn f() { unsafe { g() } }";
        assert_eq!(rules_of(&check(stale)), vec!["A006"]);
    }

    #[test]
    fn a007_buf_get_outside_guard_impls() {
        let bad = "impl Sneaky { fn peek(&self) -> f32 {\n// SAFETY: bypasses the tally\nunsafe { (*self.cell.buf.get())[0] } } }";
        assert_eq!(rules_of(&check(bad)), vec!["A007"]);
        let cell = "impl HotCell { fn peek(&self) -> f32 {\n// SAFETY: tally checked by caller\nunsafe { (*self.buf.get())[0] } } }";
        assert!(check(cell).is_empty());
        let guard = "impl Deref for HotReadGuard<'_> { fn deref(&self) -> &V {\n// SAFETY: read tally held\nunsafe { &*self.cell.buf.get() } } }";
        assert!(check(guard).is_empty());
    }

    #[test]
    fn a009_unwind_mut_needs_reassertion() {
        let bad = "fn f(state: &mut Vec<u32>) { let r = catch_unwind(AssertUnwindSafe(|| mutate(&mut *state))); r.ok(); }";
        assert_eq!(rules_of(&check(bad)), vec!["A009"]);
        let good = "fn f(state: &mut Vec<u32>) { let r = catch_unwind(AssertUnwindSafe(|| mutate(&mut *state))); r.ok(); debug_assert!(state.len() < 4); }";
        assert!(check(good).is_empty());
        assert!(check("fn f() { catch_unwind(|| boom()).ok(); }").is_empty());
    }

    #[test]
    fn a011_flags_dropped_error_ctors() {
        let d = check("fn f(flag: bool) { if flag { ServeError::Closed; } g(); }");
        assert_eq!(rules_of(&d), vec!["A011"]);
        assert!(check("fn f() -> Result<(), E> { Err(TrainError::Bad)?; Ok(()) }").is_empty());
        assert!(check("fn f() { let e = ServeError::Closed; log(e); }").is_empty());
    }

    #[test]
    fn a012_flags_grad_apis() {
        let d = check("fn f(x: &T, v: V) { let s = Storage::Shared(v); x.backward(); }");
        assert_eq!(rules_of(&d), vec!["A012", "A012"]);
        assert!(check("fn f(x: &T) { let s = Storage::Hot(x.clone_frozen()); }").is_empty());
    }

    #[test]
    fn scope_paths() {
        assert!(Scope::for_rel_path("crates/tensor/src/tensor.rs").is_some_and(|s| s.a001));
        assert!(Scope::for_rel_path("crates/eval/src/stats.rs").is_some_and(|s| !s.a001 && s.a004));
        assert!(Scope::for_rel_path("crates/bench/src/harness.rs").is_some_and(|s| !s.a003));
        assert!(Scope::for_rel_path("crates/tensor/tests/lock_order.rs").is_none());
        assert!(Scope::for_rel_path("vendor/rand/src/lib.rs").is_none());
        assert!(Scope::for_rel_path("src/lib.rs").is_some());
        assert!(Scope::for_rel_path("crates/serve/src/batcher.rs")
            .is_some_and(|s| s.a010 && s.a012 && !s.a007));
        assert!(Scope::for_rel_path("crates/tensor/src/hotcell.rs")
            .is_some_and(|s| s.a006 && s.a007 && !s.a010));
        assert!(Scope::for_rel_path("crates/core/src/infer.rs").is_some_and(|s| s.a012));
        assert!(Scope::for_rel_path("crates/core/src/train.rs").is_some_and(|s| !s.a012));
    }
}
