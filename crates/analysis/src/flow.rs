//! Intraprocedural dataflow on top of the [`crate::ast`] statement tree.
//!
//! Two analyses live here:
//!
//! * **A008** — guard liveness across blocking boundaries: a lock /
//!   `DataGuard` held across a channel `send`/`recv` or a `catch_unwind`
//!   is a deadlock or poison-escape hazard. This is a linear walk with
//!   block-scoped guard tracking (the same model as A002's checker).
//!
//! * **A010** — the serve responder protocol: every admitted request
//!   handle must flow to exactly one respond-like sink (`.reply.send(…)`
//!   / `.respond(…)`) or be moved onward exactly once, on every path.
//!   This is a branch-sensitive abstract interpretation over the
//!   statement tree with a three-state lattice (owned / consumed /
//!   maybe-consumed); `if`/`match` arms are analyzed independently and
//!   merged, diverging arms (return/continue/break/panic) are excluded
//!   from the merge, and loop back-edges reject consumption that could
//!   repeat.
//!
//! Both analyses are heuristic: they track names and shapes, not types.
//! The handle set is "function parameters whose type mentions `Request`
//! (not behind `&` or a collection)" plus bindings named `req`,
//! `request`, `req_*`, or `*_req` — a convention the serve crate follows
//! so the analysis covers its real request paths.

use crate::ast;
use crate::lexer::{Token, TokenKind};
use crate::rules::{acquisitions_with, hint_for, Diagnostic};
use crate::scan::{FnExtent, SourceFile};

fn diag(sf: &SourceFile, line: u32, col: u32, rule: &str, message: String) -> Diagnostic {
    Diagnostic {
        file: sf.name.clone(),
        line,
        col,
        rule: rule.to_string(),
        message,
        hint: hint_for(rule).to_string(),
    }
}

// ---------------------------------------------------------------------
// A008 — guards across channel / unwind boundaries
// ---------------------------------------------------------------------

/// Channel methods that block or hand control to another thread.
const CHANNEL_OPS: &[&str] = &["send", "recv", "try_recv", "recv_timeout", "recv_deadline"];
/// Guard-acquiring methods with no arguments.
const GUARD_METHODS: &[&str] = &["lock", "read", "write", "data", "grad"];
/// Guard-acquiring helper functions.
const GUARD_HELPERS: &[&str] = &["lock", "read_lock", "write_lock", "mutex_lock"];

struct A008Guard {
    binding: String,
    receiver: String,
    depth: i32,
}

pub(crate) fn check_guard_boundaries(sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    for f in &sf.fns {
        if sf.in_test(f.line) {
            continue;
        }
        let body = &sf.tokens[f.body.0..=f.body.1];
        let mut live: Vec<A008Guard> = Vec::new();
        let mut depth = 0i32;
        let mut stmt_start = 0usize;
        for j in 0..body.len() {
            let t = &body[j];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                live.retain(|g| g.depth <= depth);
            }

            // A blocking boundary? Check the guards live *at this token*:
            // ones bound by earlier statements, or acquired earlier in
            // this same statement.
            let boundary = if t.kind == TokenKind::Ident
                && CHANNEL_OPS.contains(&t.text.as_str())
                && j > 0
                && body[j - 1].is_punct(".")
                && body.get(j + 1).is_some_and(|n| n.is_punct("("))
            {
                Some(format!("`.{}()`", t.text))
            } else if t.is_ident("catch_unwind") {
                Some("`catch_unwind`".to_string())
            } else {
                None
            };
            if let Some(op) = boundary {
                let holder = live.last().map(|g| g.receiver.clone()).or_else(|| {
                    acquisitions_with(&body[stmt_start..j], GUARD_METHODS, GUARD_HELPERS)
                        .last()
                        .map(|a| a.receiver.clone())
                });
                if let Some(receiver) = holder {
                    out.push(diag(
                        sf,
                        t.line,
                        t.col,
                        "A008",
                        format!("`{}` holds a guard on `{}` across {}", f.name, receiver, op),
                    ));
                }
            }

            // Braces begin a fresh statement too: `loop { let g = …`
            // must see `let` as its statement head.
            if t.is_punct("{") || t.is_punct("}") {
                stmt_start = j + 1;
                continue;
            }
            if !t.is_punct(";") && j + 1 != body.len() {
                continue;
            }
            let stmt = &body[stmt_start..=j];
            stmt_start = j + 1;
            // `drop(name)` releases a tracked guard early.
            for k in 0..stmt.len().saturating_sub(3) {
                if stmt[k].is_ident("drop")
                    && stmt[k + 1].is_punct("(")
                    && stmt[k + 2].kind == TokenKind::Ident
                    && stmt[k + 3].is_punct(")")
                {
                    live.retain(|g| g.binding != stmt[k + 2].text);
                }
            }
            // `let g = x.lock();` keeps its guard live until scope end.
            let acqs = acquisitions_with(stmt, GUARD_METHODS, GUARD_HELPERS);
            if stmt.first().is_some_and(|t| t.is_ident("let")) && acqs.len() == 1 {
                let a = &acqs[0];
                if a.end == stmt.len().saturating_sub(2) {
                    let mut name_idx = 1;
                    if stmt.get(1).is_some_and(|t| t.is_ident("mut")) {
                        name_idx = 2;
                    }
                    if let Some(name) = stmt.get(name_idx) {
                        if name.kind == TokenKind::Ident {
                            live.push(A008Guard {
                                binding: name.text.clone(),
                                receiver: a.receiver.clone(),
                                depth,
                            });
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// A010 — responder protocol (answered exactly once)
// ---------------------------------------------------------------------

/// Abstract ownership state of a request handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    /// Still owned; an answer is owed.
    Owned,
    /// Responded or moved onward exactly once.
    Consumed,
    /// Consumed on some paths but not others.
    Maybe,
}

#[derive(Debug, Clone)]
struct Handle {
    name: String,
    state: St,
    line: u32,
    col: u32,
}

/// Does `name` follow the request-handle naming convention?
fn is_handle_name(name: &str) -> bool {
    name == "req"
        || name == "request"
        || (name.len() > 4 && (name.starts_with("req_") || name.ends_with("_req")))
}

/// Keywords that open a control-flow statement.
fn ctrl_keyword(t: &Token) -> bool {
    matches!(t.text.as_str(), "if" | "match" | "for" | "while" | "loop")
        && t.kind == TokenKind::Ident
}

pub(crate) fn check_responder_protocol(sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    for f in &sf.fns {
        if sf.in_test(f.line) {
            continue;
        }
        let mut env = param_handles(sf, f);
        let has_body_handles = sf.tokens[f.body.0..=f.body.1]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && is_handle_name(&t.text));
        if env.is_empty() && !has_body_handles {
            continue;
        }
        let block = ast::parse_block(&sf.tokens, f.body.0);
        let mut cx = Cx {
            sf,
            fname: &f.name,
            out,
        };
        let diverged = cx.walk_block(&block, &mut env);
        if !diverged {
            for h in &env {
                if h.state != St::Consumed {
                    cx.leak(h);
                }
            }
        }
    }
}

/// Handles among a function's parameters: owned (not `&`, not a
/// collection) values whose type mentions `Request`.
fn param_handles(sf: &SourceFile, f: &FnExtent) -> Vec<Handle> {
    let t = &sf.tokens;
    let mut j = f.sig + 2;
    if t.get(j).is_some_and(|x| x.is_punct("<")) {
        j = ast::skip_generics(t, j);
    }
    if !t.get(j).is_some_and(|x| x.is_punct("(")) {
        return Vec::new();
    }
    let open = j;
    let mut depth = 0i32;
    let mut close = open;
    for (k, tok) in t.iter().enumerate().skip(open) {
        if tok.is_punct("(") {
            depth += 1;
        } else if tok.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                close = k;
                break;
            }
        }
    }
    let mut handles = Vec::new();
    let mut seg_start = open + 1;
    let mut k = open + 1;
    while k <= close {
        let at_end = k == close;
        let split = at_end
            || (t[k].is_punct(",") && {
                // Depth-0 within the param list only.
                let mut d = 0i32;
                for tok in &t[open + 1..k] {
                    if tok.is_punct("(") || tok.is_punct("[") || tok.is_punct("<") {
                        d += 1;
                    } else if tok.is_punct(")") || tok.is_punct("]") || tok.is_punct(">") {
                        d -= 1;
                    }
                }
                d == 0
            });
        if split {
            let seg = &t[seg_start..k];
            if let Some(h) = param_handle(seg) {
                handles.push(h);
            }
            seg_start = k + 1;
        }
        if at_end {
            break;
        }
        k += 1;
    }
    handles
}

fn param_handle(seg: &[Token]) -> Option<Handle> {
    let colon = seg.iter().position(|t| t.is_punct(":"))?;
    let (pat, ty) = seg.split_at(colon);
    let owns_request = ty.iter().any(|t| t.is_ident("Request"))
        && !ty.iter().any(|t| {
            t.is_punct("&") || t.is_ident("Vec") || t.is_ident("VecDeque") || t.is_punct("[")
        });
    if !owns_request {
        return None;
    }
    let names: Vec<&Token> = pat
        .iter()
        .filter(|t| t.kind == TokenKind::Ident && !t.is_ident("mut") && !t.is_ident("self"))
        .collect();
    match names.as_slice() {
        [name] => Some(Handle {
            name: name.text.clone(),
            state: St::Owned,
            line: name.line,
            col: name.col,
        }),
        _ => None,
    }
}

struct Cx<'a> {
    sf: &'a SourceFile,
    fname: &'a str,
    out: &'a mut Vec<Diagnostic>,
}

impl Cx<'_> {
    fn leak(&mut self, h: &Handle) {
        self.out.push(diag(
            self.sf,
            h.line,
            h.col,
            "A010",
            format!(
                "request handle `{}` is not answered on every path through `{}`",
                h.name, self.fname
            ),
        ));
    }

    fn consume(&mut self, env: &mut [Handle], idx: usize, at: &Token) {
        match env[idx].state {
            St::Owned => env[idx].state = St::Consumed,
            St::Consumed | St::Maybe => {
                self.out.push(diag(
                    self.sf,
                    at.line,
                    at.col,
                    "A010",
                    format!(
                        "request handle `{}` may be answered more than once in `{}`",
                        env[idx].name, self.fname
                    ),
                ));
                env[idx].state = St::Consumed;
            }
        }
    }

    /// Walk a block's statements; returns whether the block diverges.
    /// Handles introduced inside the block are checked at its end.
    fn walk_block(&mut self, block: &ast::Block, env: &mut Vec<Handle>) -> bool {
        let base = env.len();
        let mut diverged = false;
        for stmt in &block.stmts {
            if diverged {
                break;
            }
            diverged = self.walk_stmt(stmt, env);
        }
        let introduced: Vec<Handle> = env.drain(base..).collect();
        if !diverged {
            for h in &introduced {
                if h.state != St::Consumed {
                    self.leak(h);
                }
            }
        }
        diverged
    }

    /// Scan a flat token range for handle uses: respond chains and bare
    /// moves consume; everything else reads.
    fn scan_uses(&mut self, lo: usize, hi: usize, env: &mut [Handle]) {
        let t = &self.sf.tokens;
        let mut i = lo;
        while i <= hi && i < t.len() {
            let tok = &t[i];
            if tok.kind != TokenKind::Ident {
                i += 1;
                continue;
            }
            let Some(idx) = env.iter().rposition(|h| h.name == tok.text) else {
                i += 1;
                continue;
            };
            let prev = (i > 0).then(|| &t[i - 1]);
            let next = t.get(i + 1);
            // Member access / path segment named like a handle.
            if prev.is_some_and(|p| p.is_punct(".") || p.is_punct("::")) {
                i += 1;
                continue;
            }
            // A fresh `let` binding shadows; reset to owned.
            let is_let_binding = prev.is_some_and(|p| p.is_ident("let"))
                || (prev.is_some_and(|p| p.is_ident("mut")) && i >= 2 && t[i - 2].is_ident("let"));
            if is_let_binding {
                env[idx].state = St::Owned;
                env[idx].line = tok.line;
                env[idx].col = tok.col;
                i += 1;
                continue;
            }
            // Borrows are reads.
            if prev.is_some_and(|p| p.is_punct("&") || p.is_ident("mut") || p.is_punct("*")) {
                i += 1;
                continue;
            }
            // Reassignment re-arms the handle.
            if next.is_some_and(|n| n.is_punct("=")) {
                env[idx].state = St::Owned;
                i += 1;
                continue;
            }
            if next.is_some_and(|n| n.is_punct(".")) {
                // `h.reply…send(…)` / `h.respond(…)` answer the request.
                let responds = (t.get(i + 2).is_some_and(|x| x.is_ident("reply"))
                    && t.get(i + 3).is_some_and(|x| x.is_punct("."))
                    && t.get(i + 4).is_some_and(|x| x.is_ident("send"))
                    && t.get(i + 5).is_some_and(|x| x.is_punct("(")))
                    || (t.get(i + 2).is_some_and(|x| x.is_ident("respond"))
                        && t.get(i + 3).is_some_and(|x| x.is_punct("(")));
                if responds {
                    self.consume(env, idx, tok);
                }
                i += 1;
                continue;
            }
            // A bare mention in argument / aggregate / return position
            // moves the handle onward — a consuming delegation.
            let move_prev = prev.is_none_or(|p| {
                p.is_punct("(")
                    || p.is_punct(",")
                    || p.is_punct("[")
                    || p.is_punct("{")
                    || p.is_punct("=")
                    || p.is_punct("=>")
                    || p.is_punct(";")
                    || p.is_ident("return")
                    || p.is_ident("in")
            });
            let move_next = next.is_none_or(|n| {
                n.is_punct(")")
                    || n.is_punct(",")
                    || n.is_punct("]")
                    || n.is_punct("}")
                    || n.is_punct(";")
                    || n.is_punct("?")
            });
            if move_prev && move_next {
                self.consume(env, idx, tok);
            }
            i += 1;
        }
    }

    /// Handle-named pattern bindings in a token range (match/`for`/`let`
    /// patterns). Path segments (`Pop::Got`) are skipped.
    fn pattern_handles(&self, lo: usize, hi: usize) -> Vec<Handle> {
        let t = &self.sf.tokens;
        let mut out = Vec::new();
        for i in lo..=hi.min(t.len().saturating_sub(1)) {
            let tok = &t[i];
            if tok.kind != TokenKind::Ident || !is_handle_name(&tok.text) {
                continue;
            }
            if (i > 0 && t[i - 1].is_punct("::")) || t.get(i + 1).is_some_and(|n| n.is_punct("::"))
            {
                continue;
            }
            out.push(Handle {
                name: tok.text.clone(),
                state: St::Owned,
                line: tok.line,
                col: tok.col,
            });
        }
        out
    }

    /// Walk one statement; returns whether it diverges.
    fn walk_stmt(&mut self, stmt: &ast::Stmt, env: &mut Vec<Handle>) -> bool {
        let t = &self.sf.tokens;
        let first = &t[stmt.first];

        if first.is_ident("return") {
            if stmt.last > stmt.first {
                self.scan_uses(stmt.first + 1, stmt.last, env);
            }
            for h in env.iter_mut() {
                if h.state != St::Consumed {
                    self.out.push(diag(
                        self.sf,
                        h.line,
                        h.col,
                        "A010",
                        format!(
                            "`{}` returns while request handle `{}` is unanswered",
                            self.fname, h.name
                        ),
                    ));
                    h.state = St::Consumed; // one report per handle
                }
            }
            return true;
        }
        if first.is_ident("continue") || first.is_ident("break") {
            return true;
        }
        if (first.is_ident("panic") || first.is_ident("unreachable") || first.is_ident("todo"))
            && t.get(stmt.first + 1).is_some_and(|n| n.is_punct("!"))
        {
            return true;
        }

        // Locate the first top-level control keyword before any child
        // block (if/match/for/while/loop); method names don't count.
        let ctrl = if stmt.blocks.is_empty() {
            None
        } else {
            let first_open = stmt.blocks[0].open;
            (stmt.first..first_open).find(|&k| {
                ctrl_keyword(&t[k])
                    && !(k > 0 && (t[k - 1].is_punct(".") || t[k - 1].is_punct("::")))
            })
        };

        let Some(k) = ctrl else {
            return self.walk_plain(stmt, env);
        };
        match t[k].text.as_str() {
            "if" => self.walk_if(stmt, k, env),
            "match" => self.walk_match(stmt, k, env),
            "for" => self.walk_for(stmt, k, env),
            "while" => self.walk_while(stmt, k, env),
            _ => self.walk_loop(stmt, env),
        }
    }

    /// Non-control statement: sequential scan. A `let … else { … }`
    /// walks its diverging else-block and then introduces its bindings.
    fn walk_plain(&mut self, stmt: &ast::Stmt, env: &mut Vec<Handle>) -> bool {
        let t = &self.sf.tokens;
        let let_else = t[stmt.first].is_ident("let")
            && stmt.blocks.len() == 1
            && stmt.blocks[0].open > stmt.first + 1
            && t[stmt.blocks[0].open - 1].is_ident("else");
        if let_else {
            let block = &stmt.blocks[0];
            // Scrutinee side: everything between `=` and `else`.
            if let Some(eq) = (stmt.first..block.open).find(|&k| t[k].is_punct("=")) {
                self.scan_uses(eq + 1, block.open.saturating_sub(2), env);
                // The else-block diverges (the compiler enforces it);
                // nothing it does affects the fall-through state.
                self.walk_block(block, env);
                for h in self.pattern_handles(stmt.first + 1, eq.saturating_sub(1)) {
                    env.push(h);
                }
            }
            return false;
        }
        // Bare block statement: sequential inner statements.
        if t[stmt.first].is_punct("{") && stmt.blocks.len() == 1 {
            return self.walk_block(&stmt.blocks[0], env);
        }
        self.scan_uses(stmt.first, stmt.last, env);
        false
    }

    /// Restore the outer prefix of `env` to `snapshot`'s states.
    fn restore(env: &mut [Handle], snapshot: &[St]) {
        for (h, s) in env.iter_mut().zip(snapshot) {
            h.state = *s;
        }
    }

    /// Merge arm outcomes into `env`; returns true when every arm
    /// diverges (so the whole statement does).
    fn merge(env: &mut [Handle], snapshot: &[St], results: &[(Vec<St>, bool)]) -> bool {
        let live: Vec<&Vec<St>> = results.iter().filter(|r| !r.1).map(|r| &r.0).collect();
        if live.is_empty() {
            return true;
        }
        for (idx, h) in env.iter_mut().enumerate().take(snapshot.len()) {
            let first = live[0][idx];
            h.state = if live.iter().all(|s| s[idx] == first) {
                first
            } else {
                St::Maybe
            };
        }
        false
    }

    /// Walk an arm body (with `intro` pattern bindings), recording the
    /// resulting outer states and divergence.
    fn walk_arm_block(
        &mut self,
        block: &ast::Block,
        env: &mut Vec<Handle>,
        intro: Vec<Handle>,
    ) -> bool {
        let base = env.len();
        env.extend(intro);
        let diverged = self.walk_block(block, env);
        let introduced: Vec<Handle> = env.drain(base..).collect();
        if !diverged {
            for h in &introduced {
                if h.state != St::Consumed {
                    self.leak(h);
                }
            }
        }
        diverged
    }

    fn walk_if(&mut self, stmt: &ast::Stmt, k: usize, env: &mut Vec<Handle>) -> bool {
        let t = &self.sf.tokens;
        let arms = &stmt.blocks;
        // Condition(s): tokens before the first block, and between arms
        // (`else if cond`). Evaluated before the arms they guard — a
        // sequential scan approximates that.
        self.scan_uses(k + 1, arms[0].open.saturating_sub(1), env);
        for w in arms.windows(2) {
            if w[1].open > w[0].close + 1 {
                self.scan_uses(w[0].close + 1, w[1].open - 1, env);
            }
        }
        // `if let PAT = …` binds pattern handles in the then-arm.
        let intro_then = (k + 1 < arms[0].open && t[k + 1].is_ident("let"))
            .then(|| {
                (k + 2..arms[0].open)
                    .find(|&e| t[e].is_punct("="))
                    .map(|eq| self.pattern_handles(k + 2, eq.saturating_sub(1)))
            })
            .flatten()
            .unwrap_or_default();

        let exhaustive = arms.len() >= 2 && t[arms[arms.len() - 1].open - 1].is_ident("else");
        let snapshot: Vec<St> = env.iter().map(|h| h.state).collect();
        let mut results = Vec::new();
        for (ai, arm) in arms.iter().enumerate() {
            Self::restore(env, &snapshot);
            let intro = if ai == 0 {
                intro_then.clone()
            } else {
                Vec::new()
            };
            let d = self.walk_arm_block(arm, env, intro);
            results.push((env.iter().map(|h| h.state).collect::<Vec<St>>(), d));
        }
        if !exhaustive {
            results.push((snapshot.clone(), false));
        }
        Self::restore(env, &snapshot);
        Self::merge(env, &snapshot, &results) && exhaustive
    }

    fn walk_match(&mut self, stmt: &ast::Stmt, k: usize, env: &mut Vec<Handle>) -> bool {
        // The match body is the first child block after the keyword.
        let Some(body) = stmt.blocks.iter().find(|b| b.open > k) else {
            return false;
        };
        self.scan_uses(k + 1, body.open.saturating_sub(1), env);
        let arms = ast::match_arms(&self.sf.tokens, body.open, body.close);
        let snapshot: Vec<St> = env.iter().map(|h| h.state).collect();
        let mut results = Vec::new();
        for arm in &arms {
            Self::restore(env, &snapshot);
            // A guard (`PAT if cond`) reads outer bindings; only the
            // tokens before the `if` are the arm's own bindings.
            let guard_at = (arm.pat.0..=arm.pat.1).find(|&g| self.sf.tokens[g].is_ident("if"));
            if let Some(g) = guard_at {
                self.scan_uses(g + 1, arm.pat.1, env);
            }
            let pat_end = guard_at.map_or(arm.pat.1, |g| g.saturating_sub(1));
            let intro = self.pattern_handles(arm.pat.0, pat_end);
            let d = if arm.block_body {
                let block = ast::parse_block(&self.sf.tokens, arm.body.0);
                self.walk_arm_block(&block, env, intro)
            } else {
                let base = env.len();
                env.extend(intro);
                self.scan_uses(arm.body.0, arm.body.1, env);
                let d = self.expr_diverges(arm.body.0, arm.body.1);
                let introduced: Vec<Handle> = env.drain(base..).collect();
                if !d {
                    for h in &introduced {
                        if h.state != St::Consumed {
                            self.leak(h);
                        }
                    }
                }
                d
            };
            results.push((env.iter().map(|h| h.state).collect::<Vec<St>>(), d));
        }
        if arms.is_empty() {
            return false;
        }
        Self::restore(env, &snapshot);
        Self::merge(env, &snapshot, &results)
    }

    /// Does a flat expression range contain an obvious diverging form?
    fn expr_diverges(&self, lo: usize, hi: usize) -> bool {
        let t = &self.sf.tokens;
        (lo..=hi.min(t.len().saturating_sub(1))).any(|k| {
            (t[k].is_ident("return") || t[k].is_ident("continue") || t[k].is_ident("break"))
                || ((t[k].is_ident("panic") || t[k].is_ident("unreachable"))
                    && t.get(k + 1).is_some_and(|n| n.is_punct("!")))
        })
    }

    fn walk_for(&mut self, stmt: &ast::Stmt, k: usize, env: &mut Vec<Handle>) -> bool {
        let t = &self.sf.tokens;
        let Some(body) = stmt.blocks.iter().find(|b| b.open > k) else {
            return false;
        };
        let Some(in_kw) = (k + 1..body.open).find(|&j| t[j].is_ident("in")) else {
            return self.walk_plain(stmt, env);
        };
        // Iterator expression reads; pattern bindings are fresh per
        // iteration and must be consumed by the body's end.
        self.scan_uses(in_kw + 1, body.open.saturating_sub(1), env);
        let intro = self.pattern_handles(k + 1, in_kw.saturating_sub(1));
        self.walk_loop_body(body, env, intro);
        false
    }

    fn walk_while(&mut self, stmt: &ast::Stmt, k: usize, env: &mut Vec<Handle>) -> bool {
        let t = &self.sf.tokens;
        let Some(body) = stmt.blocks.iter().find(|b| b.open > k) else {
            return false;
        };
        self.scan_uses(k + 1, body.open.saturating_sub(1), env);
        // `while let PAT = …` bindings are fresh per iteration.
        let intro = (t.get(k + 1).is_some_and(|x| x.is_ident("let")))
            .then(|| {
                (k + 2..body.open)
                    .find(|&e| t[e].is_punct("="))
                    .map(|eq| self.pattern_handles(k + 2, eq.saturating_sub(1)))
            })
            .flatten()
            .unwrap_or_default();
        self.walk_loop_body(body, env, intro);
        false
    }

    fn walk_loop(&mut self, stmt: &ast::Stmt, env: &mut Vec<Handle>) -> bool {
        let Some(body) = stmt.blocks.first() else {
            return false;
        };
        let body_diverges = self.walk_loop_body(body, env, Vec::new());
        let t = &self.sf.tokens;
        let has_break = (body.open..=body.close).any(|k| t[k].is_ident("break"));
        // `loop` without a break never falls through.
        !has_break || body_diverges
    }

    /// Shared loop-body logic: per-iteration bindings plus the back-edge
    /// check — an *outer* handle consumed on a path that reaches the
    /// back edge would be consumed again next iteration.
    fn walk_loop_body(
        &mut self,
        body: &ast::Block,
        env: &mut Vec<Handle>,
        intro: Vec<Handle>,
    ) -> bool {
        let snapshot: Vec<St> = env.iter().map(|h| h.state).collect();
        let diverged = self.walk_arm_block(body, env, intro);
        if !diverged {
            for (idx, before) in snapshot.iter().enumerate() {
                if *before == St::Owned && env[idx].state != St::Owned {
                    let (line, col, name) = (env[idx].line, env[idx].col, env[idx].name.clone());
                    self.out.push(diag(
                        self.sf,
                        line,
                        col,
                        "A010",
                        format!(
                            "request handle `{}` may be answered on repeated loop iterations in `{}`",
                            name, self.fname
                        ),
                    ));
                    env[idx].state = St::Consumed;
                }
            }
        }
        diverged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<String> {
        let sf = SourceFile::parse("t.rs", src);
        let mut out = Vec::new();
        check_responder_protocol(&sf, &mut out);
        check_guard_boundaries(&sf, &mut out);
        out.into_iter()
            .map(|d| format!("{}: {}", d.rule, d.message))
            .collect()
    }

    #[test]
    fn a010_clean_linear_respond() {
        assert!(check("fn f(req: Box<Request>) { req.reply.send(Ok(1)).ok(); }").is_empty());
    }

    #[test]
    fn a010_leak_on_fallthrough() {
        let d = check(
            "fn f(req: Box<Request>, ready: bool) { if ready { req.reply.send(Ok(1)).ok(); } }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("not answered on every path"));
    }

    #[test]
    fn a010_double_answer() {
        let d = check(
            "fn f(req: Box<Request>) { req.reply.send(Ok(1)).ok(); req.reply.send(Ok(2)).ok(); }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("more than once"));
    }

    #[test]
    fn a010_return_without_answer() {
        let d = check(
            "fn f(req: Box<Request>, bad: bool) { if bad { return; } req.reply.send(Ok(1)).ok(); }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("returns while"));
    }

    #[test]
    fn a010_diverging_error_arm_is_fine() {
        let src = "fn f(req: Box<Request>, bad: bool) {\n\
                   if bad { req.reply.send(Err(e)).ok(); return; }\n\
                   req.reply.send(Ok(1)).ok();\n}";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn a010_match_arms_must_all_answer() {
        let clean = "fn f(req: Box<Request>, v: R) {\n\
                     match v { Ok(c) => req.reply.send(Ok(c)).ok(), Err(e) => req.reply.send(Err(e)).ok(), };\n}";
        assert!(check(clean).is_empty(), "{:?}", check(clean));
        let leaky = "fn f(req: Box<Request>, v: R) {\n\
                     match v { Ok(c) => req.reply.send(Ok(c)).ok(), Err(_) => log(), };\n}";
        let d = check(leaky);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn a010_delegation_is_consumption() {
        assert!(
            check("fn f(req: Box<Request>, q: &mut Vec<Box<Request>>) { q.push(req); }").is_empty()
        );
        assert!(check("fn f(req: Box<Request>) -> Box<Request> { helper(req) }").is_empty());
    }

    #[test]
    fn a010_for_pattern_fresh_per_iteration() {
        let src = "fn f(v: Vec<Box<Request>>) { for req in v { req.reply.send(Ok(1)).ok(); } }";
        assert!(check(src).is_empty(), "{:?}", check(src));
        let leaky = "fn f(v: Vec<Box<Request>>) { for req in v { log(&req); } }";
        assert_eq!(check(leaky).len(), 1);
    }

    #[test]
    fn a010_loop_reconsume_flagged() {
        let src =
            "fn f(req: Box<Request>, n: u32) { for i in 0..n { req.reply.send(Ok(i)).ok(); } }";
        let d = check(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("repeated loop iterations"));
    }

    #[test]
    fn a010_let_else_divergence() {
        let src = "fn f(q: &Q) { loop { let Some(first_req) = q.pop() else { return; };\n\
                   first_req.reply.send(Ok(1)).ok(); } }";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn a010_consume_then_return_in_loop_is_fine() {
        let src = "fn f(req: Box<Request>, q: &Q) -> Result<(), E> {\n\
                   loop { if q.closed() { return Err(E::Closed(req)); }\n\
                   if q.ready() { q.admit(req); return Ok(()); }\n\
                   q.wait(); } }";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn a008_guard_across_recv() {
        let d = check("fn f(m: &Mutex<R>) { let g = m.lock(); g.recv().ok(); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("A008"));
    }

    #[test]
    fn a008_same_statement_acquisition() {
        let d =
            check("fn f(b: &Mutex<R>) { let x = { let rx = lock(&b); rx.recv() }; use_it(x); }");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn a008_dropped_guard_is_fine() {
        assert!(check(
            "fn f(m: &Mutex<R>, tx: &Tx) { let g = m.lock(); drop(g); tx.send(1).ok(); }"
        )
        .is_empty());
        assert!(check(
            "fn f(m: &Mutex<R>, tx: &Tx) { { let g = m.lock(); use_it(&g); } tx.send(1).ok(); }"
        )
        .is_empty());
    }

    #[test]
    fn a008_guard_across_catch_unwind() {
        let d = check("fn f(m: &Mutex<R>) { let g = m.lock(); catch_unwind(|| boom()).ok(); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("catch_unwind"));
    }
}
