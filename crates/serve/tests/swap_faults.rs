//! Hot-swap fault injection: a corrupt or truncated serving bundle must be
//! rejected with a typed [`ServeError::Checkpoint`] while the previously
//! installed model keeps serving — and a swap under concurrent load loses
//! zero requests, with every answer attributable to a generation that was
//! installed while it was in flight.
//!
//! Corruption is generated the same way as the pre-training checkpoint
//! fault suite (`tests/checkpoint_faults.rs` at the workspace root): the
//! bundle's `layout()` names every section span, and we damage each one.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use aimts::{Executor, FineTuned, HealthReport, TsEncoder};
use aimts_data::{MultiSeries, Sample, Split};
use aimts_nn::{layout, Activation, Mlp};
use aimts_serve::{BatchPolicy, ModelRegistry, ServeError, Server};

const N_CLASSES: usize = 4;

fn make_model(seed: u64) -> FineTuned {
    let repr = 16;
    FineTuned {
        encoder: TsEncoder::new(8, repr, &[1, 2], seed),
        head: Mlp::new(&[repr, 8, N_CLASSES], Activation::Gelu, seed + 1),
        n_classes: N_CLASSES,
        train_losses: Vec::new(),
        best_train_accuracy: None,
        health: HealthReport::default(),
    }
}

fn sample(t: usize, seed: u64) -> MultiSeries {
    vec![(0..t)
        .map(|i| (seed as f32 * 0.61 + i as f32 * 0.3).sin())
        .collect()]
}

fn offline_classes(model: &FineTuned, samples: &[MultiSeries]) -> Vec<usize> {
    let split = Split {
        samples: samples
            .iter()
            .map(|vars| Sample {
                vars: vars.clone(),
                label: 0,
            })
            .collect(),
    };
    model.predict(&split)
}

/// Two saved bundles (generations to swap between) in a temp dir, plus
/// the raw bytes of the second (the corruption target).
fn fixture() -> &'static (PathBuf, PathBuf, Vec<u8>) {
    static FIX: OnceLock<(PathBuf, PathBuf, Vec<u8>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let dir = std::env::temp_dir().join("aimts_swap_faults");
        std::fs::create_dir_all(&dir).unwrap();
        let v1 = dir.join("v1.aimts");
        let v2 = dir.join("v2.aimts");
        make_model(1).save_bundle(&v1).unwrap();
        make_model(2).save_bundle(&v2).unwrap();
        let bytes = std::fs::read(&v2).unwrap();
        (v1, v2, bytes)
    })
}

/// Swapping to a damaged bundle returns `ServeError::Checkpoint`, leaves
/// the generation untouched, and the old model answers exactly as before.
#[test]
fn corrupt_swap_is_rejected_and_old_model_keeps_serving() {
    let (v1, _, v2_bytes) = fixture();
    let samples: Vec<MultiSeries> = (0..6).map(|i| sample(16, i)).collect();
    let old = offline_classes(&FineTuned::load_bundle(v1).unwrap(), &samples);

    let registry = ModelRegistry::from_bundle(v1, Executor::Eager).unwrap();
    let server = Server::start(registry, BatchPolicy::default());
    assert_eq!(server.registry().generation(), 1);

    // Every section of the bundle, damaged two ways: a byte flip inside
    // the payload (CRC must catch it) and a truncation mid-payload.
    let (_, spans) = layout(v2_bytes).unwrap();
    assert!(
        spans.iter().any(|s| s.name == "arch") && spans.iter().any(|s| s.name == "params"),
        "bundle sections changed; update this suite"
    );
    let dir = std::env::temp_dir().join("aimts_swap_faults");
    let mut attempts = 0u32;
    for span in &spans {
        let mid = span.payload_start + (span.end - span.payload_start) / 2;

        let mut flipped = v2_bytes.clone();
        flipped[mid] ^= 0x20;
        let truncated = v2_bytes[..mid].to_vec();

        for (tag, bytes) in [("flip", flipped), ("trunc", truncated)] {
            let path = dir.join(format!("bad-{}-{tag}.aimts", span.name));
            std::fs::write(&path, &bytes).unwrap();
            match server.swap_from_bundle(&path) {
                Err(ServeError::Checkpoint(e)) => {
                    // The typed error names a section or a structural
                    // defect; it is never a silent success or a panic.
                    let msg = e.to_string();
                    assert!(!msg.is_empty());
                }
                Ok(g) => panic!("swap to {tag} `{}` succeeded (gen {g})", span.name),
                Err(other) => panic!("swap to {tag} `{}`: wrong error {other}", span.name),
            }
            attempts += 1;
            assert_eq!(
                server.registry().generation(),
                1,
                "failed swap must not advance the generation"
            );
        }
    }

    // Garbage and a missing file are equally typed.
    let garbage = dir.join("garbage.aimts");
    std::fs::write(&garbage, b"not a checkpoint at all").unwrap();
    assert!(matches!(
        server.swap_from_bundle(&garbage),
        Err(ServeError::Checkpoint(_))
    ));
    assert!(matches!(
        server.swap_from_bundle(&dir.join("missing.aimts")),
        Err(ServeError::Checkpoint(_))
    ));
    attempts += 2;

    // The old model is still installed and still bitwise-correct.
    for (i, s) in samples.iter().enumerate() {
        let resp = server.classify(s.clone()).unwrap();
        assert_eq!(resp.class, old[i]);
        assert_eq!(resp.generation, 1);
    }
    server.shutdown();
    let snap = server.metrics();
    assert_eq!(snap.swaps, 0);
    assert_eq!(snap.swap_failures, u64::from(attempts));
}

/// A hot swap under concurrent load: every in-flight and subsequent
/// request is answered (zero lost), each answer matches the offline
/// prediction of the generation that served it, and a failed swap in the
/// middle changes nothing.
#[test]
fn swap_under_load_loses_zero_requests() {
    let (v1, v2, v2_bytes) = fixture();
    let samples: Vec<MultiSeries> = (0..8).map(|i| sample(16, i)).collect();
    let by_gen = [
        offline_classes(&FineTuned::load_bundle(v1).unwrap(), &samples),
        offline_classes(&FineTuned::load_bundle(v2).unwrap(), &samples),
    ];

    let registry = ModelRegistry::from_bundle(v1, Executor::Eager).unwrap();
    let server = Server::start(
        registry,
        BatchPolicy {
            max_batch: 4,
            ..BatchPolicy::default()
        },
    );

    // A corrupt bundle to fail a swap mid-load.
    let dir = std::env::temp_dir().join("aimts_swap_faults");
    let bad = dir.join("bad-under-load.aimts");
    let (_, spans) = layout(v2_bytes).unwrap();
    let mut corrupt = v2_bytes.clone();
    corrupt[spans.last().unwrap().payload_start + 1] ^= 0x40;
    std::fs::write(&bad, &corrupt).unwrap();

    const PER_CLIENT: usize = 200;
    const CLIENTS: usize = 4;
    let answered = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let server = &server;
            let samples = &samples;
            let by_gen = &by_gen;
            let answered = &answered;
            scope.spawn(move || {
                for i in 0..PER_CLIENT {
                    let k = (client + i * CLIENTS) % samples.len();
                    let resp = server
                        .classify(samples[k].clone())
                        .expect("no lost requests");
                    assert!(
                        resp.generation == 1 || resp.generation == 2,
                        "unknown generation {}",
                        resp.generation
                    );
                    // Whichever generation answered, the class must be
                    // that generation's offline answer — a swap can move
                    // the boundary but never corrupt a response.
                    let expect = &by_gen[(resp.generation - 1) as usize];
                    assert_eq!(resp.class, expect[k], "gen {} answer", resp.generation);
                    answered.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // Interleave with the load: a failing swap, then the real one.
        assert!(matches!(
            server.swap_from_bundle(&bad),
            Err(ServeError::Checkpoint(_))
        ));
        assert_eq!(server.registry().generation(), 1);
        let g = server.swap_from_bundle(v2).expect("valid swap");
        assert_eq!(g, 2);
    });

    assert_eq!(
        answered.load(Ordering::Relaxed) as usize,
        PER_CLIENT * CLIENTS
    );
    server.shutdown();
    let snap = server.metrics();
    assert_eq!(snap.completed, (PER_CLIENT * CLIENTS) as u64);
    assert_eq!(snap.queue_depth, 0);
    assert_eq!(snap.swaps, 1);
    assert_eq!(snap.swap_failures, 1);

    // After the load the new generation is pinned for fresh requests.
    let resp = {
        let registry = ModelRegistry::from_bundle(v2, Executor::Eager).unwrap();
        let fresh = Server::start(registry, BatchPolicy::default());
        let r = fresh.classify(samples[0].clone()).unwrap();
        fresh.shutdown();
        r
    };
    assert_eq!(resp.class, by_gen[1][0]);
}

/// Swapping to a bundle with a *different architecture* is legal — the
/// bundle is self-describing, so the registry can replace the whole model,
/// not just its weights.
#[test]
fn swap_to_different_architecture_succeeds() {
    let (v1, _, _) = fixture();
    let dir = std::env::temp_dir().join("aimts_swap_faults");
    let wide = dir.join("wide.aimts");
    FineTuned {
        encoder: TsEncoder::new(12, 24, &[1, 2, 4], 7),
        head: Mlp::new(&[24, 10, N_CLASSES], Activation::Gelu, 8),
        n_classes: N_CLASSES,
        train_losses: Vec::new(),
        best_train_accuracy: None,
        health: HealthReport::default(),
    }
    .save_bundle(&wide)
    .unwrap();

    let registry = ModelRegistry::from_bundle(v1, Executor::Eager).unwrap();
    let server = Server::start(registry, BatchPolicy::default());
    let before = server.classify(sample(16, 3)).unwrap();
    assert_eq!(before.generation, 1);

    let g = server.swap_from_bundle(&wide).expect("arch swap");
    assert_eq!(g, 2);
    let after = server.classify(sample(16, 3)).unwrap();
    assert_eq!(after.generation, 2);

    let offline = offline_classes(&FineTuned::load_bundle(&wide).unwrap(), &[sample(16, 3)]);
    assert_eq!(after.class, offline[0]);
    server.shutdown();
}
