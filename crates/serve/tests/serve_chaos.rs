//! Deterministic chaos suite for the overload-safe serving stack.
//!
//! Every scenario drives the real pipeline (admission → assembly →
//! inference workers) with a scripted [`ChaosPlan`] and asserts
//! *structural* outcomes — counts, typed errors, state machines — never
//! wall-clock latencies, so the suite is deterministic under any
//! scheduler and `AIMTS_THREADS` setting:
//!
//! - saturation sheds with typed `Overloaded` while zero accepted
//!   requests are lost;
//! - latency spikes expire deadlines into typed `DeadlineExceeded`;
//! - consecutive flush panics trip the circuit breaker (typed
//!   `CircuitOpen`), and a clean half-open probe closes it again;
//! - a poison payload is isolated by bisection: batch-mates answer
//!   normally, only the poison request fails;
//! - hot swaps land mid-chaos without dropping a request;
//! - concurrent shutdown racing live submitters answers every accepted
//!   request (the drain contract under contention).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use aimts::{Executor, FineTuned, HealthReport, TsEncoder};
use aimts_data::{MultiSeries, Sample, Split};
use aimts_nn::{Activation, Mlp};
use aimts_serve::{
    poison_trap, BatchPolicy, BreakerState, ChaosPlan, Deadline, ModelRegistry, Priority,
    ServeError, Server, SubmitOptions,
};

const N_CLASSES: usize = 3;

/// A cheap untrained-but-deterministic model (random init is a perfectly
/// good function for transport-layer tests).
fn model() -> &'static FineTuned {
    static MODEL: OnceLock<FineTuned> = OnceLock::new();
    MODEL.get_or_init(|| {
        let repr = 16;
        FineTuned {
            encoder: TsEncoder::new(8, repr, &[1, 2], 99),
            head: Mlp::new(&[repr, 8, N_CLASSES], Activation::Gelu, 100),
            n_classes: N_CLASSES,
            train_losses: Vec::new(),
            best_train_accuracy: None,
            health: HealthReport::default(),
        }
    })
}

fn sample(m: usize, t: usize, seed: u64) -> MultiSeries {
    (0..m)
        .map(|v| {
            (0..t)
                .map(|i| {
                    let x = (seed as f32 * 0.37 + v as f32) + i as f32 * 0.25;
                    x.sin() + 0.1 * (i as f32 * 0.05 + seed as f32).cos()
                })
                .collect()
        })
        .collect()
}

fn offline_classes(samples: &[MultiSeries]) -> Vec<usize> {
    let split = Split {
        samples: samples
            .iter()
            .map(|vars| Sample {
                vars: vars.clone(),
                label: 0,
            })
            .collect(),
    };
    model().predict(&split)
}

/// A plan that spikes every flush by `ms` (saturates the pipeline).
fn spike_every_flush(ms: u64) -> ChaosPlan {
    ChaosPlan {
        spike: Duration::from_millis(ms),
        spike_flushes: (0..100_000).collect(),
        panic_flushes: Vec::new(),
    }
}

/// Saturation: try-admit against a tiny queue while every flush is
/// slowed. Sheds MUST happen and MUST be typed `Overloaded` with a
/// usable retry hint; every accepted request MUST still be answered —
/// zero lost. (p99 stays bounded *because* the queue is bounded: no
/// accepted request ever waits behind more than `queue_cap` others.)
#[test]
fn saturation_sheds_typed_and_loses_no_accepted_request() {
    let registry = ModelRegistry::from_tuned(model(), Executor::Eager, "chaos");
    let server = Server::start_with_chaos(
        registry,
        BatchPolicy {
            max_batch: 2,
            queue_cap: 4,
            admission_timeout: Duration::ZERO,
            ..BatchPolicy::default()
        },
        spike_every_flush(2),
    );

    let n = 100u64;
    let shed = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for client in 0..4u64 {
            let server = &server;
            let shed = &shed;
            let completed = &completed;
            scope.spawn(move || {
                let mut pending = Vec::new();
                for i in (client..n).step_by(4) {
                    match server.submit(sample(1, 12, i)) {
                        Ok(p) => pending.push(p),
                        Err(ServeError::Overloaded {
                            queue_depth,
                            retry_after_ms,
                        }) => {
                            assert!(queue_depth >= 1, "shed with empty queue");
                            assert!(retry_after_ms >= 1, "useless retry hint");
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected admission error: {e}"),
                    }
                }
                for p in pending {
                    p.wait().expect("accepted request must be answered");
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    server.shutdown();

    let shed = shed.load(Ordering::Relaxed);
    let completed = completed.load(Ordering::Relaxed);
    assert!(shed > 0, "saturation run must shed");
    assert_eq!(
        completed + shed,
        n,
        "every submission has exactly one outcome"
    );
    let snap = server.metrics();
    assert_eq!(snap.shed, shed);
    assert_eq!(snap.completed, completed);
    assert_eq!(snap.queue_depth, 0, "queue drained at shutdown");
    assert!(snap.accounted_for(0), "metrics must balance: {snap:?}");
}

/// Low-priority work sheds at the watermark and never blocks; the same
/// queue still admits normal-priority work. The pipeline is stalled
/// (one-request batches, one in-flight slot, long spikes) so the queue
/// provably sits above the 3/4 watermark when the low request arrives:
/// at most three requests can leave the queue while the worker sleeps
/// (one in the worker, one buffered, one in the assembler's hand).
#[test]
fn low_priority_sheds_at_the_watermark() {
    let registry = ModelRegistry::from_tuned(model(), Executor::Eager, "chaos");
    let server = Server::start_with_chaos(
        registry,
        BatchPolicy {
            max_batch: 1,
            max_inflight_batches: 1,
            queue_cap: 8, // low watermark = 6
            admission_timeout: Duration::from_secs(10),
            ..BatchPolicy::default()
        },
        spike_every_flush(150),
    );

    // 11 normal-priority fills: <= 3 absorbed by the stalled pipeline,
    // so the queue holds >= 8 - one-per-spike — comfortably above 6.
    let pending: Vec<_> = (0..11)
        .map(|i| server.submit(sample(1, 12, i)).expect("fill queue"))
        .collect();
    let low = SubmitOptions {
        priority: Priority::Low,
        ..SubmitOptions::default()
    };
    match server.submit_with(sample(1, 12, 99), low) {
        Err(ServeError::Overloaded { queue_depth, .. }) => {
            assert!(queue_depth >= 6, "watermark shed below watermark");
        }
        other => panic!("low priority must shed at the watermark, got {other:?}"),
    }
    for p in pending {
        p.wait().expect("admitted work still answered");
    }
    server.shutdown();
    assert!(server.metrics().shed >= 1);
}

/// Every flush spiked far past a short deadline: every request is
/// answered with typed `DeadlineExceeded` — shed before the forward pass
/// whenever possible, never silently dropped.
#[test]
fn spikes_expire_deadlines_into_typed_rejections() {
    let registry = ModelRegistry::from_tuned(model(), Executor::Eager, "chaos");
    let server = Server::start_with_chaos(
        registry,
        BatchPolicy {
            max_batch: 4,
            ..BatchPolicy::default()
        },
        spike_every_flush(50),
    );

    let n = 16u64;
    let mut admission_rejects = 0u64;
    let mut pending = Vec::new();
    for i in 0..n {
        let opts = SubmitOptions {
            deadline: Some(Deadline::in_ms(5)),
            ..SubmitOptions::default()
        };
        match server.submit_with(sample(1, 12, i), opts) {
            Ok(p) => pending.push(p),
            // Only possible if the scheduler paused us >5ms mid-submit.
            Err(ServeError::DeadlineExceeded) => admission_rejects += 1,
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    let mut expired = 0u64;
    for p in pending {
        match p.wait() {
            Err(ServeError::DeadlineExceeded) => expired += 1,
            other => panic!("50ms spike vs 5ms deadline must expire, got {other:?}"),
        }
    }
    server.shutdown();
    assert_eq!(expired + admission_rejects, n);
    let snap = server.metrics();
    assert_eq!(snap.completed, 0);
    assert_eq!(snap.deadline_exceeded, n);
    assert!(snap.accounted_for(admission_rejects), "{snap:?}");
}

/// Server-side default deadline: a policy deadline of zero expires every
/// request at admission with a typed error.
#[test]
fn default_deadline_applies_when_requests_carry_none() {
    let registry = ModelRegistry::from_tuned(model(), Executor::Eager, "chaos");
    let server = Server::start(
        registry,
        BatchPolicy {
            default_deadline: Some(Duration::ZERO),
            ..BatchPolicy::default()
        },
    );
    match server.submit(sample(1, 12, 0)) {
        Err(ServeError::DeadlineExceeded) => {}
        other => panic!("zero default deadline must reject at admission, got {other:?}"),
    }
    server.shutdown();
    assert_eq!(server.metrics().deadline_exceeded, 1);
}

/// Two consecutive panicking flushes trip the breaker: admission rejects
/// with typed `CircuitOpen` and a positive retry hint, the state is
/// mirrored into metrics, and the panicking requests themselves were
/// answered with `InferenceFailed` (isolated, batch of one).
#[test]
fn breaker_trips_after_consecutive_flush_panics() {
    let registry = ModelRegistry::from_tuned(model(), Executor::Eager, "chaos");
    let server = Server::start_with_chaos(
        registry,
        BatchPolicy {
            max_batch: 1, // one flush per request: deterministic indices
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(600), // stays open
            ..BatchPolicy::default()
        },
        ChaosPlan {
            panic_flushes: vec![0, 1],
            ..ChaosPlan::default()
        },
    );

    for i in 0..2 {
        match server.classify(sample(1, 12, i)) {
            Err(ServeError::InferenceFailed(_)) => {}
            other => panic!("injected flush panic must fail typed, got {other:?}"),
        }
    }
    assert_eq!(server.breaker().state(), BreakerState::Open);
    match server.submit(sample(1, 12, 9)) {
        Err(ServeError::CircuitOpen { retry_after_ms }) => {
            assert!(retry_after_ms >= 1, "useless retry hint");
        }
        other => panic!("open breaker must reject typed, got {other:?}"),
    }
    server.shutdown();
    let snap = server.metrics();
    assert_eq!(snap.breaker_trips, 1);
    assert_eq!(snap.breaker_state, BreakerState::Open.as_u8());
    assert_eq!(snap.inference_failures, 2);
    assert!(snap.shed >= 1, "breaker rejection counts as shed");
    assert!(snap.accounted_for(0), "{snap:?}");
}

/// After the cooldown the breaker half-opens: the probe request flows,
/// its clean flush closes the breaker, and serving resumes.
#[test]
fn breaker_recovers_through_a_half_open_probe() {
    let registry = ModelRegistry::from_tuned(model(), Executor::Eager, "chaos");
    let server = Server::start_with_chaos(
        registry,
        BatchPolicy {
            max_batch: 1,
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(20),
            ..BatchPolicy::default()
        },
        ChaosPlan {
            panic_flushes: vec![0],
            ..ChaosPlan::default()
        },
    );

    assert!(matches!(
        server.classify(sample(1, 12, 0)),
        Err(ServeError::InferenceFailed(_))
    ));
    assert_eq!(server.breaker().state(), BreakerState::Open);
    // Give the cooldown ample slack (no assertion rides on how long this
    // actually sleeps).
    std::thread::sleep(Duration::from_millis(200));
    let resp = server
        .classify(sample(1, 12, 1))
        .expect("half-open probe must be admitted and answered");
    assert_eq!(resp.generation, 1);
    assert_eq!(server.breaker().state(), BreakerState::Closed);
    server.shutdown();
    let snap = server.metrics();
    assert_eq!(snap.breaker_trips, 1);
    assert_eq!(snap.breaker_state, BreakerState::Closed.as_u8());
    assert_eq!(snap.completed, 1);
}

/// One poison payload among clean batch-mates: bisection isolates it —
/// the seven clean requests answer bitwise-identically to offline, only
/// the poison request fails, and one flush failure stays below the
/// breaker threshold.
#[test]
fn poison_request_is_isolated_by_bisection() {
    let t = 12usize;
    let clean: Vec<MultiSeries> = (0..7).map(|i| sample(1, t, i)).collect();
    let expected = offline_classes(&clean);

    let registry =
        ModelRegistry::from_tuned(model(), Executor::Eager, "chaos").with_infer_hook(poison_trap());
    // Re-register so the hook applies to the served model.
    registry.swap_tuned(model(), "chaos-hooked");
    let server = Server::start(
        registry,
        BatchPolicy {
            max_batch: 8,
            max_delay: Duration::from_millis(50), // gather one big batch
            breaker_threshold: 3,
            ..BatchPolicy::default()
        },
    );

    let mut pending = Vec::new();
    for s in &clean {
        pending.push(server.submit(s.clone()).expect("clean submit"));
    }
    let poisoned = server
        .submit(aimts_serve::chaos::poison_sample(t))
        .expect("poison passes structural validation");

    for (p, want) in pending.into_iter().zip(expected) {
        let resp = p.wait().expect("batch-mates of poison answer normally");
        assert_eq!(resp.class, want, "isolation must not change answers");
    }
    match poisoned.wait() {
        Err(ServeError::InferenceFailed(_)) => {}
        other => panic!("poison request must fail typed, got {other:?}"),
    }
    assert_eq!(server.breaker().state(), BreakerState::Closed);
    server.shutdown();
    let snap = server.metrics();
    assert_eq!(snap.completed, 7);
    assert_eq!(snap.inference_failures, 1);
    assert_eq!(snap.breaker_trips, 0, "one failure is below threshold 3");
    assert!(snap.accounted_for(0), "{snap:?}");
}

/// Hot swap lands mid-chaos: requests before and after observe their
/// respective generations, and none are lost.
#[test]
fn swap_under_chaos_loses_nothing() {
    let registry = ModelRegistry::from_tuned(model(), Executor::Eager, "chaos");
    let server = Server::start_with_chaos(
        registry,
        BatchPolicy {
            max_batch: 4,
            ..BatchPolicy::default()
        },
        spike_every_flush(1),
    );

    let first: Vec<_> = (0..40)
        .map(|i| server.submit(sample(1, 12, i)).expect("submit"))
        .collect();
    let generation = server.registry().swap_tuned(model(), "chaos-v2");
    assert_eq!(generation, 2);
    let second: Vec<_> = (0..40)
        .map(|i| server.submit(sample(1, 12, 100 + i)).expect("submit"))
        .collect();

    let mut seen = [0u64; 2];
    for p in first.into_iter().chain(second) {
        let resp = p.wait().expect("no request lost across the swap");
        assert!(
            resp.generation == 1 || resp.generation == 2,
            "impossible generation {}",
            resp.generation
        );
        seen[(resp.generation - 1) as usize] += 1;
    }
    // Requests submitted after the swap can only be answered by gen 2.
    assert!(seen[1] >= 40, "post-swap requests served by the old model");
    server.shutdown();
    assert_eq!(server.metrics().completed, 80);
}

/// The drain-race regression (satellite fix): shutdown racing live
/// submitters and a second shutdown caller. Every ACCEPTED request must
/// resolve to a real outcome — `Closed` on an accepted request would
/// mean the old drop-on-teardown bug is back — and both shutdown calls
/// must return only after the drain.
#[test]
fn concurrent_shutdown_answers_every_accepted_request() {
    for round in 0..8u64 {
        let registry = ModelRegistry::from_tuned(model(), Executor::Eager, "drain-race");
        let server = Server::start(
            registry,
            BatchPolicy {
                max_batch: 4,
                queue_cap: 64,
                ..BatchPolicy::default()
            },
        );
        let accepted = AtomicU64::new(0);
        let answered = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for client in 0..3u64 {
                let server = &server;
                let accepted = &accepted;
                let answered = &answered;
                scope.spawn(move || {
                    for i in 0..200u64 {
                        match server.submit(sample(1, 10, round * 1_000 + client * 300 + i)) {
                            Ok(p) => {
                                accepted.fetch_add(1, Ordering::Relaxed);
                                match p.wait() {
                                    Ok(_) => {
                                        answered.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Err(e) => panic!("accepted request dropped during drain: {e}"),
                                }
                            }
                            // The race we are provoking: submission after
                            // (or during) close is typed, not queued.
                            Err(ServeError::Closed) => break,
                            Err(e) => panic!("unexpected submit error: {e}"),
                        }
                    }
                });
            }
            // Two racing shutdowns, both mid-load.
            for _ in 0..2 {
                let server = &server;
                scope.spawn(move || {
                    std::thread::yield_now();
                    server.shutdown();
                });
            }
        });
        assert_eq!(
            accepted.load(Ordering::Relaxed),
            answered.load(Ordering::Relaxed),
            "round {round}: accepted != answered across concurrent shutdown"
        );
        // Idempotent after the fact; admission stays typed-closed.
        server.shutdown();
        assert!(matches!(
            server.submit(sample(1, 10, 0)),
            Err(ServeError::Closed)
        ));
        assert_eq!(server.metrics().queue_depth, 0);
    }
}
