//! Property tests for the micro-batcher: across random request counts,
//! shapes, batch policies, and client interleavings, the batcher never
//! drops, duplicates, or cross-wires a response, every answer equals the
//! offline model's answer, and every observed batch respects `max_batch`.
//!
//! The properties are structural (counts, ids, classes, bounds), not
//! timing-based, so they hold on any scheduler — `max_delay` flushes are
//! exercised but never asserted against a wall clock.

use std::sync::OnceLock;

use aimts::{Executor, FineTuned, HealthReport, TsEncoder};
use aimts_data::{MultiSeries, Sample, Split};
use aimts_nn::{Activation, Mlp};
use aimts_serve::{BatchPolicy, ModelRegistry, Server};
use proptest::prelude::*;

const N_CLASSES: usize = 3;

/// A cheap untrained-but-deterministic model: random init is a perfectly
/// good function for testing the transport (the batcher must agree with
/// the offline path bitwise, whatever the weights).
fn model() -> &'static FineTuned {
    static MODEL: OnceLock<FineTuned> = OnceLock::new();
    MODEL.get_or_init(|| {
        let repr = 16;
        FineTuned {
            encoder: TsEncoder::new(8, repr, &[1, 2], 99),
            head: Mlp::new(&[repr, 8, N_CLASSES], Activation::Gelu, 100),
            n_classes: N_CLASSES,
            train_losses: Vec::new(),
            best_train_accuracy: None,
            health: HealthReport::default(),
        }
    })
}

/// Deterministic synthetic sample: `m` variables of length `t`.
fn sample(m: usize, t: usize, seed: u64) -> MultiSeries {
    (0..m)
        .map(|v| {
            (0..t)
                .map(|i| {
                    let x = (seed as f32 * 0.37 + v as f32) + i as f32 * 0.25;
                    x.sin() + 0.1 * (i as f32 * 0.05 + seed as f32).cos()
                })
                .collect()
        })
        .collect()
}

/// Offline ground truth for a set of samples, via `FineTuned::predict`.
fn offline_classes(samples: &[MultiSeries]) -> Vec<usize> {
    let split = Split {
        samples: samples
            .iter()
            .map(|vars| Sample {
                vars: vars.clone(),
                label: 0,
            })
            .collect(),
    };
    model().predict(&split)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn no_request_is_dropped_duplicated_or_cross_wired(
        n in 1usize..40,
        max_batch in 1usize..9,
        queue_cap in 1usize..64,
        m in 1usize..3,
        t in 8usize..24,
    ) {
        let samples: Vec<MultiSeries> = (0..n).map(|i| sample(m, t, i as u64)).collect();
        let expected = offline_classes(&samples);

        let registry = ModelRegistry::from_tuned(model(), Executor::Eager, "prop");
        let server = Server::start(registry, BatchPolicy {
            max_batch,
            queue_cap,
            ..BatchPolicy::default()
        });

        // Submit everything up front (back-pressure may block briefly when
        // queue_cap < n; the batcher is draining concurrently).
        let pending: Vec<_> = samples
            .iter()
            .map(|s| server.submit(s.clone()).expect("submit"))
            .collect();

        // Ids are unique and each response echoes its request's id —
        // responses cannot be cross-wired between requests.
        let ids: Vec<u64> = pending.iter().map(|p| p.id()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), n, "duplicate request ids");

        let mut answered = 0usize;
        for (i, p) in pending.into_iter().enumerate() {
            let resp = p.wait().expect("every accepted request gets a response");
            prop_assert_eq!(resp.id, ids[i], "response for the wrong request");
            prop_assert_eq!(resp.class, expected[i], "served class != offline class");
            prop_assert!(resp.batch_size >= 1 && resp.batch_size <= max_batch,
                "batch_size {} outside [1, {}]", resp.batch_size, max_batch);
            prop_assert_eq!(resp.generation, 1);
            prop_assert!(resp.total_us >= resp.queue_us);
            answered += 1;
        }
        prop_assert_eq!(answered, n, "lost responses");

        server.shutdown();
        let snap = server.metrics();
        prop_assert_eq!(snap.received, n as u64);
        prop_assert_eq!(snap.completed, n as u64, "metrics lost completions");
        prop_assert_eq!(snap.rejected, 0);
        prop_assert_eq!(snap.queue_depth, 0, "queue not drained at shutdown");
        prop_assert!(snap.batches >= n.div_ceil(max_batch) as u64,
            "too few batches for max_batch bound");
    }

    #[test]
    fn malformed_requests_are_rejected_without_entering_the_queue(
        n_good in 1usize..8,
        t in 4usize..12,
    ) {
        let registry = ModelRegistry::from_tuned(model(), Executor::Eager, "prop");
        let server = Server::start(registry, BatchPolicy::default());

        // Empty series, empty variable, ragged variables, non-finite cell.
        let bad: Vec<MultiSeries> = vec![
            vec![],
            vec![vec![]],
            vec![vec![0.0; t], vec![0.0; t + 1]],
            vec![vec![f32::NAN; t]],
        ];
        for b in &bad {
            prop_assert!(server.submit(b.clone()).is_err());
        }
        for i in 0..n_good {
            let resp = server.classify(sample(1, t, i as u64)).expect("good request");
            prop_assert!(resp.class < N_CLASSES);
        }
        server.shutdown();
        let snap = server.metrics();
        prop_assert_eq!(snap.rejected, bad.len() as u64);
        prop_assert_eq!(snap.completed, n_good as u64);
    }
}

/// A lone request must be answered by the `max_delay` flush (nothing else
/// will ever fill its batch) — and in a batch of exactly one.
#[test]
fn lone_request_flushes_on_max_delay() {
    let registry = ModelRegistry::from_tuned(model(), Executor::Eager, "lone");
    let server = Server::start(
        registry,
        BatchPolicy {
            max_batch: 1024,
            ..BatchPolicy::default()
        },
    );
    let resp = server.classify(sample(1, 16, 5)).expect("lone request");
    assert_eq!(resp.batch_size, 1);
    server.shutdown();
}

/// Shutdown drains: requests accepted before `shutdown()` are all
/// answered, and submits after it fail with `Closed`.
#[test]
fn shutdown_answers_accepted_requests_then_closes() {
    let registry = ModelRegistry::from_tuned(model(), Executor::Eager, "drain");
    let server = Server::start(
        registry,
        BatchPolicy {
            max_batch: 4,
            ..BatchPolicy::default()
        },
    );
    let pending: Vec<_> = (0..17)
        .map(|i| server.submit(sample(1, 12, i)).expect("submit"))
        .collect();
    server.shutdown();
    for p in pending {
        p.wait().expect("accepted request answered across shutdown");
    }
    assert!(server.submit(sample(1, 12, 0)).is_err());
}
